//! Cross-architecture AVF study: one benchmark on all four GPUs of the
//! paper, reproducing one bar group of Fig. 1 and Fig. 2 — including the
//! FI-vs-ACE gap and the occupancy correlation.
//!
//! ```text
//! cargo run --release --example avf_study [workload] [injections]
//! ```
//!
//! Defaults: `transpose`, 200 injections per structure.

use gpu_reliability_repro::archs::all_devices;
use gpu_reliability_repro::reliability::campaign::CampaignConfig;
use gpu_reliability_repro::reliability::study::{evaluate_point, StudyConfig};
use gpu_reliability_repro::workloads::workload_by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "transpose".into());
    let injections: u32 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(200);
    let seed = 2017;
    let workload = workload_by_name(&name, seed)
        .ok_or_else(|| format!("unknown workload '{name}' (paper spelling, e.g. matrixMul)"))?;

    let cfg = StudyConfig {
        campaign: CampaignConfig {
            injections,
            threads: std::thread::available_parallelism()?.get(),
            ..CampaignConfig::quick(seed)
        },
        workload_seed: seed,
        fi_on_unused_lds: false,
        provenance: false,
        ace_mode: Default::default(),
        sampling: Default::default(),
    };

    println!(
        "AVF of '{}' across the four GPUs ({injections} injections/structure)\n",
        workload.name()
    );
    println!(
        "{:<16} {:>8} | {:>7} {:>8} {:>7} | {:>7} {:>8} {:>7}",
        "", "", "RF", "", "", "LDS", "", ""
    );
    println!(
        "{:<16} {:>8} | {:>7} {:>8} {:>7} | {:>7} {:>8} {:>7}",
        "device", "cycles", "AVF-FI", "AVF-ACE", "occup", "AVF-FI", "AVF-ACE", "occup"
    );
    for arch in all_devices() {
        let p = evaluate_point(&arch, workload.as_ref(), &cfg)?;
        println!(
            "{:<16} {:>8} | {:>6.1}% {:>7.1}% {:>6.1}% | {:>6.1}% {:>7.1}% {:>6.1}%",
            p.device,
            p.cycles,
            p.rf.avf_fi * 100.0,
            p.rf.avf_ace * 100.0,
            p.rf.occupancy * 100.0,
            p.lds.avf_fi * 100.0,
            p.lds.avf_ace * 100.0,
            p.lds.occupancy * 100.0,
        );
    }
    println!(
        "\nRead it like the paper: FI and ACE bars per device, occupancy as the red line; \
         the same application lands at very different AVFs on different microarchitectures (F1)."
    );
    Ok(())
}
