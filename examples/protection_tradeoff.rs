//! Protection trade-off study: the decision the paper designed EPF for.
//!
//! "The EPF metric is useful to the architects who can quantify the
//! effectiveness of a hardware based error protection technique, which
//! can be applied to their designs (if needed) along with a performance
//! cost." — this example measures one workload on one device, then
//! projects FIT, the SDC share and EPF under parity and SECDED
//! protection of the studied storage structures.
//!
//! ```text
//! cargo run --release --example protection_tradeoff [injections]
//! ```

use gpu_reliability_repro::archs::quadro_fx_5800;
use gpu_reliability_repro::reliability::campaign::CampaignConfig;
use gpu_reliability_repro::reliability::protection::protection_sweep;
use gpu_reliability_repro::reliability::study::{evaluate_point, StudyConfig};
use gpu_reliability_repro::workloads::MatrixMul;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let injections: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(100);
    let seed = 2017;
    let cfg = StudyConfig {
        campaign: CampaignConfig {
            injections,
            threads: std::thread::available_parallelism()?.get(),
            ..CampaignConfig::quick(seed)
        },
        workload_seed: seed,
        fi_on_unused_lds: false,
        provenance: false,
        ace_mode: Default::default(),
        sampling: Default::default(),
    };

    let arch = quadro_fx_5800();
    let workload = MatrixMul::new(64, seed);
    println!(
        "measuring matrixMul on {} ({injections} injections/structure)...",
        arch.name
    );
    let p = evaluate_point(&arch, &workload, &cfg)?;
    println!(
        "baseline: RF AVF {:.1}% (SDC {:.1}% / DUE {:.1}%), FIT_GPU {:.1}, EPF {:.2e}\n",
        p.rf.avf_fi * 100.0,
        p.rf.avf_sdc * 100.0,
        (p.rf.avf_fi - p.rf.avf_sdc) * 100.0,
        p.fit.total(),
        p.epf
    );

    let sdc_share = if p.rf.avf_fi > 0.0 {
        p.rf.avf_sdc / p.rf.avf_fi
    } else {
        0.0
    };
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>10}",
        "scheme", "FIT_GPU", "EIT", "EPF", "SDC share"
    );
    for proj in protection_sweep(&p.fit, p.eit, sdc_share) {
        println!(
            "{:<8} {:>10.2} {:>12.2e} {:>12.2e} {:>9.1}%",
            proj.scheme.to_string(),
            proj.fit_gpu,
            proj.eit,
            proj.epf,
            proj.sdc_share * 100.0
        );
    }
    println!(
        "\nparity trades nothing in FIT but converts every silent corruption into a\n\
         detected error; SECDED buys an order of magnitude in EPF for a ~6% slowdown."
    );
    Ok(())
}
