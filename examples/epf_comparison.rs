//! EPF comparison (Fig. 3): which GPU completes the most executions
//! between failures?
//!
//! AVF alone would rank devices by vulnerability; EPF folds in structure
//! sizes, raw FIT, clock frequency and runtime — and can invert the
//! ranking, which is exactly why the paper introduces it.
//!
//! ```text
//! cargo run --release --example epf_comparison [injections]
//! ```

use gpu_reliability_repro::archs::all_devices;
use gpu_reliability_repro::reliability::campaign::CampaignConfig;
use gpu_reliability_repro::reliability::study::{evaluate_point, StudyConfig};
use gpu_reliability_repro::workloads::{MatrixMul, Reduction, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let injections: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(100);
    let seed = 7;
    let cfg = StudyConfig {
        campaign: CampaignConfig {
            injections,
            threads: std::thread::available_parallelism()?.get(),
            ..CampaignConfig::quick(seed)
        },
        workload_seed: seed,
        fi_on_unused_lds: false,
        provenance: false,
        ace_mode: Default::default(),
        sampling: Default::default(),
    };

    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(MatrixMul::new(64, seed)),
        Box::new(Reduction::new(8192, 256, seed)),
    ];
    for w in &workloads {
        println!("== {} ==", w.name());
        println!(
            "{:<16} {:>8} {:>9} {:>10} {:>10} {:>10}",
            "device", "cycles", "RF AVF", "FIT_GPU", "EIT", "EPF"
        );
        let mut best: Option<(String, f64)> = None;
        for arch in all_devices() {
            let p = evaluate_point(&arch, w.as_ref(), &cfg)?;
            println!(
                "{:<16} {:>8} {:>8.1}% {:>10.2} {:>10.2e} {:>10.2e}",
                p.device,
                p.cycles,
                p.rf.avf_fi * 100.0,
                p.fit.total(),
                p.eit,
                p.epf
            );
            if best.as_ref().map(|(_, e)| p.epf > *e).unwrap_or(true) && p.epf.is_finite() {
                best = Some((p.device.clone(), p.epf));
            }
        }
        if let Some((dev, e)) = best {
            println!("-> most executions between failures: {dev} ({e:.2e})\n");
        }
    }
    Ok(())
}
