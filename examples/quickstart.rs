//! Quickstart: measure the register-file AVF of one benchmark on one GPU
//! with both methodologies of the paper.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_reliability_repro::archs::geforce_gtx_480;
use gpu_reliability_repro::reliability::campaign::{run_campaign, CampaignConfig};
use gpu_reliability_repro::reliability::AceAnalyzer;
use gpu_reliability_repro::sim::{Gpu, Structure};
use gpu_reliability_repro::workloads::{VectorAdd, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = geforce_gtx_480();
    let workload = VectorAdd::new(8192, 42);

    // 1. Fault-free run under ACE analysis: one pass gives the ACE AVF
    //    bound and the occupancy of every storage structure.
    let mut gpu = Gpu::new(arch.clone());
    let mut ace = AceAnalyzer::new(&arch);
    let output = workload.run(&mut gpu, &mut ace)?;
    assert_eq!(output, workload.reference(), "fault-free run is bit-exact");
    let rf = ace.report(Structure::VectorRegisterFile);
    println!("device    : {}", arch.name);
    println!(
        "workload  : {} ({} cycles)",
        workload.name(),
        gpu.app_cycle()
    );
    println!(
        "ACE       : register file AVF = {:.1}%  (occupancy {:.1}%)",
        rf.avf_ace * 100.0,
        rf.occupancy * 100.0
    );

    // 2. Statistical fault injection: 200 single-bit flips, uniformly
    //    sampled over (SM, word, bit, cycle), each replayed and classified.
    let cfg = CampaignConfig::quick(42);
    let fi = run_campaign(&arch, &workload, Structure::VectorRegisterFile, cfg)?;
    println!(
        "FI        : register file AVF = {:.1}% +/- {:.1}%  ({} masked / {} SDC / {} DUE)",
        fi.avf() * 100.0,
        fi.margin_99 * 100.0,
        fi.tally.masked,
        fi.tally.sdc,
        fi.tally.due
    );
    println!(
        "finding F3: ACE {} FI by {:.1} percentage points",
        if rf.avf_ace >= fi.avf() {
            "overestimates"
        } else {
            "underestimates"
        },
        (rf.avf_ace - fi.avf()).abs() * 100.0
    );
    Ok(())
}
