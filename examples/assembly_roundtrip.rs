//! Work with kernels as text: parse MASS assembly, inspect the
//! disassembly, and run the parsed kernel — the way GUFI/SIFI operate on
//! SASS / Southern Islands disassembly rather than on source code.
//!
//! ```text
//! cargo run --release --example assembly_roundtrip
//! ```

use gpu_reliability_repro::archs::quadro_fx_5600;
use gpu_reliability_repro::isa::{lower, parse_kernel};
use gpu_reliability_repro::sim::{Gpu, LaunchConfig};

const SQUARE_ASM: &str = r"
    .kernel square
    .params 2            // s0 = &out, s1 = n
    imad v0, %ctaid.x, %ntid.x, %tid.x
    setp.ult.s32 p0, v0, s1
    if.begin p0
        imul v1, v0, v0
        imad v2, v0, 4, s0
        st.global [v2] <- v1
    if.end
    exit
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse the textual kernel; the validator runs exactly as for
    // builder-constructed kernels.
    let kernel = parse_kernel(SQUARE_ASM)?;
    println!("parsed '{}' ({} instructions)", kernel.name(), kernel.len());
    println!("{}", kernel.disassemble());

    // The disassembly itself parses back to the same program.
    let reparsed = parse_kernel(&format!(".params 2\n{}", kernel.disassemble()))?;
    assert_eq!(reparsed.body(), kernel.body(), "round-trip is exact");

    // Lower and execute on a device.
    let arch = quadro_fx_5600();
    let lowered = lower(&kernel, arch.caps())?;
    let mut gpu = Gpu::new(arch);
    let n = 100u32;
    let out = gpu.alloc_words(n);
    gpu.launch(&lowered, LaunchConfig::linear(4, 32), &[out.addr(), n])?;
    let words = gpu.read_words(out, n);
    assert!(words.iter().enumerate().all(|(i, w)| *w as usize == i * i));
    println!("square(7) = {}", words[7]);
    Ok(())
}
