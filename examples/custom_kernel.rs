//! Bring your own kernel: author a MASS kernel with the builder, run it
//! on two different vendor architectures, and inject a targeted fault.
//!
//! Demonstrates the full public API surface below the `Workload` layer:
//! kernel building, per-architecture lowering (scalar folding on NVIDIA),
//! launching, and manual fault arming.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use gpu_reliability_repro::archs::{hd_radeon_7970, quadro_fx_5800};
use gpu_reliability_repro::isa::{lower, CmpOp, KernelBuilder, MemSpace};
use gpu_reliability_repro::sim::{ArchConfig, FaultSite, Gpu, LaunchConfig, Structure};

/// SAXPY with a bounds guard: `y[i] = a*x[i] + y[i]` for `i < n`.
fn saxpy_kernel() -> gpu_reliability_repro::isa::Kernel {
    let mut kb = KernelBuilder::new("saxpy", 4); // params: x, y, n, a
    let (px, py, pn, pa) = (kb.param(0), kb.param(1), kb.param(2), kb.param(3));
    let gid = kb.vreg();
    let xv = kb.vreg();
    let yv = kb.vreg();
    let addr = kb.vreg();
    let inb = kb.preg();
    kb.global_tid_x(gid);
    kb.isetp(CmpOp::ULt, inb, gid, pn);
    kb.if_begin(inb);
    kb.word_addr(addr, px, gid);
    kb.ld(MemSpace::Global, xv, addr);
    kb.word_addr(addr, py, gid);
    kb.ld(MemSpace::Global, yv, addr);
    kb.ffma(yv, xv, pa, yv);
    kb.st(MemSpace::Global, addr, yv);
    kb.if_end();
    kb.exit();
    kb.build().expect("saxpy is a valid kernel")
}

fn run_on(arch: ArchConfig, fault: Option<FaultSite>) -> Vec<f32> {
    let kernel = saxpy_kernel();
    let lowered = lower(&kernel, arch.caps()).expect("kernel fits every device");
    println!(
        "{:<16} lowered: {} vregs/thread, {} sregs/warp",
        arch.name,
        lowered.vregs_per_thread(),
        lowered.sregs_per_warp()
    );
    let n = 1024u32;
    let mut gpu = Gpu::new(arch);
    let x = gpu.alloc_words(n);
    let y = gpu.alloc_words(n);
    gpu.write_floats(x, &(0..n).map(|i| i as f32).collect::<Vec<_>>());
    gpu.write_floats(y, &vec![1.0f32; n as usize]);
    if let Some(f) = fault {
        gpu.arm_fault(f);
    }
    gpu.launch(
        &lowered,
        LaunchConfig::linear(n / 128, 128),
        &[x.addr(), y.addr(), n, 2.0f32.to_bits()],
    )
    .expect("launch succeeds");
    gpu.read_floats(y, n)
}

fn main() {
    // The same MASS source lowers differently per vendor: on Southern
    // Islands the uniform `a` and the pointers stay in the scalar file,
    // on GT200 they fold into per-thread vector registers.
    let clean_si = run_on(hd_radeon_7970(), None);
    let clean_nv = run_on(quadro_fx_5800(), None);
    assert_eq!(clean_si, clean_nv, "both vendors compute the same saxpy");
    println!(
        "saxpy y[10] = {} (expected {})",
        clean_nv[10],
        2.0 * 10.0 + 1.0
    );

    // Now flip a bit in GT200's register file early in the run and watch
    // the output corrupt (or stay masked, if the word was unallocated).
    // word 40 = v1 (the x value) of lane 8, warp 0, first block;
    // bit 30 sits in the high mantissa/exponent region of an f32.
    let site = FaultSite::new(Structure::VectorRegisterFile, 0, 40, 30, 300);
    let faulty = run_on(quadro_fx_5800(), Some(site));
    let diffs = faulty.iter().zip(&clean_nv).filter(|(a, b)| a != b).count();
    println!(
        "injected {site}: {diffs} of {} outputs corrupted",
        faulty.len()
    );
}
