//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! forward-looking API surface — nothing serializes at runtime — so the
//! shim accepts the derive syntax (including `#[serde(...)]` helper
//! attributes) and expands to nothing. The matching marker traits come
//! from the sibling `serde` shim's blanket impls.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
