//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the proptest API its test suites use: the [`proptest!`]
//! macro, `prop_assert*`, [`strategy::Strategy`] with `prop_map` /
//! `prop_filter` / `prop_recursive`, [`prop_oneof!`], [`strategy::Just`],
//! [`arbitrary::any`], numeric range strategies, tuple strategies and
//! [`collection::vec`].
//!
//! Differences from upstream: no shrinking (failures report the raw
//! counterexample via the panic message), rejection sampling for
//! `prop_filter` is capped, and case counts default to 64. Generation is
//! fully deterministic per test (seeded by the test's name), so failures
//! reproduce across runs.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration and the deterministic generation RNG.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Subset of proptest's config: the number of generated cases.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generation RNG, seeded from the property name.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A generator whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the property name keeps failures reproducible.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeFrom, RangeInclusive};
    use std::rc::Rc;
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `f` (bounded rejection sampling).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }

        /// Builds a bounded-depth recursive strategy: at every level the
        /// result is a fair union of the leaf strategy and `recurse`
        /// applied to the previous level.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                cur = Union::new(vec![leaf.clone(), recurse(cur).boxed()]).boxed();
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(move |rng| self.new_value(rng)))
        }
    }

    /// A cloneable type-erased strategy.
    pub struct BoxedStrategy<V>(Arc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 consecutive samples",
                self.whence
            );
        }
    }

    /// A fair union of same-typed strategies ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<V> Union<V> {
        /// A union choosing uniformly among `arms`.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    (self.start..=<$t>::MAX).new_value(rng)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);

    // Rc only exists here to silence the unused-import lint gracefully if
    // future combinators need shared ownership without atomics.
    #[allow(dead_code)]
    type _Unused = Rc<()>;
}

pub mod arbitrary {
    //! `any::<T>()` — whole-domain strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        /// Arbitrary bit patterns — includes NaNs and infinities.
        fn arbitrary(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        /// Arbitrary bit patterns — includes NaNs and infinities.
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct AnyStrategy<A>(PhantomData<A>);

    impl<A> Clone for AnyStrategy<A> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `A`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A `Vec` of `element`-generated values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob import the test suites use.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure; no
/// shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// A fair union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let strategies = ($($strat,)+);
            for _case in 0..config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::new_value(&strategies, &mut rng);
                $body
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}
