//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, and the workspace only
//! uses serde as derive-annotation surface (no serializer is ever
//! invoked). The shim provides blanket-implemented marker traits so
//! `T: Serialize` bounds hold for every type, and re-exports the no-op
//! derive macros under the conventional names.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`; blanket-implemented.
pub trait DeserializeOwned {}
impl<T> DeserializeOwned for T {}
