//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the criterion API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of statistical sampling the shim times `sample_size`
//! batched runs of the closure and prints min/mean per-iteration
//! wall-clock times — enough to compare configurations by hand.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly, recording per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration outside timing.
        black_box(f());
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed().as_secs_f64());
    }
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

fn run_samples(label: &str, sample_size: usize, mut body: impl FnMut(&mut Bencher)) {
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher::default();
        body(&mut b);
        samples.extend(b.samples);
    }
    if samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{label}: mean {:.3} ms, min {:.3} ms ({} samples)",
        mean * 1e3,
        min * 1e3,
        samples.len()
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `body` under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_samples(
            &format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            body,
        );
        self
    }

    /// Benchmarks `body` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_samples(
            &format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            |b| body(b, input),
        );
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(&mut self, name: &str, body: impl FnMut(&mut Bencher)) -> &mut Self {
        run_samples(name, self.sample_size, body);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Finalizes the run (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group: either `criterion_group!(name, targets...)`
/// or the struct form with an explicit `config` constructor.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `fn main()` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
