//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the *subset* of `rand` 0.8 it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`]. The generator is a SplitMix64 stream — a different
//! algorithm than upstream `StdRng` (ChaCha12), but equally deterministic
//! for a given seed on every platform, which is the only property the
//! workspace relies on (no golden values are baked against upstream
//! `rand` output).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from their full value domain (the shim's
/// equivalent of sampling from `rand`'s `Standard` distribution).
pub trait UniformSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeFrom<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                (self.start..=<$t>::MAX).sample_from(rng)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// u128 spans do not fit the macro's i128 arithmetic, so the half-open
// range gets a dedicated impl built from two 64-bit draws. That is the
// only u128 shape the workspace samples (site indices in `sample_sites`).
impl SampleRange<u128> for Range<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start + raw % span
    }
}

/// High-level sampling interface, mirroring the parts of `rand::Rng` the
/// workspace uses.
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's full domain (`[0, 1)` for
    /// floats).
    fn gen<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's pinned deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_are_contained() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f32 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let n: i32 = r.gen_range(-16..16);
            assert!((-16..16).contains(&n));
            let m: u32 = r.gen_range(4_000_000_000..);
            assert!(m >= 4_000_000_000);
        }
    }

    #[test]
    fn u128_ranges_are_contained_and_deterministic() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let wide = 1u128 << 90;
        for _ in 0..1000 {
            let lo = 5u128;
            let x = a.gen_range(lo..wide);
            assert!((lo..wide).contains(&x));
            assert_eq!(x, b.gen_range(lo..wide));
            assert_eq!(a.gen_range(9u128..10), 9);
            assert_eq!(b.gen_range(9u128..10), 9);
        }
    }

    #[test]
    fn covers_the_range() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
