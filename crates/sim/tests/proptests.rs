//! Property tests for the simulator substrate: allocator invariants,
//! cache behaviour, coalescing and end-to-end execution determinism on
//! randomly generated straight-line kernels.

use proptest::prelude::*;
use simt_isa::{lower, KernelBuilder, MemSpace};
use simt_sim::mem::count_segments;
use simt_sim::regfile::RegionAllocator;
use simt_sim::{ArchConfig, Cache, CacheGeom, Gpu, LaunchConfig};

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(u32),
    FreeNth(usize),
}

fn alloc_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    proptest::collection::vec(
        prop_oneof![
            (1u32..64).prop_map(AllocOp::Alloc),
            any::<usize>().prop_map(AllocOp::FreeNth),
        ],
        1..60,
    )
}

proptest! {
    /// The allocator never double-books words, keeps its byte accounting
    /// exact, and recovers full capacity after everything is freed.
    #[test]
    fn region_allocator_invariants(ops in alloc_ops()) {
        let capacity = 256u32;
        let mut a = RegionAllocator::new(capacity);
        let mut live: Vec<(u32, u32)> = Vec::new();
        let mut expected = 0u32;
        for op in ops {
            match op {
                AllocOp::Alloc(len) => {
                    if let Some(start) = a.alloc(len) {
                        // No overlap with any live region.
                        for &(s, l) in &live {
                            prop_assert!(start + len <= s || s + l <= start,
                                "overlap: new ({start},{len}) vs ({s},{l})");
                        }
                        prop_assert!(start + len <= capacity);
                        live.push((start, len));
                        expected += len;
                    }
                }
                AllocOp::FreeNth(i) => {
                    if !live.is_empty() {
                        let (s, l) = live.remove(i % live.len());
                        a.free(s, l);
                        expected -= l;
                    }
                }
            }
            prop_assert_eq!(a.allocated(), expected);
        }
        for (s, l) in live.drain(..) {
            a.free(s, l);
        }
        prop_assert_eq!(a.allocated(), 0);
        prop_assert_eq!(a.alloc(capacity), Some(0), "capacity recovered");
    }

    /// Cache hit+miss count equals accesses, and re-touching the same
    /// address twice in a row always hits the second time.
    #[test]
    fn cache_accounting(addrs in proptest::collection::vec(any::<u32>(), 1..200)) {
        let mut c = Cache::new(CacheGeom { bytes: 1024, line_bytes: 64, assoc: 2 });
        for &a in &addrs {
            let _ = c.access(a);
            prop_assert!(c.access(a), "immediate re-access must hit");
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, addrs.len() as u64 * 2);
        prop_assert!(s.hits >= addrs.len() as u64);
    }

    /// Coalescing counts are bounded by lane count and by the address
    /// span, and are permutation-invariant.
    #[test]
    fn coalescing_bounds(mut addrs in proptest::collection::vec(0u32..100_000, 1..64)) {
        let segs = count_segments(&addrs, 128);
        prop_assert!(segs >= 1);
        prop_assert!(segs <= addrs.len() as u32);
        let lo = addrs.iter().min().unwrap() / 128;
        let hi = addrs.iter().max().unwrap() / 128;
        prop_assert!(segs <= hi - lo + 1);
        addrs.reverse();
        prop_assert_eq!(count_segments(&addrs, 128), segs, "order-invariant");
    }
}

/// Random arithmetic expression kernel: out[i] = f(i) for a random f
/// composed of ALU ops; checks device-vs-host agreement and determinism.
fn random_alu_program() -> impl Strategy<Value = Vec<(u8, u32)>> {
    proptest::collection::vec((0u8..6, any::<u32>()), 1..20)
}

fn apply_host(ops: &[(u8, u32)], mut v: u32) -> u32 {
    for &(op, imm) in ops {
        v = match op {
            0 => v.wrapping_add(imm),
            1 => v.wrapping_sub(imm),
            2 => v.wrapping_mul(imm | 1),
            3 => v ^ imm,
            4 => v | imm,
            _ => v.wrapping_shl(imm & 7),
        };
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulator computes exactly what the host computes for any
    /// random straight-line integer program, on both vendor styles.
    #[test]
    fn random_programs_agree_with_host(ops in random_alu_program()) {
        let mut kb = KernelBuilder::new("rand_alu", 1);
        let out = kb.param(0);
        let gid = kb.vreg();
        let v = kb.vreg();
        let addr = kb.vreg();
        kb.global_tid_x(gid);
        kb.mov(v, gid);
        for &(op, imm) in &ops {
            match op {
                0 => kb.iadd(v, v, imm),
                1 => kb.isub(v, v, imm),
                2 => kb.imul(v, v, imm | 1),
                3 => kb.xor(v, v, imm),
                4 => kb.or(v, v, imm),
                _ => kb.shl(v, v, imm & 7),
            };
        }
        kb.word_addr(addr, out, gid);
        kb.st(MemSpace::Global, addr, v);
        kb.exit();
        let k = kb.build().unwrap();

        for arch in [ArchConfig::small_test_gpu(), ArchConfig::small_test_gpu_scalar()] {
            let lowered = lower(&k, arch.caps()).unwrap();
            let mut gpu = Gpu::new(arch);
            let buf = gpu.alloc_words(64);
            gpu.launch(&lowered, LaunchConfig::linear(4, 16), &[buf.addr()])
                .unwrap();
            let words = gpu.read_words(buf, 64);
            for (i, w) in words.iter().enumerate() {
                prop_assert_eq!(*w, apply_host(&ops, i as u32), "thread {}", i);
            }
        }
    }

    /// Timing and instruction counts are identical across repeated runs.
    #[test]
    fn execution_is_deterministic(seed in any::<u32>()) {
        let mut kb = KernelBuilder::new("det", 1);
        let out = kb.param(0);
        let gid = kb.vreg();
        let addr = kb.vreg();
        kb.global_tid_x(gid);
        kb.xor(gid, gid, seed);
        kb.word_addr(addr, out, gid);
        kb.exit();
        let k = kb.build().unwrap();
        let arch = ArchConfig::small_test_gpu();
        let lowered = lower(&k, arch.caps()).unwrap();
        let run = |arch: &ArchConfig| {
            let mut gpu = Gpu::new(arch.clone());
            let buf = gpu.alloc_words(64);
            let st = gpu
                .launch(&lowered, LaunchConfig::linear(4, 16), &[buf.addr()])
                .unwrap();
            (st.cycles, st.warp_instructions, st.thread_instructions)
        };
        prop_assert_eq!(run(&arch), run(&arch));
    }
}
