//! Integration tests for execution semantics on the small test device:
//! divergence, loops, barriers, shared memory, atomics, scalar pipe,
//! failure modes and timing-model sanity.

use simt_isa::{lower, AtomOp, CmpOp, KernelBuilder, LoweredKernel, MemSpace, Special};
use simt_sim::{ArchConfig, Due, Gpu, LaunchConfig, SchedulerPolicy, SimError};

fn nv() -> ArchConfig {
    ArchConfig::small_test_gpu()
}

fn si() -> ArchConfig {
    ArchConfig::small_test_gpu_scalar()
}

fn build(arch: &ArchConfig, f: impl FnOnce(&mut KernelBuilder)) -> LoweredKernel {
    let mut kb = KernelBuilder::new("t", 1);
    f(&mut kb);
    lower(&kb.build().unwrap(), arch.caps()).unwrap()
}

/// out[i] = tid odd ? 3*tid : 2*tid, via a divergent if/else.
#[test]
fn divergent_if_else_per_lane() {
    for arch in [nv(), si()] {
        let k = build(&arch, |kb| {
            let out = kb.param(0);
            let gid = kb.vreg();
            let v = kb.vreg();
            let addr = kb.vreg();
            let odd = kb.preg();
            kb.global_tid_x(gid);
            kb.and(v, gid, 1u32);
            kb.isetp(CmpOp::Eq, odd, v, 1u32);
            kb.if_begin(odd);
            kb.imul(v, gid, 3u32);
            kb.else_();
            kb.imul(v, gid, 2u32);
            kb.if_end();
            kb.word_addr(addr, out, gid);
            kb.st(MemSpace::Global, addr, v);
            kb.exit();
        });
        let mut gpu = Gpu::new(arch.clone());
        let buf = gpu.alloc_words(32);
        gpu.launch(&k, LaunchConfig::linear(2, 16), &[buf.addr()])
            .unwrap();
        for (i, w) in gpu.read_words(buf, 32).into_iter().enumerate() {
            let expect = if i % 2 == 1 { 3 * i } else { 2 * i } as u32;
            assert_eq!(w, expect, "thread {i} on {}", arch.name);
        }
    }
}

/// Each thread loops tid times accumulating, exercising per-lane trip
/// counts (maximum divergence inside a loop).
#[test]
fn data_dependent_loop_trip_counts() {
    for arch in [nv(), si()] {
        let k = build(&arch, |kb| {
            let out = kb.param(0);
            let gid = kb.vreg();
            let acc = kb.vreg();
            let i = kb.vreg();
            let addr = kb.vreg();
            let done = kb.preg();
            kb.global_tid_x(gid);
            kb.mov(acc, 0u32);
            kb.mov(i, 0u32);
            kb.loop_begin();
            kb.isetp(CmpOp::UGe, done, i, gid);
            kb.brk(done);
            kb.iadd(acc, acc, i);
            kb.iadd(i, i, 1u32);
            kb.loop_end();
            kb.word_addr(addr, out, gid);
            kb.st(MemSpace::Global, addr, acc);
            kb.exit();
        });
        let mut gpu = Gpu::new(arch.clone());
        let buf = gpu.alloc_words(16);
        gpu.launch(&k, LaunchConfig::linear(1, 16), &[buf.addr()])
            .unwrap();
        for (t, w) in gpu.read_words(buf, 16).into_iter().enumerate() {
            // sum 0..t = t(t-1)/2
            assert_eq!(
                w as usize,
                t * t.saturating_sub(1) / 2,
                "thread {t} on {}",
                arch.name
            );
        }
    }
}

/// Producer/consumer through shared memory across a barrier: thread i
/// reads the value thread (i+1) mod n wrote.
#[test]
fn barrier_orders_shared_memory() {
    for arch in [nv(), si()] {
        let k = build(&arch, |kb| {
            let out = kb.param(0);
            kb.shared(512);
            let tid = kb.vreg();
            let v = kb.vreg();
            let addr = kb.vreg();
            kb.mov(tid, Special::TidX);
            kb.shl_imm(addr, tid, 2);
            kb.imul(v, tid, 7u32);
            kb.st(MemSpace::Shared, addr, v);
            kb.bar();
            // read neighbour (tid+1) % ntid
            kb.iadd(v, tid, 1u32);
            kb.urem(v, v, Special::NTidX);
            kb.shl_imm(addr, v, 2);
            kb.ld(MemSpace::Shared, v, addr);
            kb.word_addr(addr, out, tid);
            kb.st(MemSpace::Global, addr, v);
            kb.exit();
        });
        let mut gpu = Gpu::new(arch.clone());
        let buf = gpu.alloc_words(32);
        gpu.launch(&k, LaunchConfig::linear(1, 32), &[buf.addr()])
            .unwrap();
        for (t, w) in gpu.read_words(buf, 32).into_iter().enumerate() {
            assert_eq!(
                w as usize,
                ((t + 1) % 32) * 7,
                "thread {t} on {}",
                arch.name
            );
        }
    }
}

/// Global atomics from many blocks produce an exact total.
#[test]
fn global_atomics_are_exact() {
    let arch = nv();
    let k = build(&arch, |kb| {
        let out = kb.param(0);
        let old = kb.vreg();
        kb.atom(MemSpace::Global, AtomOp::Add, old, out, 1u32);
        kb.exit();
    });
    let mut gpu = Gpu::new(arch);
    let buf = gpu.alloc_words(1);
    gpu.launch(&k, LaunchConfig::linear(8, 16), &[buf.addr()])
        .unwrap();
    assert_eq!(gpu.read_words(buf, 1)[0], 128);
}

/// Shared atomic max across a block.
#[test]
fn shared_atomic_max() {
    let arch = si();
    let k = build(&arch, |kb| {
        let out = kb.param(0);
        kb.shared(4);
        let tid = kb.vreg();
        let old = kb.vreg();
        let addr = kb.vreg();
        let zero = kb.preg();
        kb.mov(tid, Special::TidX);
        kb.atom(MemSpace::Shared, AtomOp::Max, old, 0u32, tid);
        kb.bar();
        kb.isetp(CmpOp::Eq, zero, tid, 0u32);
        kb.if_begin(zero);
        kb.ld(MemSpace::Shared, old, 0u32);
        kb.mov(addr, out);
        kb.st(MemSpace::Global, addr, old);
        kb.if_end();
        kb.exit();
    });
    let mut gpu = Gpu::new(arch);
    let buf = gpu.alloc_words(1);
    gpu.launch(&k, LaunchConfig::linear(1, 16), &[buf.addr()])
        .unwrap();
    assert_eq!(gpu.read_words(buf, 1)[0], 15);
}

/// Shared out-of-bounds access raises a DUE naming the SM.
#[test]
fn shared_oob_is_due() {
    let arch = nv();
    let k = build(&arch, |kb| {
        let _ = kb.param(0);
        kb.shared(16);
        let v = kb.vreg();
        kb.ld(MemSpace::Shared, v, 64u32); // 16-byte region, offset 64
        kb.exit();
    });
    let mut gpu = Gpu::new(arch);
    let buf = gpu.alloc_words(1);
    let err = gpu
        .launch(&k, LaunchConfig::linear(1, 8), &[buf.addr()])
        .unwrap_err();
    assert!(
        matches!(err, SimError::Due(Due::SharedOutOfBounds { addr: 64, .. })),
        "{err}"
    );
}

/// Misaligned global access raises a DUE.
#[test]
fn misaligned_global_is_due() {
    let arch = nv();
    let k = build(&arch, |kb| {
        let out = kb.param(0);
        let v = kb.vreg();
        let addr = kb.vreg();
        kb.iadd(addr, out, 2u32); // not 4-byte aligned
        kb.ld(MemSpace::Global, v, addr);
        kb.exit();
    });
    let mut gpu = Gpu::new(arch);
    let buf = gpu.alloc_words(4);
    let err = gpu
        .launch(&k, LaunchConfig::linear(1, 8), &[buf.addr()])
        .unwrap_err();
    assert!(
        matches!(err, SimError::Due(Due::MisalignedAccess { .. })),
        "{err}"
    );
}

/// An infinite loop trips the watchdog instead of hanging the host.
#[test]
fn infinite_loop_hits_watchdog() {
    let arch = nv();
    let k = build(&arch, |kb| {
        let _ = kb.param(0);
        let v = kb.vreg();
        let never = kb.preg();
        kb.mov(v, 1u32);
        kb.isetp(CmpOp::Eq, never, v, 0u32); // always false
        kb.loop_begin();
        kb.brk(never);
        kb.iadd(v, v, 1u32);
        kb.loop_end();
        kb.exit();
    });
    let mut gpu = Gpu::new(arch);
    let buf = gpu.alloc_words(1);
    gpu.set_watchdog(5_000);
    let err = gpu
        .launch(&k, LaunchConfig::linear(1, 8), &[buf.addr()])
        .unwrap_err();
    assert!(
        matches!(err, SimError::Due(Due::WatchdogTimeout { limit: 5000 })),
        "{err}"
    );
}

/// A barrier reached under divergence (half the warp) is a DUE.
#[test]
fn divergent_barrier_is_due() {
    let arch = nv();
    let k = build(&arch, |kb| {
        let _ = kb.param(0);
        kb.shared(16);
        let v = kb.vreg();
        let half = kb.preg();
        kb.mov(v, Special::TidX);
        kb.isetp(CmpOp::ULt, half, v, 4u32);
        kb.if_begin(half);
        kb.bar(); // only lanes 0..4 of the 8-wide warp arrive
        kb.if_end();
        kb.exit();
    });
    let mut gpu = Gpu::new(arch);
    let buf = gpu.alloc_words(1);
    let err = gpu
        .launch(&k, LaunchConfig::linear(1, 8), &[buf.addr()])
        .unwrap_err();
    assert!(
        matches!(err, SimError::Due(Due::BarrierDivergence { .. })),
        "{err}"
    );
}

/// The scalar pipe really executes once per warp: a scalar atomic-like
/// accumulation via sreg arithmetic is warp-wide, not lane-wide.
#[test]
fn scalar_ops_execute_once_per_warp() {
    let arch = si();
    let k = build(&arch, |kb| {
        let out = kb.param(0);
        let s = kb.sreg();
        let v = kb.vreg();
        let addr = kb.vreg();
        let first = kb.preg();
        kb.mov(s, 5u32);
        kb.iadd(s, s, 1u32); // once per warp -> 6, not 6+lanes
        kb.mov(v, s);
        kb.isetp(CmpOp::Eq, first, Special::TidX, 0u32);
        kb.if_begin(first);
        kb.mov(addr, out);
        kb.st(MemSpace::Global, addr, v);
        kb.if_end();
        kb.exit();
    });
    let mut gpu = Gpu::new(arch.clone());
    let buf = gpu.alloc_words(1);
    let stats = gpu
        .launch(&k, LaunchConfig::linear(1, 16), &[buf.addr()])
        .unwrap();
    assert_eq!(gpu.read_words(buf, 1)[0], 6);
    assert!(stats.scalar_instructions >= 2, "scalar pipe used");
}

/// Cold-vs-warm cache effect: the second identical launch on a cached
/// device is not slower (flushes make it equal), while repeated access
/// within one launch benefits.
#[test]
fn cache_reduces_repeat_access_latency() {
    let arch = nv(); // has L1+L2
                     // Kernel loads the same word 4 times (dependent chain).
    let k = build(&arch, |kb| {
        let out = kb.param(0);
        let v = kb.vreg();
        let addr = kb.vreg();
        kb.mov(addr, out);
        for _ in 0..4 {
            kb.ld(MemSpace::Global, v, addr);
        }
        kb.exit();
    });
    let mut gpu = Gpu::new(arch.clone());
    let buf = gpu.alloc_words(1);
    gpu.launch(&k, LaunchConfig::linear(1, 8), &[buf.addr()])
        .unwrap();
    let stats = gpu.l1_stats();
    assert_eq!(stats.hits, 3, "three of four loads hit the L1");

    // The same kernel on an uncached device has no hits anywhere.
    let mut uncached = nv();
    uncached.l1 = None;
    uncached.l2 = None;
    let k2 = build(&uncached, |kb| {
        let out = kb.param(0);
        let v = kb.vreg();
        let addr = kb.vreg();
        kb.mov(addr, out);
        for _ in 0..4 {
            kb.ld(MemSpace::Global, v, addr);
        }
        kb.exit();
    });
    let mut gpu2 = Gpu::new(uncached);
    let buf2 = gpu2.alloc_words(1);
    gpu2.launch(&k2, LaunchConfig::linear(1, 8), &[buf2.addr()])
        .unwrap();
    assert!(
        gpu2.app_cycle() > gpu.app_cycle(),
        "uncached repeats cost more"
    );
}

/// GTO and LRR schedules produce identical results but may differ in
/// cycles; both must be deterministic.
#[test]
fn schedulers_agree_on_results() {
    let mk = |policy| {
        let mut arch = nv();
        arch.scheduler = policy;
        arch
    };
    let run = |arch: ArchConfig| {
        let k = build(&arch, |kb| {
            let out = kb.param(0);
            let gid = kb.vreg();
            let v = kb.vreg();
            let addr = kb.vreg();
            kb.global_tid_x(gid);
            kb.imul(v, gid, 3u32);
            kb.word_addr(addr, out, gid);
            kb.st(MemSpace::Global, addr, v);
            kb.exit();
        });
        let mut gpu = Gpu::new(arch);
        let buf = gpu.alloc_words(64);
        gpu.launch(&k, LaunchConfig::linear(4, 16), &[buf.addr()])
            .unwrap();
        (gpu.read_words(buf, 64), gpu.app_cycle())
    };
    let (out_lrr, _c1) = run(mk(SchedulerPolicy::Lrr));
    let (out_gto, _c2) = run(mk(SchedulerPolicy::Gto));
    assert_eq!(out_lrr, out_gto);
}

/// Partial last warp: a block of 13 threads on an 8-wide warp machine
/// runs 2 warps, one partial, and only live lanes store.
#[test]
fn partial_warps_store_only_live_lanes() {
    let arch = nv();
    let k = build(&arch, |kb| {
        let out = kb.param(0);
        let gid = kb.vreg();
        let addr = kb.vreg();
        kb.global_tid_x(gid);
        kb.word_addr(addr, out, gid);
        kb.st(MemSpace::Global, addr, 0xabcdu32);
        kb.exit();
    });
    let mut gpu = Gpu::new(arch);
    let buf = gpu.alloc_words(16);
    gpu.launch(&k, LaunchConfig::linear(1, 13), &[buf.addr()])
        .unwrap();
    let words = gpu.read_words(buf, 16);
    for (i, w) in words.iter().enumerate() {
        if i < 13 {
            assert_eq!(*w, 0xabcd, "live thread {i}");
        } else {
            assert_eq!(*w, 0, "no thread {i} exists");
        }
    }
}

/// 2-D grids and blocks: each thread writes its (x, y) coordinates.
#[test]
fn two_dimensional_launch_geometry() {
    let arch = nv();
    let k = build(&arch, |kb| {
        let out = kb.param(0);
        let x = kb.vreg();
        let y = kb.vreg();
        let idx = kb.vreg();
        let v = kb.vreg();
        kb.global_tid_x(x);
        kb.global_tid_y(y);
        // idx = y * (total width = 8) + x ; value = y*256 + x
        kb.imul(idx, y, 8u32);
        kb.iadd(idx, idx, x);
        kb.imul(v, y, 256u32);
        kb.iadd(v, v, x);
        kb.word_addr(idx, out, idx);
        kb.st(MemSpace::Global, idx, v);
        kb.exit();
    });
    let mut gpu = Gpu::new(arch);
    let buf = gpu.alloc_words(64);
    gpu.launch(
        &k,
        LaunchConfig::new(simt_sim::Dim::new(2, 2), simt_sim::Dim::new(4, 4)),
        &[buf.addr()],
    )
    .unwrap();
    let words = gpu.read_words(buf, 64);
    for y in 0..8u32 {
        for x in 0..8u32 {
            assert_eq!(words[(y * 8 + x) as usize], y * 256 + x, "({x},{y})");
        }
    }
}

/// More blocks than the device can hold at once: dispatch proceeds in
/// waves and every block still runs exactly once.
#[test]
fn block_waves_when_oversubscribed() {
    let arch = nv(); // 2 SMs x 4 block slots x 16 warp slots
    let k = build(&arch, |kb| {
        let out = kb.param(0);
        let old = kb.vreg();
        let first = kb.preg();
        kb.isetp(CmpOp::Eq, first, Special::TidX, 0u32);
        kb.if_begin(first);
        kb.atom(MemSpace::Global, AtomOp::Add, old, out, 1u32);
        kb.if_end();
        kb.exit();
    });
    let mut gpu = Gpu::new(arch);
    let buf = gpu.alloc_words(1);
    // 64 blocks >> 2 SMs * 4 slots.
    let stats = gpu
        .launch(&k, LaunchConfig::linear(64, 8), &[buf.addr()])
        .unwrap();
    assert_eq!(stats.blocks, 64);
    assert_eq!(gpu.read_words(buf, 1)[0], 64, "each block bumped once");
}

/// LDS-hungry blocks limit residency but still all complete.
#[test]
fn lds_limits_residency_not_completion() {
    let arch = nv(); // 4 KiB LDS per SM
    let k = build(&arch, |kb| {
        let out = kb.param(0);
        kb.shared(4096); // one block consumes the whole LDS
        let tid4 = kb.vreg();
        let v = kb.vreg();
        let addr = kb.vreg();
        kb.shl_imm(tid4, Special::TidX, 2);
        kb.imul(v, Special::TidX, 3u32);
        kb.st(MemSpace::Shared, tid4, v);
        kb.bar();
        kb.ld(MemSpace::Shared, v, tid4);
        kb.mov(addr, Special::CtaIdX);
        kb.imul(addr, addr, 32u32);
        kb.iadd(addr, addr, tid4);
        kb.iadd(addr, addr, out);
        kb.st(MemSpace::Global, addr, v);
        kb.exit();
    });
    let mut gpu = Gpu::new(arch);
    let buf = gpu.alloc_words(6 * 8);
    let stats = gpu
        .launch(&k, LaunchConfig::linear(6, 8), &[buf.addr()])
        .unwrap();
    assert_eq!(stats.blocks, 6);
    let words = gpu.read_words(buf, 48);
    for b in 0..6 {
        for t in 0..8 {
            assert_eq!(words[b * 8 + t], (t * 3) as u32, "block {b} thread {t}");
        }
    }
}

/// Memory written by one launch is visible to the next (multi-kernel
/// workloads depend on this).
#[test]
fn global_memory_persists_across_launches() {
    let arch = nv();
    let writer = build(&arch, |kb| {
        let out = kb.param(0);
        let gid = kb.vreg();
        let addr = kb.vreg();
        kb.global_tid_x(gid);
        kb.word_addr(addr, out, gid);
        kb.st(MemSpace::Global, addr, gid);
        kb.exit();
    });
    let doubler = build(&arch, |kb| {
        let out = kb.param(0);
        let gid = kb.vreg();
        let v = kb.vreg();
        let addr = kb.vreg();
        kb.global_tid_x(gid);
        kb.word_addr(addr, out, gid);
        kb.ld(MemSpace::Global, v, addr);
        kb.shl_imm(v, v, 1);
        kb.st(MemSpace::Global, addr, v);
        kb.exit();
    });
    let mut gpu = Gpu::new(arch);
    let buf = gpu.alloc_words(16);
    gpu.launch(&writer, LaunchConfig::linear(2, 8), &[buf.addr()])
        .unwrap();
    gpu.launch(&doubler, LaunchConfig::linear(2, 8), &[buf.addr()])
        .unwrap();
    let words = gpu.read_words(buf, 16);
    for (i, w) in words.iter().enumerate() {
        assert_eq!(*w as usize, 2 * i);
    }
    assert_eq!(gpu.launches(), 2);
}

/// Registers are zeroed between launches: a kernel that reads an
/// uninitialized register sees 0 even after a dirty previous launch.
#[test]
fn registers_zeroed_between_launches() {
    let arch = nv();
    let dirty = build(&arch, |kb| {
        let _ = kb.param(0);
        let v = kb.vreg();
        kb.mov(v, 0xdeadu32);
        kb.exit();
    });
    let reader = build(&arch, |kb| {
        let out = kb.param(0);
        let v = kb.vreg(); // never written: reads the zeroed file
        let addr = kb.vreg();
        kb.mov(addr, out);
        kb.st(MemSpace::Global, addr, v);
        kb.exit();
    });
    let mut gpu = Gpu::new(arch);
    let buf = gpu.alloc_words(1);
    gpu.launch(&dirty, LaunchConfig::linear(1, 8), &[buf.addr()])
        .unwrap();
    gpu.launch(&reader, LaunchConfig::linear(1, 8), &[buf.addr()])
        .unwrap();
    assert_eq!(gpu.read_words(buf, 1)[0], 0);
}

/// The counting observer sees a consistent event stream: every vector
/// write has a matching event, LDS-free kernels emit no LDS events, and
/// block/launch counts match the launch stats.
#[test]
fn counting_observer_totals_are_consistent() {
    use simt_sim::CountingObserver;
    let arch = nv();
    let k = build(&arch, |kb| {
        let out = kb.param(0);
        let gid = kb.vreg();
        let addr = kb.vreg();
        kb.global_tid_x(gid);
        kb.word_addr(addr, out, gid);
        kb.st(MemSpace::Global, addr, gid);
        kb.exit();
    });
    let mut gpu = Gpu::new(arch);
    let buf = gpu.alloc_words(32);
    let mut counts = CountingObserver::default();
    let stats = gpu
        .launch_observed(&k, LaunchConfig::linear(4, 8), &[buf.addr()], &mut counts)
        .unwrap();
    assert_eq!(counts.launches, 1);
    assert_eq!(counts.blocks as u32, stats.blocks);
    assert_eq!(
        counts.lds_writes + counts.lds_reads,
        0,
        "no LDS in this kernel"
    );
    // Params fold to vector registers on the NV-style device: each of the
    // 32 threads gets a param write plus gid/addr writes.
    assert!(counts.rf_writes >= 3 * 32);
    assert!(counts.rf_reads > 0);
    assert_eq!(counts.faults, 0);
}
