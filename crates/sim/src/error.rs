//! Simulation errors: launch-time failures and detected unrecoverable
//! errors (DUEs).

use std::error::Error;
use std::fmt;

/// A *detected unrecoverable error* — the failure class a fault-injection
/// campaign records when a bit flip crashes or hangs the workload instead
/// of (or in addition to) corrupting its output.
///
/// # Example
/// ```
/// use simt_sim::Due;
/// let d = Due::GlobalOutOfBounds { addr: 0x10, sm: 0, cycle: 42 };
/// assert!(d.to_string().contains("out-of-bounds"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Due {
    /// A global-memory access touched an unallocated or null-guard address.
    GlobalOutOfBounds {
        /// Faulting byte address.
        addr: u32,
        /// SM that issued the access.
        sm: u32,
        /// Device cycle of the access.
        cycle: u64,
    },
    /// A global-memory access was not 4-byte aligned.
    MisalignedAccess {
        /// Faulting byte address.
        addr: u32,
        /// SM that issued the access.
        sm: u32,
        /// Device cycle of the access.
        cycle: u64,
    },
    /// A shared-memory access fell outside the block's LDS allocation.
    SharedOutOfBounds {
        /// Faulting byte address (block-relative).
        addr: u32,
        /// SM that issued the access.
        sm: u32,
        /// Device cycle of the access.
        cycle: u64,
    },
    /// A warp reached `bar.sync` with partial divergence (undefined
    /// behaviour on real devices; typically a hang).
    BarrierDivergence {
        /// SM of the offending warp.
        sm: u32,
        /// Device cycle.
        cycle: u64,
    },
    /// The launch exceeded its watchdog cycle budget (hang / livelock).
    WatchdogTimeout {
        /// Cycle budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for Due {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Due::GlobalOutOfBounds { addr, sm, cycle } => write!(
                f,
                "out-of-bounds global access at 0x{addr:x} (sm {sm}, cycle {cycle})"
            ),
            Due::MisalignedAccess { addr, sm, cycle } => write!(
                f,
                "misaligned global access at 0x{addr:x} (sm {sm}, cycle {cycle})"
            ),
            Due::SharedOutOfBounds { addr, sm, cycle } => write!(
                f,
                "out-of-bounds shared access at 0x{addr:x} (sm {sm}, cycle {cycle})"
            ),
            Due::BarrierDivergence { sm, cycle } => {
                write!(f, "divergent barrier (sm {sm}, cycle {cycle})")
            }
            Due::WatchdogTimeout { limit } => {
                write!(f, "watchdog timeout after {limit} cycles")
            }
        }
    }
}

impl Error for Due {}

/// Errors returned by [`crate::Gpu`] entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The launch terminated with a detected unrecoverable error.
    Due(Due),
    /// The kernel cannot run on this device (resource overflow or
    /// capability mismatch).
    LaunchConfig {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Due(d) => write!(f, "detected unrecoverable error: {d}"),
            SimError::LaunchConfig { reason } => write!(f, "invalid launch: {reason}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Due(d) => Some(d),
            SimError::LaunchConfig { .. } => None,
        }
    }
}

impl From<Due> for SimError {
    fn from(d: Due) -> Self {
        SimError::Due(d)
    }
}

impl SimError {
    /// The DUE payload, if this error is one.
    ///
    /// # Example
    /// ```
    /// use simt_sim::{Due, SimError};
    /// let e = SimError::from(Due::WatchdogTimeout { limit: 10 });
    /// assert!(e.as_due().is_some());
    /// ```
    pub fn as_due(&self) -> Option<Due> {
        match self {
            SimError::Due(d) => Some(*d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: SimError = Due::BarrierDivergence { sm: 1, cycle: 9 }.into();
        assert!(e.to_string().contains("divergent barrier"));
        assert!(e.source().is_some());
        let c = SimError::LaunchConfig {
            reason: "too many warps".into(),
        };
        assert!(c.to_string().contains("too many warps"));
        assert!(c.source().is_none());
        assert!(c.as_due().is_none());
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
        assert_err::<Due>();
    }
}
