//! Architecture configuration: the knobs that differentiate the four
//! modelled GPU designs.

use crate::cache::CacheGeom;
use serde::{Deserialize, Serialize};
use simt_isa::ArchCaps;

/// GPU vendor family (decides the programming-model terminology only; all
/// behavioural differences are explicit [`ArchConfig`] fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// NVIDIA (G80 / GT200 / Fermi in the study).
    Nvidia,
    /// AMD (Southern Islands in the study).
    Amd,
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Vendor::Nvidia => "NVIDIA",
            Vendor::Amd => "AMD",
        })
    }
}

/// Warp scheduling policy of an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Loose round-robin: rotate through warp slots, issue the first ready
    /// warp after the last issued one.
    Lrr,
    /// Greedy-then-oldest: keep issuing the same warp until it stalls, then
    /// fall back to the oldest ready warp.
    Gto,
}

/// Instruction and memory latencies, in SM cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Latencies {
    /// Simple integer / logic / move ALU result latency.
    pub alu: u32,
    /// Integer multiply / divide class latency.
    pub imul: u32,
    /// Float add/mul/fma latency.
    pub fp: u32,
    /// Special-function unit latency (sqrt, rcp, exp2, log2, fdiv).
    pub sfu: u32,
    /// Shared-memory (LDS) access latency.
    pub lds: u32,
    /// L1 hit latency.
    pub l1_hit: u32,
    /// L2 hit latency.
    pub l2_hit: u32,
    /// DRAM access latency.
    pub dram: u32,
    /// Extra cycles per additional memory transaction of an uncoalesced
    /// warp access.
    pub mem_serialize: u32,
}

/// Complete description of one GPU design.
///
/// The four devices of the study are constructed by the `gpu-archs` crate;
/// [`ArchConfig::small_test_gpu`] provides a tiny configuration for unit
/// tests.
///
/// # Example
/// ```
/// use simt_sim::ArchConfig;
/// let a = ArchConfig::small_test_gpu();
/// assert!(a.rf_words_per_sm() > 0);
/// assert_eq!(a.caps().warp_size, a.warp_size);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Marketing name of the device (e.g. `GeForce GTX 480`).
    pub name: String,
    /// Microarchitecture name (e.g. `Fermi`).
    pub microarch: String,
    /// Vendor family.
    pub vendor: Vendor,
    /// Warp (NVIDIA) / wavefront (AMD) width in threads.
    pub warp_size: u32,
    /// Number of streaming multiprocessors / compute units.
    pub num_sms: u32,
    /// SIMD lanes fed per cycle; a warp instruction occupies its pipeline
    /// for `warp_size / simd_width` cycles.
    pub simd_width: u32,
    /// Shader clock in MHz (used by the EPF metric, not by the cycle loop).
    pub clock_mhz: u32,
    /// Vector register file bytes per SM.
    pub regfile_bytes_per_sm: u32,
    /// Scalar register file bytes per SM (0 on architectures without a
    /// scalar unit).
    pub sregfile_bytes_per_sm: u32,
    /// Local/shared memory (LDS) bytes per SM.
    pub lds_bytes_per_sm: u32,
    /// Hardware warp contexts per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Warp instructions issued per SM per cycle.
    pub issue_width: u32,
    /// Warp scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// Latency table.
    pub lat: Latencies,
    /// Number of LDS banks (word-interleaved).
    pub lds_banks: u32,
    /// Extra cycles per conflicting LDS bank access.
    pub lds_bank_penalty: u32,
    /// Per-SM L1 data cache (None = uncached global loads, as on G80/GT200).
    pub l1: Option<CacheGeom>,
    /// Device-level L2 cache.
    pub l2: Option<CacheGeom>,
    /// Coalescing segment size in bytes (64 on G80/GT200, 128 on Fermi/SI).
    pub coalesce_bytes: u32,
    /// Raw soft-error rate of the SRAM arrays, in FIT per Mbit, used by the
    /// FIT/EPF metrics. Technology-node dependent.
    pub raw_fit_per_mbit: f64,
    /// Watchdog: a launch consuming more than
    /// `watchdog_factor × fault-free cycles` (set by the campaign runner)
    /// is killed as a DUE. Stored here as the default factor.
    pub watchdog_factor: u32,
}

impl ArchConfig {
    /// Lowering capabilities implied by this configuration.
    pub fn caps(&self) -> ArchCaps {
        ArchCaps {
            has_scalar_unit: self.sregfile_bytes_per_sm > 0,
            warp_size: self.warp_size,
        }
    }

    /// Vector register file size per SM, in 32-bit words.
    pub fn rf_words_per_sm(&self) -> u32 {
        self.regfile_bytes_per_sm / 4
    }

    /// Scalar register file size per SM, in 32-bit words.
    pub fn srf_words_per_sm(&self) -> u32 {
        self.sregfile_bytes_per_sm / 4
    }

    /// LDS size per SM, in 32-bit words.
    pub fn lds_words_per_sm(&self) -> u32 {
        self.lds_bytes_per_sm / 4
    }

    /// Maximum resident threads per SM.
    pub fn max_threads_per_sm(&self) -> u32 {
        self.max_warps_per_sm * self.warp_size
    }

    /// Cycles a warp instruction occupies its SIMD pipeline.
    pub fn warp_issue_cycles(&self) -> u32 {
        (self.warp_size / self.simd_width).max(1)
    }

    /// A deliberately tiny 2-SM device for unit tests: warp size 8, small
    /// register file and LDS, short latencies.
    ///
    /// # Example
    /// ```
    /// use simt_sim::ArchConfig;
    /// let a = ArchConfig::small_test_gpu();
    /// assert_eq!(a.num_sms, 2);
    /// assert_eq!(a.warp_size, 8);
    /// ```
    pub fn small_test_gpu() -> Self {
        ArchConfig {
            name: "TestGPU".into(),
            microarch: "test".into(),
            vendor: Vendor::Nvidia,
            warp_size: 8,
            num_sms: 2,
            simd_width: 8,
            clock_mhz: 1000,
            regfile_bytes_per_sm: 16 * 1024,
            sregfile_bytes_per_sm: 0,
            lds_bytes_per_sm: 4 * 1024,
            max_warps_per_sm: 16,
            max_blocks_per_sm: 4,
            issue_width: 1,
            scheduler: SchedulerPolicy::Lrr,
            lat: Latencies {
                alu: 2,
                imul: 4,
                fp: 4,
                sfu: 8,
                lds: 4,
                l1_hit: 6,
                l2_hit: 20,
                dram: 60,
                mem_serialize: 2,
            },
            lds_banks: 8,
            lds_bank_penalty: 1,
            l1: Some(CacheGeom {
                bytes: 1024,
                line_bytes: 64,
                assoc: 2,
            }),
            l2: Some(CacheGeom {
                bytes: 8 * 1024,
                line_bytes: 64,
                assoc: 4,
            }),
            coalesce_bytes: 64,
            raw_fit_per_mbit: 1000.0,
            watchdog_factor: 20,
        }
    }

    /// Same as [`ArchConfig::small_test_gpu`] but with a scalar unit and
    /// wavefront width 16 — a miniature Southern-Islands-style device for
    /// tests.
    pub fn small_test_gpu_scalar() -> Self {
        let mut a = Self::small_test_gpu();
        a.name = "TestGPU-S".into();
        a.vendor = Vendor::Amd;
        a.warp_size = 16;
        a.simd_width = 8;
        a.sregfile_bytes_per_sm = 1024;
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_sizes() {
        let a = ArchConfig::small_test_gpu();
        assert_eq!(a.rf_words_per_sm(), 4096);
        assert_eq!(a.lds_words_per_sm(), 1024);
        assert_eq!(a.srf_words_per_sm(), 0);
        assert_eq!(a.max_threads_per_sm(), 128);
        assert_eq!(a.warp_issue_cycles(), 1);
    }

    #[test]
    fn caps_reflect_scalar_unit() {
        assert!(!ArchConfig::small_test_gpu().caps().has_scalar_unit);
        let s = ArchConfig::small_test_gpu_scalar();
        assert!(s.caps().has_scalar_unit);
        assert_eq!(s.caps().warp_size, 16);
        assert_eq!(s.warp_issue_cycles(), 2);
    }

    #[test]
    fn vendor_display() {
        assert_eq!(Vendor::Nvidia.to_string(), "NVIDIA");
        assert_eq!(Vendor::Amd.to_string(), "AMD");
    }
}
