//! Set-associative LRU caches used for the L1/L2 timing model.
//!
//! Caches affect *timing only*: data always lives in the global-memory
//! arena, so a cache never holds stale values and fault injection into
//! memory arrays is out of scope (the study targets register files and
//! LDS). This mirrors how GPGPU-Sim's functional core is decoupled from
//! its timing model.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
///
/// # Example
/// ```
/// use simt_sim::CacheGeom;
/// let g = CacheGeom { bytes: 16 * 1024, line_bytes: 128, assoc: 4 };
/// assert_eq!(g.num_sets(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeom {
    /// Total capacity in bytes.
    pub bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub assoc: u32,
}

impl CacheGeom {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u32 {
        (self.bytes / self.line_bytes / self.assoc).max(1)
    }
}

/// Hit/miss counters of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement (timing model only).
///
/// # Example
/// ```
/// use simt_sim::{Cache, CacheGeom};
/// let mut c = Cache::new(CacheGeom { bytes: 256, line_bytes: 64, assoc: 2 });
/// assert!(!c.access(0));      // cold miss
/// assert!(c.access(4));       // same line: hit
/// assert_eq!(c.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geom: CacheGeom,
    /// `tags[set * assoc + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamp per way (higher = more recent).
    stamps: Vec<u64>,
    tick: u64,
    stats: CacheStats,
    line_shift: u32,
    num_sets: u32,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn new(geom: CacheGeom) -> Self {
        assert!(
            geom.line_bytes.is_power_of_two(),
            "cache line size must be a power of two"
        );
        let num_sets = geom.num_sets();
        let ways = (num_sets * geom.assoc) as usize;
        Cache {
            geom,
            tags: vec![u64::MAX; ways],
            stamps: vec![0; ways],
            tick: 0,
            stats: CacheStats::default(),
            line_shift: geom.line_bytes.trailing_zeros(),
            num_sets,
        }
    }

    /// Accesses the byte address, updating LRU state; returns `true` on hit.
    pub fn access(&mut self, addr: u32) -> bool {
        self.tick += 1;
        let line = (addr >> self.line_shift) as u64;
        let set = (line % self.num_sets as u64) as usize;
        let base = set * self.geom.assoc as usize;
        let ways = &mut self.tags[base..base + self.geom.assoc as usize];
        if let Some(way) = ways.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.tick;
            self.stats.hits += 1;
            return true;
        }
        // Miss: fill the LRU way.
        self.stats.misses += 1;
        let victim = (0..self.geom.assoc as usize)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("assoc >= 1");
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.tick;
        false
    }

    /// Invalidates all lines and resets LRU state (counters are kept).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
    }

    /// Accumulated hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The geometry this cache was built with.
    pub fn geom(&self) -> CacheGeom {
        self.geom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 64-byte lines.
        Cache::new(CacheGeom {
            bytes: 256,
            line_bytes: 64,
            assoc: 2,
        })
    }

    #[test]
    fn hit_within_line() {
        let mut c = tiny();
        assert!(!c.access(100));
        assert!(c.access(127)); // same 64B line as 100? 100>>6=1, 127>>6=1 yes
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (line % 2 == 0).
        assert!(!c.access(0)); // line 0 -> way A
        assert!(!c.access(128)); // line 2 -> way B
        assert!(c.access(0)); // touch line 0 (B is now LRU)
        assert!(!c.access(256)); // line 4 evicts line 2
        assert!(c.access(0)); // line 0 still resident
        assert!(!c.access(128)); // line 2 was evicted
    }

    #[test]
    fn sets_isolate_addresses() {
        let mut c = tiny();
        assert!(!c.access(0)); // set 0
        assert!(!c.access(64)); // set 1
        assert!(c.access(0));
        assert!(c.access(64));
    }

    #[test]
    fn flush_clears_contents_not_stats() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        assert_eq!(c.stats().hits, 1);
        c.flush();
        assert!(!c.access(0), "flushed line misses again");
        assert_eq!(c.stats().hits, 1, "counters survive flush");
    }

    #[test]
    fn geometry_accessors() {
        let c = tiny();
        assert_eq!(c.geom().num_sets(), 2);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        let _ = Cache::new(CacheGeom {
            bytes: 256,
            line_bytes: 48,
            assoc: 2,
        });
    }
}
