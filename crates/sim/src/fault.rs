//! Fault sites and fault models: where, when and *how* a fault lands.
//!
//! The reproduced study injects transient single-bit flips in storage
//! arrays. This module generalises that into a site = structure × kind ×
//! persistence taxonomy behind the [`FaultModel`] trait:
//!
//! * [`FaultKind::TransientFlip`] — today's behaviour, a one-shot XOR of
//!   one storage bit (bit-identical to the pre-refactor campaigns);
//! * [`FaultKind::StuckAt0`] / [`FaultKind::StuckAt1`] — permanent cell
//!   faults that re-assert on every write through the SM's write-intercept
//!   hooks, so a clean overwrite does *not* mask them;
//! * [`FaultKind::Control`] — corruption of parallelism-management state
//!   (warp-scheduler slot timing, per-warp active masks, scoreboard
//!   entries, block barrier counters), the fault class that dominates
//!   hangs and DUEs on real devices.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A fault-injectable storage structure of an SM.
///
/// The reproduced study targets the vector register file (Fig. 1) and the
/// local/shared memory (Fig. 2); the scalar register file is an extension
/// available on Southern-Islands-style devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Structure {
    /// The per-SM vector register file.
    VectorRegisterFile,
    /// The per-SM local/shared memory (LDS).
    LocalMemory,
    /// The per-SM scalar register file (AMD-style architectures only).
    ScalarRegisterFile,
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Structure::VectorRegisterFile => "register file",
            Structure::LocalMemory => "local memory",
            Structure::ScalarRegisterFile => "scalar register file",
        })
    }
}

/// Which piece of parallelism-management state a control fault corrupts.
///
/// All four targets exist in the SM model already: warp slots carry their
/// issue timing and active mask, the per-warp scoreboard gates issue on
/// operand readiness, and each resident block counts warps parked at its
/// barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ControlTarget {
    /// The warp slot's issue timing (`next_issue`): a flipped high bit
    /// pushes the warp's next issue far into the future — a hang.
    SchedulerSlot,
    /// The warp's active lane mask: lanes silently join or leave the
    /// computation, or the warp arrives divergent at a barrier.
    ActiveMask,
    /// A vector-register scoreboard entry: issue gating goes wrong, the
    /// warp stalls on a never-ready operand or issues too early.
    Scoreboard,
    /// The resident block's barrier arrival counter: the release condition
    /// `at_barrier == running_warps` may never hold again — a deadlock.
    BarrierCounter,
}

impl ControlTarget {
    /// Every control target, in population-index order.
    pub const ALL: [ControlTarget; 4] = [
        ControlTarget::SchedulerSlot,
        ControlTarget::ActiveMask,
        ControlTarget::Scoreboard,
        ControlTarget::BarrierCounter,
    ];

    /// Stable short token used in site strings and telemetry labels.
    pub fn as_str(&self) -> &'static str {
        match self {
            ControlTarget::SchedulerSlot => "sched",
            ControlTarget::ActiveMask => "mask",
            ControlTarget::Scoreboard => "sboard",
            ControlTarget::BarrierCounter => "barrier",
        }
    }

    /// Position within [`ControlTarget::ALL`] (for flat population
    /// indices).
    pub fn index(&self) -> u64 {
        match self {
            ControlTarget::SchedulerSlot => 0,
            ControlTarget::ActiveMask => 1,
            ControlTarget::Scoreboard => 2,
            ControlTarget::BarrierCounter => 3,
        }
    }
}

impl fmt::Display for ControlTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ControlTarget {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sched" => Ok(ControlTarget::SchedulerSlot),
            "mask" => Ok(ControlTarget::ActiveMask),
            "sboard" => Ok(ControlTarget::Scoreboard),
            "barrier" => Ok(ControlTarget::BarrierCounter),
            other => Err(format!(
                "unknown control target {other:?} (expected sched, mask, sboard or barrier)"
            )),
        }
    }
}

/// How an injected fault behaves over time — the *kind* axis of the
/// site = structure × kind × persistence taxonomy.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum FaultKind {
    /// A one-shot single-bit XOR of a storage word — the paper's model.
    #[default]
    TransientFlip,
    /// A storage cell permanently reads 0: forced at injection and
    /// re-asserted on every subsequent write of its word.
    StuckAt0,
    /// A storage cell permanently reads 1 (re-asserts like
    /// [`FaultKind::StuckAt0`]).
    StuckAt1,
    /// A one-shot corruption of parallelism-management state.
    Control(ControlTarget),
}

impl FaultKind {
    /// Stable token used in site strings, event fields and counter labels.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::TransientFlip => "transient",
            FaultKind::StuckAt0 => "stuck0",
            FaultKind::StuckAt1 => "stuck1",
            FaultKind::Control(ControlTarget::SchedulerSlot) => "ctrl-sched",
            FaultKind::Control(ControlTarget::ActiveMask) => "ctrl-mask",
            FaultKind::Control(ControlTarget::Scoreboard) => "ctrl-sboard",
            FaultKind::Control(ControlTarget::BarrierCounter) => "ctrl-barrier",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for FaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "transient" => Ok(FaultKind::TransientFlip),
            "stuck0" => Ok(FaultKind::StuckAt0),
            "stuck1" => Ok(FaultKind::StuckAt1),
            other => {
                if let Some(t) = other.strip_prefix("ctrl-") {
                    Ok(FaultKind::Control(t.parse()?))
                } else {
                    Err(format!(
                        "unknown fault kind {other:?} (expected transient, stuck0, \
                         stuck1 or ctrl-<sched|mask|sboard|barrier>)"
                    ))
                }
            }
        }
    }
}

/// The campaign-level fault-model selector: which *family* of kinds a
/// campaign samples from (`repro --fault-model ...`).
///
/// [`FaultModelKind::Control`] fans out over every [`ControlTarget`];
/// the other selectors map to exactly one [`FaultKind`].
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum FaultModelKind {
    /// Transient single-bit flips (the default; the paper's model).
    #[default]
    Transient,
    /// Permanent stuck-at-0 cell faults.
    Stuck0,
    /// Permanent stuck-at-1 cell faults.
    Stuck1,
    /// Control-unit faults over all four [`ControlTarget`]s.
    Control,
}

impl FaultModelKind {
    /// Every selector, in CLI/report order.
    pub const ALL: [FaultModelKind; 4] = [
        FaultModelKind::Transient,
        FaultModelKind::Stuck0,
        FaultModelKind::Stuck1,
        FaultModelKind::Control,
    ];

    /// Stable token used by `--fault-model`, event fields and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultModelKind::Transient => "transient",
            FaultModelKind::Stuck0 => "stuck0",
            FaultModelKind::Stuck1 => "stuck1",
            FaultModelKind::Control => "control",
        }
    }

    /// The storage-fault kind this selector injects, or `None` for the
    /// control family (which fans out over [`ControlTarget::ALL`]).
    pub fn storage_kind(&self) -> Option<FaultKind> {
        match self {
            FaultModelKind::Transient => Some(FaultKind::TransientFlip),
            FaultModelKind::Stuck0 => Some(FaultKind::StuckAt0),
            FaultModelKind::Stuck1 => Some(FaultKind::StuckAt1),
            FaultModelKind::Control => None,
        }
    }
}

impl fmt::Display for FaultModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for FaultModelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "transient" => Ok(FaultModelKind::Transient),
            "stuck0" => Ok(FaultModelKind::Stuck0),
            "stuck1" => Ok(FaultModelKind::Stuck1),
            "control" => Ok(FaultModelKind::Control),
            other => Err(format!(
                "unknown fault model {other:?} (expected transient, stuck0, stuck1 or control)"
            )),
        }
    }
}

/// Behavioural contract of a fault model, implemented by both the
/// per-site [`FaultKind`] and the campaign-level [`FaultModelKind`].
///
/// The soundness-critical method is [`FaultModel::overwrite_maskable`]:
/// the lifetime-oracle pruner and the mask-probe early exit both reason
/// "a clean write to the target word erases the fault, so a site whose
/// next access is a write is Masked". That reasoning holds *only* for
/// transient flips — a stuck-at fault re-asserts on every write and a
/// control fault never lives in the overwritten storage at all — so every
/// fast path must consult this predicate before skipping a replay.
pub trait FaultModel {
    /// Stable label for telemetry and reports.
    fn label(&self) -> &'static str;

    /// The fault outlives writes to its cell (stuck-at family).
    fn is_persistent(&self) -> bool {
        false
    }

    /// The fault corrupts scheduler/mask/scoreboard/barrier state rather
    /// than a storage array.
    fn targets_control_state(&self) -> bool {
        false
    }

    /// A clean overwrite of the target word erases the fault, so
    /// overwrite-based masking proofs (oracle pruning, mask-probe early
    /// exit) are sound.
    fn overwrite_maskable(&self) -> bool {
        !self.is_persistent() && !self.targets_control_state()
    }
}

impl FaultModel for FaultKind {
    fn label(&self) -> &'static str {
        self.as_str()
    }

    fn is_persistent(&self) -> bool {
        matches!(self, FaultKind::StuckAt0 | FaultKind::StuckAt1)
    }

    fn targets_control_state(&self) -> bool {
        matches!(self, FaultKind::Control(_))
    }
}

impl FaultModel for FaultModelKind {
    fn label(&self) -> &'static str {
        self.as_str()
    }

    fn is_persistent(&self) -> bool {
        matches!(self, FaultModelKind::Stuck0 | FaultModelKind::Stuck1)
    }

    fn targets_control_state(&self) -> bool {
        matches!(self, FaultModelKind::Control)
    }
}

/// Rejected [`FaultSite::try_new`] input: the bit is outside its word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidFaultSite {
    /// The offending bit index.
    pub bit: u8,
}

impl fmt::Display for InvalidFaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bit {} out of range (0..32)", self.bit)
    }
}

impl std::error::Error for InvalidFaultSite {}

/// A fault site: structure, SM, physical bit, the device cycle at which
/// the fault is injected, and the fault kind.
///
/// Cycles count the *application* clock: monotonically increasing across
/// all launches of a workload on one [`crate::Gpu`] instance, so a site
/// drawn uniformly over the fault-free total exercises every kernel of a
/// multi-launch workload proportionally to its duration.
///
/// For [`FaultKind::Control`] sites the `word`/`bit` pair addresses
/// control state instead of storage: `word` selects the warp slot (or
/// block slot for barrier counters) and `bit` the flipped bit of the
/// targeted field.
///
/// # Example
/// ```
/// use simt_sim::{FaultKind, FaultSite, Structure};
/// let s = FaultSite::new(Structure::VectorRegisterFile, 3, 128, 17, 40_000);
/// assert_eq!(s.bit_index(), 128 * 32 + 17);
/// assert_eq!(s.kind, FaultKind::TransientFlip);
/// assert!(FaultSite::try_new(Structure::LocalMemory, 0, 0, 32, 0, FaultKind::StuckAt1).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FaultSite {
    /// Target structure.
    pub structure: Structure,
    /// Target SM / compute unit index.
    pub sm: u32,
    /// Physical word index within the structure (warp/block slot for
    /// control faults).
    pub word: u32,
    /// Bit within the word (0..32).
    pub bit: u8,
    /// Application cycle at which the fault is injected.
    pub cycle: u64,
    /// How the fault behaves (transient, stuck-at, control).
    pub kind: FaultKind,
}

impl FaultSite {
    /// A transient-flip site (the paper's model).
    ///
    /// Debug builds assert `bit < 32`; use [`FaultSite::try_new`] to
    /// validate untrusted input.
    pub fn new(structure: Structure, sm: u32, word: u32, bit: u8, cycle: u64) -> Self {
        debug_assert!(bit < 32, "bit {bit} out of range (0..32)");
        FaultSite {
            structure,
            sm,
            word,
            bit,
            cycle,
            kind: FaultKind::TransientFlip,
        }
    }

    /// A validated site of any kind.
    ///
    /// # Errors
    ///
    /// [`InvalidFaultSite`] if `bit >= 32`.
    pub fn try_new(
        structure: Structure,
        sm: u32,
        word: u32,
        bit: u8,
        cycle: u64,
        kind: FaultKind,
    ) -> Result<Self, InvalidFaultSite> {
        if bit >= 32 {
            return Err(InvalidFaultSite { bit });
        }
        Ok(FaultSite {
            structure,
            sm,
            word,
            bit,
            cycle,
            kind,
        })
    }

    /// The same site with a different fault kind (builder style).
    pub fn with_kind(mut self, kind: FaultKind) -> Self {
        self.kind = kind;
        self
    }

    /// Flat bit index within the structure (`word * 32 + bit`).
    pub fn bit_index(&self) -> u64 {
        self.word as u64 * 32 + self.bit as u64
    }

    /// The site is a transient flip (the only kind the overwrite-masking
    /// fast paths may prune).
    pub fn is_transient(&self) -> bool {
        self.kind == FaultKind::TransientFlip
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sm{} word {} bit {} @ cycle {}",
            self.structure, self.sm, self.word, self.bit, self.cycle
        )?;
        // Transient sites keep the historical rendering byte-identical;
        // every other kind is annotated so traces are unambiguous.
        if self.kind != FaultKind::TransientFlip {
            write!(f, " [{}]", self.kind)?;
        }
        Ok(())
    }
}

impl FromStr for FaultSite {
    type Err = String;

    /// Parses the `sm:struct:word:bit:cycle[:kind]` site grammar used by
    /// `repro trace --site`; the kind component defaults to `transient`.
    ///
    /// # Example
    /// ```
    /// use simt_sim::{FaultKind, FaultSite};
    /// let s: FaultSite = "3:rf:128:17:40000:stuck0".parse().unwrap();
    /// assert_eq!(s.kind, FaultKind::StuckAt0);
    /// assert!("3:rf:0:32:0".parse::<FaultSite>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 5 && parts.len() != 6 {
            return Err(format!(
                "expected sm:struct:word:bit:cycle[:kind] (5-6 fields), got {} in {s:?}",
                parts.len()
            ));
        }
        let structure = match parts[1] {
            "rf" => Structure::VectorRegisterFile,
            "lds" => Structure::LocalMemory,
            "srf" => Structure::ScalarRegisterFile,
            other => {
                return Err(format!(
                    "unknown structure {other:?} (expected rf, lds or srf)"
                ))
            }
        };
        let num = |name: &str, v: &str| -> Result<u64, String> {
            v.parse::<u64>()
                .map_err(|_| format!("invalid {name} {v:?} in {s:?}"))
        };
        let num32 = |name: &str, v: &str| -> Result<u32, String> {
            // Reject (rather than truncate) values over u32::MAX.
            v.parse::<u32>()
                .map_err(|_| format!("invalid {name} {v:?} in {s:?}"))
        };
        let kind = match parts.get(5) {
            Some(k) => k.parse::<FaultKind>()?,
            None => FaultKind::TransientFlip,
        };
        let bit = num("bit", parts[3])?;
        if bit >= 32 {
            return Err(format!("bit {bit} out of range (0..32)"));
        }
        FaultSite::try_new(
            structure,
            num32("sm", parts[0])?,
            num32("word", parts[2])?,
            bit as u8,
            num("cycle", parts[4])?,
            kind,
        )
        .map_err(|e| e.to_string())
    }
}

impl FaultSite {
    /// Renders the site in the `sm:struct:word:bit:cycle[:kind]` grammar
    /// accepted by [`FaultSite::from_str`] (round-trips all kinds).
    pub fn to_site_string(&self) -> String {
        let st = match self.structure {
            Structure::VectorRegisterFile => "rf",
            Structure::LocalMemory => "lds",
            Structure::ScalarRegisterFile => "srf",
        };
        let mut out = format!(
            "{}:{}:{}:{}:{}",
            self.sm, st, self.word, self.bit, self.cycle
        );
        if self.kind != FaultKind::TransientFlip {
            out.push(':');
            out.push_str(self.kind.as_str());
        }
        out
    }
}

/// Maximum scenarios per batched replay pass: one bit of a `u64` mask
/// per scenario.
pub const MAX_BATCH_SCENARIOS: usize = 64;

/// The master state of one bit-plane batched replay pass: up to
/// [`MAX_BATCH_SCENARIOS`] transient sites sharing a single golden
/// simulation, each tracked as a *scenario* (a bit of the `u64` masks).
///
/// The shared pass executes pure golden state; each scenario's would-be
/// divergence lives in sparse overlay cells (per-SM shards plus a
/// global-memory shard). A scenario leaves the pass — *forks* into a
/// private replay — only when its divergence becomes architecturally
/// consequential: a divergent predicate or address, an atomic touching
/// an overlaid word, or a host read of one. A scenario still unforked
/// when the workload finishes is provably Masked.
#[derive(Debug, Clone)]
pub struct BatchPlane {
    /// The batched sites, scenario `s` = `sites[s]`.
    pub sites: Vec<FaultSite>,
    /// Scenarios that forked into private replays (overlays dropped).
    pub forked: u64,
    /// Scenarios whose flip has been asserted into the overlays.
    pub armed: u64,
}

impl BatchPlane {
    /// Builds a plane over `sites` (all transient, at most 64).
    ///
    /// # Panics
    ///
    /// If `sites` is empty, exceeds [`MAX_BATCH_SCENARIOS`], or contains
    /// a non-transient site (the overlay soundness argument — a clean
    /// overwrite kills divergence — only holds for transient flips).
    pub fn new(sites: Vec<FaultSite>) -> Self {
        assert!(
            !sites.is_empty() && sites.len() <= MAX_BATCH_SCENARIOS,
            "batch of {} sites (expected 1..={MAX_BATCH_SCENARIOS})",
            sites.len()
        );
        assert!(
            sites.iter().all(FaultSite::is_transient),
            "batched replay is kind-gated to transient flips"
        );
        BatchPlane {
            sites,
            forked: 0,
            armed: 0,
        }
    }

    /// Mask with one bit set per scenario in the plane.
    pub fn all_mask(&self) -> u64 {
        if self.sites.len() == MAX_BATCH_SCENARIOS {
            u64::MAX
        } else {
            (1u64 << self.sites.len()) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let s = FaultSite::new(Structure::LocalMemory, 0, 5, 31, 7);
        assert_eq!(s.to_string(), "local memory sm0 word 5 bit 31 @ cycle 7");
        assert_eq!(s.bit_index(), 191);
    }

    #[test]
    fn display_annotates_non_transient_kinds() {
        let s = FaultSite::new(Structure::VectorRegisterFile, 1, 2, 3, 4);
        assert_eq!(
            s.with_kind(FaultKind::StuckAt1).to_string(),
            "register file sm1 word 2 bit 3 @ cycle 4 [stuck1]"
        );
        assert_eq!(
            s.with_kind(FaultKind::Control(ControlTarget::BarrierCounter))
                .to_string(),
            "register file sm1 word 2 bit 3 @ cycle 4 [ctrl-barrier]"
        );
    }

    #[test]
    fn structure_names() {
        assert_eq!(Structure::VectorRegisterFile.to_string(), "register file");
        assert_eq!(
            Structure::ScalarRegisterFile.to_string(),
            "scalar register file"
        );
    }

    #[test]
    fn try_new_validates_bit() {
        let err = FaultSite::try_new(
            Structure::VectorRegisterFile,
            0,
            0,
            32,
            0,
            FaultKind::TransientFlip,
        )
        .unwrap_err();
        assert_eq!(err, InvalidFaultSite { bit: 32 });
        assert!(err.to_string().contains("32"));
        assert!(
            FaultSite::try_new(Structure::LocalMemory, 0, 0, 31, 0, FaultKind::StuckAt0).is_ok()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    #[cfg(debug_assertions)]
    fn new_asserts_bit_in_debug() {
        let _ = FaultSite::new(Structure::VectorRegisterFile, 0, 0, 33, 0);
    }

    #[test]
    fn site_string_round_trips_all_kinds() {
        let base = FaultSite::new(Structure::ScalarRegisterFile, 2, 17, 9, 1234);
        let kinds = [
            FaultKind::TransientFlip,
            FaultKind::StuckAt0,
            FaultKind::StuckAt1,
            FaultKind::Control(ControlTarget::SchedulerSlot),
            FaultKind::Control(ControlTarget::ActiveMask),
            FaultKind::Control(ControlTarget::Scoreboard),
            FaultKind::Control(ControlTarget::BarrierCounter),
        ];
        for kind in kinds {
            let site = base.with_kind(kind);
            let text = site.to_site_string();
            let back: FaultSite = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, site, "round-trip of {text}");
        }
        // Transient keeps the historical 5-field form.
        assert_eq!(base.to_site_string(), "2:srf:17:9:1234");
    }

    #[test]
    fn kind_tokens_round_trip() {
        for kind in [
            FaultKind::TransientFlip,
            FaultKind::StuckAt0,
            FaultKind::StuckAt1,
            FaultKind::Control(ControlTarget::Scoreboard),
        ] {
            assert_eq!(kind.as_str().parse::<FaultKind>().unwrap(), kind);
        }
        assert!("ctrl-bogus".parse::<FaultKind>().is_err());
        for m in FaultModelKind::ALL {
            assert_eq!(m.as_str().parse::<FaultModelKind>().unwrap(), m);
        }
    }

    #[test]
    fn fault_model_maskability() {
        assert!(FaultKind::TransientFlip.overwrite_maskable());
        assert!(!FaultKind::StuckAt0.overwrite_maskable());
        assert!(!FaultKind::StuckAt1.overwrite_maskable());
        assert!(!FaultKind::Control(ControlTarget::ActiveMask).overwrite_maskable());
        assert!(FaultKind::StuckAt1.is_persistent());
        assert!(!FaultKind::StuckAt1.targets_control_state());
        assert!(FaultKind::Control(ControlTarget::SchedulerSlot).targets_control_state());

        assert!(FaultModelKind::Transient.overwrite_maskable());
        assert!(!FaultModelKind::Stuck0.overwrite_maskable());
        assert!(!FaultModelKind::Control.overwrite_maskable());
        assert_eq!(
            FaultModelKind::Stuck1.storage_kind(),
            Some(FaultKind::StuckAt1)
        );
        assert_eq!(FaultModelKind::Control.storage_kind(), None);
    }
}
