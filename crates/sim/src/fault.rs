//! Fault sites: where and when a single-bit flip lands.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fault-injectable storage structure of an SM.
///
/// The reproduced study targets the vector register file (Fig. 1) and the
/// local/shared memory (Fig. 2); the scalar register file is an extension
/// available on Southern-Islands-style devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Structure {
    /// The per-SM vector register file.
    VectorRegisterFile,
    /// The per-SM local/shared memory (LDS).
    LocalMemory,
    /// The per-SM scalar register file (AMD-style architectures only).
    ScalarRegisterFile,
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Structure::VectorRegisterFile => "register file",
            Structure::LocalMemory => "local memory",
            Structure::ScalarRegisterFile => "scalar register file",
        })
    }
}

/// A single-bit-flip fault site: structure, SM, physical bit and the device
/// cycle at which the flip occurs.
///
/// Cycles count the *application* clock: monotonically increasing across
/// all launches of a workload on one [`crate::Gpu`] instance, so a site
/// drawn uniformly over the fault-free total exercises every kernel of a
/// multi-launch workload proportionally to its duration.
///
/// # Example
/// ```
/// use simt_sim::{FaultSite, Structure};
/// let s = FaultSite {
///     structure: Structure::VectorRegisterFile,
///     sm: 3,
///     word: 128,
///     bit: 17,
///     cycle: 40_000,
/// };
/// assert_eq!(s.bit_index(), 128 * 32 + 17);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FaultSite {
    /// Target structure.
    pub structure: Structure,
    /// Target SM / compute unit index.
    pub sm: u32,
    /// Physical word index within the structure.
    pub word: u32,
    /// Bit within the word (0..32).
    pub bit: u8,
    /// Application cycle at which the bit flips.
    pub cycle: u64,
}

impl FaultSite {
    /// Flat bit index within the structure (`word * 32 + bit`).
    pub fn bit_index(&self) -> u64 {
        self.word as u64 * 32 + self.bit as u64
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sm{} word {} bit {} @ cycle {}",
            self.structure, self.sm, self.word, self.bit, self.cycle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let s = FaultSite {
            structure: Structure::LocalMemory,
            sm: 0,
            word: 5,
            bit: 31,
            cycle: 7,
        };
        assert_eq!(s.to_string(), "local memory sm0 word 5 bit 31 @ cycle 7");
        assert_eq!(s.bit_index(), 191);
    }

    #[test]
    fn structure_names() {
        assert_eq!(Structure::VectorRegisterFile.to_string(), "register file");
        assert_eq!(
            Structure::ScalarRegisterFile.to_string(),
            "scalar register file"
        );
    }
}
