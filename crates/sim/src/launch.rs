//! Launch configuration and per-launch statistics.

use serde::{Deserialize, Serialize};

/// A 2-D extent (grid or block dimensions).
///
/// # Example
/// ```
/// use simt_sim::Dim;
/// assert_eq!(Dim::new(4, 2).count(), 8);
/// assert_eq!(Dim::linear(16).count(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim {
    /// Extent in x.
    pub x: u32,
    /// Extent in y.
    pub y: u32,
}

impl Dim {
    /// A 2-D extent.
    pub fn new(x: u32, y: u32) -> Self {
        Dim { x, y }
    }

    /// A 1-D extent (`y = 1`).
    pub fn linear(x: u32) -> Self {
        Dim { x, y: 1 }
    }

    /// Total element count.
    pub fn count(&self) -> u32 {
        self.x * self.y
    }
}

/// Grid and block dimensions of one kernel launch.
///
/// # Example
/// ```
/// use simt_sim::{Dim, LaunchConfig};
/// let cfg = LaunchConfig::linear(32, 128);
/// assert_eq!(cfg.total_threads(), 4096);
/// let tiled = LaunchConfig::new(Dim::new(4, 4), Dim::new(16, 16));
/// assert_eq!(tiled.threads_per_block(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Blocks in the grid.
    pub grid: Dim,
    /// Threads per block.
    pub block: Dim,
}

impl LaunchConfig {
    /// A 2-D launch.
    pub fn new(grid: Dim, block: Dim) -> Self {
        LaunchConfig { grid, block }
    }

    /// A 1-D launch: `blocks` blocks of `threads` threads.
    pub fn linear(blocks: u32, threads: u32) -> Self {
        LaunchConfig {
            grid: Dim::linear(blocks),
            block: Dim::linear(threads),
        }
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.count()
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u32 {
        self.grid.count() * self.block.count()
    }

    /// Warps per block for a given warp size (rounded up).
    pub fn warps_per_block(&self, warp_size: u32) -> u32 {
        self.threads_per_block().div_ceil(warp_size)
    }
}

/// Statistics of one completed launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchStats {
    /// Device cycles consumed by this launch.
    pub cycles: u64,
    /// Warp-level instructions issued (vector pipeline).
    pub warp_instructions: u64,
    /// Scalar instructions issued (scalar pipeline; 0 on vector-only archs).
    pub scalar_instructions: u64,
    /// Thread-level instructions executed (sum over active lanes).
    pub thread_instructions: u64,
    /// Global-memory transactions after coalescing.
    pub mem_transactions: u64,
    /// Blocks executed.
    pub blocks: u32,
    /// Application cycle at which the launch started.
    pub start_cycle: u64,
}

impl LaunchStats {
    /// Instructions per cycle (warp-level), 0 for an empty launch.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.warp_instructions as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims() {
        assert_eq!(Dim::new(3, 5).count(), 15);
        assert_eq!(Dim::linear(7), Dim::new(7, 1));
    }

    #[test]
    fn launch_derivations() {
        let c = LaunchConfig::new(Dim::new(2, 2), Dim::new(8, 8));
        assert_eq!(c.threads_per_block(), 64);
        assert_eq!(c.total_threads(), 256);
        assert_eq!(c.warps_per_block(32), 2);
        assert_eq!(c.warps_per_block(60), 2, "rounds up");
    }

    #[test]
    fn ipc() {
        let s = LaunchStats {
            cycles: 100,
            warp_instructions: 250,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert_eq!(LaunchStats::default().ipc(), 0.0);
    }
}
