//! Fault-propagation tracing: the flight recorder behind provenance
//! analysis.
//!
//! A fault-injection campaign classifies each injection as Masked, SDC or
//! DUE — but says nothing about *why*. This module records the mechanism:
//!
//! * [`GlobalWriteLog`] captures the golden run's ordered stream of
//!   global-memory stores, the reference against which a faulty replay's
//!   output behaviour is compared;
//! * [`TraceObserver`] rides along a single faulty replay and records the
//!   cycle of the first architected read of the corrupted word (or the
//!   clean overwrite that masks it), a bounded taint set of the words the
//!   corruption spreads to, and the cycle of the first global store that
//!   diverges from the golden stream;
//! * [`TraceRecord`] is the distilled per-injection result consumed by
//!   `grel-core`'s provenance layer.
//!
//! Taint tracking is a deliberate cycle-granularity over-approximation:
//! the simulator reports reads before writes within an instruction, so a
//! write is considered tainted when *any* tainted word was read on the
//! same SM in the same cycle. That can over-taint when independent warps
//! interleave in one cycle, but it can never miss a real dependency, so a
//! `never-read` verdict is trustworthy.

use crate::fault::{FaultSite, Structure};
use crate::observer::SimObserver;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Upper bound on the number of distinct words a taint set tracks.
///
/// Once a corruption has reached this many words the spread is saturated:
/// further propagation is no longer enumerated (the record's
/// `taint_saturated` flag is set instead), keeping per-injection memory
/// bounded regardless of workload size.
pub const TAINT_CAP: usize = 256;

/// One global-memory store observed during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalWrite {
    /// Application cycle of the store.
    pub cycle: u64,
    /// Byte address stored to.
    pub addr: u32,
    /// Word value stored.
    pub value: u32,
}

/// Observer that records every global-memory store, in issue order.
///
/// Run the golden (fault-free) workload under this observer once; the
/// resulting write stream is the divergence reference shared read-only by
/// every traced replay.
///
/// # Example
/// ```
/// use simt_sim::{GlobalWriteLog, SimObserver};
/// let mut log = GlobalWriteLog::default();
/// log.on_global_write(0, 0x40, 7, 12);
/// assert_eq!(log.writes().len(), 1);
/// assert_eq!(log.writes()[0].value, 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GlobalWriteLog {
    writes: Vec<GlobalWrite>,
}

impl GlobalWriteLog {
    /// The recorded stores, in the order they were issued.
    pub fn writes(&self) -> &[GlobalWrite] {
        &self.writes
    }

    /// Consumes the log, returning the recorded stores.
    pub fn into_writes(self) -> Vec<GlobalWrite> {
        self.writes
    }
}

impl SimObserver for GlobalWriteLog {
    fn on_global_write(&mut self, _sm: u32, addr: u32, value: u32, cycle: u64) {
        self.writes.push(GlobalWrite { cycle, addr, value });
    }
}

/// The distilled flight-recorder result for one traced injection.
///
/// All cycle fields count the application clock (same clock as
/// [`FaultSite::cycle`]). `None` means the event never happened within
/// the replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The injected fault site.
    pub site: FaultSite,
    /// Cycle the flip was applied (`None` if the replay ended first).
    pub injected_at: Option<u64>,
    /// Cycle of the first architected read of the corrupted word, if it
    /// was read before being cleanly overwritten.
    pub first_read: Option<u64>,
    /// Cycle the corrupted word was cleanly overwritten before any read.
    pub overwrite: Option<u64>,
    /// Cycle of the first global store diverging from the golden stream.
    pub divergence: Option<u64>,
    /// Distinct words the corruption reached (taint breadth, capped at
    /// [`TAINT_CAP`]; includes the flipped word itself).
    pub taint_words: u32,
    /// Whether the taint set hit [`TAINT_CAP`] and stopped enumerating.
    pub taint_saturated: bool,
    /// Distinct LDS banks among the tainted local-memory words.
    pub lds_banks: u32,
    /// Cycle of the first stuck-at re-assertion (a write to the faulty
    /// word whose stored value was forced back to the stuck value).
    /// `None` for transient sites and for stuck cells never re-written.
    pub first_reassert: Option<u64>,
    /// Total number of stuck-at re-assertions observed on the site word.
    pub reasserts: u64,
    /// Cycle a control fault corrupted live scheduler/mask/scoreboard/
    /// barrier state (`None` when the slot was empty: a masked control
    /// injection).
    pub control_corrupt: Option<u64>,
    /// Cycle the watchdog declared the replay hung, if it did.
    pub hang: Option<u64>,
}

/// Flight recorder for one faulty replay.
///
/// Drive the replay with this observer instead of
/// [`NoopObserver`](crate::NoopObserver); afterwards call
/// [`TraceObserver::into_record`] for the distilled [`TraceRecord`].
///
/// When resuming from a checkpoint, pass the checkpoint's cycle as
/// `resume_cycle` so the golden write stream is aligned with the portion
/// of the run actually replayed (checkpoints are taken before the
/// fault-application step of their own cycle, so every store with
/// `cycle >= resume_cycle` happens post-resume).
#[derive(Debug)]
pub struct TraceObserver<'a> {
    site: FaultSite,
    /// The physical SM index the fault lands on (`site.sm % num_sms`).
    sm_index: u32,
    injected_at: Option<u64>,
    first_read: Option<u64>,
    overwrite: Option<u64>,
    divergence: Option<u64>,
    first_reassert: Option<u64>,
    reasserts: u64,
    control_corrupt: Option<u64>,
    hang: Option<u64>,
    /// Words currently carrying the corruption.
    live: BTreeSet<(Structure, u32)>,
    /// Every word the corruption ever reached (capped).
    reached: BTreeSet<(Structure, u32)>,
    taint_saturated: bool,
    /// Cycle of the most recent tainted read on the fault SM; a write on
    /// the same SM in the same cycle is considered tainted.
    tainted_read_cycle: Option<u64>,
    /// The golden run's global-store stream.
    golden: &'a [GlobalWrite],
    /// Next golden store the replay is expected to reproduce.
    pos: usize,
}

impl<'a> TraceObserver<'a> {
    /// Arms a recorder for `site` on a device with `num_sms` SMs,
    /// comparing global stores against `golden` from `resume_cycle` on.
    pub fn new(
        site: FaultSite,
        num_sms: usize,
        golden: &'a [GlobalWrite],
        resume_cycle: u64,
    ) -> Self {
        TraceObserver {
            site,
            sm_index: (site.sm as usize % num_sms.max(1)) as u32,
            injected_at: None,
            first_read: None,
            overwrite: None,
            divergence: None,
            first_reassert: None,
            reasserts: 0,
            control_corrupt: None,
            hang: None,
            live: BTreeSet::new(),
            reached: BTreeSet::new(),
            taint_saturated: false,
            tainted_read_cycle: None,
            golden,
            pos: golden.partition_point(|w| w.cycle < resume_cycle),
        }
    }

    fn origin(&self) -> (Structure, u32) {
        (self.site.structure, self.site.word)
    }

    fn taint(&mut self, key: (Structure, u32)) {
        if self.reached.contains(&key) {
            self.live.insert(key);
            return;
        }
        if self.reached.len() >= TAINT_CAP {
            self.taint_saturated = true;
            return;
        }
        self.reached.insert(key);
        self.live.insert(key);
    }

    fn read(&mut self, structure: Structure, sm: u32, word: u32, cycle: u64) {
        if self.injected_at.is_none() || sm != self.sm_index {
            return;
        }
        let key = (structure, word);
        if !self.live.contains(&key) {
            return;
        }
        self.tainted_read_cycle = Some(cycle);
        if key == self.origin() && self.first_read.is_none() && self.overwrite.is_none() {
            self.first_read = Some(cycle);
        }
    }

    fn write(&mut self, structure: Structure, sm: u32, word: u32, cycle: u64) {
        if self.injected_at.is_none() || sm != self.sm_index {
            return;
        }
        let key = (structure, word);
        if self.tainted_read_cycle == Some(cycle) {
            // A tainted word was read on this SM this cycle: the stored
            // value may derive from the corruption, so the destination
            // joins the taint set.
            self.taint(key);
        } else {
            // Clean data overwrites the word: the corruption there dies.
            if key == self.origin() && self.first_read.is_none() && self.overwrite.is_none() {
                self.overwrite = Some(cycle);
            }
            self.live.remove(&key);
        }
    }

    /// Distills the recording; `lds_banks` is the device's LDS bank
    /// count (used to fold tainted LDS words onto banks).
    pub fn into_record(self, lds_banks: u32) -> TraceRecord {
        let banks: BTreeSet<u32> = self
            .reached
            .iter()
            .filter(|(s, _)| *s == Structure::LocalMemory)
            .map(|(_, w)| w % lds_banks.max(1))
            .collect();
        TraceRecord {
            site: self.site,
            injected_at: self.injected_at,
            first_read: self.first_read,
            overwrite: self.overwrite,
            divergence: self.divergence,
            taint_words: self.reached.len() as u32,
            taint_saturated: self.taint_saturated,
            lds_banks: banks.len() as u32,
            first_reassert: self.first_reassert,
            reasserts: self.reasserts,
            control_corrupt: self.control_corrupt,
            hang: self.hang,
        }
    }
}

impl SimObserver for TraceObserver<'_> {
    fn on_rf_read(&mut self, sm: u32, word: u32, cycle: u64) {
        self.read(Structure::VectorRegisterFile, sm, word, cycle);
    }
    fn on_rf_write(&mut self, sm: u32, word: u32, cycle: u64) {
        self.write(Structure::VectorRegisterFile, sm, word, cycle);
    }
    fn on_srf_read(&mut self, sm: u32, word: u32, cycle: u64) {
        self.read(Structure::ScalarRegisterFile, sm, word, cycle);
    }
    fn on_srf_write(&mut self, sm: u32, word: u32, cycle: u64) {
        self.write(Structure::ScalarRegisterFile, sm, word, cycle);
    }
    fn on_lds_read(&mut self, sm: u32, word: u32, cycle: u64) {
        self.read(Structure::LocalMemory, sm, word, cycle);
    }
    fn on_lds_write(&mut self, sm: u32, word: u32, cycle: u64) {
        self.write(Structure::LocalMemory, sm, word, cycle);
    }
    fn on_global_write(&mut self, _sm: u32, addr: u32, value: u32, cycle: u64) {
        // Track the full post-resume stream (pre-injection stores match
        // the golden run by determinism) so `pos` stays aligned.
        if self.divergence.is_some() {
            return;
        }
        match self.golden.get(self.pos) {
            Some(g) if g.addr == addr && g.value == value => self.pos += 1,
            _ => self.divergence = Some(cycle),
        }
    }
    fn on_fault_injected(&mut self, site: FaultSite) {
        if site == self.site && self.injected_at.is_none() {
            self.injected_at = Some(site.cycle);
            let origin = self.origin();
            self.live.insert(origin);
            self.reached.insert(origin);
        }
    }
    fn on_stuck_reassert(&mut self, sm: u32, structure: Structure, word: u32, cycle: u64) {
        if sm != self.sm_index || (structure, word) != self.origin() {
            return;
        }
        if self.first_reassert.is_none() {
            self.first_reassert = Some(cycle);
        }
        self.reasserts += 1;
        // A re-assertion re-corrupts the word even after a clean
        // overwrite appeared to kill it: put the origin back in the live
        // taint set so later reads are attributed correctly.
        let origin = self.origin();
        self.taint(origin);
    }
    fn on_control_corrupt(&mut self, site: FaultSite, cycle: u64) {
        if site == self.site && self.control_corrupt.is_none() {
            self.control_corrupt = Some(cycle);
        }
    }
    fn on_hang(&mut self, cycle: u64, _parked_warps: u32) {
        if self.hang.is_none() {
            self.hang = Some(cycle);
        }
    }
}

/// Minimal early-exit probe for untraced faulty replays: detects the
/// moment a flipped word is **provably masked**, so the replay can stop
/// without simulating to completion.
///
/// The argument (the soundness side of [`TraceObserver`]'s clean-
/// overwrite rule): a fault only XORs one architected storage word, and
/// reads are the only conduit by which a corrupted value can influence
/// anything else. While the flipped word has never been read since
/// injection, the replay's execution is bit-identical to the golden run
/// everywhere else — so the first *clean* event that restores the word
/// (an overwrite, whose inputs cannot be tainted, or the per-launch
/// storage reset at the next kernel launch) makes the entire machine
/// state equal to the golden run's. From that point the outcome is
/// `Masked` by construction. The simulator reports reads before writes
/// within an instruction, so a same-cycle read-then-overwrite correctly
/// suppresses the early exit.
///
/// Unlike [`TraceObserver`] this keeps no taint set and no golden write
/// stream: it answers only "is this replay already provably masked?",
/// cheap enough to ride every replay of a campaign's slow path.
///
/// The argument is only valid for
/// [`TransientFlip`](crate::fault::FaultKind::TransientFlip) sites: a
/// stuck-at cell re-asserts on every write (an overwrite does *not*
/// restore golden state) and a control fault never lives in a storage
/// word at all. Probes armed for non-transient sites therefore never
/// report masked, regardless of the event stream.
///
/// # Example
/// ```
/// use simt_sim::{FaultSite, MaskProbe, SimObserver, Structure};
/// let site = FaultSite::new(Structure::VectorRegisterFile, 0, 10, 3, 100);
/// let mut probe = MaskProbe::new(site, 16);
/// probe.on_fault_injected(site);
/// probe.on_rf_write(0, 10, 120); // clean overwrite, never read
/// assert!(probe.provably_masked());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MaskProbe {
    site: FaultSite,
    /// The physical SM index the fault lands on (`site.sm % num_sms`).
    sm_index: u32,
    /// Whether the clean-overwrite argument applies to this site's fault
    /// kind (transient only).
    maskable: bool,
    injected: bool,
    read_seen: bool,
    masked_at: Option<u64>,
}

impl MaskProbe {
    /// Arms a probe for `site` on a device with `num_sms` SMs.
    pub fn new(site: FaultSite, num_sms: usize) -> Self {
        MaskProbe {
            site,
            sm_index: (site.sm as usize % num_sms.max(1)) as u32,
            maskable: site.is_transient(),
            injected: false,
            read_seen: false,
            masked_at: None,
        }
    }

    /// Whether the flip has provably been erased without ever being
    /// read: the replay is guaranteed to finish `Masked`.
    pub fn provably_masked(&self) -> bool {
        self.masked_at.is_some()
    }

    /// The cycle the flip was erased, when [`MaskProbe::provably_masked`].
    pub fn masked_at(&self) -> Option<u64> {
        self.masked_at
    }

    fn read(&mut self, structure: Structure, sm: u32, word: u32) {
        if self.injected
            && self.masked_at.is_none()
            && sm == self.sm_index
            && structure == self.site.structure
            && word == self.site.word
        {
            self.read_seen = true;
        }
    }

    fn write(&mut self, structure: Structure, sm: u32, word: u32, cycle: u64) {
        if self.maskable
            && self.injected
            && !self.read_seen
            && self.masked_at.is_none()
            && sm == self.sm_index
            && structure == self.site.structure
            && word == self.site.word
        {
            self.masked_at = Some(cycle);
        }
    }
}

impl SimObserver for MaskProbe {
    fn on_rf_read(&mut self, sm: u32, word: u32, _cycle: u64) {
        self.read(Structure::VectorRegisterFile, sm, word);
    }
    fn on_rf_write(&mut self, sm: u32, word: u32, cycle: u64) {
        self.write(Structure::VectorRegisterFile, sm, word, cycle);
    }
    fn on_srf_read(&mut self, sm: u32, word: u32, _cycle: u64) {
        self.read(Structure::ScalarRegisterFile, sm, word);
    }
    fn on_srf_write(&mut self, sm: u32, word: u32, cycle: u64) {
        self.write(Structure::ScalarRegisterFile, sm, word, cycle);
    }
    fn on_lds_read(&mut self, sm: u32, word: u32, _cycle: u64) {
        self.read(Structure::LocalMemory, sm, word);
    }
    fn on_lds_write(&mut self, sm: u32, word: u32, cycle: u64) {
        self.write(Structure::LocalMemory, sm, word, cycle);
    }
    fn on_launch_begin(&mut self, _name: &str, cycle: u64) {
        // The per-launch storage reset zeroes every RF/SRF/LDS word: a
        // still-unread flip is erased exactly like a clean overwrite.
        // (Stuck-at cells survive the reset — `Sm::reset` re-asserts
        // them — so this too is gated to transient sites.)
        if self.maskable && self.injected && !self.read_seen && self.masked_at.is_none() {
            self.masked_at = Some(cycle);
        }
    }
    fn on_fault_injected(&mut self, site: FaultSite) {
        if site == self.site {
            self.injected = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> FaultSite {
        FaultSite::new(Structure::VectorRegisterFile, 0, 10, 3, 100)
    }

    #[test]
    fn first_read_is_recorded_and_overwrite_suppressed_after_it() {
        let golden = [];
        let mut t = TraceObserver::new(site(), 1, &golden, 0);
        t.on_rf_read(0, 10, 50); // pre-injection: ignored
        t.on_fault_injected(site());
        t.on_rf_read(0, 10, 120);
        t.on_rf_write(0, 10, 130); // later clean overwrite: not masking
        let r = t.into_record(16);
        assert_eq!(r.injected_at, Some(100));
        assert_eq!(r.first_read, Some(120));
        assert_eq!(r.overwrite, None);
        assert_eq!(r.taint_words, 1);
    }

    #[test]
    fn clean_overwrite_before_any_read_masks() {
        let golden = [];
        let mut t = TraceObserver::new(site(), 1, &golden, 0);
        t.on_fault_injected(site());
        t.on_rf_write(0, 10, 110);
        t.on_rf_read(0, 10, 120); // reads the clean value: not a fault read
        let r = t.into_record(16);
        assert_eq!(r.overwrite, Some(110));
        assert_eq!(r.first_read, None);
    }

    #[test]
    fn taint_spreads_through_same_cycle_read_write_and_counts_lds_banks() {
        let golden = [];
        let mut t = TraceObserver::new(site(), 1, &golden, 0);
        t.on_fault_injected(site());
        // Corrupted word read, result written to another RF word and two
        // LDS words in the same cycle.
        t.on_rf_read(0, 10, 120);
        t.on_rf_write(0, 44, 120);
        t.on_lds_write(0, 3, 120);
        t.on_lds_write(0, 19, 120); // 19 % 16 == 3: same bank
        let r = t.into_record(16);
        assert_eq!(r.taint_words, 4);
        assert_eq!(r.lds_banks, 1);
        assert!(!r.taint_saturated);
    }

    #[test]
    fn divergence_against_golden_stream() {
        let golden = [
            GlobalWrite {
                cycle: 90,
                addr: 0,
                value: 1,
            },
            GlobalWrite {
                cycle: 150,
                addr: 4,
                value: 2,
            },
            GlobalWrite {
                cycle: 200,
                addr: 8,
                value: 3,
            },
        ];
        // Resume at cycle 100: the first golden store already happened.
        let mut t = TraceObserver::new(site(), 1, &golden, 100);
        t.on_fault_injected(site());
        t.on_global_write(0, 4, 2, 150); // matches
        t.on_global_write(0, 8, 99, 200); // corrupted value
        let r = t.into_record(16);
        assert_eq!(r.divergence, Some(200));
    }

    #[test]
    fn extra_store_past_golden_end_diverges() {
        let golden = [GlobalWrite {
            cycle: 10,
            addr: 0,
            value: 1,
        }];
        let mut t = TraceObserver::new(site(), 1, &golden, 0);
        t.on_fault_injected(site());
        t.on_global_write(0, 0, 1, 10);
        t.on_global_write(0, 4, 5, 20);
        assert_eq!(t.into_record(16).divergence, Some(20));
    }

    #[test]
    fn events_on_other_sms_are_ignored() {
        let golden = [];
        let mut t = TraceObserver::new(site(), 4, &golden, 0);
        t.on_fault_injected(site());
        t.on_rf_read(2, 10, 120); // different SM
        let r = t.into_record(16);
        assert_eq!(r.first_read, None);
    }

    #[test]
    fn taint_set_saturates_at_cap() {
        let golden = [];
        let mut t = TraceObserver::new(site(), 1, &golden, 0);
        t.on_fault_injected(site());
        t.on_rf_read(0, 10, 120);
        for w in 0..(TAINT_CAP as u32 + 8) {
            t.on_lds_write(0, w, 120);
        }
        let r = t.into_record(16);
        assert!(r.taint_saturated);
        assert_eq!(r.taint_words as usize, TAINT_CAP);
    }

    #[test]
    fn probe_fires_on_clean_overwrite_only() {
        let mut p = MaskProbe::new(site(), 1);
        p.on_rf_write(0, 10, 50); // pre-injection: ignored
        assert!(!p.provably_masked());
        p.on_fault_injected(site());
        p.on_rf_write(0, 10, 120);
        assert_eq!(p.masked_at(), Some(120));
    }

    #[test]
    fn probe_read_suppresses_the_exit_forever() {
        let mut p = MaskProbe::new(site(), 1);
        p.on_fault_injected(site());
        p.on_rf_read(0, 10, 110); // corruption consumed
        p.on_rf_write(0, 10, 120);
        p.on_launch_begin("k2", 200);
        assert!(!p.provably_masked());
    }

    #[test]
    fn probe_same_cycle_read_then_write_is_not_masked() {
        // Stream order within an instruction: reads precede writes.
        let mut p = MaskProbe::new(site(), 1);
        p.on_fault_injected(site());
        p.on_rf_read(0, 10, 120);
        p.on_rf_write(0, 10, 120);
        assert!(!p.provably_masked());
    }

    #[test]
    fn probe_launch_reset_masks_unread_flip() {
        let mut p = MaskProbe::new(site(), 1);
        p.on_fault_injected(site());
        p.on_rf_read(0, 11, 150); // different word: irrelevant
        p.on_launch_begin("k2", 300);
        assert_eq!(p.masked_at(), Some(300));
    }

    #[test]
    fn probe_never_masks_non_transient_sites() {
        use crate::fault::FaultKind;
        // A stuck-at cell is re-asserted by every write: the clean-
        // overwrite argument is unsound, so the probe must stay silent.
        let s = site().with_kind(FaultKind::StuckAt1);
        let mut p = MaskProbe::new(s, 1);
        p.on_fault_injected(s);
        p.on_rf_write(0, 10, 120);
        p.on_launch_begin("k2", 300);
        assert!(!p.provably_masked());
    }

    #[test]
    fn trace_records_reasserts_and_hang() {
        use crate::fault::FaultKind;
        let golden = [];
        let s = site().with_kind(FaultKind::StuckAt0);
        let mut t = TraceObserver::new(s, 1, &golden, 0);
        t.on_fault_injected(s);
        t.on_stuck_reassert(0, Structure::VectorRegisterFile, 10, 130);
        t.on_stuck_reassert(0, Structure::VectorRegisterFile, 10, 140);
        t.on_stuck_reassert(0, Structure::VectorRegisterFile, 99, 150); // other word
        t.on_hang(9_999, 3);
        let r = t.into_record(16);
        assert_eq!(r.first_reassert, Some(130));
        assert_eq!(r.reasserts, 2);
        assert_eq!(r.hang, Some(9_999));
    }

    #[test]
    fn trace_records_control_corruption() {
        use crate::fault::{ControlTarget, FaultKind};
        let golden = [];
        let c = site().with_kind(FaultKind::Control(ControlTarget::ActiveMask));
        let mut t = TraceObserver::new(c, 1, &golden, 0);
        t.on_fault_injected(c);
        t.on_control_corrupt(c, 100);
        let r = t.into_record(16);
        assert_eq!(r.control_corrupt, Some(100));
        assert_eq!(r.hang, None);
    }

    #[test]
    fn probe_ignores_other_sms_and_structures() {
        let mut p = MaskProbe::new(site(), 4);
        p.on_fault_injected(site());
        p.on_rf_write(2, 10, 120); // different SM
        p.on_lds_write(0, 10, 121); // different structure
        assert!(!p.provably_masked());
    }
}
