//! # simt-sim — a cycle-level SIMT GPU simulator for reliability studies
//!
//! This crate is the substrate of the ISPASS 2017 reproduction: it plays the
//! role GPGPU-Sim 3.2.2 plays for NVIDIA GPUs and Multi2Sim 4.2 plays for
//! AMD GPUs in the original study. One simulator core, parameterised by an
//! [`ArchConfig`], models all four devices (G80, GT200, Fermi, Southern
//! Islands).
//!
//! Reliability work needs three things beyond ordinary performance
//! simulation, and they shape the design:
//!
//! 1. **Physical storage layout** — the vector register file, scalar
//!    register file and local memory (LDS) of every SM are real arrays of
//!    words whose *physical bit addresses* are stable, so a fault site
//!    ([`FaultSite`]) names an exact flip target, allocated or not.
//! 2. **Observer hooks** — every register/LDS read and write, block
//!    dispatch/retire and launch boundary is reported through the
//!    [`SimObserver`] trait (monomorphised, so the no-op observer costs
//!    nothing). ACE analysis and occupancy tracking in `grel-core` are pure
//!    consumers of these events.
//! 3. **Failure semantics** — a corrupted address, divergent barrier or
//!    runaway loop ends the launch with a [`Due`] (detected unrecoverable
//!    error), the outcome class the paper's fault-injection campaigns
//!    record alongside SDCs.
//!
//! ## Quick start
//!
//! ```
//! use simt_isa::{KernelBuilder, MemSpace, lower};
//! use simt_sim::{ArchConfig, Gpu, LaunchConfig};
//!
//! // out[i] = i  (one block of 64 threads)
//! let mut b = KernelBuilder::new("iota", 1);
//! let out = b.param(0);
//! let gid = b.vreg();
//! let addr = b.vreg();
//! b.global_tid_x(gid);
//! b.word_addr(addr, out, gid);
//! b.st(MemSpace::Global, addr, gid);
//! let kernel = b.build()?;
//!
//! let arch = ArchConfig::small_test_gpu();
//! let lowered = lower(&kernel, arch.caps())?;
//! let mut gpu = Gpu::new(arch);
//! let buf = gpu.alloc_words(64);
//! gpu.launch(&lowered, LaunchConfig::linear(1, 64), &[buf.addr()])?;
//! let words = gpu.read_words(buf, 64);
//! assert_eq!(words[7], 7);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod error;
pub mod fault;
pub mod gpu;
pub mod launch;
pub mod mem;
pub mod observer;
pub mod regfile;
pub mod session;
pub mod sm;
pub mod trace;
pub mod warp;

pub use cache::{Cache, CacheGeom, CacheStats};
pub use config::{ArchConfig, Latencies, SchedulerPolicy, Vendor};
pub use error::{Due, SimError};
pub use fault::{
    BatchPlane, ControlTarget, FaultKind, FaultModel, FaultModelKind, FaultSite, InvalidFaultSite,
    Structure, MAX_BATCH_SCENARIOS,
};
pub use gpu::{Buffer, Gpu, LaunchProgress};
pub use launch::{Dim, LaunchConfig, LaunchStats};
pub use observer::{
    BlockRegions, CountingObserver, HotspotCounters, HotspotObserver, NoopObserver, SimObserver,
};
pub use regfile::StuckBit;
pub use session::{Checkpoint, LaunchPlan, PlanStep, Session, SessionStatus, SessionTelemetry};
pub use trace::{GlobalWrite, GlobalWriteLog, MaskProbe, TraceObserver, TraceRecord, TAINT_CAP};
