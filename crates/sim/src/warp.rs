//! Warp contexts: the SIMT reconvergence stack, per-warp scoreboard and
//! lane bookkeeping.
//!
//! Control flow is structured (`if`/`else`/`end`, `loop`/`break`/`end`), so
//! divergence is handled by a small stack machine:
//!
//! * an `If` entry remembers the lanes parked for the `else` branch
//!   (`pending_else`) and the lanes that reconverge at `if.end` (`reconv`);
//! * a `Loop` entry accumulates the lanes that have broken out (`broken`);
//!   the loop iterates while any lane remains active and releases the
//!   broken lanes past `loop.end` when the last active lane leaves.
//!
//! `exit` removes lanes from *every* stack entry, which makes divergent
//! exits (possible under fault injection) converge instead of wedging the
//! warp.

use simt_isa::cfg::ControlMap;

/// A set of lanes, one bit per lane (warp sizes up to 64 supported).
pub type LaneMask = u64;

/// Returns the mask with the low `n` lanes set.
///
/// # Example
/// ```
/// use simt_sim::warp::full_mask;
/// assert_eq!(full_mask(3), 0b111);
/// assert_eq!(full_mask(64), u64::MAX);
/// ```
pub fn full_mask(n: u32) -> LaneMask {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// One entry of the SIMT reconvergence stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackEntry {
    /// A divergent `if` region.
    If {
        /// Lanes waiting to run the `else` branch.
        pending_else: LaneMask,
        /// Instruction index of the `else`, if the region has one.
        else_pc: Option<usize>,
        /// Lanes that reconverge at `if.end`.
        reconv: LaneMask,
        /// Instruction index of the `if.end`.
        end_pc: usize,
    },
    /// An active loop region.
    Loop {
        /// Lanes that have broken out and wait past `loop.end`.
        broken: LaneMask,
        /// Instruction index of the `loop.begin`.
        begin_pc: usize,
        /// Instruction index of the `loop.end`.
        end_pc: usize,
    },
}

/// The architectural state of one warp (minus register *values*, which
/// live in the SM's physical register file).
#[derive(Debug, Clone)]
pub struct Warp {
    /// Warp index within its block.
    pub warp_in_block: u32,
    /// Next instruction index.
    pub pc: usize,
    /// Currently active lanes.
    pub active: LaneMask,
    /// Lanes that executed `exit`.
    pub exited: LaneMask,
    /// Lanes that exist (the last warp of a block may be partial).
    pub live: LaneMask,
    /// The reconvergence stack.
    pub stack: Vec<StackEntry>,
    /// Per-predicate-register lane masks.
    pub preds: Vec<LaneMask>,
    /// Scoreboard: cycle at which each vector register's value is ready.
    pub vreg_ready: Vec<u64>,
    /// Scoreboard for scalar registers.
    pub sreg_ready: Vec<u64>,
    /// Scoreboard for predicate registers.
    pub pred_ready: Vec<u64>,
    /// Earliest cycle the warp may issue its next instruction.
    pub next_issue: u64,
    /// Warp is parked at a barrier.
    pub at_barrier: bool,
    /// All lanes have exited.
    pub finished: bool,
    /// Physical base word of this warp's vector registers in the SM RF.
    pub rf_base: u32,
    /// Physical base word of this warp's scalar registers in the SM SRF.
    pub srf_base: u32,
    /// Physical base word of the owning block's LDS region.
    pub lds_base: u32,
    /// LDS bytes owned by the block (for bounds checks).
    pub lds_bytes: u32,
    /// Block coordinates (ctaid).
    pub ctaid: (u32, u32),
    /// Index of the owning resident block within the SM.
    pub block_slot: usize,
}

impl Warp {
    /// Creates a warp with `lanes` live threads, all active at pc 0.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        warp_in_block: u32,
        lanes: u32,
        num_vregs: u16,
        num_sregs: u16,
        num_pregs: u8,
        rf_base: u32,
        srf_base: u32,
        lds_base: u32,
        lds_bytes: u32,
        ctaid: (u32, u32),
        block_slot: usize,
    ) -> Self {
        let live = full_mask(lanes);
        Warp {
            warp_in_block,
            pc: 0,
            active: live,
            exited: 0,
            live,
            stack: Vec::new(),
            preds: vec![0; num_pregs as usize],
            vreg_ready: vec![0; num_vregs as usize],
            sreg_ready: vec![0; num_sregs as usize],
            pred_ready: vec![0; num_pregs as usize],
            next_issue: 0,
            at_barrier: false,
            finished: false,
            rf_base,
            srf_base,
            lds_base,
            lds_bytes,
            ctaid,
            block_slot,
        }
    }

    /// Lanes that are live and have not exited.
    pub fn runnable_lanes(&self) -> LaneMask {
        self.live & !self.exited
    }

    /// Executes `if.begin` at instruction `idx` with the given taken mask.
    pub fn exec_if_begin(&mut self, idx: usize, taken: LaneMask, control: &ControlMap) {
        let info = control.if_info(idx).expect("validated if.begin");
        let taken = taken & self.active;
        let not_taken = self.active & !taken;
        if taken != 0 {
            let pending_else = if info.else_idx.is_some() {
                not_taken
            } else {
                0
            };
            self.stack.push(StackEntry::If {
                pending_else,
                else_pc: info.else_idx,
                reconv: self.active,
                end_pc: info.end_idx,
            });
            self.active = taken;
            self.pc = idx + 1;
        } else if let Some(else_idx) = info.else_idx {
            // All lanes go straight to the else branch.
            self.stack.push(StackEntry::If {
                pending_else: 0,
                else_pc: Some(else_idx),
                reconv: self.active,
                end_pc: info.end_idx,
            });
            self.pc = else_idx + 1;
        } else {
            // Nothing to do in the region: skip past if.end.
            self.pc = info.end_idx + 1;
        }
    }

    /// Executes `else`: park the then-lanes, release the else-lanes.
    pub fn exec_else(&mut self) {
        match self.stack.last_mut() {
            Some(StackEntry::If {
                pending_else,
                end_pc,
                ..
            }) => {
                let p = *pending_else;
                *pending_else = 0;
                let end = *end_pc;
                if p != 0 {
                    self.active = p;
                    self.pc += 1;
                } else {
                    // Nobody wants the else branch: reconverge now.
                    let _ = end;
                    self.pop_reconverge();
                }
            }
            _ => unreachable!("validated else always has an If on top"),
        }
    }

    /// Executes `if.end`: reconverge.
    pub fn exec_if_end(&mut self) {
        self.pop_reconverge();
    }

    fn pop_reconverge(&mut self) {
        match self.stack.pop() {
            Some(StackEntry::If { reconv, end_pc, .. }) => {
                self.active = reconv & !self.exited;
                self.pc = end_pc + 1;
                if self.active == 0 {
                    self.resume();
                }
            }
            _ => unreachable!("pop_reconverge on non-If entry"),
        }
    }

    /// Executes `loop.begin` at `idx`.
    pub fn exec_loop_begin(&mut self, idx: usize, control: &ControlMap) {
        let info = control.loop_info(idx).expect("validated loop.begin");
        self.stack.push(StackEntry::Loop {
            broken: 0,
            begin_pc: idx,
            end_pc: info.end_idx,
        });
        self.pc = idx + 1;
    }

    /// Executes `break` with the given breaking-lane mask.
    pub fn exec_break(&mut self, breaking: LaneMask) {
        let breaking = breaking & self.active;
        if breaking == 0 {
            self.pc += 1;
            return;
        }
        // Find the innermost loop (topmost Loop entry); strip the broken
        // lanes from every If entry above it.
        let loop_pos = self
            .stack
            .iter()
            .rposition(|e| matches!(e, StackEntry::Loop { .. }))
            .expect("validated break is inside a loop");
        for e in &mut self.stack[loop_pos + 1..] {
            if let StackEntry::If {
                pending_else,
                reconv,
                ..
            } = e
            {
                *pending_else &= !breaking;
                *reconv &= !breaking;
            }
        }
        if let StackEntry::Loop { broken, .. } = &mut self.stack[loop_pos] {
            *broken |= breaking;
        }
        self.active &= !breaking;
        if self.active == 0 {
            self.resume();
        } else {
            self.pc += 1;
        }
    }

    /// Executes `loop.end`: jump back while lanes remain.
    pub fn exec_loop_end(&mut self) {
        match self.stack.last() {
            Some(StackEntry::Loop { begin_pc, .. }) => {
                if self.active != 0 {
                    self.pc = begin_pc + 1;
                } else {
                    self.resume();
                }
            }
            _ => unreachable!("validated loop.end always has a Loop on top"),
        }
    }

    /// Executes `exit` for all active lanes.
    pub fn exec_exit(&mut self) {
        let ex = self.active;
        self.exited |= ex;
        for e in &mut self.stack {
            match e {
                StackEntry::If {
                    pending_else,
                    reconv,
                    ..
                } => {
                    *pending_else &= !ex;
                    *reconv &= !ex;
                }
                StackEntry::Loop { broken, .. } => {
                    *broken &= !ex;
                }
            }
        }
        self.active = 0;
        self.resume();
    }

    /// Unwinds the stack until some lanes become active or the warp
    /// finishes. Called whenever `active` reaches zero.
    fn resume(&mut self) {
        debug_assert_eq!(self.active, 0);
        loop {
            match self.stack.last_mut() {
                None => {
                    self.finished = true;
                    return;
                }
                Some(StackEntry::If {
                    pending_else,
                    else_pc,
                    ..
                }) if *pending_else != 0 => {
                    let p = *pending_else;
                    *pending_else = 0;
                    let target = else_pc.expect("pending else lanes imply an else");
                    self.active = p;
                    self.pc = target + 1;
                    return;
                }
                Some(StackEntry::If { .. }) => {
                    if let Some(StackEntry::If { reconv, end_pc, .. }) = self.stack.pop() {
                        self.active = reconv & !self.exited;
                        self.pc = end_pc + 1;
                        if self.active != 0 {
                            return;
                        }
                    }
                }
                Some(StackEntry::Loop { .. }) => {
                    if let Some(StackEntry::Loop { broken, end_pc, .. }) = self.stack.pop() {
                        self.active = broken & !self.exited;
                        self.pc = end_pc + 1;
                        if self.active != 0 {
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Per-lane `%tid.x` / `%tid.y` for a block of dimensions
    /// `(ntid_x, ntid_y)` and the given warp size.
    pub fn tid(&self, lane: u32, warp_size: u32, ntid_x: u32) -> (u32, u32) {
        let linear = self.warp_in_block * warp_size + lane;
        (linear % ntid_x, linear / ntid_x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{Instr, PReg};

    fn warp(lanes: u32) -> Warp {
        Warp::new(0, lanes, 8, 4, 2, 0, 0, 0, 0, (0, 0), 0)
    }

    fn ifb() -> Instr {
        Instr::IfBegin {
            p: PReg(0),
            negate: false,
        }
    }

    #[test]
    fn fresh_warp_state() {
        let w = warp(4);
        assert_eq!(w.active, 0b1111);
        assert_eq!(w.runnable_lanes(), 0b1111);
        assert!(!w.finished);
        assert_eq!(w.pc, 0);
    }

    #[test]
    fn if_then_else_reconverges() {
        // 0: if.begin  1: nop  2: else  3: nop  4: if.end  5: exit
        let body = vec![
            ifb(),
            Instr::Nop,
            Instr::Else,
            Instr::Nop,
            Instr::IfEnd,
            Instr::Exit,
        ];
        let cm = ControlMap::build(&body).unwrap();
        let mut w = warp(4);
        w.exec_if_begin(0, 0b0011, &cm);
        assert_eq!(w.active, 0b0011);
        assert_eq!(w.pc, 1);
        w.pc = 2; // then lanes reach else
        w.exec_else();
        assert_eq!(w.active, 0b1100, "else lanes released");
        assert_eq!(w.pc, 3);
        w.pc = 4;
        w.exec_if_end();
        assert_eq!(w.active, 0b1111, "reconverged");
        assert_eq!(w.pc, 5);
    }

    #[test]
    fn if_nobody_taken_jumps_to_else_branch() {
        let body = vec![
            ifb(),
            Instr::Nop,
            Instr::Else,
            Instr::Nop,
            Instr::IfEnd,
            Instr::Exit,
        ];
        let cm = ControlMap::build(&body).unwrap();
        let mut w = warp(4);
        w.exec_if_begin(0, 0, &cm);
        assert_eq!(w.pc, 3, "jumped into else body");
        assert_eq!(w.active, 0b1111);
        w.pc = 4;
        w.exec_if_end();
        assert_eq!(w.active, 0b1111);
        assert_eq!(w.pc, 5);
    }

    #[test]
    fn if_no_else_nobody_taken_skips_region() {
        let body = vec![ifb(), Instr::Nop, Instr::IfEnd, Instr::Exit];
        let cm = ControlMap::build(&body).unwrap();
        let mut w = warp(2);
        w.exec_if_begin(0, 0, &cm);
        assert_eq!(w.pc, 3, "skipped past if.end");
        assert!(w.stack.is_empty());
        assert_eq!(w.active, 0b11);
    }

    #[test]
    fn if_all_taken_with_else_skips_else_at_else() {
        let body = vec![
            ifb(),
            Instr::Nop,
            Instr::Else,
            Instr::Nop,
            Instr::IfEnd,
            Instr::Exit,
        ];
        let cm = ControlMap::build(&body).unwrap();
        let mut w = warp(2);
        w.exec_if_begin(0, 0b11, &cm);
        assert_eq!(w.active, 0b11);
        w.pc = 2;
        w.exec_else();
        assert_eq!(w.pc, 5, "nobody pending: jump past if.end");
        assert_eq!(w.active, 0b11);
        assert!(w.stack.is_empty());
    }

    #[test]
    fn loop_iterates_until_all_break() {
        // 0: loop.begin 1: break 2: nop 3: loop.end 4: exit
        let body = vec![
            Instr::LoopBegin,
            Instr::Break {
                p: PReg(0),
                negate: false,
            },
            Instr::Nop,
            Instr::LoopEnd,
            Instr::Exit,
        ];
        let cm = ControlMap::build(&body).unwrap();
        let mut w = warp(4);
        w.exec_loop_begin(0, &cm);
        assert_eq!(w.pc, 1);
        // Iteration 1: lane 0 breaks.
        w.exec_break(0b0001);
        assert_eq!(w.active, 0b1110);
        assert_eq!(w.pc, 2);
        w.pc = 3;
        w.exec_loop_end();
        assert_eq!(w.pc, 1, "jumped back");
        // Iteration 2: nobody breaks.
        w.exec_break(0);
        assert_eq!(w.pc, 2);
        w.pc = 3;
        w.exec_loop_end();
        assert_eq!(w.pc, 1);
        // Iteration 3: everyone breaks.
        w.exec_break(0b1110);
        assert_eq!(w.active, 0b1111, "all lanes reunited past loop.end");
        assert_eq!(w.pc, 4);
        assert!(w.stack.is_empty());
    }

    #[test]
    fn break_inside_if_strips_if_masks() {
        // 0: loop.begin 1: if.begin 2: break 3: if.end 4: loop.end 5: exit
        let body = vec![
            Instr::LoopBegin,
            ifb(),
            Instr::Break {
                p: PReg(0),
                negate: false,
            },
            Instr::IfEnd,
            Instr::LoopEnd,
            Instr::Exit,
        ];
        let cm = ControlMap::build(&body).unwrap();
        let mut w = warp(4);
        w.exec_loop_begin(0, &cm);
        w.pc = 1;
        w.exec_if_begin(1, 0b0011, &cm); // lanes 0,1 enter the if
        assert_eq!(w.active, 0b0011);
        w.exec_break(0b0011); // both break out of the loop
                              // active empty inside the if; resume should unwind to the if's
                              // reconv (lanes 2,3) at pc 4 (after if.end).
        assert_eq!(w.active, 0b1100);
        assert_eq!(w.pc, 4);
        w.exec_loop_end();
        assert_eq!(w.pc, 1, "remaining lanes iterate");
        w.exec_if_begin(1, 0b1100, &cm);
        w.exec_break(0b1100);
        assert_eq!(w.active, 0b1111, "everyone past the loop");
        assert_eq!(w.pc, 5);
        assert!(w.stack.is_empty());
    }

    #[test]
    fn exit_divergent_resumes_else_lanes() {
        // 0: if.begin 1: exit 2: else 3: nop 4: if.end 5: exit
        let body = vec![
            ifb(),
            Instr::Exit,
            Instr::Else,
            Instr::Nop,
            Instr::IfEnd,
            Instr::Exit,
        ];
        let cm = ControlMap::build(&body).unwrap();
        let mut w = warp(4);
        w.exec_if_begin(0, 0b0101, &cm);
        w.exec_exit(); // lanes 0,2 exit inside the then branch
        assert_eq!(w.exited, 0b0101);
        assert_eq!(w.active, 0b1010, "else lanes resumed");
        assert_eq!(w.pc, 3);
        w.pc = 4;
        w.exec_if_end();
        assert_eq!(w.active, 0b1010, "exited lanes stay gone");
        w.exec_exit();
        assert!(w.finished);
        assert_eq!(w.exited, 0b1111);
    }

    #[test]
    fn exit_all_finishes_warp() {
        let mut w = warp(8);
        w.exec_exit();
        assert!(w.finished);
        assert_eq!(w.runnable_lanes(), 0);
    }

    #[test]
    fn nested_loops_break_targets_inner() {
        // 0: loop.begin 1: loop.begin 2: break 3: loop.end 4: break 5: loop.end 6: exit
        let body = vec![
            Instr::LoopBegin,
            Instr::LoopBegin,
            Instr::Break {
                p: PReg(0),
                negate: false,
            },
            Instr::LoopEnd,
            Instr::Break {
                p: PReg(1),
                negate: false,
            },
            Instr::LoopEnd,
            Instr::Exit,
        ];
        let cm = ControlMap::build(&body).unwrap();
        let mut w = warp(2);
        w.exec_loop_begin(0, &cm);
        w.pc = 1;
        w.exec_loop_begin(1, &cm);
        assert_eq!(w.stack.len(), 2);
        w.exec_break(0b11); // inner break releases past inner loop.end
        assert_eq!(w.pc, 4);
        assert_eq!(w.stack.len(), 1);
        assert_eq!(w.active, 0b11);
        w.exec_break(0b11); // outer break
        assert_eq!(w.pc, 6);
        assert!(w.stack.is_empty());
    }

    #[test]
    fn partial_warp_masks() {
        let w = warp(3);
        assert_eq!(w.live, 0b111);
        assert_eq!(full_mask(0), 0);
    }

    #[test]
    fn tid_mapping() {
        let mut w = warp(8);
        w.warp_in_block = 1;
        // warp 1 of a (4, y) block with warp size 8: linear ids 8..16
        assert_eq!(w.tid(0, 8, 4), (0, 2));
        assert_eq!(w.tid(5, 8, 4), (1, 3));
    }
}
