//! The streaming multiprocessor (compute unit): block residency, warp
//! scheduling and instruction execution.

use crate::config::{ArchConfig, SchedulerPolicy};
use crate::error::Due;
use crate::fault::{ControlTarget, Structure};
use crate::launch::LaunchConfig;
use crate::mem::{GlobalMemory, MemorySystem};
use crate::observer::{BlockRegions, SimObserver};
use crate::regfile::{RegionAllocator, SmOverlay, StuckBit};
use crate::warp::{LaneMask, Warp};
use simt_isa::op::{eval_atom, eval_binop, eval_cmp, eval_terop, eval_unop};
use simt_isa::{Instr, LoweredKernel, MemSpace, Operand, Reg, SReg, Special, VReg};

/// A block resident on an SM.
#[derive(Debug, Clone)]
pub struct ResidentBlock {
    /// Block coordinates.
    pub ctaid: (u32, u32),
    /// Vector-RF region (words).
    pub rf_base: u32,
    /// Vector-RF region length (words).
    pub rf_len: u32,
    /// Scalar-RF region (words).
    pub srf_base: u32,
    /// Scalar-RF region length (words).
    pub srf_len: u32,
    /// LDS region (words).
    pub lds_base: u32,
    /// LDS region length (words).
    pub lds_len: u32,
    /// Warp slots owned by this block.
    pub warp_slots: Vec<usize>,
    /// Warps that have not finished.
    pub running_warps: u32,
    /// Warps currently parked at the barrier.
    pub at_barrier: u32,
}

/// Per-SM execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Vector (warp-level) instructions issued.
    pub warp_instructions: u64,
    /// Scalar instructions issued.
    pub scalar_instructions: u64,
    /// Thread-level instructions (sum of active lanes).
    pub thread_instructions: u64,
    /// Blocks retired.
    pub blocks_retired: u64,
    /// Cycles in which this SM issued at least one instruction.
    pub busy_cycles: u64,
}

/// One streaming multiprocessor with its physical storage structures.
#[derive(Debug, Clone)]
pub struct Sm {
    /// SM index within the device.
    pub id: u32,
    pub(crate) rf: Vec<u32>,
    pub(crate) srf: Vec<u32>,
    pub(crate) lds: Vec<u32>,
    rf_alloc: RegionAllocator,
    srf_alloc: RegionAllocator,
    lds_alloc: RegionAllocator,
    warps: Vec<Option<Warp>>,
    blocks: Vec<Option<ResidentBlock>>,
    /// Armed permanent stuck-at cells, re-asserted by the store
    /// intercepts on every write (empty in fault-free runs).
    stuck: Vec<StuckBit>,
    /// Batched-replay overlay shard; `None` outside a batched pass.
    pub(crate) overlay: Option<Box<SmOverlay>>,
    sched_ptr: usize,
    gto_current: Option<usize>,
    /// Set when a block retired since the device last redistributed work.
    pub retired_flag: bool,
    /// Execution counters.
    pub stats: SmStats,
}

/// How an operand is resolved for a warp-wide execution.
enum Resolved {
    /// Same value for every lane (immediates, uniform specials).
    Uniform(u32),
    /// A scalar register, kept with its physical word so the batched
    /// replay can look up per-scenario divergence.
    Sreg {
        /// Physical SRF word.
        phys: u32,
        /// Golden value.
        value: u32,
    },
    /// A per-lane vector register.
    VReg(u16),
    /// A per-lane special value.
    Special(Special),
}

/// Golden value of an operand validated to be warp-uniform.
fn uniform_value(r: &Resolved) -> u32 {
    match *r {
        Resolved::Uniform(v) | Resolved::Sreg { value: v, .. } => v,
        _ => unreachable!("validated scalar sources are uniform"),
    }
}

/// Iterates the set scenario indices of a batch mask.
fn scn_bits(mask: u64) -> impl Iterator<Item = u8> {
    (0..64u8).filter(move |s| mask >> s & 1 == 1)
}

impl Sm {
    /// Creates an idle SM with the architecture's storage sizes.
    pub fn new(id: u32, arch: &ArchConfig) -> Self {
        Sm {
            id,
            rf: vec![0; arch.rf_words_per_sm() as usize],
            srf: vec![0; arch.srf_words_per_sm() as usize],
            lds: vec![0; arch.lds_words_per_sm() as usize],
            rf_alloc: RegionAllocator::new(arch.rf_words_per_sm()),
            srf_alloc: RegionAllocator::new(arch.srf_words_per_sm()),
            lds_alloc: RegionAllocator::new(arch.lds_words_per_sm()),
            warps: (0..arch.max_warps_per_sm).map(|_| None).collect(),
            blocks: (0..arch.max_blocks_per_sm).map(|_| None).collect(),
            stuck: Vec::new(),
            overlay: None,
            sched_ptr: 0,
            gto_current: None,
            retired_flag: false,
            stats: SmStats::default(),
        }
    }

    /// Clears all storage and residency state (start of a launch).
    ///
    /// Armed stuck-at cells survive the reset (they are permanent
    /// faults) and re-assert on the zeroed storage.
    pub fn reset(&mut self) {
        self.rf.fill(0);
        self.srf.fill(0);
        self.lds.fill(0);
        for i in 0..self.stuck.len() {
            let s = self.stuck[i];
            self.force_stuck_now(s);
        }
        // The storage reset zeroes golden and faulty state alike, so all
        // batched-scenario divergence dies with it (pending forks
        // survive until the driver drains them).
        if let Some(ov) = self.overlay.as_deref_mut() {
            ov.clear_cells();
        }
        self.rf_alloc.reset();
        self.srf_alloc.reset();
        self.lds_alloc.reset();
        for w in &mut self.warps {
            *w = None;
        }
        for b in &mut self.blocks {
            *b = None;
        }
        self.sched_ptr = 0;
        self.gto_current = None;
        self.retired_flag = false;
    }

    /// Whether any block is resident.
    pub fn busy(&self) -> bool {
        self.blocks.iter().any(Option::is_some)
    }

    /// Vector-RF words currently allocated (occupancy numerator).
    pub fn rf_allocated(&self) -> u32 {
        self.rf_alloc.allocated()
    }

    /// LDS words currently allocated.
    pub fn lds_allocated(&self) -> u32 {
        self.lds_alloc.allocated()
    }

    /// Scalar-RF words currently allocated.
    pub fn srf_allocated(&self) -> u32 {
        self.srf_alloc.allocated()
    }

    /// Flips one bit of the vector register file.
    pub fn flip_rf_bit(&mut self, word: u32, bit: u8) {
        if let Some(w) = self.rf.get_mut(word as usize) {
            *w ^= 1 << bit;
        }
    }

    /// Flips one bit of the scalar register file.
    pub fn flip_srf_bit(&mut self, word: u32, bit: u8) {
        if let Some(w) = self.srf.get_mut(word as usize) {
            *w ^= 1 << bit;
        }
    }

    /// Flips one bit of the LDS.
    pub fn flip_lds_bit(&mut self, word: u32, bit: u8) {
        if let Some(w) = self.lds.get_mut(word as usize) {
            *w ^= 1 << bit;
        }
    }

    /// Forces a stuck cell's polarity onto current storage (no observer:
    /// arming is not a program write).
    fn force_stuck_now(&mut self, s: StuckBit) {
        let target = match s.structure {
            Structure::VectorRegisterFile => self.rf.get_mut(s.word as usize),
            Structure::ScalarRegisterFile => self.srf.get_mut(s.word as usize),
            Structure::LocalMemory => self.lds.get_mut(s.word as usize),
        };
        if let Some(w) = target {
            *w = s.force(*w);
        }
    }

    /// Arms a permanent stuck-at cell: the bit is forced immediately and
    /// re-asserted on every subsequent write through the store
    /// intercepts (and across [`Sm::reset`]).
    pub fn arm_stuck(&mut self, s: StuckBit) {
        self.force_stuck_now(s);
        self.stuck.push(s);
    }

    /// The armed stuck-at cells.
    pub fn stuck_faults(&self) -> &[StuckBit] {
        &self.stuck
    }

    /// Applies a control-unit fault: flips `bit` of the targeted
    /// parallelism-management state. `word` selects the warp slot (the
    /// block slot for barrier counters). Returns `true` when live state
    /// was corrupted — an empty or finished slot is a no-op, i.e. the
    /// fault is architecturally masked.
    pub fn apply_control_fault(&mut self, target: ControlTarget, word: u32, bit: u8) -> bool {
        match target {
            ControlTarget::SchedulerSlot => match self.warp_slot_mut(word) {
                Some(w) => {
                    w.next_issue ^= 1u64 << bit;
                    true
                }
                None => false,
            },
            ControlTarget::ActiveMask => match self.warp_slot_mut(word) {
                Some(w) => {
                    w.active ^= 1u64 << bit;
                    true
                }
                None => false,
            },
            ControlTarget::Scoreboard => match self.warp_slot_mut(word) {
                Some(w) if !w.vreg_ready.is_empty() => {
                    let idx = bit as usize % w.vreg_ready.len();
                    w.vreg_ready[idx] ^= 1u64 << bit;
                    true
                }
                _ => false,
            },
            ControlTarget::BarrierCounter => {
                let n = self.blocks.len();
                if n == 0 {
                    return false;
                }
                match self.blocks[word as usize % n].as_mut() {
                    Some(b) => {
                        b.at_barrier ^= 1u32 << bit;
                        true
                    }
                    None => false,
                }
            }
        }
    }

    /// The live (unfinished) warp in slot `word % slots`, if any.
    fn warp_slot_mut(&mut self, word: u32) -> Option<&mut Warp> {
        let n = self.warps.len();
        if n == 0 {
            return None;
        }
        self.warps[word as usize % n]
            .as_mut()
            .filter(|w| !w.finished)
    }

    /// Warps currently parked at a barrier (hang attribution: nonzero
    /// parked warps at watchdog expiry indicate a barrier deadlock).
    pub fn parked_warps(&self) -> u32 {
        self.warps
            .iter()
            .flatten()
            .filter(|w| w.at_barrier && !w.finished)
            .count() as u32
    }

    // ---- storage write intercepts ----
    //
    // Every program-visible write of the three storage arrays funnels
    // through these helpers so permanent faults can re-assert. The
    // fault-free path costs one `is_empty` check; observer call order is
    // identical to the historical direct stores.

    /// Forces armed stuck bits of `(structure, word)` into `value`.
    fn stuck_adjust(&self, structure: Structure, word: u32, value: u32) -> u32 {
        let mut v = value;
        for s in &self.stuck {
            if s.structure == structure && s.word == word {
                v = s.force(v);
            }
        }
        v
    }

    /// Stores to a vector-RF word, re-asserting stuck bits.
    fn store_rf<O: SimObserver>(&mut self, phys: u32, value: u32, cycle: u64, obs: &mut O) {
        let stored = if self.stuck.is_empty() {
            value
        } else {
            self.stuck_adjust(Structure::VectorRegisterFile, phys, value)
        };
        self.rf[phys as usize] = stored;
        if let Some(ov) = self.overlay.as_deref_mut() {
            ov.clear_word(Structure::VectorRegisterFile, phys);
        }
        obs.on_rf_write(self.id, phys, cycle);
        if stored != value {
            obs.on_stuck_reassert(self.id, Structure::VectorRegisterFile, phys, cycle);
        }
    }

    /// Stores to a scalar-RF word, re-asserting stuck bits.
    fn store_srf<O: SimObserver>(&mut self, phys: u32, value: u32, cycle: u64, obs: &mut O) {
        let stored = if self.stuck.is_empty() {
            value
        } else {
            self.stuck_adjust(Structure::ScalarRegisterFile, phys, value)
        };
        self.srf[phys as usize] = stored;
        if let Some(ov) = self.overlay.as_deref_mut() {
            ov.clear_word(Structure::ScalarRegisterFile, phys);
        }
        obs.on_srf_write(self.id, phys, cycle);
        if stored != value {
            obs.on_stuck_reassert(self.id, Structure::ScalarRegisterFile, phys, cycle);
        }
    }

    /// Stores to an LDS word, re-asserting stuck bits.
    fn store_lds<O: SimObserver>(&mut self, word: u32, value: u32, cycle: u64, obs: &mut O) {
        let stored = if self.stuck.is_empty() {
            value
        } else {
            self.stuck_adjust(Structure::LocalMemory, word, value)
        };
        self.lds[word as usize] = stored;
        if let Some(ov) = self.overlay.as_deref_mut() {
            ov.clear_word(Structure::LocalMemory, word);
        }
        obs.on_lds_write(self.id, word, cycle);
        if stored != value {
            obs.on_stuck_reassert(self.id, Structure::LocalMemory, word, cycle);
        }
    }

    // ---- batched-replay overlay plumbing ----
    //
    // During a bit-plane batched pass the SM executes pure golden state;
    // each scenario's divergence lives in overlay cells. Reads gather the
    // scenario masks of their source words, divergent results re-assert
    // on the destination after the golden write cleared it, and any
    // divergence that would change *control or addressing* (predicates,
    // addresses, atomics) forks the scenario out of the pass instead.
    // All helpers fast-path to nothing when no overlay is present.

    /// Scenario-divergence mask of a resolved operand for one warp lane.
    fn scn_mask(&self, warp: &Warp, r: &Resolved, lane: u32, warp_size: u32) -> u64 {
        let Some(ov) = self.overlay.as_deref() else {
            return 0;
        };
        match *r {
            Resolved::Uniform(_) | Resolved::Special(_) => 0,
            Resolved::Sreg { phys, .. } => ov
                .cell(Structure::ScalarRegisterFile, phys)
                .map_or(0, |c| c.mask),
            Resolved::VReg(reg) => {
                let phys = warp.rf_base + reg as u32 * warp_size + lane;
                ov.cell(Structure::VectorRegisterFile, phys)
                    .map_or(0, |c| c.mask)
            }
        }
    }

    /// Scenario `s`'s value of a resolved operand (golden unless overlaid).
    fn scn_value(
        &self,
        warp: &Warp,
        r: &Resolved,
        lane: u32,
        warp_size: u32,
        s: u8,
        golden: u32,
    ) -> u32 {
        let Some(ov) = self.overlay.as_deref() else {
            return golden;
        };
        let cell = match *r {
            Resolved::Uniform(_) | Resolved::Special(_) => None,
            Resolved::Sreg { phys, .. } => ov.cell(Structure::ScalarRegisterFile, phys),
            Resolved::VReg(reg) => {
                let phys = warp.rf_base + reg as u32 * warp_size + lane;
                ov.cell(Structure::VectorRegisterFile, phys)
            }
        };
        cell.and_then(|c| c.get(s)).unwrap_or(golden)
    }

    /// Divergent per-scenario results of one destination write: every
    /// scenario touching a source recomputes the op with its substituted
    /// operands; results equal to the golden value re-converge and are
    /// dropped. Must be called *before* the golden write (the
    /// destination may alias a source).
    #[allow(clippy::too_many_arguments)]
    fn scn_divergent(
        &self,
        warp: &Warp,
        srcs: &[&Resolved],
        golds: &[u32],
        lane: u32,
        warp_size: u32,
        golden_out: u32,
        f: &dyn Fn(&[u32]) -> u32,
    ) -> Vec<(u8, u32)> {
        if self.overlay.is_none() {
            return Vec::new();
        }
        let mut m = 0u64;
        for r in srcs {
            m |= self.scn_mask(warp, r, lane, warp_size);
        }
        if m == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut vals = [0u32; 3];
        for s in scn_bits(m) {
            for (i, r) in srcs.iter().enumerate() {
                vals[i] = self.scn_value(warp, r, lane, warp_size, s, golds[i]);
            }
            let v = f(&vals[..srcs.len()]);
            if v != golden_out {
                out.push((s, v));
            }
        }
        out
    }

    /// Re-asserts divergent results on a destination word (after the
    /// golden write cleared its cell).
    fn scn_assert(&mut self, structure: Structure, word: u32, entries: Vec<(u8, u32)>) {
        if entries.is_empty() {
            return;
        }
        let ov = self.overlay.get_or_insert_with(Default::default);
        for (s, v) in entries {
            ov.assert_value(structure, word, s, v);
        }
    }

    /// Requests forks for the scenarios in `mask`: their divergence is
    /// about to change control flow, addressing or an atomic, which the
    /// shared golden pass cannot carry.
    fn scn_fork(&mut self, mask: u64) {
        if mask != 0 {
            self.overlay
                .get_or_insert_with(Default::default)
                .pending_forks |= mask;
        }
    }

    /// Writes scenario `s`'s divergent words into physical storage and
    /// drops the overlay shard (forked private replays run on real state).
    pub(crate) fn materialize_scenario(&mut self, s: u8) {
        if let Some(ov) = self.overlay.take() {
            for (structure, word, v) in ov.scenario_values(s) {
                let arr = match structure {
                    Structure::VectorRegisterFile => &mut self.rf,
                    Structure::ScalarRegisterFile => &mut self.srf,
                    Structure::LocalMemory => &mut self.lds,
                };
                if let Some(slot) = arr.get_mut(word as usize) {
                    *slot = v;
                }
            }
        }
    }

    /// Attempts to make the block `ctaid` resident; returns `false` when a
    /// resource (warp slots, block slot, RF, SRF, LDS) is exhausted.
    #[allow(clippy::too_many_arguments)]
    pub fn try_dispatch<O: SimObserver>(
        &mut self,
        kernel: &LoweredKernel,
        cfg: &LaunchConfig,
        ctaid: (u32, u32),
        params: &[u32],
        arch: &ArchConfig,
        cycle: u64,
        obs: &mut O,
    ) -> bool {
        let warp_size = arch.warp_size;
        let threads = cfg.threads_per_block();
        let warps_n = cfg.warps_per_block(warp_size);
        let free_slots: Vec<usize> = self
            .warps
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.is_none().then_some(i))
            .take(warps_n as usize)
            .collect();
        if free_slots.len() < warps_n as usize {
            return false;
        }
        let Some(block_slot) = self.blocks.iter().position(Option::is_none) else {
            return false;
        };
        let rf_len = warps_n * warp_size * kernel.vregs_per_thread() as u32;
        let srf_len = warps_n * kernel.sregs_per_warp() as u32;
        let lds_len = kernel.shared_bytes().div_ceil(4);
        let Some(rf_base) = self.rf_alloc.alloc(rf_len) else {
            return false;
        };
        let Some(srf_base) = self.srf_alloc.alloc(srf_len) else {
            self.rf_alloc.free(rf_base, rf_len);
            return false;
        };
        let Some(lds_base) = self.lds_alloc.alloc(lds_len) else {
            self.rf_alloc.free(rf_base, rf_len);
            self.srf_alloc.free(srf_base, srf_len);
            return false;
        };

        let vregs = kernel.vregs_per_thread() as u32;
        let sregs = kernel.sregs_per_warp() as u32;
        let mut warp_slots = Vec::with_capacity(warps_n as usize);
        for w in 0..warps_n {
            let lanes = (threads - w * warp_size).min(warp_size);
            let slot = free_slots[w as usize];
            let warp = Warp::new(
                w,
                lanes,
                kernel.vregs_per_thread(),
                kernel.sregs_per_warp(),
                kernel.num_pregs(),
                rf_base + w * vregs * warp_size,
                srf_base + w * sregs,
                lds_base,
                lds_len * 4,
                ctaid,
                block_slot,
            );
            // Preload kernel parameters into their lowered registers.
            for (i, &value) in params.iter().enumerate() {
                match kernel.param_reg(i as u16) {
                    Reg::S(SReg(r)) => {
                        let phys = warp.srf_base + r as u32;
                        self.store_srf(phys, value, cycle, obs);
                    }
                    Reg::V(VReg(r)) => {
                        for lane in 0..lanes {
                            let phys = warp.rf_base + r as u32 * warp_size + lane;
                            self.store_rf(phys, value, cycle, obs);
                        }
                    }
                }
            }
            self.warps[slot] = Some(warp);
            warp_slots.push(slot);
        }
        self.blocks[block_slot] = Some(ResidentBlock {
            ctaid,
            rf_base,
            rf_len,
            srf_base,
            srf_len,
            lds_base,
            lds_len,
            warp_slots,
            running_warps: warps_n,
            at_barrier: 0,
        });
        obs.on_block_dispatch(
            self.id,
            BlockRegions {
                rf_base,
                rf_len,
                srf_base,
                srf_len,
                lds_base,
                lds_len,
            },
            cycle,
        );
        true
    }

    /// Checks whether the warp's next instruction has all operands ready.
    fn deps_ready(&self, warp: &Warp, instr: &Instr, cycle: u64) -> bool {
        let mut ready = true;
        if let Some(d) = instr.dst_reg() {
            ready &= match d {
                Reg::V(VReg(r)) => warp.vreg_ready[r as usize] <= cycle,
                Reg::S(SReg(r)) => warp.sreg_ready[r as usize] <= cycle,
            };
        }
        instr.for_each_src(|op| {
            if let Operand::Reg(r) = op {
                ready &= match r {
                    Reg::V(VReg(i)) => warp.vreg_ready[i as usize] <= cycle,
                    Reg::S(SReg(i)) => warp.sreg_ready[i as usize] <= cycle,
                };
            }
        });
        if let Some(p) = instr.src_pred() {
            ready &= warp.pred_ready[p.0 as usize] <= cycle;
        }
        if let Some(p) = instr.dst_pred() {
            ready &= warp.pred_ready[p.0 as usize] <= cycle;
        }
        ready
    }

    fn warp_issuable(&self, slot: usize, kernel: &LoweredKernel, cycle: u64) -> bool {
        match &self.warps[slot] {
            Some(w) if !w.finished && !w.at_barrier && w.next_issue <= cycle => {
                self.deps_ready(w, &kernel.body()[w.pc], cycle)
            }
            _ => false,
        }
    }

    /// Picks the next warp to issue from, per the scheduling policy.
    fn pick_warp(
        &mut self,
        kernel: &LoweredKernel,
        cycle: u64,
        policy: SchedulerPolicy,
    ) -> Option<usize> {
        let n = self.warps.len();
        match policy {
            SchedulerPolicy::Lrr => {
                for off in 1..=n {
                    let slot = (self.sched_ptr + off) % n;
                    if self.warp_issuable(slot, kernel, cycle) {
                        self.sched_ptr = slot;
                        return Some(slot);
                    }
                }
                None
            }
            SchedulerPolicy::Gto => {
                if let Some(cur) = self.gto_current {
                    if self.warp_issuable(cur, kernel, cycle) {
                        return Some(cur);
                    }
                }
                let pick = (0..n).find(|&s| self.warp_issuable(s, kernel, cycle));
                self.gto_current = pick;
                pick
            }
        }
    }

    /// Runs one SM cycle: issues up to `issue_width` instructions.
    ///
    /// # Errors
    ///
    /// Propagates any [`Due`] raised by the executed instructions.
    #[allow(clippy::too_many_arguments)]
    pub fn step<O: SimObserver>(
        &mut self,
        cycle: u64,
        kernel: &LoweredKernel,
        cfg: &LaunchConfig,
        arch: &ArchConfig,
        mem: &mut GlobalMemory,
        mem_sys: &mut MemorySystem,
        obs: &mut O,
    ) -> Result<(), Due> {
        let mut issued = false;
        for _ in 0..arch.issue_width {
            let Some(slot) = self.pick_warp(kernel, cycle, arch.scheduler) else {
                break;
            };
            self.exec_instr(slot, cycle, kernel, cfg, arch, mem, mem_sys, obs)?;
            issued = true;
        }
        if issued {
            self.stats.busy_cycles += 1;
        }
        Ok(())
    }

    /// Executes the next instruction of the warp in `slot`.
    #[allow(clippy::too_many_arguments)]
    fn exec_instr<O: SimObserver>(
        &mut self,
        slot: usize,
        cycle: u64,
        kernel: &LoweredKernel,
        cfg: &LaunchConfig,
        arch: &ArchConfig,
        mem: &mut GlobalMemory,
        mem_sys: &mut MemorySystem,
        obs: &mut O,
    ) -> Result<(), Due> {
        let mut warp = self.warps[slot].take().expect("picked warp exists");
        let idx = warp.pc;
        let instr = kernel.body()[idx];
        let warp_size = arch.warp_size;
        let ntid = (cfg.block.x, cfg.block.y);
        let nctaid = (cfg.grid.x, cfg.grid.y);
        let issue_cycles = arch.warp_issue_cycles() as u64;
        let mut barrier_requested = false;

        let result = (|| -> Result<(), Due> {
            match instr {
                Instr::Un { op, dst, a } => {
                    let lat = un_latency(arch, op);
                    self.exec_alu1(
                        &mut warp,
                        dst,
                        a,
                        |x| eval_unop(op, x),
                        lat,
                        cycle,
                        warp_size,
                        ntid,
                        nctaid,
                        obs,
                    );
                    warp.next_issue = cycle + issue_cycles;
                    warp.pc += 1;
                }
                Instr::Bin { op, dst, a, b } => {
                    let lat = bin_latency(arch, op);
                    self.exec_alu2(
                        &mut warp,
                        dst,
                        a,
                        b,
                        |x, y| eval_binop(op, x, y),
                        lat,
                        cycle,
                        warp_size,
                        ntid,
                        nctaid,
                        obs,
                    );
                    warp.next_issue = cycle + issue_cycles;
                    warp.pc += 1;
                }
                Instr::Ter { op, dst, a, b, c } => {
                    let lat = match op {
                        simt_isa::TerOp::IMad => arch.lat.imul,
                        simt_isa::TerOp::FFma => arch.lat.fp,
                    };
                    self.exec_alu3(
                        &mut warp,
                        dst,
                        a,
                        b,
                        c,
                        |x, y, z| eval_terop(op, x, y, z),
                        lat,
                        cycle,
                        warp_size,
                        ntid,
                        nctaid,
                        obs,
                    );
                    warp.next_issue = cycle + issue_cycles;
                    warp.pc += 1;
                }
                Instr::SetP {
                    op,
                    float,
                    pd,
                    a,
                    b,
                } => {
                    let ra = self.resolve_cfg(&warp, a, ntid, nctaid, cycle, obs);
                    let rb = self.resolve_cfg(&warp, b, ntid, nctaid, cycle, obs);
                    let mut mask: LaneMask = 0;
                    for lane in lanes(warp.active) {
                        let x =
                            self.lane_value(&warp, &ra, lane, warp_size, ntid, nctaid, cycle, obs);
                        let y =
                            self.lane_value(&warp, &rb, lane, warp_size, ntid, nctaid, cycle, obs);
                        let bit = eval_cmp(op, x, y, float);
                        if bit {
                            mask |= 1 << lane;
                        }
                        // A scenario whose compare flips the predicate
                        // would diverge in *control flow* — the shared
                        // pass cannot carry that, so it forks.
                        if self.overlay.is_some() {
                            let m = self.scn_mask(&warp, &ra, lane, warp_size)
                                | self.scn_mask(&warp, &rb, lane, warp_size);
                            let mut forks = 0u64;
                            for s in scn_bits(m) {
                                let xs = self.scn_value(&warp, &ra, lane, warp_size, s, x);
                                let ys = self.scn_value(&warp, &rb, lane, warp_size, s, y);
                                if eval_cmp(op, xs, ys, float) != bit {
                                    forks |= 1 << s;
                                }
                            }
                            self.scn_fork(forks);
                        }
                    }
                    let old = warp.preds[pd.0 as usize];
                    warp.preds[pd.0 as usize] = (old & !warp.active) | mask;
                    warp.pred_ready[pd.0 as usize] = cycle + arch.lat.alu as u64;
                    self.stats.warp_instructions += 1;
                    self.stats.thread_instructions += warp.active.count_ones() as u64;
                    warp.next_issue = cycle + issue_cycles;
                    warp.pc += 1;
                }
                Instr::Sel { p, dst, a, b } => {
                    let pmask = warp.preds[p.0 as usize];
                    let ra = self.resolve_cfg(&warp, a, ntid, nctaid, cycle, obs);
                    let rb = self.resolve_cfg(&warp, b, ntid, nctaid, cycle, obs);
                    let d = vreg_of(dst);
                    for lane in lanes(warp.active) {
                        let x =
                            self.lane_value(&warp, &ra, lane, warp_size, ntid, nctaid, cycle, obs);
                        let y =
                            self.lane_value(&warp, &rb, lane, warp_size, ntid, nctaid, cycle, obs);
                        let take_x = pmask >> lane & 1 == 1;
                        let v = if take_x { x } else { y };
                        // The predicate is golden for every unforked
                        // scenario (a divergent SetP forks), so the
                        // select direction is shared; only values differ.
                        let dv = self.scn_divergent(
                            &warp,
                            &[&ra, &rb],
                            &[x, y],
                            lane,
                            warp_size,
                            v,
                            &|q| {
                                if take_x {
                                    q[0]
                                } else {
                                    q[1]
                                }
                            },
                        );
                        self.write_vreg(&warp, d, lane, v, warp_size, cycle, obs);
                        if !dv.is_empty() {
                            let phys = warp.rf_base + d as u32 * warp_size + lane;
                            self.scn_assert(Structure::VectorRegisterFile, phys, dv);
                        }
                    }
                    warp.vreg_ready[d as usize] = cycle + arch.lat.alu as u64;
                    self.stats.warp_instructions += 1;
                    self.stats.thread_instructions += warp.active.count_ones() as u64;
                    warp.next_issue = cycle + issue_cycles;
                    warp.pc += 1;
                }
                Instr::Ld {
                    space,
                    dst,
                    addr,
                    offset,
                } => {
                    self.exec_load(
                        &mut warp, space, dst, addr, offset, cycle, arch, mem, mem_sys, ntid,
                        nctaid, obs,
                    )?;
                    warp.next_issue = cycle + issue_cycles;
                    warp.pc += 1;
                }
                Instr::St {
                    space,
                    addr,
                    offset,
                    src,
                } => {
                    self.exec_store(
                        &mut warp, space, addr, offset, src, cycle, arch, mem, mem_sys, ntid,
                        nctaid, obs,
                    )?;
                    warp.next_issue = cycle + issue_cycles;
                    warp.pc += 1;
                }
                Instr::Atom {
                    space,
                    op,
                    dst,
                    addr,
                    offset,
                    src,
                } => {
                    self.exec_atomic(
                        &mut warp, space, op, dst, addr, offset, src, cycle, arch, mem, mem_sys,
                        ntid, nctaid, obs,
                    )?;
                    warp.next_issue = cycle + issue_cycles;
                    warp.pc += 1;
                }
                Instr::Bar => {
                    if warp.active != warp.runnable_lanes() {
                        return Err(Due::BarrierDivergence { sm: self.id, cycle });
                    }
                    barrier_requested = true;
                    self.stats.warp_instructions += 1;
                    warp.next_issue = cycle + issue_cycles;
                    warp.pc += 1;
                }
                Instr::IfBegin { p, negate } => {
                    let pm = warp.preds[p.0 as usize];
                    let taken = if negate { !pm } else { pm };
                    warp.exec_if_begin(idx, taken, kernel.control());
                    self.stats.warp_instructions += 1;
                    warp.next_issue = cycle + 1;
                }
                Instr::Else => {
                    warp.exec_else();
                    self.stats.warp_instructions += 1;
                    warp.next_issue = cycle + 1;
                }
                Instr::IfEnd => {
                    warp.exec_if_end();
                    self.stats.warp_instructions += 1;
                    warp.next_issue = cycle + 1;
                }
                Instr::LoopBegin => {
                    warp.exec_loop_begin(idx, kernel.control());
                    self.stats.warp_instructions += 1;
                    warp.next_issue = cycle + 1;
                }
                Instr::Break { p, negate } => {
                    let pm = warp.preds[p.0 as usize];
                    let mask = if negate { !pm } else { pm };
                    warp.exec_break(mask);
                    self.stats.warp_instructions += 1;
                    warp.next_issue = cycle + 1;
                }
                Instr::LoopEnd => {
                    warp.exec_loop_end();
                    self.stats.warp_instructions += 1;
                    warp.next_issue = cycle + 1;
                }
                Instr::Exit => {
                    warp.exec_exit();
                    self.stats.warp_instructions += 1;
                    warp.next_issue = cycle + 1;
                }
                Instr::Nop => {
                    self.stats.warp_instructions += 1;
                    warp.next_issue = cycle + issue_cycles;
                    warp.pc += 1;
                }
            }
            Ok(())
        })();

        // Running off the end of the body terminates the warp like `exit`.
        if !warp.finished && warp.pc >= kernel.body().len() {
            warp.exec_exit();
        }
        let finished = warp.finished;
        let block_slot = warp.block_slot;
        if barrier_requested {
            warp.at_barrier = true;
        }
        self.warps[slot] = Some(warp);
        result?;

        if finished {
            let block = self.blocks[block_slot].as_mut().expect("block resident");
            block.running_warps -= 1;
            if block.running_warps == 0 {
                self.retire_block(block_slot, cycle, obs);
            } else if block.at_barrier == block.running_warps {
                self.release_barrier(block_slot);
            }
        } else if barrier_requested {
            let block = self.blocks[block_slot].as_mut().expect("block resident");
            block.at_barrier += 1;
            if block.at_barrier == block.running_warps {
                self.release_barrier(block_slot);
            }
        }
        Ok(())
    }

    fn release_barrier(&mut self, block_slot: usize) {
        let slots = self.blocks[block_slot]
            .as_ref()
            .expect("block resident")
            .warp_slots
            .clone();
        for s in slots {
            if let Some(w) = self.warps[s].as_mut() {
                w.at_barrier = false;
            }
        }
        if let Some(b) = self.blocks[block_slot].as_mut() {
            b.at_barrier = 0;
        }
    }

    fn retire_block<O: SimObserver>(&mut self, block_slot: usize, cycle: u64, obs: &mut O) {
        let block = self.blocks[block_slot].take().expect("block resident");
        for s in &block.warp_slots {
            self.warps[*s] = None;
        }
        self.rf_alloc.free(block.rf_base, block.rf_len);
        self.srf_alloc.free(block.srf_base, block.srf_len);
        self.lds_alloc.free(block.lds_base, block.lds_len);
        self.stats.blocks_retired += 1;
        self.retired_flag = true;
        obs.on_block_retire(
            self.id,
            BlockRegions {
                rf_base: block.rf_base,
                rf_len: block.rf_len,
                srf_base: block.srf_base,
                srf_len: block.srf_len,
                lds_base: block.lds_base,
                lds_len: block.lds_len,
            },
            cycle,
        );
    }

    // ---- operand plumbing ----

    /// Resolves uniform operands once per instruction; defers per-lane ones.
    fn resolve<O: SimObserver>(
        &mut self,
        warp: &Warp,
        op: Operand,
        cycle: u64,
        obs: &mut O,
    ) -> Resolved {
        match op {
            Operand::Imm(v) => Resolved::Uniform(v),
            Operand::Reg(Reg::S(SReg(r))) => {
                let phys = warp.srf_base + r as u32;
                obs.on_srf_read(self.id, phys, cycle);
                Resolved::Sreg {
                    phys,
                    value: self.srf[phys as usize],
                }
            }
            Operand::Reg(Reg::V(VReg(r))) => Resolved::VReg(r),
            Operand::Special(s) if !s.is_per_lane() => {
                Resolved::Uniform(self.uniform_special(warp, s))
            }
            Operand::Special(s) => Resolved::Special(s),
        }
    }

    fn uniform_special(&self, warp: &Warp, s: Special) -> u32 {
        match s {
            Special::CtaIdX => warp.ctaid.0,
            Special::CtaIdY => warp.ctaid.1,
            Special::WarpId => warp.warp_in_block,
            // NTid/NCta are substituted by lane_value (needs cfg); handled
            // there — this arm is unreachable for them.
            _ => unreachable!("per-launch specials resolved in lane_value"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn lane_value<O: SimObserver>(
        &mut self,
        warp: &Warp,
        r: &Resolved,
        lane: u32,
        warp_size: u32,
        ntid: (u32, u32),
        _nctaid: (u32, u32),
        cycle: u64,
        obs: &mut O,
    ) -> u32 {
        match *r {
            Resolved::Uniform(v) | Resolved::Sreg { value: v, .. } => v,
            Resolved::VReg(reg) => {
                let phys = warp.rf_base + reg as u32 * warp_size + lane;
                obs.on_rf_read(self.id, phys, cycle);
                self.rf[phys as usize]
            }
            Resolved::Special(s) => match s {
                Special::TidX => warp.tid(lane, warp_size, ntid.0).0,
                Special::TidY => warp.tid(lane, warp_size, ntid.0).1,
                Special::LaneId => lane,
                _ => unreachable!("uniform specials resolved earlier"),
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn write_vreg<O: SimObserver>(
        &mut self,
        warp: &Warp,
        reg: u16,
        lane: u32,
        value: u32,
        warp_size: u32,
        cycle: u64,
        obs: &mut O,
    ) {
        let phys = warp.rf_base + reg as u32 * warp_size + lane;
        self.store_rf(phys, value, cycle, obs);
    }

    /// `resolve` fix-up for NTid/NCta specials, which need launch config.
    fn resolve_cfg<O: SimObserver>(
        &mut self,
        warp: &Warp,
        op: Operand,
        ntid: (u32, u32),
        nctaid: (u32, u32),
        cycle: u64,
        obs: &mut O,
    ) -> Resolved {
        match op {
            Operand::Special(Special::NTidX) => Resolved::Uniform(ntid.0),
            Operand::Special(Special::NTidY) => Resolved::Uniform(ntid.1),
            Operand::Special(Special::NCtaIdX) => Resolved::Uniform(nctaid.0),
            Operand::Special(Special::NCtaIdY) => Resolved::Uniform(nctaid.1),
            other => self.resolve(warp, other, cycle, obs),
        }
    }

    // ---- ALU bodies ----

    #[allow(clippy::too_many_arguments)]
    fn exec_alu1<O: SimObserver>(
        &mut self,
        warp: &mut Warp,
        dst: Reg,
        a: Operand,
        f: impl Fn(u32) -> u32,
        lat: u32,
        cycle: u64,
        warp_size: u32,
        ntid: (u32, u32),
        nctaid: (u32, u32),
        obs: &mut O,
    ) {
        let ra = self.resolve_cfg(warp, a, ntid, nctaid, cycle, obs);
        match dst {
            Reg::S(SReg(r)) => {
                let x = uniform_value(&ra);
                let phys = warp.srf_base + r as u32;
                let v = f(x);
                let dv = self.scn_divergent(warp, &[&ra], &[x], 0, warp_size, v, &|q| f(q[0]));
                self.store_srf(phys, v, cycle, obs);
                self.scn_assert(Structure::ScalarRegisterFile, phys, dv);
                warp.sreg_ready[r as usize] = cycle + lat as u64;
                self.stats.scalar_instructions += 1;
            }
            Reg::V(VReg(r)) => {
                for lane in lanes(warp.active) {
                    let x = self.lane_value(warp, &ra, lane, warp_size, ntid, nctaid, cycle, obs);
                    let v = f(x);
                    let dv =
                        self.scn_divergent(warp, &[&ra], &[x], lane, warp_size, v, &|q| f(q[0]));
                    self.write_vreg(warp, r, lane, v, warp_size, cycle, obs);
                    if !dv.is_empty() {
                        let phys = warp.rf_base + r as u32 * warp_size + lane;
                        self.scn_assert(Structure::VectorRegisterFile, phys, dv);
                    }
                }
                warp.vreg_ready[r as usize] = cycle + lat as u64;
                self.stats.warp_instructions += 1;
                self.stats.thread_instructions += warp.active.count_ones() as u64;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_alu2<O: SimObserver>(
        &mut self,
        warp: &mut Warp,
        dst: Reg,
        a: Operand,
        b: Operand,
        f: impl Fn(u32, u32) -> u32,
        lat: u32,
        cycle: u64,
        warp_size: u32,
        ntid: (u32, u32),
        nctaid: (u32, u32),
        obs: &mut O,
    ) {
        let ra = self.resolve_cfg(warp, a, ntid, nctaid, cycle, obs);
        let rb = self.resolve_cfg(warp, b, ntid, nctaid, cycle, obs);
        match dst {
            Reg::S(SReg(r)) => {
                let (x, y) = (uniform_value(&ra), uniform_value(&rb));
                let phys = warp.srf_base + r as u32;
                let v = f(x, y);
                let dv = self.scn_divergent(warp, &[&ra, &rb], &[x, y], 0, warp_size, v, &|q| {
                    f(q[0], q[1])
                });
                self.store_srf(phys, v, cycle, obs);
                self.scn_assert(Structure::ScalarRegisterFile, phys, dv);
                warp.sreg_ready[r as usize] = cycle + lat as u64;
                self.stats.scalar_instructions += 1;
            }
            Reg::V(VReg(r)) => {
                for lane in lanes(warp.active) {
                    let x = self.lane_value(warp, &ra, lane, warp_size, ntid, nctaid, cycle, obs);
                    let y = self.lane_value(warp, &rb, lane, warp_size, ntid, nctaid, cycle, obs);
                    let v = f(x, y);
                    let dv =
                        self.scn_divergent(warp, &[&ra, &rb], &[x, y], lane, warp_size, v, &|q| {
                            f(q[0], q[1])
                        });
                    self.write_vreg(warp, r, lane, v, warp_size, cycle, obs);
                    if !dv.is_empty() {
                        let phys = warp.rf_base + r as u32 * warp_size + lane;
                        self.scn_assert(Structure::VectorRegisterFile, phys, dv);
                    }
                }
                warp.vreg_ready[r as usize] = cycle + lat as u64;
                self.stats.warp_instructions += 1;
                self.stats.thread_instructions += warp.active.count_ones() as u64;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_alu3<O: SimObserver>(
        &mut self,
        warp: &mut Warp,
        dst: Reg,
        a: Operand,
        b: Operand,
        c: Operand,
        f: impl Fn(u32, u32, u32) -> u32,
        lat: u32,
        cycle: u64,
        warp_size: u32,
        ntid: (u32, u32),
        nctaid: (u32, u32),
        obs: &mut O,
    ) {
        let ra = self.resolve_cfg(warp, a, ntid, nctaid, cycle, obs);
        let rb = self.resolve_cfg(warp, b, ntid, nctaid, cycle, obs);
        let rc = self.resolve_cfg(warp, c, ntid, nctaid, cycle, obs);
        match dst {
            Reg::S(SReg(r)) => {
                let (x, y, z) = (uniform_value(&ra), uniform_value(&rb), uniform_value(&rc));
                let phys = warp.srf_base + r as u32;
                let v = f(x, y, z);
                let dv =
                    self.scn_divergent(warp, &[&ra, &rb, &rc], &[x, y, z], 0, warp_size, v, &|q| {
                        f(q[0], q[1], q[2])
                    });
                self.store_srf(phys, v, cycle, obs);
                self.scn_assert(Structure::ScalarRegisterFile, phys, dv);
                warp.sreg_ready[r as usize] = cycle + lat as u64;
                self.stats.scalar_instructions += 1;
            }
            Reg::V(VReg(r)) => {
                for lane in lanes(warp.active) {
                    let x = self.lane_value(warp, &ra, lane, warp_size, ntid, nctaid, cycle, obs);
                    let y = self.lane_value(warp, &rb, lane, warp_size, ntid, nctaid, cycle, obs);
                    let z = self.lane_value(warp, &rc, lane, warp_size, ntid, nctaid, cycle, obs);
                    let v = f(x, y, z);
                    let dv = self.scn_divergent(
                        warp,
                        &[&ra, &rb, &rc],
                        &[x, y, z],
                        lane,
                        warp_size,
                        v,
                        &|q| f(q[0], q[1], q[2]),
                    );
                    self.write_vreg(warp, r, lane, v, warp_size, cycle, obs);
                    if !dv.is_empty() {
                        let phys = warp.rf_base + r as u32 * warp_size + lane;
                        self.scn_assert(Structure::VectorRegisterFile, phys, dv);
                    }
                }
                warp.vreg_ready[r as usize] = cycle + lat as u64;
                self.stats.warp_instructions += 1;
                self.stats.thread_instructions += warp.active.count_ones() as u64;
            }
        }
    }

    // ---- memory bodies ----

    /// Checks a block-relative LDS byte address; returns the physical word.
    fn lds_word(&self, warp: &Warp, addr: u32, cycle: u64) -> Result<u32, Due> {
        if !addr.is_multiple_of(4) || addr.saturating_add(4) > warp.lds_bytes {
            return Err(Due::SharedOutOfBounds {
                addr,
                sm: self.id,
                cycle,
            });
        }
        Ok(warp.lds_base + addr / 4)
    }

    /// LDS bank-conflict degree of a set of physical words.
    fn lds_conflict_degree(words: &[u32], banks: u32) -> u32 {
        let mut per_bank: Vec<Vec<u32>> = vec![Vec::new(); banks as usize];
        for &w in words {
            let b = (w % banks) as usize;
            if !per_bank[b].contains(&w) {
                per_bank[b].push(w);
            }
        }
        per_bank
            .iter()
            .map(|v| v.len() as u32)
            .max()
            .unwrap_or(0)
            .max(1)
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_load<O: SimObserver>(
        &mut self,
        warp: &mut Warp,
        space: MemSpace,
        dst: Reg,
        addr: Operand,
        offset: i32,
        cycle: u64,
        arch: &ArchConfig,
        mem: &mut GlobalMemory,
        mem_sys: &mut MemorySystem,
        ntid: (u32, u32),
        nctaid: (u32, u32),
        obs: &mut O,
    ) -> Result<(), Due> {
        let ra = self.resolve_cfg(warp, addr, ntid, nctaid, cycle, obs);
        match dst {
            Reg::S(SReg(r)) => {
                // Scalar load: uniform address, global space only.
                let base = uniform_value(&ra);
                let a = base.wrapping_add(offset as u32);
                // A divergent address changes what is read *and* the
                // access timing: fork. A divergent memory word read via
                // the golden address propagates to the destination.
                let forks = self.scn_mask(warp, &ra, 0, warp_size_of(arch));
                self.scn_fork(forks);
                let v = mem.load(a, self.id, cycle)?;
                let dv = mem
                    .overlay
                    .as_deref()
                    .and_then(|ov| ov.cell(a / 4))
                    .map(|c| c.entries().to_vec())
                    .unwrap_or_default();
                let lat = mem_sys.access_latency(self.id, &[a]);
                let phys = warp.srf_base + r as u32;
                self.store_srf(phys, v, cycle, obs);
                self.scn_assert(Structure::ScalarRegisterFile, phys, dv);
                warp.sreg_ready[r as usize] = cycle + lat as u64;
                self.stats.scalar_instructions += 1;
            }
            Reg::V(VReg(r)) => {
                let mut addrs: Vec<u32> = Vec::new();
                match space {
                    MemSpace::Global => {
                        for lane in lanes(warp.active) {
                            let base = self.lane_value(
                                warp,
                                &ra,
                                lane,
                                warp_size_of(arch),
                                ntid,
                                nctaid,
                                cycle,
                                obs,
                            );
                            let a = base.wrapping_add(offset as u32);
                            let forks = self.scn_mask(warp, &ra, lane, arch.warp_size);
                            self.scn_fork(forks);
                            let v = mem.load(a, self.id, cycle)?;
                            let dv = mem
                                .overlay
                                .as_deref()
                                .and_then(|ov| ov.cell(a / 4))
                                .map(|c| c.entries().to_vec())
                                .unwrap_or_default();
                            self.write_vreg(warp, r, lane, v, arch.warp_size, cycle, obs);
                            if !dv.is_empty() {
                                let phys = warp.rf_base + r as u32 * arch.warp_size + lane;
                                self.scn_assert(Structure::VectorRegisterFile, phys, dv);
                            }
                            addrs.push(a);
                        }
                        let lat = mem_sys.access_latency(self.id, &addrs);
                        warp.vreg_ready[r as usize] = cycle + lat as u64;
                    }
                    MemSpace::Shared => {
                        let mut words: Vec<u32> = Vec::new();
                        for lane in lanes(warp.active) {
                            let base = self.lane_value(
                                warp,
                                &ra,
                                lane,
                                arch.warp_size,
                                ntid,
                                nctaid,
                                cycle,
                                obs,
                            );
                            let a = base.wrapping_add(offset as u32);
                            let forks = self.scn_mask(warp, &ra, lane, arch.warp_size);
                            self.scn_fork(forks);
                            let w = self.lds_word(warp, a, cycle)?;
                            let v = self.lds[w as usize];
                            let dv = self
                                .overlay
                                .as_deref()
                                .and_then(|ov| ov.cell(Structure::LocalMemory, w))
                                .map(|c| c.entries().to_vec())
                                .unwrap_or_default();
                            obs.on_lds_read(self.id, w, cycle);
                            self.write_vreg(warp, r, lane, v, arch.warp_size, cycle, obs);
                            if !dv.is_empty() {
                                let phys = warp.rf_base + r as u32 * arch.warp_size + lane;
                                self.scn_assert(Structure::VectorRegisterFile, phys, dv);
                            }
                            words.push(w);
                        }
                        let degree = Self::lds_conflict_degree(&words, arch.lds_banks);
                        let lat = arch.lat.lds + (degree - 1) * arch.lds_bank_penalty;
                        warp.vreg_ready[r as usize] = cycle + lat as u64;
                    }
                }
                self.stats.warp_instructions += 1;
                self.stats.thread_instructions += warp.active.count_ones() as u64;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_store<O: SimObserver>(
        &mut self,
        warp: &mut Warp,
        space: MemSpace,
        addr: Operand,
        offset: i32,
        src: Operand,
        cycle: u64,
        arch: &ArchConfig,
        mem: &mut GlobalMemory,
        mem_sys: &mut MemorySystem,
        ntid: (u32, u32),
        nctaid: (u32, u32),
        obs: &mut O,
    ) -> Result<(), Due> {
        let ra = self.resolve_cfg(warp, addr, ntid, nctaid, cycle, obs);
        let rs = self.resolve_cfg(warp, src, ntid, nctaid, cycle, obs);
        match space {
            MemSpace::Global => {
                let mut addrs: Vec<u32> = Vec::new();
                for lane in lanes(warp.active) {
                    let base =
                        self.lane_value(warp, &ra, lane, arch.warp_size, ntid, nctaid, cycle, obs);
                    let v =
                        self.lane_value(warp, &rs, lane, arch.warp_size, ntid, nctaid, cycle, obs);
                    let a = base.wrapping_add(offset as u32);
                    // Divergent address: the scenario writes somewhere
                    // else entirely — fork. Divergent value at the golden
                    // address: propagate into the memory overlay.
                    let forks = self.scn_mask(warp, &ra, lane, arch.warp_size);
                    self.scn_fork(forks);
                    let dv =
                        self.scn_divergent(warp, &[&rs], &[v], lane, arch.warp_size, v, &|q| q[0]);
                    mem.store(a, v, self.id, cycle)?;
                    if !dv.is_empty() {
                        let ov = mem.overlay.get_or_insert_with(Default::default);
                        for (s, vs) in dv {
                            ov.assert_value(a / 4, s, vs);
                        }
                    }
                    obs.on_global_write(self.id, a, v, cycle);
                    addrs.push(a);
                }
                let _ = mem_sys.access_latency(self.id, &addrs);
            }
            MemSpace::Shared => {
                for lane in lanes(warp.active) {
                    let base =
                        self.lane_value(warp, &ra, lane, arch.warp_size, ntid, nctaid, cycle, obs);
                    let v =
                        self.lane_value(warp, &rs, lane, arch.warp_size, ntid, nctaid, cycle, obs);
                    let a = base.wrapping_add(offset as u32);
                    let forks = self.scn_mask(warp, &ra, lane, arch.warp_size);
                    self.scn_fork(forks);
                    let dv =
                        self.scn_divergent(warp, &[&rs], &[v], lane, arch.warp_size, v, &|q| q[0]);
                    let w = self.lds_word(warp, a, cycle)?;
                    self.store_lds(w, v, cycle, obs);
                    self.scn_assert(Structure::LocalMemory, w, dv);
                }
            }
        }
        self.stats.warp_instructions += 1;
        self.stats.thread_instructions += warp.active.count_ones() as u64;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_atomic<O: SimObserver>(
        &mut self,
        warp: &mut Warp,
        space: MemSpace,
        op: simt_isa::AtomOp,
        dst: Reg,
        addr: Operand,
        offset: i32,
        src: Operand,
        cycle: u64,
        arch: &ArchConfig,
        mem: &mut GlobalMemory,
        mem_sys: &mut MemorySystem,
        ntid: (u32, u32),
        nctaid: (u32, u32),
        obs: &mut O,
    ) -> Result<(), Due> {
        let ra = self.resolve_cfg(warp, addr, ntid, nctaid, cycle, obs);
        let rs = self.resolve_cfg(warp, src, ntid, nctaid, cycle, obs);
        let d = vreg_of(dst);
        let mut distinct: Vec<u32> = Vec::new();
        for lane in lanes(warp.active) {
            let base = self.lane_value(warp, &ra, lane, arch.warp_size, ntid, nctaid, cycle, obs);
            let v = self.lane_value(warp, &rs, lane, arch.warp_size, ntid, nctaid, cycle, obs);
            let a = base.wrapping_add(offset as u32);
            // An atomic is a read-modify-write: divergence in the
            // address, the operand *or* the target word makes the
            // scenario's whole chain diverge — always fork.
            let mut forks = self.scn_mask(warp, &ra, lane, arch.warp_size)
                | self.scn_mask(warp, &rs, lane, arch.warp_size);
            let old = match space {
                MemSpace::Global => {
                    if let Some(ov) = mem.overlay.as_deref() {
                        forks |= ov.cell(a / 4).map_or(0, |c| c.mask);
                    }
                    self.scn_fork(forks);
                    let old = mem.load(a, self.id, cycle)?;
                    let (new, old) = eval_atom(op, old, v);
                    mem.store(a, new, self.id, cycle)?;
                    obs.on_global_write(self.id, a, new, cycle);
                    old
                }
                MemSpace::Shared => {
                    let w = self.lds_word(warp, a, cycle)?;
                    if let Some(ov) = self.overlay.as_deref() {
                        forks |= ov.cell(Structure::LocalMemory, w).map_or(0, |c| c.mask);
                    }
                    self.scn_fork(forks);
                    obs.on_lds_read(self.id, w, cycle);
                    let (new, old) = eval_atom(op, self.lds[w as usize], v);
                    self.store_lds(w, new, cycle, obs);
                    old
                }
            };
            self.write_vreg(warp, d, lane, old, arch.warp_size, cycle, obs);
            if !distinct.contains(&a) {
                distinct.push(a);
            }
        }
        let lat = match space {
            MemSpace::Global => mem_sys.atomic_latency(distinct.len() as u32),
            MemSpace::Shared => {
                arch.lat.lds + (distinct.len() as u32).saturating_sub(1) * arch.lds_bank_penalty
            }
        };
        warp.vreg_ready[d as usize] = cycle + lat as u64;
        self.stats.warp_instructions += 1;
        self.stats.thread_instructions += warp.active.count_ones() as u64;
        Ok(())
    }
}

/// Iterates the set lane indices of a mask.
fn lanes(mask: LaneMask) -> impl Iterator<Item = u32> {
    (0..64u32).filter(move |l| mask >> l & 1 == 1)
}

fn vreg_of(r: Reg) -> u16 {
    match r {
        Reg::V(VReg(i)) => i,
        Reg::S(_) => unreachable!("validated: per-lane destination is a vector register"),
    }
}

fn warp_size_of(arch: &ArchConfig) -> u32 {
    arch.warp_size
}

fn un_latency(arch: &ArchConfig, op: simt_isa::UnOp) -> u32 {
    if op.is_sfu() {
        arch.lat.sfu
    } else if op.is_float() {
        arch.lat.fp
    } else {
        arch.lat.alu
    }
}

fn bin_latency(arch: &ArchConfig, op: simt_isa::BinOp) -> u32 {
    if op.is_sfu() {
        arch.lat.sfu
    } else if op.is_float() {
        arch.lat.fp
    } else if op.is_imul_class() {
        arch.lat.imul
    } else {
        arch.lat.alu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_iteration() {
        let v: Vec<u32> = lanes(0b1010_0001).collect();
        assert_eq!(v, vec![0, 5, 7]);
        assert_eq!(lanes(0).count(), 0);
    }

    #[test]
    fn conflict_degree() {
        // 8 banks: words 0..8 hit distinct banks.
        assert_eq!(Sm::lds_conflict_degree(&[0, 1, 2, 3], 8), 1);
        // words 0 and 8 share bank 0.
        assert_eq!(Sm::lds_conflict_degree(&[0, 8], 8), 2);
        // Same word twice: broadcast, no conflict.
        assert_eq!(Sm::lds_conflict_degree(&[0, 0, 0], 8), 1);
        assert_eq!(Sm::lds_conflict_degree(&[], 8), 1);
        assert_eq!(Sm::lds_conflict_degree(&[0, 8, 16, 24], 8), 4);
    }

    #[test]
    fn sm_construction_and_flips() {
        let arch = ArchConfig::small_test_gpu();
        let mut sm = Sm::new(0, &arch);
        assert!(!sm.busy());
        assert_eq!(sm.rf_allocated(), 0);
        sm.flip_rf_bit(10, 3);
        assert_eq!(sm.rf[10], 8);
        sm.flip_rf_bit(10, 3);
        assert_eq!(sm.rf[10], 0);
        sm.flip_lds_bit(0, 0);
        assert_eq!(sm.lds[0], 1);
        // Out-of-range flips are ignored (defensive).
        sm.flip_rf_bit(u32::MAX, 0);
        sm.flip_srf_bit(0, 5); // srf is empty on this config
    }

    #[test]
    fn reset_clears_state() {
        let arch = ArchConfig::small_test_gpu();
        let mut sm = Sm::new(0, &arch);
        sm.rf[0] = 77;
        sm.lds[1] = 88;
        sm.reset();
        assert_eq!(sm.rf[0], 0);
        assert_eq!(sm.lds[1], 0);
        assert!(!sm.busy());
    }

    #[test]
    fn stuck_bit_forces_reasserts_and_survives_reset() {
        let arch = ArchConfig::small_test_gpu();
        let mut sm = Sm::new(0, &arch);
        sm.rf[10] = 0b1000;
        sm.arm_stuck(StuckBit {
            structure: Structure::VectorRegisterFile,
            word: 10,
            bit: 3,
            stuck_value: false,
        });
        assert_eq!(sm.rf[10], 0, "forced at arm time");
        let mut obs = crate::observer::CountingObserver::default();
        sm.store_rf(10, u32::MAX, 5, &mut obs);
        assert_eq!(sm.rf[10], !0b1000, "re-asserted on write");
        assert_eq!(obs.rf_writes, 1);
        assert_eq!(obs.stuck_reasserts, 1);
        // A write that agrees with the stuck polarity is not a reassert.
        sm.store_rf(10, 0, 6, &mut obs);
        assert_eq!(obs.stuck_reasserts, 1);
        // Permanent faults survive the inter-launch reset.
        sm.arm_stuck(StuckBit {
            structure: Structure::LocalMemory,
            word: 2,
            bit: 0,
            stuck_value: true,
        });
        sm.reset();
        assert_eq!(sm.lds[2], 1, "stuck-at-1 re-asserts after reset");
        assert_eq!(sm.stuck_faults().len(), 2);
    }

    #[test]
    fn control_fault_on_empty_slots_is_masked() {
        let arch = ArchConfig::small_test_gpu();
        let mut sm = Sm::new(0, &arch);
        for t in ControlTarget::ALL {
            assert!(
                !sm.apply_control_fault(t, 0, 5),
                "{t}: empty slot must be a no-op"
            );
        }
        assert_eq!(sm.parked_warps(), 0);
    }
}
