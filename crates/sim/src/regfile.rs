//! Physical register files and LDS with block-granular allocation,
//! plus the per-SM overlay shard of the bit-plane batched replay.
//!
//! The fault-injection methodology requires a *physical* view: a fault site
//! names a word in the SM's register file regardless of whether a block
//! currently owns it. Allocation therefore hands out contiguous physical
//! regions, and the mapping `(warp slot, register, lane) → physical word`
//! is a fixed affine function of the block's base.

use crate::fault::Structure;
use std::collections::HashMap;

/// One overlaid storage word of a batched replay: the set of fault
/// scenarios whose (hypothetical) faulty execution holds a value
/// different from the golden word, plus those values.
///
/// The invariant the batched pass maintains is that a cell never stores
/// a value equal to the current golden word: a write that re-converges a
/// scenario simply drops its entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OverlayCell {
    /// Bit `s` set when scenario `s` holds a divergent value here.
    pub mask: u64,
    /// `(scenario, value)` pairs, one per set bit of `mask`.
    vals: Vec<(u8, u32)>,
}

impl OverlayCell {
    /// Scenario `s`'s divergent value, if it has one.
    pub fn get(&self, s: u8) -> Option<u32> {
        self.vals.iter().find(|&&(i, _)| i == s).map(|&(_, v)| v)
    }

    /// Sets scenario `s`'s divergent value (replacing any previous one).
    pub fn set(&mut self, s: u8, value: u32) {
        if let Some(slot) = self.vals.iter_mut().find(|(i, _)| *i == s) {
            slot.1 = value;
        } else {
            self.vals.push((s, value));
        }
        self.mask |= 1 << s;
    }

    /// Drops every scenario in `mask` from the cell.
    pub fn drop_scenarios(&mut self, mask: u64) {
        if self.mask & mask == 0 {
            return;
        }
        self.vals.retain(|&(i, _)| mask >> i & 1 == 0);
        self.mask &= !mask;
    }

    /// Whether no scenario diverges here.
    pub fn is_empty(&self) -> bool {
        self.mask == 0
    }

    /// The `(scenario, value)` pairs.
    pub fn entries(&self) -> &[(u8, u32)] {
        &self.vals
    }
}

/// The per-SM overlay shard of a batched replay: divergent values per
/// storage word for each of the (up to 64) scenarios sharing the pass,
/// plus the scenarios this SM has asked to fork out of it.
#[derive(Debug, Clone, Default)]
pub struct SmOverlay {
    rf: HashMap<u32, OverlayCell>,
    srf: HashMap<u32, OverlayCell>,
    lds: HashMap<u32, OverlayCell>,
    /// Scenarios that must leave the shared pass (divergent address or
    /// predicate, atomic touch); drained by the batch driver.
    pub pending_forks: u64,
}

impl SmOverlay {
    fn map(&self, structure: Structure) -> &HashMap<u32, OverlayCell> {
        match structure {
            Structure::VectorRegisterFile => &self.rf,
            Structure::ScalarRegisterFile => &self.srf,
            Structure::LocalMemory => &self.lds,
        }
    }

    fn map_mut(&mut self, structure: Structure) -> &mut HashMap<u32, OverlayCell> {
        match structure {
            Structure::VectorRegisterFile => &mut self.rf,
            Structure::ScalarRegisterFile => &mut self.srf,
            Structure::LocalMemory => &mut self.lds,
        }
    }

    /// The overlay cell of `(structure, word)`, if any scenario diverges.
    pub fn cell(&self, structure: Structure, word: u32) -> Option<&OverlayCell> {
        self.map(structure).get(&word)
    }

    /// Records scenario `s` holding `value` at `(structure, word)`.
    pub fn assert_value(&mut self, structure: Structure, word: u32, s: u8, value: u32) {
        self.map_mut(structure)
            .entry(word)
            .or_default()
            .set(s, value);
    }

    /// Architectural overwrite of `(structure, word)`: every scenario's
    /// execution performs the same write, so all divergence there dies
    /// (divergent results re-assert afterwards).
    pub fn clear_word(&mut self, structure: Structure, word: u32) {
        self.map_mut(structure).remove(&word);
    }

    /// Clears every cell (inter-launch storage reset zeroes the arrays
    /// for golden and faulty runs alike). Pending forks survive until
    /// the driver drains them.
    pub fn clear_cells(&mut self) {
        self.rf.clear();
        self.srf.clear();
        self.lds.clear();
    }

    /// Removes the scenarios in `mask` from every cell (they forked into
    /// private replays; their overlays are dead weight from here on).
    pub fn drop_scenarios(&mut self, mask: u64) {
        for m in [&mut self.rf, &mut self.srf, &mut self.lds] {
            m.retain(|_, c| {
                c.drop_scenarios(mask);
                !c.is_empty()
            });
        }
    }

    /// Scenario `s`'s divergent words, for materializing its private
    /// state out of a shared-pass snapshot.
    pub fn scenario_values(&self, s: u8) -> Vec<(Structure, u32, u32)> {
        let mut out = Vec::new();
        for structure in [
            Structure::VectorRegisterFile,
            Structure::ScalarRegisterFile,
            Structure::LocalMemory,
        ] {
            for (&word, cell) in self.map(structure) {
                if let Some(v) = cell.get(s) {
                    out.push((structure, word, v));
                }
            }
        }
        out
    }
}

/// A permanently faulty storage cell: bit `bit` of `word` always holds
/// `stuck_value`.
///
/// Stuck-at faults are forced once when armed and then *re-asserted on
/// every write* of the word through the SM's write intercepts — a clean
/// overwrite never masks them, which is why the lifetime-oracle fast
/// paths must stay off the stuck-at path.
///
/// # Example
/// ```
/// use simt_sim::regfile::StuckBit;
/// use simt_sim::Structure;
/// let s1 = StuckBit { structure: Structure::VectorRegisterFile, word: 4, bit: 3, stuck_value: true };
/// assert_eq!(s1.force(0), 0b1000);
/// let s0 = StuckBit { stuck_value: false, ..s1 };
/// assert_eq!(s0.force(u32::MAX), !0b1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckBit {
    /// Which storage structure the cell lives in.
    pub structure: Structure,
    /// Physical word index within the structure.
    pub word: u32,
    /// Bit within the word (0..32).
    pub bit: u8,
    /// The value the cell is stuck at.
    pub stuck_value: bool,
}

impl StuckBit {
    /// Forces the stuck bit into a candidate word value (the
    /// write-intercept core).
    pub fn force(&self, value: u32) -> u32 {
        if self.stuck_value {
            value | 1 << self.bit
        } else {
            value & !(1 << self.bit)
        }
    }
}

/// A first-fit allocator over a fixed number of physical words.
///
/// Used for the vector RF, the scalar RF and the LDS of each SM. Blocks
/// allocate at dispatch and free at retire; regions never move.
///
/// # Example
/// ```
/// use simt_sim::regfile::RegionAllocator;
/// let mut a = RegionAllocator::new(100);
/// let r0 = a.alloc(40).unwrap();
/// let r1 = a.alloc(40).unwrap();
/// assert!(a.alloc(40).is_none(), "only 20 words left");
/// a.free(r0, 40);
/// assert_eq!(a.alloc(40), Some(r0), "freed region is reused");
/// assert_eq!(a.allocated(), 80);
/// # let _ = r1;
/// ```
#[derive(Debug, Clone)]
pub struct RegionAllocator {
    capacity: u32,
    /// Sorted, non-overlapping `(start, len)` free regions.
    free: Vec<(u32, u32)>,
    allocated: u32,
}

impl RegionAllocator {
    /// An allocator over `capacity` words, all free.
    pub fn new(capacity: u32) -> Self {
        let free = if capacity > 0 {
            vec![(0, capacity)]
        } else {
            Vec::new()
        };
        RegionAllocator {
            capacity,
            free,
            allocated: 0,
        }
    }

    /// Allocates `len` contiguous words; returns the start word or `None`.
    ///
    /// Zero-length requests succeed at offset 0 without consuming space.
    pub fn alloc(&mut self, len: u32) -> Option<u32> {
        if len == 0 {
            return Some(0);
        }
        let idx = self.free.iter().position(|&(_, flen)| flen >= len)?;
        let (start, flen) = self.free[idx];
        if flen == len {
            self.free.remove(idx);
        } else {
            self.free[idx] = (start + len, flen - len);
        }
        self.allocated += len;
        Some(start)
    }

    /// Returns a region to the free list, merging neighbours.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if the region overlaps the free list or
    /// exceeds capacity — both indicate an allocator-client bug.
    pub fn free(&mut self, start: u32, len: u32) {
        if len == 0 {
            return;
        }
        debug_assert!(start + len <= self.capacity);
        let pos = self.free.partition_point(|&(s, _)| s < start);
        self.free.insert(pos, (start, len));
        self.allocated -= len;
        // Merge with right neighbour, then left.
        if pos + 1 < self.free.len() {
            let (s, l) = self.free[pos];
            let (ns, nl) = self.free[pos + 1];
            debug_assert!(s + l <= ns, "double free / overlap");
            if s + l == ns {
                self.free[pos] = (s, l + nl);
                self.free.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (ps, pl) = self.free[pos - 1];
            let (s, l) = self.free[pos];
            debug_assert!(ps + pl <= s, "double free / overlap");
            if ps + pl == s {
                self.free[pos - 1] = (ps, pl + l);
                self.free.remove(pos);
            }
        }
    }

    /// Words currently allocated.
    pub fn allocated(&self) -> u32 {
        self.allocated
    }

    /// Total capacity in words.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Releases every allocation (used between launches).
    pub fn reset(&mut self) {
        self.free.clear();
        if self.capacity > 0 {
            self.free.push((0, self.capacity));
        }
        self.allocated = 0;
    }
}

/// Computes the physical word of `(warp_in_block, reg, lane)` within a
/// block's vector-RF region.
///
/// Layout: warps are contiguous; within a warp, registers are contiguous
/// lane-major (`reg * warp_size + lane`), matching the banked organisation
/// of real register files where a warp-register is a row of lanes.
///
/// # Example
/// ```
/// use simt_sim::regfile::vreg_phys_word;
/// // base 100, warp 1 of a 32-wide machine with 8 regs/thread, r2, lane 5
/// assert_eq!(vreg_phys_word(100, 1, 8, 32, 2, 5), 100 + 256 + 64 + 5);
/// ```
pub fn vreg_phys_word(
    block_base: u32,
    warp_in_block: u32,
    vregs_per_thread: u32,
    warp_size: u32,
    reg: u32,
    lane: u32,
) -> u32 {
    block_base + warp_in_block * vregs_per_thread * warp_size + reg * warp_size + lane
}

/// Computes the physical word of scalar register `reg` of
/// `warp_in_block` within a block's scalar-RF region.
pub fn sreg_phys_word(block_base: u32, warp_in_block: u32, sregs_per_warp: u32, reg: u32) -> u32 {
    block_base + warp_in_block * sregs_per_warp + reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_bit_forces_both_polarities() {
        let s = StuckBit {
            structure: Structure::LocalMemory,
            word: 0,
            bit: 31,
            stuck_value: true,
        };
        assert_eq!(s.force(0), 1 << 31);
        assert_eq!(s.force(u32::MAX), u32::MAX);
        let z = StuckBit {
            stuck_value: false,
            ..s
        };
        assert_eq!(z.force(u32::MAX), u32::MAX >> 1);
        assert_eq!(z.force(0), 0);
    }

    #[test]
    fn first_fit_and_merge() {
        let mut a = RegionAllocator::new(64);
        let r0 = a.alloc(16).unwrap();
        let r1 = a.alloc(16).unwrap();
        let r2 = a.alloc(16).unwrap();
        assert_eq!((r0, r1, r2), (0, 16, 32));
        a.free(r1, 16);
        assert_eq!(a.alloc(32), None, "free space is fragmented");
        a.free(r0, 16);
        assert_eq!(a.alloc(32), Some(0), "adjacent regions merged");
        a.free(r2, 16);
        a.free(0, 32);
        assert_eq!(a.allocated(), 0);
        assert_eq!(a.alloc(64), Some(0), "fully merged after all frees");
    }

    #[test]
    fn zero_capacity_and_zero_len() {
        let mut a = RegionAllocator::new(0);
        assert_eq!(a.alloc(0), Some(0));
        assert_eq!(a.alloc(1), None);
        a.free(0, 0); // no-op
        assert_eq!(a.allocated(), 0);
    }

    #[test]
    fn reset_restores_capacity() {
        let mut a = RegionAllocator::new(10);
        let _ = a.alloc(10).unwrap();
        assert_eq!(a.alloc(1), None);
        a.reset();
        assert_eq!(a.alloc(10), Some(0));
        assert_eq!(a.capacity(), 10);
    }

    #[test]
    fn merge_right_then_left() {
        let mut a = RegionAllocator::new(30);
        let r0 = a.alloc(10).unwrap();
        let r1 = a.alloc(10).unwrap();
        let r2 = a.alloc(10).unwrap();
        a.free(r2, 10);
        a.free(r0, 10);
        a.free(r1, 10); // merges with both neighbours
        assert_eq!(a.alloc(30), Some(0));
    }

    #[test]
    fn phys_mapping_is_dense_and_disjoint() {
        // Every (warp, reg, lane) of a 2-warp, 3-reg, 4-lane block maps to a
        // unique word in [base, base + 24).
        let base = 7;
        let mut seen = std::collections::HashSet::new();
        for w in 0..2 {
            for r in 0..3 {
                for l in 0..4 {
                    let p = vreg_phys_word(base, w, 3, 4, r, l);
                    assert!(p >= base && p < base + 24);
                    assert!(seen.insert(p), "collision at {p}");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn sreg_mapping() {
        assert_eq!(sreg_phys_word(10, 0, 4, 0), 10);
        assert_eq!(sreg_phys_word(10, 2, 4, 3), 21);
    }
}
