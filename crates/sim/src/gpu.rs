//! The GPU device: global memory, SMs, block dispatcher, launch loop,
//! watchdog and fault arming.

use crate::config::ArchConfig;
use crate::error::{Due, SimError};
use crate::fault::{BatchPlane, FaultKind, FaultSite, Structure};
use crate::launch::{LaunchConfig, LaunchStats};
use crate::mem::{GlobalMemory, MemorySystem};
use crate::observer::{NoopObserver, SimObserver};
use crate::regfile::StuckBit;
use crate::sm::Sm;
use simt_isa::LoweredKernel;

/// A device-memory allocation handle.
///
/// # Example
/// ```
/// use simt_sim::{ArchConfig, Gpu};
/// let mut gpu = Gpu::new(ArchConfig::small_test_gpu());
/// let b = gpu.alloc_words(8);
/// assert_eq!(b.words(), 8);
/// assert!(b.addr() >= 256, "null guard reserved");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Buffer {
    addr: u32,
    words: u32,
}

impl Buffer {
    /// Device byte address of the buffer (pass as a kernel parameter).
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// Size in 32-bit words.
    pub fn words(&self) -> u32 {
        self.words
    }

    /// Device byte address of word `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of the buffer.
    pub fn word_addr(&self, i: u32) -> u32 {
        assert!(
            i < self.words,
            "word {i} out of buffer of {} words",
            self.words
        );
        self.addr + i * 4
    }
}

/// State of a launch that has begun but not yet completed.
///
/// Kept on the [`Gpu`] itself so that cloning the device mid-kernel (the
/// session snapshot path) captures everything needed to resume the launch
/// loop cycle-exactly.
#[derive(Debug, Clone)]
struct InFlight {
    kernel: LoweredKernel,
    cfg: LaunchConfig,
    params: Vec<u32>,
    next_block: u32,
    total_blocks: u32,
    start_cycle: u64,
    stats0: (u64, u64, u64, u64),
    mem_trans0: u64,
}

/// Per-cycle progress of an in-flight launch (see [`Gpu::tick`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchProgress {
    /// The launch consumed one cycle and is still executing.
    Running,
    /// The launch completed this call; its statistics are final.
    Finished(LaunchStats),
}

/// A simulated GPU device.
///
/// Owns the global-memory arena, the SM array with their physical register
/// files and LDS, the memory timing model, and the *application clock*: a
/// cycle counter that increases monotonically across launches so that a
/// fault site drawn over a whole multi-kernel workload lands in exactly
/// one launch.
///
/// See the crate-level docs for a complete example.
#[derive(Debug, Clone)]
pub struct Gpu {
    arch: ArchConfig,
    mem: GlobalMemory,
    mem_sys: MemorySystem,
    sms: Vec<Sm>,
    app_cycle: u64,
    armed_faults: Vec<FaultSite>,
    /// Active bit-plane batch; `None` outside a batched replay pass.
    plane: Option<BatchPlane>,
    watchdog_limit: Option<u64>,
    launches: u32,
    in_flight: Option<InFlight>,
}

impl Gpu {
    /// Creates an idle device.
    pub fn new(arch: ArchConfig) -> Self {
        let mem_sys = MemorySystem::new(
            arch.num_sms,
            arch.l1,
            arch.l2,
            arch.lat,
            arch.coalesce_bytes,
        );
        let sms = (0..arch.num_sms).map(|i| Sm::new(i, &arch)).collect();
        Gpu {
            arch,
            mem: GlobalMemory::new(),
            mem_sys,
            sms,
            app_cycle: 0,
            armed_faults: Vec::new(),
            plane: None,
            watchdog_limit: None,
            launches: 0,
            in_flight: None,
        }
    }

    /// The architecture this device models.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// The application clock: total device cycles consumed by all launches
    /// so far.
    pub fn app_cycle(&self) -> u64 {
        self.app_cycle
    }

    /// Number of completed launches.
    pub fn launches(&self) -> u32 {
        self.launches
    }

    /// Aggregate L1 hit/miss counters over all SMs (all launches).
    pub fn l1_stats(&self) -> crate::cache::CacheStats {
        self.mem_sys.l1_stats()
    }

    /// L2 hit/miss counters, if the device has an L2.
    pub fn l2_stats(&self) -> Option<crate::cache::CacheStats> {
        self.mem_sys.l2_stats()
    }

    /// Total coalesced memory transactions issued (all launches).
    pub fn mem_transactions(&self) -> u64 {
        self.mem_sys.transactions
    }

    /// Per-SM execution counters (all launches), for load-imbalance
    /// analysis.
    pub fn per_sm_stats(&self) -> Vec<crate::sm::SmStats> {
        self.sms.iter().map(|sm| sm.stats).collect()
    }

    /// Cumulative execution counters summed over all SMs (all launches).
    pub fn exec_totals(&self) -> crate::sm::SmStats {
        let mut t = crate::sm::SmStats::default();
        for sm in &self.sms {
            t.warp_instructions += sm.stats.warp_instructions;
            t.scalar_instructions += sm.stats.scalar_instructions;
            t.thread_instructions += sm.stats.thread_instructions;
            t.blocks_retired += sm.stats.blocks_retired;
            t.busy_cycles += sm.stats.busy_cycles;
        }
        t
    }

    // ---- memory API ----

    /// Allocates `n` words of device memory.
    pub fn alloc_words(&mut self, n: u32) -> Buffer {
        Buffer {
            addr: self.mem.alloc_words(n),
            words: n,
        }
    }

    /// Copies words to the device.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the buffer.
    pub fn write_words(&mut self, buf: Buffer, data: &[u32]) {
        assert!(data.len() as u32 <= buf.words, "write exceeds buffer");
        for (i, &w) in data.iter().enumerate() {
            self.mem
                .write_word(buf.addr + i as u32 * 4, w)
                .expect("buffer-bounded host write cannot fault");
        }
    }

    /// Copies `f32` values to the device (bit-pattern preserving).
    pub fn write_floats(&mut self, buf: Buffer, data: &[f32]) {
        assert!(data.len() as u32 <= buf.words, "write exceeds buffer");
        for (i, &v) in data.iter().enumerate() {
            self.mem
                .write_word(buf.addr + i as u32 * 4, v.to_bits())
                .expect("buffer-bounded host write cannot fault");
        }
    }

    /// Reads `n` words back from the device.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the buffer.
    pub fn read_words(&self, buf: Buffer, n: u32) -> Vec<u32> {
        assert!(n <= buf.words, "read exceeds buffer");
        (0..n)
            .map(|i| {
                self.mem
                    .read_word(buf.addr + i * 4)
                    .expect("buffer-bounded host read cannot fault")
            })
            .collect()
    }

    /// Reads `n` `f32` values back from the device.
    pub fn read_floats(&self, buf: Buffer, n: u32) -> Vec<f32> {
        self.read_words(buf, n)
            .into_iter()
            .map(f32::from_bits)
            .collect()
    }

    // ---- reliability API ----

    /// Arms a single-bit fault to be injected when the application clock
    /// reaches `site.cycle`. Replaces any previously armed faults.
    pub fn arm_fault(&mut self, site: FaultSite) {
        self.armed_faults = vec![site];
    }

    /// Arms several faults at once (multi-bit-upset studies). Each fires
    /// at its own cycle; all previously armed faults are replaced.
    pub fn arm_faults(&mut self, sites: &[FaultSite]) {
        self.armed_faults = sites.to_vec();
    }

    // ---- bit-plane batched replay ----

    /// Arms a batched bit-plane over `sites`: each site becomes a
    /// *scenario* whose flip is asserted into the overlay shards (not
    /// the physical storage) when the application clock reaches its
    /// cycle. The device then executes pure golden state; scenario
    /// divergence is carried lazily until a fork trigger.
    ///
    /// # Panics
    ///
    /// Same as [`BatchPlane::new`] (1..=64 transient sites).
    pub fn arm_scenarios(&mut self, sites: &[FaultSite]) {
        self.plane = Some(BatchPlane::new(sites.to_vec()));
    }

    /// The active batch plane, if a batched pass is armed.
    pub fn scenario_plane(&self) -> Option<&BatchPlane> {
        self.plane.as_ref()
    }

    /// Drains every pending fork request (per-SM shards, the global
    /// memory shard and host reads) into the plane. Returns the *newly*
    /// forked scenarios and sweeps their dead overlay cells.
    pub fn take_scenario_forks(&mut self) -> u64 {
        let Some(plane) = self.plane.as_mut() else {
            return 0;
        };
        let mut m = 0u64;
        for sm in &mut self.sms {
            if let Some(ov) = sm.overlay.as_deref_mut() {
                m |= std::mem::take(&mut ov.pending_forks);
            }
        }
        if let Some(ov) = self.mem.overlay.as_deref_mut() {
            m |= ov.take_forks();
        }
        let new = m & !plane.forked & plane.all_mask();
        plane.forked |= new;
        if new != 0 {
            for sm in &mut self.sms {
                if let Some(ov) = sm.overlay.as_deref_mut() {
                    ov.drop_scenarios(new);
                }
            }
            if let Some(ov) = self.mem.overlay.as_deref_mut() {
                ov.drop_scenarios(new);
            }
        }
        new
    }

    /// Drains the scenarios whose divergent global-memory words were
    /// read by the host since the last drain (see
    /// [`GlobalOverlay::take_host_touches`](crate::mem::GlobalOverlay::take_host_touches)).
    pub fn take_host_touches(&mut self) -> u64 {
        self.mem
            .overlay
            .as_deref_mut()
            .map_or(0, |ov| ov.take_host_touches())
    }

    /// Requests forks for the scenarios in `mask`; they surface at the
    /// next [`Gpu::take_scenario_forks`] drain.
    pub fn raise_scenario_forks(&mut self, mask: u64) {
        if mask != 0 {
            self.mem
                .overlay
                .get_or_insert_with(Default::default)
                .raise_forks(mask);
        }
    }

    /// Collapses the device onto scenario `s`'s faulty state: its
    /// overlay values become physical storage, the plane and all shards
    /// are dropped, and the private replay continues on real state.
    pub fn materialize_scenario(&mut self, s: usize) {
        for sm in &mut self.sms {
            sm.materialize_scenario(s as u8);
        }
        self.mem.materialize_scenario(s as u8);
        self.plane = None;
    }

    /// Drops the batch plane and every overlay shard without touching
    /// physical state (the shared-pass fallback path).
    pub fn clear_scenarios(&mut self) {
        for sm in &mut self.sms {
            sm.overlay = None;
        }
        self.mem.overlay = None;
        self.plane = None;
    }

    /// Asserts overlay flips for scenarios whose injection cycle is now.
    fn arm_due_scenarios(&mut self) {
        let Some(mut plane) = self.plane.take() else {
            return;
        };
        let n = self.sms.len().max(1);
        for (i, site) in plane.sites.iter().enumerate() {
            let bit = 1u64 << i;
            if plane.armed & bit != 0 || plane.forked & bit != 0 || site.cycle != self.app_cycle {
                continue;
            }
            plane.armed |= bit;
            let sm = &mut self.sms[site.sm as usize % n];
            let cur = match site.structure {
                Structure::VectorRegisterFile => sm.rf.get(site.word as usize).copied(),
                Structure::ScalarRegisterFile => sm.srf.get(site.word as usize).copied(),
                Structure::LocalMemory => sm.lds.get(site.word as usize).copied(),
            };
            // An out-of-range word cannot affect execution: the scenario
            // never diverges — same no-op as the scalar flip helpers.
            if let Some(cur) = cur {
                sm.overlay
                    .get_or_insert_with(Default::default)
                    .assert_value(site.structure, site.word, i as u8, cur ^ (1 << site.bit));
            }
        }
        self.plane = Some(plane);
    }

    /// Sets the application-cycle budget; exceeding it ends the current
    /// launch with [`Due::WatchdogTimeout`].
    pub fn set_watchdog(&mut self, total_app_cycles: u64) {
        self.watchdog_limit = Some(total_app_cycles);
    }

    /// Words in one SM's instance of `structure` (the fault-site space).
    pub fn structure_words(&self, structure: Structure) -> u32 {
        match structure {
            Structure::VectorRegisterFile => self.arch.rf_words_per_sm(),
            Structure::LocalMemory => self.arch.lds_words_per_sm(),
            Structure::ScalarRegisterFile => self.arch.srf_words_per_sm(),
        }
    }

    fn apply_fault<O: SimObserver>(&mut self, site: FaultSite, obs: &mut O) {
        let idx = site.sm as usize % self.sms.len().max(1);
        let sm = &mut self.sms[idx];
        match site.kind {
            FaultKind::TransientFlip => match site.structure {
                Structure::VectorRegisterFile => sm.flip_rf_bit(site.word, site.bit),
                Structure::LocalMemory => sm.flip_lds_bit(site.word, site.bit),
                Structure::ScalarRegisterFile => sm.flip_srf_bit(site.word, site.bit),
            },
            FaultKind::StuckAt0 | FaultKind::StuckAt1 => {
                sm.arm_stuck(StuckBit {
                    structure: site.structure,
                    word: site.word,
                    bit: site.bit,
                    stuck_value: site.kind == FaultKind::StuckAt1,
                });
            }
            FaultKind::Control(target) => {
                let cycle = self.app_cycle;
                if sm.apply_control_fault(target, site.word, site.bit) {
                    obs.on_control_corrupt(site, cycle);
                }
            }
        }
        obs.on_fault_injected(site);
    }

    // ---- launch ----

    /// Launches a kernel with the no-op observer.
    ///
    /// # Errors
    ///
    /// [`SimError::LaunchConfig`] when the block does not fit the device;
    /// [`SimError::Due`] when execution raises a detected unrecoverable
    /// error (bad access, divergent barrier, watchdog).
    pub fn launch(
        &mut self,
        kernel: &LoweredKernel,
        cfg: LaunchConfig,
        params: &[u32],
    ) -> Result<LaunchStats, SimError> {
        self.launch_observed(kernel, cfg, params, &mut NoopObserver)
    }

    /// Launches a kernel, streaming events into `obs`.
    ///
    /// Equivalent to [`Gpu::begin_launch`] followed by [`Gpu::tick`] until
    /// completion; cycle counts and observer event streams are identical
    /// between the two drive styles.
    ///
    /// # Errors
    ///
    /// Same as [`Gpu::launch`].
    pub fn launch_observed<O: SimObserver>(
        &mut self,
        kernel: &LoweredKernel,
        cfg: LaunchConfig,
        params: &[u32],
        obs: &mut O,
    ) -> Result<LaunchStats, SimError> {
        self.begin_launch(kernel, cfg, params, obs)?;
        loop {
            if let LaunchProgress::Finished(stats) = self.tick(obs)? {
                return Ok(stats);
            }
        }
    }

    /// Starts a launch without running any cycles: validates the
    /// configuration, resets per-launch storage, dispatches the first wave
    /// of blocks and records the in-flight state on the device so
    /// [`Gpu::tick`] (and device clones) can carry it forward.
    ///
    /// # Errors
    ///
    /// [`SimError::LaunchConfig`] when the block does not fit the device;
    /// never a [`Due`] (execution has not started yet).
    pub fn begin_launch<O: SimObserver>(
        &mut self,
        kernel: &LoweredKernel,
        cfg: LaunchConfig,
        params: &[u32],
        obs: &mut O,
    ) -> Result<(), SimError> {
        assert!(self.in_flight.is_none(), "launch already in flight");
        self.validate_launch(kernel, cfg, params)?;
        let start_cycle = self.app_cycle;
        obs.on_launch_begin(kernel.name(), start_cycle);

        // Fresh storage state per launch: deterministic contents, empty
        // caches, no residual residency.
        for sm in &mut self.sms {
            sm.reset();
        }
        self.mem_sys.flush();

        let total_blocks = cfg.grid.count();
        let mut next_block = 0u32;
        self.fill_sms(kernel, cfg, params, &mut next_block, total_blocks, obs);

        self.in_flight = Some(InFlight {
            kernel: kernel.clone(),
            cfg,
            params: params.to_vec(),
            next_block,
            total_blocks,
            start_cycle,
            stats0: self.counters(),
            mem_trans0: self.mem_sys.transactions,
        });
        Ok(())
    }

    /// Whether a launch begun with [`Gpu::begin_launch`] is still running.
    pub fn launch_in_flight(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Advances the in-flight launch by exactly one application cycle
    /// (completion check, watchdog, fault application, SM stepping, block
    /// refill — in the same order as the monolithic launch loop).
    ///
    /// # Errors
    ///
    /// [`SimError::Due`] ends the launch exactly as [`Gpu::launch`] would;
    /// the in-flight state is cleared either way.
    ///
    /// # Panics
    ///
    /// Panics if no launch is in flight.
    pub fn tick<O: SimObserver>(&mut self, obs: &mut O) -> Result<LaunchProgress, SimError> {
        let mut fl = self.in_flight.take().expect("no launch in flight");

        if self.sms.iter().all(|sm| !sm.busy()) && fl.next_block >= fl.total_blocks {
            obs.on_launch_end(self.app_cycle);
            self.launches += 1;
            let stats1 = self.counters();
            return Ok(LaunchProgress::Finished(LaunchStats {
                cycles: self.app_cycle - fl.start_cycle,
                warp_instructions: stats1.0 - fl.stats0.0,
                scalar_instructions: stats1.1 - fl.stats0.1,
                thread_instructions: stats1.2 - fl.stats0.2,
                mem_transactions: self.mem_sys.transactions - fl.mem_trans0,
                blocks: (stats1.3 - fl.stats0.3) as u32,
                start_cycle: fl.start_cycle,
            }));
        }
        if let Some(limit) = self.watchdog_limit {
            if self.app_cycle >= limit {
                let parked: u32 = self.sms.iter().map(Sm::parked_warps).sum();
                obs.on_hang(self.app_cycle, parked);
                obs.on_launch_end(self.app_cycle);
                return Err(SimError::Due(Due::WatchdogTimeout { limit }));
            }
        }
        if !self.armed_faults.is_empty() {
            let due_now: Vec<FaultSite> = self
                .armed_faults
                .iter()
                .copied()
                .filter(|s| s.cycle == self.app_cycle)
                .collect();
            if !due_now.is_empty() {
                self.armed_faults.retain(|s| s.cycle != self.app_cycle);
                for site in due_now {
                    self.apply_fault(site, obs);
                }
            }
        }
        if self.plane.is_some() {
            self.arm_due_scenarios();
        }
        for i in 0..self.sms.len() {
            let sm = &mut self.sms[i];
            if let Err(d) = sm.step(
                self.app_cycle,
                &fl.kernel,
                &fl.cfg,
                &self.arch,
                &mut self.mem,
                &mut self.mem_sys,
                obs,
            ) {
                obs.on_launch_end(self.app_cycle);
                return Err(SimError::Due(d));
            }
        }
        if self.sms.iter().any(|sm| sm.retired_flag) {
            for sm in &mut self.sms {
                sm.retired_flag = false;
            }
            let (kernel, cfg, params) = (&fl.kernel, fl.cfg, &fl.params);
            let mut next_block = fl.next_block;
            self.fill_sms(kernel, cfg, params, &mut next_block, fl.total_blocks, obs);
            fl.next_block = next_block;
        }
        self.app_cycle += 1;
        self.in_flight = Some(fl);
        Ok(LaunchProgress::Running)
    }

    /// Rough size in bytes of the device state a clone captures; used by
    /// checkpoint memory budgeting.
    pub fn state_bytes(&self) -> usize {
        let per_sm = (self.arch.rf_words_per_sm()
            + self.arch.srf_words_per_sm()
            + self.arch.lds_words_per_sm()) as usize
            * 4;
        let sms = self.sms.len() * (per_sm + 4096);
        let mem = self.mem.heap_top() as usize;
        mem + sms + 4096
    }

    fn counters(&self) -> (u64, u64, u64, u64) {
        let mut t = (0, 0, 0, 0);
        for sm in &self.sms {
            t.0 += sm.stats.warp_instructions;
            t.1 += sm.stats.scalar_instructions;
            t.2 += sm.stats.thread_instructions;
            t.3 += sm.stats.blocks_retired;
        }
        t
    }

    fn fill_sms<O: SimObserver>(
        &mut self,
        kernel: &LoweredKernel,
        cfg: LaunchConfig,
        params: &[u32],
        next_block: &mut u32,
        total_blocks: u32,
        obs: &mut O,
    ) {
        // Round-robin across SMs, stopping when a full round places nothing.
        'outer: while *next_block < total_blocks {
            let mut placed = false;
            for i in 0..self.sms.len() {
                if *next_block >= total_blocks {
                    break 'outer;
                }
                let bid = *next_block;
                let ctaid = (bid % cfg.grid.x, bid / cfg.grid.x);
                if self.sms[i].try_dispatch(
                    kernel,
                    &cfg,
                    ctaid,
                    params,
                    &self.arch,
                    self.app_cycle,
                    obs,
                ) {
                    *next_block += 1;
                    placed = true;
                }
            }
            if !placed {
                break;
            }
        }
    }

    fn validate_launch(
        &self,
        kernel: &LoweredKernel,
        cfg: LaunchConfig,
        params: &[u32],
    ) -> Result<(), SimError> {
        if params.len() != kernel.num_params() as usize {
            return Err(SimError::LaunchConfig {
                reason: format!(
                    "kernel {} expects {} params, got {}",
                    kernel.name(),
                    kernel.num_params(),
                    params.len()
                ),
            });
        }
        if kernel.caps() != self.arch.caps() {
            return Err(SimError::LaunchConfig {
                reason: format!(
                    "kernel {} lowered for caps {:?}, device has {:?}",
                    kernel.name(),
                    kernel.caps(),
                    self.arch.caps()
                ),
            });
        }
        if cfg.grid.count() == 0 || cfg.block.count() == 0 {
            return Err(SimError::LaunchConfig {
                reason: "empty grid or block".into(),
            });
        }
        let warps = cfg.warps_per_block(self.arch.warp_size);
        if warps > self.arch.max_warps_per_sm {
            return Err(SimError::LaunchConfig {
                reason: format!(
                    "block needs {warps} warps, SM has {} slots",
                    self.arch.max_warps_per_sm
                ),
            });
        }
        let rf_need = warps * self.arch.warp_size * kernel.vregs_per_thread() as u32;
        if rf_need > self.arch.rf_words_per_sm() {
            return Err(SimError::LaunchConfig {
                reason: format!(
                    "block needs {rf_need} RF words, SM has {}",
                    self.arch.rf_words_per_sm()
                ),
            });
        }
        let srf_need = warps * kernel.sregs_per_warp() as u32;
        if srf_need > self.arch.srf_words_per_sm() {
            return Err(SimError::LaunchConfig {
                reason: format!(
                    "block needs {srf_need} scalar RF words, SM has {}",
                    self.arch.srf_words_per_sm()
                ),
            });
        }
        let lds_need = kernel.shared_bytes();
        if lds_need > self.arch.lds_bytes_per_sm {
            return Err(SimError::LaunchConfig {
                reason: format!(
                    "kernel needs {lds_need} LDS bytes, SM has {}",
                    self.arch.lds_bytes_per_sm
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{lower, KernelBuilder, MemSpace};

    fn arch() -> ArchConfig {
        ArchConfig::small_test_gpu()
    }

    fn iota_kernel(a: &ArchConfig) -> LoweredKernel {
        let mut b = KernelBuilder::new("iota", 1);
        let out = b.param(0);
        let gid = b.vreg();
        let addr = b.vreg();
        b.global_tid_x(gid);
        b.word_addr(addr, out, gid);
        b.st(MemSpace::Global, addr, gid);
        lower(&b.build().unwrap(), a.caps()).unwrap()
    }

    #[test]
    fn buffer_api() {
        let mut gpu = Gpu::new(arch());
        let b = gpu.alloc_words(4);
        gpu.write_words(b, &[1, 2, 3, 4]);
        assert_eq!(gpu.read_words(b, 4), vec![1, 2, 3, 4]);
        assert_eq!(b.word_addr(2), b.addr() + 8);
        gpu.write_floats(b, &[1.5]);
        assert_eq!(gpu.read_floats(b, 1), vec![1.5]);
    }

    #[test]
    #[should_panic(expected = "out of buffer")]
    fn buffer_word_addr_bounds() {
        let mut gpu = Gpu::new(arch());
        let b = gpu.alloc_words(2);
        let _ = b.word_addr(2);
    }

    #[test]
    fn iota_runs_on_multiple_blocks() {
        let a = arch();
        let k = iota_kernel(&a);
        let mut gpu = Gpu::new(a);
        let buf = gpu.alloc_words(64);
        let stats = gpu
            .launch(&k, LaunchConfig::linear(8, 8), &[buf.addr()])
            .unwrap();
        assert_eq!(gpu.read_words(buf, 64), (0..64).collect::<Vec<_>>());
        assert_eq!(stats.blocks, 8);
        assert!(stats.cycles > 0);
        assert!(stats.warp_instructions >= 8 * 3);
        assert_eq!(gpu.launches(), 1);
        assert_eq!(gpu.app_cycle(), stats.cycles);
    }

    #[test]
    fn app_cycle_accumulates_across_launches() {
        let a = arch();
        let k = iota_kernel(&a);
        let mut gpu = Gpu::new(a);
        let buf = gpu.alloc_words(16);
        let s1 = gpu
            .launch(&k, LaunchConfig::linear(2, 8), &[buf.addr()])
            .unwrap();
        let s2 = gpu
            .launch(&k, LaunchConfig::linear(2, 8), &[buf.addr()])
            .unwrap();
        assert_eq!(s2.start_cycle, s1.cycles);
        assert_eq!(gpu.app_cycle(), s1.cycles + s2.cycles);
        assert_eq!(
            s1.cycles, s2.cycles,
            "identical launches take identical time"
        );
    }

    #[test]
    fn param_count_mismatch_rejected() {
        let a = arch();
        let k = iota_kernel(&a);
        let mut gpu = Gpu::new(a);
        let err = gpu.launch(&k, LaunchConfig::linear(1, 8), &[]).unwrap_err();
        assert!(matches!(err, SimError::LaunchConfig { .. }));
    }

    #[test]
    fn wrong_caps_rejected() {
        let a = arch();
        let mut b = KernelBuilder::new("k", 0);
        b.exit();
        let k = lower(
            &b.build().unwrap(),
            ArchConfig::small_test_gpu_scalar().caps(),
        )
        .unwrap();
        let mut gpu = Gpu::new(a);
        assert!(matches!(
            gpu.launch(&k, LaunchConfig::linear(1, 8), &[]),
            Err(SimError::LaunchConfig { .. })
        ));
    }

    #[test]
    fn oversized_block_rejected() {
        let a = arch();
        let k = iota_kernel(&a);
        let mut gpu = Gpu::new(a);
        let buf = gpu.alloc_words(4);
        // 17 warps of 8 > 16 slots.
        assert!(matches!(
            gpu.launch(&k, LaunchConfig::linear(1, 17 * 8), &[buf.addr()]),
            Err(SimError::LaunchConfig { .. })
        ));
    }

    #[test]
    fn watchdog_fires() {
        let a = arch();
        let k = iota_kernel(&a);
        let mut gpu = Gpu::new(a);
        let buf = gpu.alloc_words(1024);
        gpu.set_watchdog(3);
        let err = gpu
            .launch(&k, LaunchConfig::linear(64, 8), &[buf.addr()])
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::Due(Due::WatchdogTimeout { limit: 3 })
        ));
    }

    #[test]
    fn oob_store_is_due() {
        let a = arch();
        let k = iota_kernel(&a);
        let mut gpu = Gpu::new(a);
        // 4 words requested; 256-byte alignment pads the heap to 64 words,
        // so use 128 threads to overrun the allocation for real.
        let buf = gpu.alloc_words(4);
        let err = gpu
            .launch(&k, LaunchConfig::linear(16, 8), &[buf.addr()])
            .unwrap_err();
        assert!(matches!(err, SimError::Due(Due::GlobalOutOfBounds { .. })));
    }

    #[test]
    fn fault_flip_in_free_space_is_masked() {
        let a = arch();
        let k = iota_kernel(&a);
        let mut gpu = Gpu::new(a.clone());
        let buf = gpu.alloc_words(16);
        let golden = {
            let mut g = Gpu::new(a);
            let gb = g.alloc_words(16);
            g.launch(&k, LaunchConfig::linear(2, 8), &[gb.addr()])
                .unwrap();
            g.read_words(gb, 16)
        };
        gpu.arm_fault(FaultSite::new(
            Structure::VectorRegisterFile,
            1,
            gpu.structure_words(Structure::VectorRegisterFile) - 1,
            31,
            1,
        ));
        gpu.launch(&k, LaunchConfig::linear(2, 8), &[buf.addr()])
            .unwrap();
        assert_eq!(
            gpu.read_words(buf, 16),
            golden,
            "flip in unused word is masked"
        );
    }

    #[test]
    fn stuck_fault_in_free_space_is_masked_but_armed() {
        let a = arch();
        let k = iota_kernel(&a);
        let mut gpu = Gpu::new(a.clone());
        let buf = gpu.alloc_words(16);
        let golden = {
            let mut g = Gpu::new(a);
            let gb = g.alloc_words(16);
            g.launch(&k, LaunchConfig::linear(2, 8), &[gb.addr()])
                .unwrap();
            g.read_words(gb, 16)
        };
        let site = FaultSite::new(
            Structure::VectorRegisterFile,
            1,
            gpu.structure_words(Structure::VectorRegisterFile) - 1,
            31,
            1,
        )
        .with_kind(FaultKind::StuckAt1);
        gpu.arm_fault(site);
        let mut obs = crate::observer::CountingObserver::default();
        gpu.launch_observed(&k, LaunchConfig::linear(2, 8), &[buf.addr()], &mut obs)
            .unwrap();
        assert_eq!(gpu.read_words(buf, 16), golden, "stuck bit in unused word");
        assert_eq!(obs.faults, 1);
        // The permanent fault stays armed on the SM for later launches.
        let sm1 = &gpu.sms[1];
        assert_eq!(sm1.stuck_faults().len(), 1);
        assert!(sm1.stuck_faults()[0].stuck_value);
    }

    #[test]
    fn control_fault_on_scheduler_hangs_the_launch() {
        let a = arch();
        let k = iota_kernel(&a);
        let mut gpu = Gpu::new(a);
        let buf = gpu.alloc_words(64);
        gpu.set_watchdog(10_000);
        // Push warp slot 0's next_issue far beyond the watchdog bound.
        let site = FaultSite::new(Structure::VectorRegisterFile, 0, 0, 31, 1).with_kind(
            FaultKind::Control(crate::fault::ControlTarget::SchedulerSlot),
        );
        gpu.arm_fault(site);
        let mut obs = crate::observer::CountingObserver::default();
        let err = gpu
            .launch_observed(&k, LaunchConfig::linear(8, 8), &[buf.addr()], &mut obs)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::Due(Due::WatchdogTimeout { limit: 10_000 })
        ));
        assert_eq!(obs.control_corrupts, 1, "live slot was corrupted");
        assert_eq!(obs.hangs, 1, "watchdog reported the hang");
    }

    #[test]
    fn structure_words_reports_sizes() {
        let gpu = Gpu::new(arch());
        assert_eq!(gpu.structure_words(Structure::VectorRegisterFile), 4096);
        assert_eq!(gpu.structure_words(Structure::LocalMemory), 1024);
        assert_eq!(gpu.structure_words(Structure::ScalarRegisterFile), 0);
    }
}
