//! Global-memory arena, coalescer and the device memory timing model.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::cache::{Cache, CacheGeom, CacheStats};
use crate::config::Latencies;
use crate::error::Due;
use crate::regfile::OverlayCell;

/// Byte offset reserved as a null guard: accesses below this address are
/// DUEs, catching fault-corrupted pointers the way a segfault would on a
/// real device.
pub const NULL_GUARD_BYTES: u32 = 256;

/// The device global-memory arena: a flat word array with a bump
/// allocator and bounds/alignment checking.
///
/// # Example
/// ```
/// use simt_sim::mem::GlobalMemory;
/// let mut m = GlobalMemory::new();
/// let a = m.alloc_words(16);
/// m.write_word(a, 0xdead_beef).unwrap();
/// assert_eq!(m.read_word(a).unwrap(), 0xdead_beef);
/// ```
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    words: Vec<u32>,
    /// First unallocated byte address.
    heap_top: u32,
    /// Armed stuck-at cells: `(word index, bit, stuck value)`, re-asserted
    /// by the [`GlobalMemory::store`] write intercept.
    stuck: Vec<(usize, u8, bool)>,
    /// Batched-replay overlay shard; `None` outside a batched pass.
    pub(crate) overlay: Option<Box<GlobalOverlay>>,
}

/// The global-memory overlay shard of a batched replay: per-word
/// divergent values for the scenarios sharing the pass, keyed by word
/// index. Host-side reads take `&self`, so the touches they record
/// accumulate behind a mutex until the session routes them — into forks
/// for mid-plan reads, or into the final-output divergence mask when
/// the read belongs to a verbatim plan's output collection.
#[derive(Debug, Default)]
pub struct GlobalOverlay {
    cells: HashMap<u32, OverlayCell>,
    /// Scenarios that must leave the shared pass, raised by `&mut` paths.
    pub pending_forks: u64,
    /// Scenarios whose divergent words were read by host-side (`&self`)
    /// reads since the last drain.
    host_touched: Mutex<u64>,
}

impl Clone for GlobalOverlay {
    fn clone(&self) -> Self {
        GlobalOverlay {
            cells: self.cells.clone(),
            pending_forks: self.pending_forks,
            host_touched: Mutex::new(*self.host_touched.lock().expect("host_touched poisoned")),
        }
    }
}

impl GlobalOverlay {
    /// The overlay cell of word index `w`, if any scenario diverges.
    pub fn cell(&self, w: u32) -> Option<&OverlayCell> {
        self.cells.get(&w)
    }

    /// Records scenario `s` holding `value` at word index `w`.
    pub fn assert_value(&mut self, w: u32, s: u8, value: u32) {
        self.cells.entry(w).or_default().set(s, value);
    }

    /// Architectural overwrite of word `w` kills all divergence there.
    pub fn clear_word(&mut self, w: u32) {
        self.cells.remove(&w);
    }

    /// Marks every scenario divergent at word `w` as read by the host:
    /// its faulty value is architecturally observable from this read.
    /// Whether that means a fork (mid-plan read feeding host logic) or a
    /// direct SDC verdict (a verbatim plan's final output collection) is
    /// the session's call — it drains the touches after each plan step.
    pub fn note_host_read(&self, w: u32) {
        if let Some(cell) = self.cells.get(&w) {
            if !cell.is_empty() {
                *self.host_touched.lock().expect("host_touched poisoned") |= cell.mask;
            }
        }
    }

    /// Drains the device-side fork channel.
    pub fn take_forks(&mut self) -> u64 {
        std::mem::take(&mut self.pending_forks)
    }

    /// Drains the scenarios touched by host reads since the last drain.
    pub fn take_host_touches(&mut self) -> u64 {
        let mut h = self.host_touched.lock().expect("host_touched poisoned");
        std::mem::take(&mut *h)
    }

    /// Requests forks for the scenarios in `mask` (the session's routing
    /// of mid-plan host touches back into the fork channel).
    pub fn raise_forks(&mut self, mask: u64) {
        self.pending_forks |= mask;
    }

    /// Removes the scenarios in `mask` from every cell.
    pub fn drop_scenarios(&mut self, mask: u64) {
        self.cells.retain(|_, c| {
            c.drop_scenarios(mask);
            !c.is_empty()
        });
    }

    /// Scenario `s`'s divergent words as `(word index, value)`.
    pub fn scenario_values(&self, s: u8) -> Vec<(u32, u32)> {
        self.cells
            .iter()
            .filter_map(|(&w, c)| c.get(s).map(|v| (w, v)))
            .collect()
    }
}

impl Default for GlobalMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalMemory {
    /// Creates an empty arena (only the null guard is reserved).
    pub fn new() -> Self {
        GlobalMemory {
            words: Vec::new(),
            heap_top: NULL_GUARD_BYTES,
            stuck: Vec::new(),
            overlay: None,
        }
    }

    /// Arms a stuck-at cell at byte address `addr`: the bit is forced now
    /// and re-asserted by every subsequent [`GlobalMemory::store`].
    ///
    /// # Errors
    ///
    /// Same as [`GlobalMemory::store`] (the address must be a valid,
    /// allocated word).
    pub fn arm_stuck_bit(&mut self, addr: u32, bit: u8, stuck_value: bool) -> Result<(), Due> {
        let i = self.check(addr, u32::MAX, 0)?;
        self.stuck.push((i, bit, stuck_value));
        self.words[i] = force_stuck(self.words[i], bit, stuck_value);
        Ok(())
    }

    /// Allocates `n` 32-bit words, 256-byte aligned; returns the byte
    /// address of the allocation.
    pub fn alloc_words(&mut self, n: u32) -> u32 {
        let addr = self.heap_top;
        let bytes = n.checked_mul(4).expect("allocation size overflow");
        self.heap_top = (self.heap_top + bytes + 255) & !255;
        let need = (self.heap_top / 4) as usize;
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
        addr
    }

    /// Total allocated bytes (including the null guard).
    pub fn heap_top(&self) -> u32 {
        self.heap_top
    }

    fn check(&self, addr: u32, sm: u32, cycle: u64) -> Result<usize, Due> {
        if !addr.is_multiple_of(4) {
            return Err(Due::MisalignedAccess { addr, sm, cycle });
        }
        if addr < NULL_GUARD_BYTES || addr.saturating_add(4) > self.heap_top {
            return Err(Due::GlobalOutOfBounds { addr, sm, cycle });
        }
        Ok((addr / 4) as usize)
    }

    /// Reads a word with full checking, attributing failures to `sm`/`cycle`.
    ///
    /// # Errors
    ///
    /// [`Due::MisalignedAccess`] or [`Due::GlobalOutOfBounds`].
    pub fn load(&self, addr: u32, sm: u32, cycle: u64) -> Result<u32, Due> {
        Ok(self.words[self.check(addr, sm, cycle)?])
    }

    /// Writes a word with full checking.
    ///
    /// # Errors
    ///
    /// [`Due::MisalignedAccess`] or [`Due::GlobalOutOfBounds`].
    pub fn store(&mut self, addr: u32, value: u32, sm: u32, cycle: u64) -> Result<(), Due> {
        let i = self.check(addr, sm, cycle)?;
        let mut stored = value;
        if !self.stuck.is_empty() {
            for &(w, bit, v) in &self.stuck {
                if w == i {
                    stored = force_stuck(stored, bit, v);
                }
            }
        }
        self.words[i] = stored;
        // Architectural overwrite: every batched scenario performs the
        // same store, so divergence on this word dies here (divergent
        // store values re-assert on top from the executor).
        if let Some(ov) = self.overlay.as_deref_mut() {
            ov.clear_word(i as u32);
        }
        Ok(())
    }

    /// Host-side word read (no SM attribution). During a batched pass a
    /// read of a scenario-divergent word forks that scenario: its faulty
    /// value is architecturally observable from here.
    ///
    /// # Errors
    ///
    /// Same as [`GlobalMemory::load`].
    pub fn read_word(&self, addr: u32) -> Result<u32, Due> {
        let v = self.load(addr, u32::MAX, 0)?;
        if let Some(ov) = self.overlay.as_deref() {
            ov.note_host_read(addr / 4);
        }
        Ok(v)
    }

    /// Writes scenario `s`'s divergent words into the physical arena and
    /// drops the overlay (forked private replays run on real state).
    pub(crate) fn materialize_scenario(&mut self, s: u8) {
        if let Some(ov) = self.overlay.take() {
            for (w, v) in ov.scenario_values(s) {
                if let Some(slot) = self.words.get_mut(w as usize) {
                    *slot = v;
                }
            }
        }
    }

    /// Host-side word write.
    ///
    /// # Errors
    ///
    /// Same as [`GlobalMemory::store`].
    pub fn write_word(&mut self, addr: u32, value: u32) -> Result<(), Due> {
        self.store(addr, value, u32::MAX, 0)
    }
}

/// Forces `bit` of `value` to the stuck polarity.
fn force_stuck(value: u32, bit: u8, stuck_value: bool) -> u32 {
    if stuck_value {
        value | 1 << bit
    } else {
        value & !(1 << bit)
    }
}

/// Counts the memory transactions a warp access generates: the number of
/// distinct `segment_bytes`-aligned segments touched by the active lanes.
///
/// This is the classic coalescing rule (64-byte segments on G80/GT200,
/// 128-byte on Fermi and Southern Islands).
///
/// # Example
/// ```
/// use simt_sim::mem::count_segments;
/// // 4 consecutive words in one 64-byte segment: 1 transaction.
/// assert_eq!(count_segments(&[0, 4, 8, 12], 64), 1);
/// // Stride-64 words: every lane its own segment.
/// assert_eq!(count_segments(&[0, 64, 128], 64), 3);
/// ```
pub fn count_segments(addrs: &[u32], segment_bytes: u32) -> u32 {
    let mut segs: Vec<u32> = addrs.iter().map(|a| a / segment_bytes).collect();
    segs.sort_unstable();
    segs.dedup();
    segs.len() as u32
}

/// The device-level memory timing model: per-SM L1s, a shared L2 and DRAM
/// latency, combined with the coalescer.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    l1: Vec<Option<Cache>>,
    l2: Option<Cache>,
    lat: Latencies,
    coalesce_bytes: u32,
    /// Total warp-level transactions issued.
    pub transactions: u64,
}

impl MemorySystem {
    /// Builds the timing model for `num_sms` SMs.
    pub fn new(
        num_sms: u32,
        l1_geom: Option<CacheGeom>,
        l2_geom: Option<CacheGeom>,
        lat: Latencies,
        coalesce_bytes: u32,
    ) -> Self {
        MemorySystem {
            l1: (0..num_sms).map(|_| l1_geom.map(Cache::new)).collect(),
            l2: l2_geom.map(Cache::new),
            lat,
            coalesce_bytes,
            transactions: 0,
        }
    }

    /// Latency of a warp load/store touching `addrs` (active lanes only),
    /// issued from `sm`. Updates cache state and transaction counters.
    ///
    /// The slowest transaction dominates, plus a serialization penalty per
    /// extra transaction.
    pub fn access_latency(&mut self, sm: u32, addrs: &[u32]) -> u32 {
        if addrs.is_empty() {
            return 0;
        }
        let mut segs: Vec<u32> = addrs.iter().map(|a| a / self.coalesce_bytes).collect();
        segs.sort_unstable();
        segs.dedup();
        self.transactions += segs.len() as u64;
        let mut worst = 0u32;
        for seg in &segs {
            let addr = seg * self.coalesce_bytes;
            let lat = self.single_transaction_latency(sm, addr);
            worst = worst.max(lat);
        }
        worst + (segs.len() as u32 - 1) * self.lat.mem_serialize
    }

    fn single_transaction_latency(&mut self, sm: u32, addr: u32) -> u32 {
        if let Some(Some(l1)) = self.l1.get_mut(sm as usize) {
            if l1.access(addr) {
                return self.lat.l1_hit;
            }
        }
        if let Some(l2) = self.l2.as_mut() {
            if l2.access(addr) {
                return self.lat.l2_hit;
            }
            return self.lat.dram;
        }
        self.lat.dram
    }

    /// Latency of a warp atomic on `n_addrs` distinct addresses: atomics
    /// bypass the L1 and serialize per address at the L2/DRAM.
    pub fn atomic_latency(&mut self, n_addrs: u32) -> u32 {
        self.transactions += n_addrs as u64;
        let base = if self.l2.is_some() {
            self.lat.l2_hit
        } else {
            self.lat.dram
        };
        base + n_addrs.saturating_sub(1) * self.lat.mem_serialize
    }

    /// Invalidates all cache contents (between launches).
    pub fn flush(&mut self) {
        for l1 in self.l1.iter_mut().flatten() {
            l1.flush();
        }
        if let Some(l2) = self.l2.as_mut() {
            l2.flush();
        }
    }

    /// Aggregate L1 statistics over all SMs.
    pub fn l1_stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for l1 in self.l1.iter().flatten() {
            s.hits += l1.stats().hits;
            s.misses += l1.stats().misses;
        }
        s
    }

    /// L2 statistics, if an L2 is configured.
    pub fn l2_stats(&self) -> Option<CacheStats> {
        self.l2.as_ref().map(|c| c.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchConfig;

    #[test]
    fn alloc_is_aligned_and_guarded() {
        let mut m = GlobalMemory::new();
        let a = m.alloc_words(1);
        let b = m.alloc_words(100);
        assert_eq!(a, NULL_GUARD_BYTES);
        assert_eq!(b % 256, 0);
        assert!(b > a);
    }

    #[test]
    fn null_guard_trips() {
        let mut m = GlobalMemory::new();
        let _ = m.alloc_words(4);
        assert!(matches!(
            m.load(0, 1, 2),
            Err(Due::GlobalOutOfBounds {
                addr: 0,
                sm: 1,
                cycle: 2
            })
        ));
        assert!(matches!(
            m.load(128, 0, 0),
            Err(Due::GlobalOutOfBounds { .. })
        ));
    }

    #[test]
    fn oob_and_misaligned_trip() {
        let mut m = GlobalMemory::new();
        let a = m.alloc_words(2);
        assert!(m.load(a + 8, 0, 0).is_err() || m.heap_top() > a + 8);
        let top = m.heap_top();
        assert!(matches!(
            m.load(top, 0, 0),
            Err(Due::GlobalOutOfBounds { .. })
        ));
        assert!(matches!(
            m.load(a + 1, 0, 0),
            Err(Due::MisalignedAccess { .. })
        ));
        assert!(matches!(
            m.store(u32::MAX - 3, 0, 0, 0),
            Err(Due::GlobalOutOfBounds { .. })
        ));
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = GlobalMemory::new();
        let a = m.alloc_words(8);
        for i in 0..8 {
            m.write_word(a + i * 4, i * 10).unwrap();
        }
        for i in 0..8 {
            assert_eq!(m.read_word(a + i * 4).unwrap(), i * 10);
        }
    }

    #[test]
    fn stuck_bit_reasserts_on_store() {
        let mut m = GlobalMemory::new();
        let a = m.alloc_words(4);
        m.write_word(a, 0).unwrap();
        m.arm_stuck_bit(a, 3, true).unwrap();
        assert_eq!(m.read_word(a).unwrap(), 8, "forced at arm time");
        m.write_word(a, 0).unwrap();
        assert_eq!(
            m.read_word(a).unwrap(),
            8,
            "clean overwrite does not mask it"
        );
        m.write_word(a + 4, 0xff).unwrap();
        assert_eq!(m.read_word(a + 4).unwrap(), 0xff, "other words unaffected");
        assert!(
            m.arm_stuck_bit(0, 0, true).is_err(),
            "null guard still checked"
        );
    }

    #[test]
    fn coalescing_counts() {
        assert_eq!(count_segments(&[], 64), 0);
        assert_eq!(count_segments(&[0, 60], 64), 1);
        assert_eq!(count_segments(&[0, 64], 64), 2);
        assert_eq!(count_segments(&[128, 0, 64, 4], 64), 3);
        // Wider segments coalesce more.
        assert_eq!(count_segments(&[0, 64], 128), 1);
    }

    fn mem_sys() -> MemorySystem {
        let a = ArchConfig::small_test_gpu();
        MemorySystem::new(a.num_sms, a.l1, a.l2, a.lat, a.coalesce_bytes)
    }

    #[test]
    fn latency_orders_cold_then_warm() {
        let mut ms = mem_sys();
        let cold = ms.access_latency(0, &[0]);
        let warm = ms.access_latency(0, &[0]);
        assert!(cold > warm, "cold {cold} should exceed warm {warm}");
        let a = ArchConfig::small_test_gpu();
        assert_eq!(cold, a.lat.dram);
        assert_eq!(warm, a.lat.l1_hit);
    }

    #[test]
    fn l2_serves_other_sm() {
        let mut ms = mem_sys();
        let a = ArchConfig::small_test_gpu();
        let _ = ms.access_latency(0, &[0]); // fills L2
        let other = ms.access_latency(1, &[0]); // misses its own L1, hits L2
        assert_eq!(other, a.lat.l2_hit);
    }

    #[test]
    fn uncoalesced_pays_serialization() {
        let mut ms = mem_sys();
        let a = ArchConfig::small_test_gpu();
        let coalesced = ms.access_latency(0, &[0, 4, 8]);
        ms.flush();
        let scattered = ms.access_latency(0, &[0, 640, 1280]);
        assert_eq!(coalesced, a.lat.dram);
        assert_eq!(scattered, a.lat.dram + 2 * a.lat.mem_serialize);
        assert_eq!(ms.transactions, 4);
    }

    #[test]
    fn atomics_serialize_per_address() {
        let mut ms = mem_sys();
        let a = ArchConfig::small_test_gpu();
        assert_eq!(ms.atomic_latency(1), a.lat.l2_hit);
        assert_eq!(ms.atomic_latency(4), a.lat.l2_hit + 3 * a.lat.mem_serialize);
    }

    #[test]
    fn stats_aggregate() {
        let mut ms = mem_sys();
        let _ = ms.access_latency(0, &[0]);
        let _ = ms.access_latency(0, &[0]);
        assert_eq!(ms.l1_stats().hits, 1);
        assert_eq!(ms.l1_stats().misses, 1);
        assert_eq!(ms.l2_stats().unwrap().misses, 1);
    }

    #[test]
    fn empty_access_is_free() {
        let mut ms = mem_sys();
        assert_eq!(ms.access_latency(0, &[]), 0);
        assert_eq!(ms.transactions, 0);
    }
}
