//! Resumable execution sessions: deterministic launch plans driven
//! step-by-step with whole-state snapshot/restore.
//!
//! A [`LaunchPlan`] is a workload's explicit schedule — the sequence of
//! kernel launches plus the host-side work between them (input upload,
//! intermediate readback, final output collection). A [`Session`] drives a
//! plan against a [`Gpu`] one application cycle at a time, which makes two
//! things possible that the monolithic `launch()` loop cannot offer:
//!
//! * **checkpointing** — [`Session::snapshot`] captures the full simulator
//!   state (register files, LDS, global memory, warp contexts, caches,
//!   cycle counters, in-flight launch position *and* plan position) as a
//!   [`Checkpoint`]; [`Session::restore`] rewinds to it exactly. Replaying
//!   from a checkpoint is byte-identical to replaying from cycle zero.
//! * **mid-kernel instrumentation** — callers decide what happens between
//!   any two cycles (arm a fault, take a snapshot, inspect state) without
//!   the simulator needing to know why.
//!
//! Fault-injection campaigns exploit this: the golden run records a ladder
//! of checkpoints, and each injection replays from the nearest checkpoint
//! at-or-before its fault cycle instead of from scratch.
//!
//! # Example
//!
//! ```
//! use simt_sim::session::{LaunchPlan, PlanStep, Session};
//! use simt_sim::{ArchConfig, Gpu, LaunchConfig, NoopObserver, SimError};
//! use simt_isa::{lower, KernelBuilder, MemSpace};
//!
//! /// out[i] = i, then read the buffer back.
//! #[derive(Clone)]
//! struct IotaPlan {
//!     stage: u32,
//!     buf: Option<simt_sim::Buffer>,
//! }
//!
//! impl LaunchPlan for IotaPlan {
//!     fn next(&mut self, gpu: &mut Gpu) -> Result<PlanStep, SimError> {
//!         self.stage += 1;
//!         match self.stage {
//!             1 => {
//!                 let buf = gpu.alloc_words(64);
//!                 self.buf = Some(buf);
//!                 let mut b = KernelBuilder::new("iota", 1);
//!                 let out = b.param(0);
//!                 let gid = b.vreg();
//!                 let addr = b.vreg();
//!                 b.global_tid_x(gid);
//!                 b.word_addr(addr, out, gid);
//!                 b.st(MemSpace::Global, addr, gid);
//!                 let k = lower(&b.build().unwrap(), gpu.arch().caps()).unwrap();
//!                 Ok(PlanStep::Launch {
//!                     kernel: k,
//!                     cfg: LaunchConfig::linear(1, 64),
//!                     params: vec![buf.addr()],
//!                 })
//!             }
//!             _ => Ok(PlanStep::Done(gpu.read_words(self.buf.unwrap(), 64))),
//!         }
//!     }
//!
//!     fn clone_plan(&self) -> Box<dyn LaunchPlan> {
//!         Box::new(self.clone())
//!     }
//! }
//!
//! let mut gpu = Gpu::new(ArchConfig::small_test_gpu());
//! let mut s = Session::new(&mut gpu, Box::new(IotaPlan { stage: 0, buf: None }));
//! let out = s.run_to_completion(&mut NoopObserver)?;
//! assert_eq!(out[7], 7);
//! # Ok::<(), SimError>(())
//! ```

use crate::error::SimError;
use crate::gpu::{Gpu, LaunchProgress};
use crate::launch::{LaunchConfig, LaunchStats};
use crate::observer::SimObserver;
use simt_isa::LoweredKernel;
use std::time::Instant;

/// One step of a workload's deterministic launch schedule.
///
/// The size gap between the variants is fine: a `PlanStep` is produced
/// once per kernel launch and consumed immediately by the session — it
/// is never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum PlanStep {
    /// Launch a kernel. The plan lowers the kernel for the device it is
    /// handed (via `gpu.arch().caps()`), so one plan serves every
    /// architecture.
    Launch {
        /// The lowered kernel to execute.
        kernel: LoweredKernel,
        /// Grid/block shape.
        cfg: LaunchConfig,
        /// Kernel parameter words.
        params: Vec<u32>,
    },
    /// The workload is complete; these are its concatenated output words.
    Done(Vec<u32>),
}

/// A workload's explicit, resumable launch schedule.
///
/// `next` is called once per step: host-side work (allocation, upload,
/// readback, pivot selection, centroid updates, …) happens inside it, and
/// it returns either the next kernel launch or the final output. Host
/// steps consume zero application cycles.
///
/// Plans must be deterministic and cloneable: [`LaunchPlan::clone_plan`]
/// must capture the complete plan position and host state, so a cloned
/// plan resumed against a cloned [`Gpu`] continues identically. That pair
/// of clones *is* a [`Checkpoint`].
pub trait LaunchPlan: Send + Sync {
    /// Performs the next host-side step and reports what follows it.
    ///
    /// # Errors
    ///
    /// Plans propagate [`SimError`]s raised by host-visible device reads;
    /// most plans are infallible here and only launches themselves fail.
    fn next(&mut self, gpu: &mut Gpu) -> Result<PlanStep, SimError>;

    /// Deep-copies the plan, including its position and host state.
    fn clone_plan(&self) -> Box<dyn LaunchPlan>;

    /// Whether the final [`PlanStep::Done`] vector is *exactly* the
    /// concatenation, in order, of the device words host-read during the
    /// `next` call that returns it — with no host-side transformation —
    /// and whether the plan's step decisions (what to launch, when to
    /// finish) never depend on values read back from the device in that
    /// final call.
    ///
    /// Batched replay uses this contract to classify a scenario whose
    /// divergence is first observed at output collection *without* a
    /// private replay: a divergent word read there differs from the
    /// golden output by the overlay invariant, so the scenario is an SDC
    /// outright; one never read is masked. Plans that post-process reads
    /// into their outputs (or steer on them at the finish) must keep the
    /// conservative default, which forks such scenarios instead.
    fn outputs_verbatim(&self) -> bool {
        false
    }
}

/// A point-in-time capture of a whole execution session.
///
/// Owns a deep clone of the device and of the plan; restoring (or cloning
/// out of) a checkpoint yields execution byte-identical to having never
/// left it. `Checkpoint` is `Send + Sync`, so one golden-run ladder can be
/// shared read-only across injection worker threads.
pub struct Checkpoint {
    gpu: Gpu,
    plan: Box<dyn LaunchPlan>,
    outputs: Option<Vec<u32>>,
}

impl Checkpoint {
    /// The application cycle at which this checkpoint was taken.
    pub fn cycle(&self) -> u64 {
        self.gpu.app_cycle()
    }

    /// The captured device state (clone it to replay from here).
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Approximate heap footprint of this checkpoint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.gpu.state_bytes()
    }
}

impl Clone for Checkpoint {
    fn clone(&self) -> Self {
        Checkpoint {
            gpu: self.gpu.clone(),
            plan: self.plan.clone_plan(),
            outputs: self.outputs.clone(),
        }
    }
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("cycle", &self.cycle())
            .field("finished", &self.outputs.is_some())
            .finish()
    }
}

/// Plain counters for a session's snapshot/restore activity.
///
/// The simulator crate stays dependency-free, so these are raw `u64`s
/// rather than registry metrics; `grel-core` bridges them into its
/// telemetry hook after each replay. Costs are attributed to the session
/// that *performed* the work: a [`Session::resume`] counts as one
/// restore on the new session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionTelemetry {
    /// Checkpoints captured by [`Session::snapshot`].
    pub snapshots: u64,
    /// Total bytes across all captured checkpoints.
    pub snapshot_bytes: u64,
    /// Wall time spent capturing checkpoints, in nanoseconds.
    pub snapshot_nanos: u64,
    /// Restores performed ([`Session::restore`] + [`Session::resume`]).
    pub restores: u64,
    /// Wall time spent restoring state, in nanoseconds.
    pub restore_nanos: u64,
}

impl SessionTelemetry {
    /// Folds another session's counters into this one.
    pub fn merge(&mut self, other: &SessionTelemetry) {
        self.snapshots += other.snapshots;
        self.snapshot_bytes += other.snapshot_bytes;
        self.snapshot_nanos += other.snapshot_nanos;
        self.restores += other.restores;
        self.restore_nanos += other.restore_nanos;
    }
}

// Compile-time audit of the thread-safety bounds the parallel campaign
// runner relies on. `grel-core` shares one immutable checkpoint ladder
// by reference across its injection workers and hands each worker its
// own device and session, so these bounds are load-bearing: losing one
// (say, by storing an `Rc` inside `Gpu`) must fail the build here, at
// the layer that owns the types, not at some distant spawn site.
const _: () = {
    const fn requires_send_sync<T: Send + Sync>() {}
    const fn requires_send<T: Send>() {}
    // Shared read-only across workers (the ladder rungs).
    requires_send_sync::<Checkpoint>();
    // Plans are cloned out of checkpoints on worker threads.
    requires_send_sync::<Box<dyn LaunchPlan>>();
    // Each worker owns a device and drives sessions over it.
    requires_send_sync::<Gpu>();
    requires_send::<Session<'static>>();
};

/// Result of advancing a session by one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// More steps remain.
    Running,
    /// The plan returned its final output; the session is complete.
    Finished,
}

/// Drives a [`LaunchPlan`] against a device one cycle at a time.
///
/// The session borrows the device mutably for its whole life, so the
/// caller keeps ownership (and can inspect the device afterwards, e.g. to
/// read performance counters).
pub struct Session<'g> {
    gpu: &'g mut Gpu,
    plan: Box<dyn LaunchPlan>,
    outputs: Option<Vec<u32>>,
    launch_stats: Vec<LaunchStats>,
    telemetry: SessionTelemetry,
    /// Scenarios whose divergent words were read during a verbatim
    /// plan's final output collection (SDC by construction; see
    /// [`LaunchPlan::outputs_verbatim`]).
    final_divergence: u64,
}

impl<'g> Session<'g> {
    /// Starts a session at the beginning of `plan`.
    pub fn new(gpu: &'g mut Gpu, plan: Box<dyn LaunchPlan>) -> Self {
        Session {
            gpu,
            plan,
            outputs: None,
            launch_stats: Vec::new(),
            telemetry: SessionTelemetry::default(),
            final_divergence: 0,
        }
    }

    /// Resumes a session from a checkpoint, overwriting `gpu` with the
    /// captured device state. Counts as one restore in the new session's
    /// [`SessionTelemetry`].
    pub fn resume(gpu: &'g mut Gpu, ckpt: &Checkpoint) -> Self {
        let started = Instant::now();
        *gpu = ckpt.gpu.clone();
        let plan = ckpt.plan.clone_plan();
        let telemetry = SessionTelemetry {
            restores: 1,
            restore_nanos: started.elapsed().as_nanos() as u64,
            ..SessionTelemetry::default()
        };
        Session {
            gpu,
            plan,
            outputs: ckpt.outputs.clone(),
            launch_stats: Vec::new(),
            telemetry,
            final_divergence: 0,
        }
    }

    /// Snapshot/restore counters accumulated by this session.
    pub fn telemetry(&self) -> &SessionTelemetry {
        &self.telemetry
    }

    /// The device being driven.
    pub fn gpu(&self) -> &Gpu {
        self.gpu
    }

    /// Mutable access to the device (e.g. to arm a fault mid-plan).
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        self.gpu
    }

    /// Bounds the replay on the borrowed device: a launch still in
    /// flight when the application clock reaches `limit` raises
    /// [`Due::WatchdogTimeout`](crate::error::Due::WatchdogTimeout),
    /// which campaigns classify as a hang. Control faults and scheduler
    /// corruptions can park a warp forever; without this bound such
    /// replays would never terminate.
    pub fn set_watchdog(&mut self, limit: u64) {
        self.gpu.set_watchdog(limit);
    }

    /// Arms a single fault on the borrowed device (replacing any
    /// pending faults) — the convenience used by replay drivers between
    /// restore and resume.
    pub fn arm_fault(&mut self, site: crate::fault::FaultSite) {
        self.gpu.arm_fault(site);
    }

    /// Arms a bit-plane batch on the borrowed device (see
    /// [`Gpu::arm_scenarios`]) — the convenience used by the batched
    /// replay driver between resume and the shared pass.
    pub fn arm_scenarios(&mut self, sites: &[crate::fault::FaultSite]) {
        self.gpu.arm_scenarios(sites);
    }

    /// Drains the device's pending scenario-fork requests; the batched
    /// replay driver polls this between steps and forks each newly
    /// returned scenario into a private replay.
    pub fn take_scenario_forks(&mut self) -> u64 {
        self.gpu.take_scenario_forks()
    }

    /// Scenarios whose divergence was first observed at a verbatim
    /// plan's final output collection: SDCs by construction, needing no
    /// private replay (see [`LaunchPlan::outputs_verbatim`]). Zero until
    /// the session finishes, and always zero for non-verbatim plans
    /// (their output-read divergence forks instead).
    pub fn final_scenario_divergence(&self) -> u64 {
        self.final_divergence
    }

    /// Whether the plan has produced its final output.
    pub fn finished(&self) -> bool {
        self.outputs.is_some()
    }

    /// The final output words, once [`Session::finished`].
    pub fn outputs(&self) -> Option<&[u32]> {
        self.outputs.as_deref()
    }

    /// Per-launch statistics for every launch completed by *this* session
    /// (restores do not clear it; resumed sessions start empty).
    pub fn launch_stats(&self) -> &[LaunchStats] {
        &self.launch_stats
    }

    /// Advances by one step: one application cycle if a launch is in
    /// flight, otherwise one host-side plan step (which consumes zero
    /// cycles). Safe to call after completion (returns `Finished`).
    ///
    /// # Errors
    ///
    /// Propagates launch failures ([`SimError::Due`] under fault
    /// injection, [`SimError::LaunchConfig`] from invalid plans).
    pub fn step<O: SimObserver>(&mut self, obs: &mut O) -> Result<SessionStatus, SimError> {
        if self.outputs.is_some() {
            return Ok(SessionStatus::Finished);
        }
        if self.gpu.launch_in_flight() {
            if let LaunchProgress::Finished(stats) = self.gpu.tick(obs)? {
                self.launch_stats.push(stats);
            }
            return Ok(SessionStatus::Running);
        }
        let step = self.plan.next(self.gpu)?;
        // Route the plan step's host-read divergence: a verbatim plan's
        // finishing reads *are* the outputs (divergence there is an SDC
        // verdict, not a fork); any other host read feeds host logic, so
        // the touched scenarios must leave the shared pass.
        let touched = self.gpu.take_host_touches();
        match step {
            PlanStep::Launch {
                kernel,
                cfg,
                params,
            } => {
                self.gpu.raise_scenario_forks(touched);
                self.gpu.begin_launch(&kernel, cfg, &params, obs)?;
                Ok(SessionStatus::Running)
            }
            PlanStep::Done(out) => {
                if self.plan.outputs_verbatim() {
                    self.final_divergence = touched;
                } else {
                    self.gpu.raise_scenario_forks(touched);
                }
                self.outputs = Some(out);
                Ok(SessionStatus::Finished)
            }
        }
    }

    /// Runs until the plan's target application cycle is reached (state is
    /// then *between* cycles, ready for [`Session::snapshot`]) or the plan
    /// completes, whichever comes first.
    ///
    /// # Errors
    ///
    /// Same as [`Session::step`].
    pub fn run_until_cycle<O: SimObserver>(
        &mut self,
        cycle: u64,
        obs: &mut O,
    ) -> Result<SessionStatus, SimError> {
        while self.outputs.is_none() && self.gpu.app_cycle() < cycle {
            self.step(obs)?;
        }
        Ok(if self.outputs.is_some() {
            SessionStatus::Finished
        } else {
            SessionStatus::Running
        })
    }

    /// Runs the plan to completion and returns the final output words.
    ///
    /// # Errors
    ///
    /// Same as [`Session::step`].
    pub fn run_to_completion<O: SimObserver>(&mut self, obs: &mut O) -> Result<Vec<u32>, SimError> {
        while self.step(obs)? == SessionStatus::Running {}
        Ok(self.outputs.clone().expect("finished session has outputs"))
    }

    /// Captures the complete session state (device + plan position).
    pub fn snapshot(&mut self) -> Checkpoint {
        let started = Instant::now();
        let ckpt = Checkpoint {
            gpu: self.gpu.clone(),
            plan: self.plan.clone_plan(),
            outputs: self.outputs.clone(),
        };
        self.telemetry.snapshots += 1;
        self.telemetry.snapshot_bytes += ckpt.size_bytes() as u64;
        self.telemetry.snapshot_nanos += started.elapsed().as_nanos() as u64;
        ckpt
    }

    /// Rewinds the session (and the borrowed device) to `ckpt`.
    pub fn restore(&mut self, ckpt: &Checkpoint) {
        let started = Instant::now();
        *self.gpu = ckpt.gpu.clone();
        self.plan = ckpt.plan.clone_plan();
        self.outputs = ckpt.outputs.clone();
        self.telemetry.restores += 1;
        self.telemetry.restore_nanos += started.elapsed().as_nanos() as u64;
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("cycle", &self.gpu.app_cycle())
            .field("in_flight", &self.gpu.launch_in_flight())
            .field("finished", &self.outputs.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchConfig;
    use crate::observer::NoopObserver;
    use simt_isa::{lower, KernelBuilder, MemSpace};

    /// Two back-to-back iota launches into one buffer, then readback.
    #[derive(Clone)]
    struct TwoLaunchPlan {
        stage: u32,
        buf: Option<crate::gpu::Buffer>,
    }

    impl TwoLaunchPlan {
        fn kernel(gpu: &Gpu) -> LoweredKernel {
            let mut b = KernelBuilder::new("iota", 1);
            let out = b.param(0);
            let gid = b.vreg();
            let addr = b.vreg();
            b.global_tid_x(gid);
            b.word_addr(addr, out, gid);
            b.st(MemSpace::Global, addr, gid);
            lower(&b.build().unwrap(), gpu.arch().caps()).unwrap()
        }
    }

    impl LaunchPlan for TwoLaunchPlan {
        fn next(&mut self, gpu: &mut Gpu) -> Result<PlanStep, SimError> {
            self.stage += 1;
            match self.stage {
                1 => {
                    self.buf = Some(gpu.alloc_words(64));
                    Ok(PlanStep::Launch {
                        kernel: Self::kernel(gpu),
                        cfg: LaunchConfig::linear(4, 16),
                        params: vec![self.buf.unwrap().addr()],
                    })
                }
                2 => Ok(PlanStep::Launch {
                    kernel: Self::kernel(gpu),
                    cfg: LaunchConfig::linear(4, 16),
                    params: vec![self.buf.unwrap().addr()],
                }),
                _ => Ok(PlanStep::Done(gpu.read_words(self.buf.unwrap(), 64))),
            }
        }

        fn clone_plan(&self) -> Box<dyn LaunchPlan> {
            Box::new(self.clone())
        }
    }

    fn plan() -> Box<dyn LaunchPlan> {
        Box::new(TwoLaunchPlan {
            stage: 0,
            buf: None,
        })
    }

    #[test]
    fn session_matches_monolithic_launches() {
        let arch = ArchConfig::small_test_gpu();

        let mut mono = Gpu::new(arch.clone());
        let buf = mono.alloc_words(64);
        let k = TwoLaunchPlan::kernel(&mono);
        let cfg = LaunchConfig::linear(4, 16);
        mono.launch(&k, cfg, &[buf.addr()]).unwrap();
        mono.launch(&k, cfg, &[buf.addr()]).unwrap();
        let mono_out = mono.read_words(buf, 64);

        let mut gpu = Gpu::new(arch);
        let mut s = Session::new(&mut gpu, plan());
        let out = s.run_to_completion(&mut NoopObserver).unwrap();
        assert_eq!(out, mono_out);
        assert_eq!(s.launch_stats().len(), 2);
        assert_eq!(gpu.app_cycle(), mono.app_cycle(), "cycle-exact equivalence");
        assert_eq!(gpu.launches(), 2);
    }

    #[test]
    fn snapshot_restore_round_trips_mid_kernel() {
        let arch = ArchConfig::small_test_gpu();
        let mut gpu = Gpu::new(arch.clone());
        let mut s = Session::new(&mut gpu, plan());

        // Straight run for the truth.
        let truth = s.run_to_completion(&mut NoopObserver).unwrap();
        let truth_cycles = s.gpu().app_cycle();

        // Run a few cycles in, snapshot, finish, then rewind and finish
        // again: both completions must agree with the truth.
        let mut gpu2 = Gpu::new(arch);
        let mut s2 = Session::new(&mut gpu2, plan());
        s2.run_until_cycle(5, &mut NoopObserver).unwrap();
        let ckpt = s2.snapshot();
        assert_eq!(ckpt.cycle(), 5);
        assert!(ckpt.size_bytes() > 0);
        let first = s2.run_to_completion(&mut NoopObserver).unwrap();
        let first_cycles = s2.gpu().app_cycle();
        s2.restore(&ckpt);
        assert_eq!(s2.gpu().app_cycle(), 5);
        let second = s2.run_to_completion(&mut NoopObserver).unwrap();
        assert_eq!(first, truth);
        assert_eq!(second, truth);
        assert_eq!(first_cycles, truth_cycles);
        assert_eq!(s2.gpu().app_cycle(), truth_cycles);
    }

    #[test]
    fn resume_from_checkpoint_on_fresh_device() {
        let arch = ArchConfig::small_test_gpu();
        let mut gpu = Gpu::new(arch.clone());
        let mut s = Session::new(&mut gpu, plan());
        let truth = s.run_to_completion(&mut NoopObserver).unwrap();

        let mut gpu2 = Gpu::new(arch.clone());
        let mut s2 = Session::new(&mut gpu2, plan());
        s2.run_until_cycle(7, &mut NoopObserver).unwrap();
        let ckpt = s2.snapshot();
        drop(s2);

        let mut gpu3 = Gpu::new(arch);
        let mut s3 = Session::resume(&mut gpu3, &ckpt);
        assert_eq!(s3.gpu().app_cycle(), 7);
        let out = s3.run_to_completion(&mut NoopObserver).unwrap();
        assert_eq!(out, truth);
    }

    #[test]
    fn step_after_finish_is_idempotent() {
        let mut gpu = Gpu::new(ArchConfig::small_test_gpu());
        let mut s = Session::new(&mut gpu, plan());
        s.run_to_completion(&mut NoopObserver).unwrap();
        assert_eq!(s.step(&mut NoopObserver).unwrap(), SessionStatus::Finished);
        assert!(s.finished());
        assert!(s.outputs().is_some());
    }

    #[test]
    fn telemetry_counts_snapshots_and_restores() {
        let mut gpu = Gpu::new(ArchConfig::small_test_gpu());
        let mut s = Session::new(&mut gpu, plan());
        assert_eq!(*s.telemetry(), SessionTelemetry::default());
        s.run_until_cycle(5, &mut NoopObserver).unwrap();
        let ckpt = s.snapshot();
        let after_snap = *s.telemetry();
        assert_eq!(after_snap.snapshots, 1);
        assert_eq!(after_snap.snapshot_bytes, ckpt.size_bytes() as u64);
        assert_eq!(after_snap.restores, 0);
        s.restore(&ckpt);
        assert_eq!(s.telemetry().restores, 1);

        let mut gpu2 = Gpu::new(ArchConfig::small_test_gpu());
        let resumed = Session::resume(&mut gpu2, &ckpt);
        assert_eq!(resumed.telemetry().restores, 1);
        assert_eq!(resumed.telemetry().snapshots, 0);

        let mut merged = after_snap;
        merged.merge(resumed.telemetry());
        assert_eq!(merged.snapshots, 1);
        assert_eq!(merged.restores, 1);
    }

    #[test]
    fn checkpoints_are_shareable_across_threads() {
        let arch = ArchConfig::small_test_gpu();
        let mut gpu = Gpu::new(arch);
        let mut s = Session::new(&mut gpu, plan());
        s.run_until_cycle(3, &mut NoopObserver).unwrap();
        let ckpt = s.snapshot();
        let truth = s.run_to_completion(&mut NoopObserver).unwrap();

        let outs: Vec<Vec<u32>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let ckpt = &ckpt;
                    scope.spawn(move || {
                        let mut g = Gpu::new(ArchConfig::small_test_gpu());
                        let mut s = Session::resume(&mut g, ckpt);
                        s.run_to_completion(&mut NoopObserver).unwrap()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for o in outs {
            assert_eq!(o, truth);
        }
    }
}
