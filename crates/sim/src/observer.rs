//! Observer hooks: the event stream consumed by reliability analyses.
//!
//! The simulator reports every architected-storage access and every
//! allocation boundary through [`SimObserver`]. `grel-core`'s ACE analyzer
//! and occupancy tracker are pure consumers of these events; fault
//! injection needs none of them (campaign runs use [`NoopObserver`], which
//! monomorphises to nothing).

use crate::fault::FaultSite;

/// The physical regions a block occupies on its SM, reported at dispatch
/// and retire so analyses can reason about exact allocation extents.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockRegions {
    /// Vector-RF region start (words).
    pub rf_base: u32,
    /// Vector-RF region length (words).
    pub rf_len: u32,
    /// Scalar-RF region start (words).
    pub srf_base: u32,
    /// Scalar-RF region length (words).
    pub srf_len: u32,
    /// LDS region start (words).
    pub lds_base: u32,
    /// LDS region length (words).
    pub lds_len: u32,
}

/// Receiver of simulation events.
///
/// All methods have empty default bodies so an observer implements only
/// what it needs. Word indices are *physical* indices into the named
/// per-SM structure — the same address space as [`FaultSite::word`].
///
/// # Example
/// ```
/// use simt_sim::SimObserver;
///
/// #[derive(Default)]
/// struct CountWrites(u64);
/// impl SimObserver for CountWrites {
///     fn on_rf_write(&mut self, _sm: u32, _word: u32, _cycle: u64) {
///         self.0 += 1;
///     }
/// }
/// ```
pub trait SimObserver {
    /// A vector-register word was written.
    fn on_rf_write(&mut self, sm: u32, word: u32, cycle: u64) {
        let _ = (sm, word, cycle);
    }

    /// A vector-register word was read.
    fn on_rf_read(&mut self, sm: u32, word: u32, cycle: u64) {
        let _ = (sm, word, cycle);
    }

    /// A scalar-register word was written.
    fn on_srf_write(&mut self, sm: u32, word: u32, cycle: u64) {
        let _ = (sm, word, cycle);
    }

    /// A scalar-register word was read.
    fn on_srf_read(&mut self, sm: u32, word: u32, cycle: u64) {
        let _ = (sm, word, cycle);
    }

    /// An LDS word was written.
    fn on_lds_write(&mut self, sm: u32, word: u32, cycle: u64) {
        let _ = (sm, word, cycle);
    }

    /// An LDS word was read.
    fn on_lds_read(&mut self, sm: u32, word: u32, cycle: u64) {
        let _ = (sm, word, cycle);
    }

    /// A block was dispatched to `sm`, allocating the given regions.
    fn on_block_dispatch(&mut self, sm: u32, regions: BlockRegions, cycle: u64) {
        let _ = (sm, regions, cycle);
    }

    /// A block retired from `sm`, freeing the given regions.
    fn on_block_retire(&mut self, sm: u32, regions: BlockRegions, cycle: u64) {
        let _ = (sm, regions, cycle);
    }

    /// A kernel launch began at this application cycle.
    fn on_launch_begin(&mut self, name: &str, cycle: u64) {
        let _ = (name, cycle);
    }

    /// The current kernel launch completed at this application cycle.
    fn on_launch_end(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// A word was stored to global memory.
    ///
    /// `addr` is the byte address of the store. Unlike the per-SM
    /// structures above, global memory is device-wide; the `sm` argument
    /// names the SM that issued the store. Host-side writes (plan setup
    /// steps) do not pass through this hook.
    fn on_global_write(&mut self, sm: u32, addr: u32, value: u32, cycle: u64) {
        let _ = (sm, addr, value, cycle);
    }

    /// An armed fault was injected.
    fn on_fault_injected(&mut self, site: FaultSite) {
        let _ = site;
    }

    /// A stuck-at fault re-asserted itself on a write: the value stored
    /// to `word` differed from the value the program requested.
    fn on_stuck_reassert(
        &mut self,
        sm: u32,
        structure: crate::fault::Structure,
        word: u32,
        cycle: u64,
    ) {
        let _ = (sm, structure, word, cycle);
    }

    /// The watchdog cycle bound expired: the replay is hung. Reported
    /// with the number of warps parked at barriers device-wide (nonzero
    /// for barrier deadlocks, zero for scheduler starvation).
    fn on_hang(&mut self, cycle: u64, parked_warps: u32) {
        let _ = (cycle, parked_warps);
    }

    /// A control fault corrupted *live* scheduler/mask/scoreboard/barrier
    /// state (not fired when the targeted slot was empty — such
    /// injections are architecturally masked).
    fn on_control_corrupt(&mut self, site: FaultSite, cycle: u64) {
        let _ = (site, cycle);
    }
}

impl<T: SimObserver + ?Sized> SimObserver for &mut T {
    fn on_rf_write(&mut self, sm: u32, word: u32, cycle: u64) {
        (**self).on_rf_write(sm, word, cycle);
    }
    fn on_rf_read(&mut self, sm: u32, word: u32, cycle: u64) {
        (**self).on_rf_read(sm, word, cycle);
    }
    fn on_srf_write(&mut self, sm: u32, word: u32, cycle: u64) {
        (**self).on_srf_write(sm, word, cycle);
    }
    fn on_srf_read(&mut self, sm: u32, word: u32, cycle: u64) {
        (**self).on_srf_read(sm, word, cycle);
    }
    fn on_lds_write(&mut self, sm: u32, word: u32, cycle: u64) {
        (**self).on_lds_write(sm, word, cycle);
    }
    fn on_lds_read(&mut self, sm: u32, word: u32, cycle: u64) {
        (**self).on_lds_read(sm, word, cycle);
    }
    fn on_block_dispatch(&mut self, sm: u32, regions: BlockRegions, cycle: u64) {
        (**self).on_block_dispatch(sm, regions, cycle);
    }
    fn on_block_retire(&mut self, sm: u32, regions: BlockRegions, cycle: u64) {
        (**self).on_block_retire(sm, regions, cycle);
    }
    fn on_launch_begin(&mut self, name: &str, cycle: u64) {
        (**self).on_launch_begin(name, cycle);
    }
    fn on_launch_end(&mut self, cycle: u64) {
        (**self).on_launch_end(cycle);
    }
    fn on_global_write(&mut self, sm: u32, addr: u32, value: u32, cycle: u64) {
        (**self).on_global_write(sm, addr, value, cycle);
    }
    fn on_fault_injected(&mut self, site: FaultSite) {
        (**self).on_fault_injected(site);
    }
    fn on_stuck_reassert(
        &mut self,
        sm: u32,
        structure: crate::fault::Structure,
        word: u32,
        cycle: u64,
    ) {
        (**self).on_stuck_reassert(sm, structure, word, cycle);
    }
    fn on_hang(&mut self, cycle: u64, parked_warps: u32) {
        (**self).on_hang(cycle, parked_warps);
    }
    fn on_control_corrupt(&mut self, site: FaultSite, cycle: u64) {
        (**self).on_control_corrupt(site, cycle);
    }
}

/// A pair of observers driven by one event stream: every event is
/// forwarded to `.0` first, then `.1`. Lets two analyses (e.g. ACE
/// lifetime tracking and the campaign pruning oracle) ride a single
/// golden run instead of paying for one instrumented pass each.
///
/// # Example
/// ```
/// use simt_sim::{CountingObserver, SimObserver};
/// let mut pair = (CountingObserver::default(), CountingObserver::default());
/// pair.on_rf_write(0, 1, 2);
/// assert_eq!(pair.0.rf_writes, 1);
/// assert_eq!(pair.1.rf_writes, 1);
/// ```
impl<A: SimObserver, B: SimObserver> SimObserver for (A, B) {
    fn on_rf_write(&mut self, sm: u32, word: u32, cycle: u64) {
        self.0.on_rf_write(sm, word, cycle);
        self.1.on_rf_write(sm, word, cycle);
    }
    fn on_rf_read(&mut self, sm: u32, word: u32, cycle: u64) {
        self.0.on_rf_read(sm, word, cycle);
        self.1.on_rf_read(sm, word, cycle);
    }
    fn on_srf_write(&mut self, sm: u32, word: u32, cycle: u64) {
        self.0.on_srf_write(sm, word, cycle);
        self.1.on_srf_write(sm, word, cycle);
    }
    fn on_srf_read(&mut self, sm: u32, word: u32, cycle: u64) {
        self.0.on_srf_read(sm, word, cycle);
        self.1.on_srf_read(sm, word, cycle);
    }
    fn on_lds_write(&mut self, sm: u32, word: u32, cycle: u64) {
        self.0.on_lds_write(sm, word, cycle);
        self.1.on_lds_write(sm, word, cycle);
    }
    fn on_lds_read(&mut self, sm: u32, word: u32, cycle: u64) {
        self.0.on_lds_read(sm, word, cycle);
        self.1.on_lds_read(sm, word, cycle);
    }
    fn on_block_dispatch(&mut self, sm: u32, regions: BlockRegions, cycle: u64) {
        self.0.on_block_dispatch(sm, regions, cycle);
        self.1.on_block_dispatch(sm, regions, cycle);
    }
    fn on_block_retire(&mut self, sm: u32, regions: BlockRegions, cycle: u64) {
        self.0.on_block_retire(sm, regions, cycle);
        self.1.on_block_retire(sm, regions, cycle);
    }
    fn on_launch_begin(&mut self, name: &str, cycle: u64) {
        self.0.on_launch_begin(name, cycle);
        self.1.on_launch_begin(name, cycle);
    }
    fn on_launch_end(&mut self, cycle: u64) {
        self.0.on_launch_end(cycle);
        self.1.on_launch_end(cycle);
    }
    fn on_global_write(&mut self, sm: u32, addr: u32, value: u32, cycle: u64) {
        self.0.on_global_write(sm, addr, value, cycle);
        self.1.on_global_write(sm, addr, value, cycle);
    }
    fn on_fault_injected(&mut self, site: FaultSite) {
        self.0.on_fault_injected(site);
        self.1.on_fault_injected(site);
    }
    fn on_stuck_reassert(
        &mut self,
        sm: u32,
        structure: crate::fault::Structure,
        word: u32,
        cycle: u64,
    ) {
        self.0.on_stuck_reassert(sm, structure, word, cycle);
        self.1.on_stuck_reassert(sm, structure, word, cycle);
    }
    fn on_hang(&mut self, cycle: u64, parked_warps: u32) {
        self.0.on_hang(cycle, parked_warps);
        self.1.on_hang(cycle, parked_warps);
    }
    fn on_control_corrupt(&mut self, site: FaultSite, cycle: u64) {
        self.0.on_control_corrupt(site, cycle);
        self.1.on_control_corrupt(site, cycle);
    }
}

/// The do-nothing observer used by fault-injection campaign runs.
///
/// # Example
/// ```
/// use simt_sim::{NoopObserver, SimObserver};
/// let mut o = NoopObserver;
/// o.on_rf_write(0, 0, 0); // compiles to nothing
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {}

/// An observer that counts every event class — the cheapest way to
/// characterise a workload's storage-access profile (and to sanity-check
/// the event stream feeding heavier analyses like ACE).
///
/// # Example
/// ```
/// use simt_sim::{CountingObserver, SimObserver};
/// let mut c = CountingObserver::default();
/// c.on_rf_write(0, 1, 2);
/// c.on_rf_read(0, 1, 3);
/// c.on_lds_write(0, 0, 4);
/// assert_eq!(c.rf_writes, 1);
/// assert_eq!(c.rf_reads, 1);
/// assert_eq!(c.lds_writes, 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingObserver {
    /// Vector-register words written.
    pub rf_writes: u64,
    /// Vector-register words read.
    pub rf_reads: u64,
    /// Scalar-register words written.
    pub srf_writes: u64,
    /// Scalar-register words read.
    pub srf_reads: u64,
    /// LDS words written.
    pub lds_writes: u64,
    /// LDS words read.
    pub lds_reads: u64,
    /// Global-memory words stored.
    pub global_writes: u64,
    /// Blocks dispatched.
    pub blocks: u64,
    /// Kernel launches observed.
    pub launches: u64,
    /// Faults injected.
    pub faults: u64,
    /// Stuck-at re-assertions observed on writes.
    pub stuck_reasserts: u64,
    /// Watchdog hangs observed.
    pub hangs: u64,
    /// Control faults that corrupted live state.
    pub control_corrupts: u64,
}

impl SimObserver for CountingObserver {
    fn on_rf_write(&mut self, _sm: u32, _word: u32, _cycle: u64) {
        self.rf_writes += 1;
    }
    fn on_rf_read(&mut self, _sm: u32, _word: u32, _cycle: u64) {
        self.rf_reads += 1;
    }
    fn on_srf_write(&mut self, _sm: u32, _word: u32, _cycle: u64) {
        self.srf_writes += 1;
    }
    fn on_srf_read(&mut self, _sm: u32, _word: u32, _cycle: u64) {
        self.srf_reads += 1;
    }
    fn on_lds_write(&mut self, _sm: u32, _word: u32, _cycle: u64) {
        self.lds_writes += 1;
    }
    fn on_lds_read(&mut self, _sm: u32, _word: u32, _cycle: u64) {
        self.lds_reads += 1;
    }
    fn on_global_write(&mut self, _sm: u32, _addr: u32, _value: u32, _cycle: u64) {
        self.global_writes += 1;
    }
    fn on_block_dispatch(&mut self, _sm: u32, _regions: BlockRegions, _cycle: u64) {
        self.blocks += 1;
    }
    fn on_launch_begin(&mut self, _name: &str, _cycle: u64) {
        self.launches += 1;
    }
    fn on_fault_injected(&mut self, _site: FaultSite) {
        self.faults += 1;
    }
    fn on_stuck_reassert(
        &mut self,
        _sm: u32,
        _structure: crate::fault::Structure,
        _word: u32,
        _cycle: u64,
    ) {
        self.stuck_reasserts += 1;
    }
    fn on_hang(&mut self, _cycle: u64, _parked_warps: u32) {
        self.hangs += 1;
    }
    fn on_control_corrupt(&mut self, _site: FaultSite, _cycle: u64) {
        self.control_corrupts += 1;
    }
}

/// Per-structure activity totals for one observed structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotspotCounters {
    /// Words read from the structure.
    pub reads: u64,
    /// Words written to the structure.
    pub writes: u64,
    /// Cycle of the first access (`u64::MAX` when never touched).
    pub first_cycle: u64,
    /// Cycle of the last access.
    pub last_cycle: u64,
}

impl HotspotCounters {
    const IDLE: HotspotCounters = HotspotCounters {
        reads: 0,
        writes: 0,
        first_cycle: u64::MAX,
        last_cycle: 0,
    };

    fn touch(&mut self, cycle: u64) {
        self.first_cycle = self.first_cycle.min(cycle);
        self.last_cycle = self.last_cycle.max(cycle);
    }

    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Cycles between first and last access (0 when never touched).
    pub fn active_cycles(&self) -> u64 {
        if self.first_cycle == u64::MAX {
            0
        } else {
            self.last_cycle - self.first_cycle + 1
        }
    }
}

/// The profiler's hot-spot observer: per-structure access and
/// active-cycle totals for RF/SRF/LDS plus scheduler activity (block
/// dispatches and launches), cheap enough to ride one extra golden run.
/// `repro profile` uses it to show where bit-plane batching would pay.
///
/// # Example
/// ```
/// use simt_sim::{HotspotObserver, SimObserver};
/// let mut h = HotspotObserver::default();
/// h.on_rf_write(0, 1, 10);
/// h.on_rf_read(0, 1, 90);
/// assert_eq!(h.rf.accesses(), 2);
/// assert_eq!(h.rf.active_cycles(), 81);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotspotObserver {
    /// Vector register file activity.
    pub rf: HotspotCounters,
    /// Scalar register file activity.
    pub srf: HotspotCounters,
    /// Local memory (LDS) activity.
    pub lds: HotspotCounters,
    /// Blocks dispatched by the scheduler.
    pub sched_dispatches: u64,
    /// Kernel launches observed.
    pub launches: u64,
    /// Cycle at the last launch end (the run's length once finished).
    pub end_cycle: u64,
}

impl Default for HotspotObserver {
    fn default() -> Self {
        HotspotObserver {
            rf: HotspotCounters::IDLE,
            srf: HotspotCounters::IDLE,
            lds: HotspotCounters::IDLE,
            sched_dispatches: 0,
            launches: 0,
            end_cycle: 0,
        }
    }
}

impl SimObserver for HotspotObserver {
    fn on_rf_write(&mut self, _sm: u32, _word: u32, cycle: u64) {
        self.rf.writes += 1;
        self.rf.touch(cycle);
    }
    fn on_rf_read(&mut self, _sm: u32, _word: u32, cycle: u64) {
        self.rf.reads += 1;
        self.rf.touch(cycle);
    }
    fn on_srf_write(&mut self, _sm: u32, _word: u32, cycle: u64) {
        self.srf.writes += 1;
        self.srf.touch(cycle);
    }
    fn on_srf_read(&mut self, _sm: u32, _word: u32, cycle: u64) {
        self.srf.reads += 1;
        self.srf.touch(cycle);
    }
    fn on_lds_write(&mut self, _sm: u32, _word: u32, cycle: u64) {
        self.lds.writes += 1;
        self.lds.touch(cycle);
    }
    fn on_lds_read(&mut self, _sm: u32, _word: u32, cycle: u64) {
        self.lds.reads += 1;
        self.lds.touch(cycle);
    }
    fn on_block_dispatch(&mut self, _sm: u32, _regions: BlockRegions, _cycle: u64) {
        self.sched_dispatches += 1;
    }
    fn on_launch_begin(&mut self, _name: &str, _cycle: u64) {
        self.launches += 1;
    }
    fn on_launch_end(&mut self, cycle: u64) {
        self.end_cycle = self.end_cycle.max(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Structure;

    #[derive(Default)]
    struct Recorder {
        rf_writes: u64,
        lds_reads: u64,
        launches: u64,
        faults: u64,
    }

    impl SimObserver for Recorder {
        fn on_rf_write(&mut self, _sm: u32, _word: u32, _cycle: u64) {
            self.rf_writes += 1;
        }
        fn on_lds_read(&mut self, _sm: u32, _word: u32, _cycle: u64) {
            self.lds_reads += 1;
        }
        fn on_launch_begin(&mut self, _name: &str, _cycle: u64) {
            self.launches += 1;
        }
        fn on_fault_injected(&mut self, _site: FaultSite) {
            self.faults += 1;
        }
    }

    #[test]
    fn default_methods_are_noops_and_overrides_fire() {
        let mut r = Recorder::default();
        r.on_rf_write(0, 1, 2);
        r.on_rf_read(0, 1, 2); // default: ignored
        r.on_lds_read(1, 2, 3);
        r.on_launch_begin("k", 0);
        r.on_launch_end(10);
        r.on_fault_injected(FaultSite::new(Structure::VectorRegisterFile, 0, 0, 0, 0));
        assert_eq!(r.rf_writes, 1);
        assert_eq!(r.lds_reads, 1);
        assert_eq!(r.launches, 1);
        assert_eq!(r.faults, 1);
    }

    #[test]
    fn hotspot_observer_tracks_per_structure_activity() {
        let mut h = HotspotObserver::default();
        h.on_launch_begin("k", 0);
        h.on_block_dispatch(0, BlockRegions::default(), 1);
        h.on_rf_write(0, 1, 10);
        h.on_rf_read(0, 1, 50);
        h.on_lds_write(0, 3, 20);
        h.on_launch_end(100);
        assert_eq!(h.rf.writes, 1);
        assert_eq!(h.rf.reads, 1);
        assert_eq!(h.rf.active_cycles(), 41);
        assert_eq!(h.lds.accesses(), 1);
        assert_eq!(h.srf.accesses(), 0);
        assert_eq!(h.srf.active_cycles(), 0, "untouched structure is idle");
        assert_eq!(h.sched_dispatches, 1);
        assert_eq!(h.launches, 1);
        assert_eq!(h.end_cycle, 100);
    }
}
