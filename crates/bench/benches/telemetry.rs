//! Criterion bench guarding the telemetry overhead contract: a campaign
//! run through the hooked entry points with [`NoopHook`] must stay
//! within noise of the pre-telemetry code path (the hooks monomorphise
//! away), and a live [`RegistryHook`] must cost only a few percent.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_archs::geforce_gtx_480;
use gpu_workloads::VectorAdd;
use grel_core::campaign::{run_campaign, run_campaign_hooked, CampaignConfig};
use grel_telemetry::{MetricsRegistry, NoopHook, RegistryHook};
use simt_sim::Structure;

fn campaign_cfg() -> CampaignConfig {
    let mut cfg = CampaignConfig::quick(11);
    cfg.injections = 24;
    cfg.threads = 1;
    cfg
}

/// The same register-file campaign three ways: the plain entry point
/// (what pre-telemetry callers compiled), the hooked entry point with
/// the no-op hook (must be the same machine code modulo inlining), and
/// a live metrics registry (the real-world instrumented cost).
fn campaign_telemetry_overhead(c: &mut Criterion) {
    let arch = geforce_gtx_480();
    let w = VectorAdd::new(1024, 11);
    let cfg = campaign_cfg();
    let mut g = c.benchmark_group("campaign_telemetry_overhead");
    g.bench_function("plain", |b| {
        b.iter(|| run_campaign(&arch, &w, Structure::VectorRegisterFile, cfg).unwrap())
    });
    g.bench_function("noop_hook", |b| {
        b.iter(|| {
            run_campaign_hooked(&arch, &w, Structure::VectorRegisterFile, cfg, &NoopHook).unwrap()
        })
    });
    g.bench_function("registry_hook", |b| {
        let registry = MetricsRegistry::new();
        let hook = RegistryHook::new(&registry);
        b.iter(|| {
            run_campaign_hooked(&arch, &w, Structure::VectorRegisterFile, cfg, &hook).unwrap()
        })
    });
    g.finish();
}

/// The raw record path: one counter bump and one histogram observation
/// against an uncontended thread-local shard.
fn registry_record_cost(c: &mut Criterion) {
    let registry = MetricsRegistry::new();
    let mut g = c.benchmark_group("registry_record");
    g.bench_function("counter", |b| {
        b.iter(|| registry.counter("bench_counter_total", 1))
    });
    g.bench_function("observe", |b| {
        b.iter(|| registry.observe("bench_seconds", 0.0125))
    });
    g.finish();
}

criterion_group! {
    name = telemetry;
    config = Criterion::default().sample_size(10);
    targets = campaign_telemetry_overhead, registry_record_cost
}
criterion_main!(telemetry);
