//! Criterion benches for the simulator substrate itself: raw launch
//! throughput per device generation, the cost of observation (ACE) versus
//! a bare run, and the design-choice ablations called out in DESIGN.md
//! (scheduler policy, coalescing, LDS bank conflicts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_archs::{all_devices, geforce_gtx_480};
use gpu_workloads::{MatrixMul, VectorAdd, Workload};
use grel_core::ace::{AceAnalyzer, AceMode};
use simt_isa::{lower, KernelBuilder, MemSpace};
use simt_sim::{ArchConfig, Gpu, LaunchConfig, NoopObserver, SchedulerPolicy};

/// Launch throughput of the same workload across all four device models.
fn device_throughput(c: &mut Criterion) {
    let w = VectorAdd::new(2048, 1);
    let mut g = c.benchmark_group("device_throughput_vectoradd2k");
    for arch in all_devices() {
        g.bench_with_input(BenchmarkId::from_parameter(&arch.name), &arch, |b, arch| {
            b.iter(|| {
                let mut gpu = Gpu::new(arch.clone());
                w.run(&mut gpu, &mut NoopObserver).unwrap()
            })
        });
    }
    g.finish();
}

/// Cost of full observation: bare run vs ACE-analyzed run (both modes).
fn observation_overhead(c: &mut Criterion) {
    let arch = geforce_gtx_480();
    let w = MatrixMul::new(32, 1);
    let mut g = c.benchmark_group("observation_overhead_matmul32");
    g.bench_function("noop_observer", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(arch.clone());
            w.run(&mut gpu, &mut NoopObserver).unwrap()
        })
    });
    g.bench_function("ace_conservative", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(arch.clone());
            let mut ace = AceAnalyzer::new(&arch);
            w.run(&mut gpu, &mut ace).unwrap()
        })
    });
    g.bench_function("ace_refined", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(arch.clone());
            let mut ace = AceAnalyzer::with_mode(&arch, AceMode::WriteToLastRead);
            w.run(&mut gpu, &mut ace).unwrap()
        })
    });
    g.finish();
}

/// Ablation: LRR vs GTO warp scheduling on the same device.
fn scheduler_ablation(c: &mut Criterion) {
    let w = MatrixMul::new(32, 1);
    let mut g = c.benchmark_group("scheduler_ablation_matmul32");
    for policy in [SchedulerPolicy::Lrr, SchedulerPolicy::Gto] {
        let mut arch = geforce_gtx_480();
        arch.scheduler = policy;
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &arch,
            |b, arch| {
                b.iter(|| {
                    let mut gpu = Gpu::new(arch.clone());
                    w.run(&mut gpu, &mut NoopObserver).unwrap()
                })
            },
        );
    }
    g.finish();
}

fn strided_kernel(arch: &ArchConfig, stride: u32) -> (simt_isa::LoweredKernel, u32) {
    // out[i] = in[(i * stride) % n] — stride 1 coalesces, large strides
    // scatter across segments.
    let n = 2048u32;
    let mut kb = KernelBuilder::new("strided", 3);
    let (pin, pout, pn) = (kb.param(0), kb.param(1), kb.param(2));
    let gid = kb.vreg();
    let idx = kb.vreg();
    let v = kb.vreg();
    let addr = kb.vreg();
    kb.global_tid_x(gid);
    kb.imul(idx, gid, stride);
    kb.urem(idx, idx, pn);
    kb.word_addr(addr, pin, idx);
    kb.ld(MemSpace::Global, v, addr);
    kb.word_addr(addr, pout, gid);
    kb.st(MemSpace::Global, addr, v);
    kb.exit();
    (lower(&kb.build().unwrap(), arch.caps()).unwrap(), n)
}

/// Ablation: memory-coalescing sensitivity (stride sweep).
fn coalescing_ablation(c: &mut Criterion) {
    let arch = geforce_gtx_480();
    let mut g = c.benchmark_group("coalescing_stride");
    for stride in [1u32, 2, 8, 32] {
        let (kernel, n) = strided_kernel(&arch, stride);
        g.bench_with_input(BenchmarkId::from_parameter(stride), &stride, |b, _| {
            b.iter(|| {
                let mut gpu = Gpu::new(arch.clone());
                let bin = gpu.alloc_words(n);
                let bout = gpu.alloc_words(n);
                gpu.launch(
                    &kernel,
                    LaunchConfig::linear(n / 128, 128),
                    &[bin.addr(), bout.addr(), n],
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = simulator;
    config = Criterion::default().sample_size(10);
    targets = device_throughput, observation_overhead, scheduler_ablation, coalescing_ablation
}
criterion_main!(simulator);
