//! Criterion benches for the figure-regeneration pipeline: one bench per
//! paper artifact (Fig. 1, Fig. 2, Fig. 3 and the findings roll-up), at
//! smoke scale so a full `cargo bench` stays in minutes. The `repro`
//! binary regenerates the figures at paper scale.

use criterion::{criterion_group, criterion_main, Criterion};
use grel_core::campaign::{run_campaign, CampaignConfig};
use grel_core::study::{evaluate_point, run_study, StudyConfig};
use gpu_archs::{geforce_gtx_480, hd_radeon_7970, quadro_fx_5600};
use gpu_workloads::{Histogram, Transpose, VectorAdd, Workload};
use simt_sim::Structure;

fn tiny_campaign(seed: u64) -> CampaignConfig {
    CampaignConfig { injections: 8, seed, threads: 2, watchdog_factor: 10 }
}

fn tiny_study(seed: u64) -> StudyConfig {
    StudyConfig {
        campaign: tiny_campaign(seed),
        workload_seed: seed,
        fi_on_unused_lds: false,
        ace_mode: Default::default(),
    }
}

/// Fig. 1 pipeline: register-file FI campaign (golden run + replays).
fn fig1_rf_avf(c: &mut Criterion) {
    let arch = quadro_fx_5600();
    let w = VectorAdd::new(512, 3);
    c.bench_function("fig1_rf_avf_campaign", |b| {
        b.iter(|| {
            run_campaign(&arch, &w, Structure::VectorRegisterFile, tiny_campaign(3)).unwrap()
        })
    });
}

/// Fig. 2 pipeline: local-memory FI campaign on an LDS workload.
fn fig2_lds_avf(c: &mut Criterion) {
    let arch = geforce_gtx_480();
    let w = Transpose::new(32, 3);
    c.bench_function("fig2_lds_avf_campaign", |b| {
        b.iter(|| run_campaign(&arch, &w, Structure::LocalMemory, tiny_campaign(3)).unwrap())
    });
}

/// Fig. 3 pipeline: a full evaluation point (ACE + FI + EPF roll-up).
fn fig3_epf(c: &mut Criterion) {
    let arch = quadro_fx_5600();
    let w = Histogram::new(1024, 64, 3);
    let cfg = tiny_study(3);
    c.bench_function("fig3_epf_point", |b| {
        b.iter(|| evaluate_point(&arch, &w, &cfg).unwrap())
    });
}

/// Findings roll-up: a 2-device × 2-workload mini study.
fn findings_study(c: &mut Criterion) {
    let archs = vec![quadro_fx_5600(), hd_radeon_7970()];
    let cfg = tiny_study(5);
    c.bench_function("findings_mini_study", |b| {
        b.iter(|| {
            let workloads: Vec<Box<dyn Workload>> = vec![
                Box::new(VectorAdd::new(512, 5)),
                Box::new(Transpose::new(32, 5)),
            ];
            let study = run_study(&archs, &workloads, &cfg).unwrap();
            study.findings()
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig1_rf_avf, fig2_lds_avf, fig3_epf, findings_study
}
criterion_main!(figures);
