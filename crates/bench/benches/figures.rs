//! Criterion benches for the figure-regeneration pipeline: one bench per
//! paper artifact (Fig. 1, Fig. 2, Fig. 3 and the findings roll-up), at
//! smoke scale so a full `cargo bench` stays in minutes. The `repro`
//! binary regenerates the figures at paper scale.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_archs::{geforce_gtx_480, hd_radeon_7970, quadro_fx_5600};
use gpu_workloads::{Histogram, Transpose, VectorAdd, Workload};
use grel_core::campaign::{
    golden_run, run_campaign, run_injections, run_injections_checkpointed, sample_sites,
    CampaignConfig, CheckpointLadder,
};
use grel_core::study::{evaluate_point, run_study, StudyConfig};
use simt_sim::Structure;

fn tiny_campaign(seed: u64) -> CampaignConfig {
    CampaignConfig {
        injections: 8,
        threads: 2,
        ..CampaignConfig::quick(seed)
    }
}

fn tiny_study(seed: u64) -> StudyConfig {
    StudyConfig {
        campaign: tiny_campaign(seed),
        workload_seed: seed,
        fi_on_unused_lds: false,
        provenance: false,
        ace_mode: Default::default(),
        sampling: Default::default(),
    }
}

/// Fig. 1 pipeline: register-file FI campaign (golden run + replays).
fn fig1_rf_avf(c: &mut Criterion) {
    let arch = quadro_fx_5600();
    let w = VectorAdd::new(512, 3);
    c.bench_function("fig1_rf_avf_campaign", |b| {
        b.iter(|| run_campaign(&arch, &w, Structure::VectorRegisterFile, tiny_campaign(3)).unwrap())
    });
}

/// Fig. 2 pipeline: local-memory FI campaign on an LDS workload.
fn fig2_lds_avf(c: &mut Criterion) {
    let arch = geforce_gtx_480();
    let w = Transpose::new(32, 3);
    c.bench_function("fig2_lds_avf_campaign", |b| {
        b.iter(|| run_campaign(&arch, &w, Structure::LocalMemory, tiny_campaign(3)).unwrap())
    });
}

/// Fig. 3 pipeline: a full evaluation point (ACE + FI + EPF roll-up).
fn fig3_epf(c: &mut Criterion) {
    let arch = quadro_fx_5600();
    let w = Histogram::new(1024, 64, 3);
    let cfg = tiny_study(3);
    c.bench_function("fig3_epf_point", |b| {
        b.iter(|| evaluate_point(&arch, &w, &cfg).unwrap())
    });
}

/// Replay accelerator: the same RF injection set from cycle zero vs
/// resumed from the checkpoint ladder (ladder built once, as campaigns
/// amortise it).
fn replay_checkpointed_vs_zero(c: &mut Criterion) {
    let arch = quadro_fx_5600();
    let w = VectorAdd::new(512, 3);
    let cfg = tiny_campaign(3);
    let golden = golden_run(&arch, &w).unwrap();
    let sites = sample_sites(
        &arch,
        Structure::VectorRegisterFile,
        golden.cycles,
        cfg.injections,
        cfg.seed,
    );
    let ladder = CheckpointLadder::build(&arch, &w, &golden, &cfg).unwrap();
    c.bench_function("replay_from_zero", |b| {
        b.iter(|| run_injections(&arch, &w, &golden, &sites, cfg).unwrap())
    });
    c.bench_function("replay_from_checkpoints", |b| {
        b.iter(|| run_injections_checkpointed(&arch, &w, &golden, &ladder, &sites, cfg).unwrap())
    });
}

/// Findings roll-up: a 2-device × 2-workload mini study.
fn findings_study(c: &mut Criterion) {
    let archs = vec![quadro_fx_5600(), hd_radeon_7970()];
    let cfg = tiny_study(5);
    c.bench_function("findings_mini_study", |b| {
        b.iter(|| {
            let workloads: Vec<Box<dyn Workload>> = vec![
                Box::new(VectorAdd::new(512, 5)),
                Box::new(Transpose::new(32, 5)),
            ];
            let study = run_study(&archs, &workloads, &cfg).unwrap();
            study.findings()
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig1_rf_avf, fig2_lds_avf, fig3_epf, replay_checkpointed_vs_zero, findings_study
}
criterion_main!(figures);
