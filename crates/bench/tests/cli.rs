//! End-to-end tests of the `repro` binary (smoke scale, few injections).

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn run_ok(args: &[&str]) -> String {
    let out = repro().args(args).output().expect("repro runs");
    assert!(
        out.status.success(),
        "repro {:?} failed:\n{}\n{}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn stats_prints_paper_calibration() {
    let out = run_ok(&["stats"]);
    assert!(out.contains("2000 injections -> +/-2.88%"), "{out}");
    assert!(out.contains("paper uses 2000"));
}

#[test]
fn fig1_smoke_renders_all_devices() {
    let out = run_ok(&[
        "fig1",
        "--smoke",
        "--injections",
        "4",
        "--workload",
        "vectoradd",
    ]);
    assert!(out.contains("Fig. 1"));
    for dev in [
        "HD Radeon 7970",
        "Quadro FX 5600",
        "Quadro FX 5800",
        "GeForce GTX 480",
    ] {
        assert!(out.contains(dev), "missing {dev} in:\n{out}");
    }
    assert!(out.contains("average"));
}

#[test]
fn fig3_smoke_has_epf_bars() {
    let out = run_ok(&[
        "fig3",
        "--smoke",
        "--injections",
        "4",
        "--workload",
        "transpose",
        "--device",
        "fermi",
    ]);
    assert!(out.contains("Executions per Failure"));
    assert!(out.contains("transpose"));
}

#[test]
fn findings_smoke_prints_all_four() {
    let out = run_ok(&[
        "findings",
        "--smoke",
        "--injections",
        "4",
        "--workload",
        "histogram",
        "--device",
        "g80",
    ]);
    for f in ["F1", "F2", "F3", "F4"] {
        assert!(out.contains(f), "missing {f} in:\n{out}");
    }
}

#[test]
fn csv_and_experiments_files_are_written() {
    let dir = std::env::temp_dir().join("repro_cli_test");
    let _ = std::fs::create_dir_all(&dir);
    let csv = dir.join("s.csv");
    let md = dir.join("e.md");
    let _ = run_ok(&[
        "all",
        "--smoke",
        "--injections",
        "4",
        "--workload",
        "scan",
        "--device",
        "gt200",
        "--csv",
        csv.to_str().unwrap(),
        "--experiments",
        md.to_str().unwrap(),
    ]);
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("workload,device"));
    assert_eq!(csv_text.lines().count(), 2, "header + 1 point");
    let md_text = std::fs::read_to_string(&md).unwrap();
    assert!(md_text.contains("### Fig. 1"));
}

#[test]
fn unknown_arguments_fail_cleanly() {
    let out = repro().arg("--bogus").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));
}

#[test]
fn unknown_workload_fails_cleanly() {
    let out = repro()
        .args(["fig1", "--workload", "nonesuch"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no workload matches"));
}

#[test]
fn help_lists_every_command() {
    let out = run_ok(&["--help"]);
    for cmd in [
        "fig1",
        "fig2",
        "fig3",
        "findings",
        "stats",
        "outcomes",
        "perf",
        "bits",
        "phases",
        "mbu",
        "protect",
        "ablate-sched",
        "ablate-rfsize",
        "ablate-ace",
    ] {
        assert!(out.contains(cmd), "help is missing {cmd}");
    }
}
