//! End-to-end tests of the `repro` binary (smoke scale, few injections).

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn run_ok(args: &[&str]) -> String {
    let out = repro().args(args).output().expect("repro runs");
    assert!(
        out.status.success(),
        "repro {:?} failed:\n{}\n{}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn stats_prints_paper_calibration() {
    let out = run_ok(&["stats"]);
    assert!(out.contains("2000 injections -> +/-2.88%"), "{out}");
    assert!(out.contains("paper uses 2000"));
}

#[test]
fn fig1_smoke_renders_all_devices() {
    let out = run_ok(&[
        "fig1",
        "--smoke",
        "--injections",
        "4",
        "--workload",
        "vectoradd",
    ]);
    assert!(out.contains("Fig. 1"));
    for dev in [
        "HD Radeon 7970",
        "Quadro FX 5600",
        "Quadro FX 5800",
        "GeForce GTX 480",
    ] {
        assert!(out.contains(dev), "missing {dev} in:\n{out}");
    }
    assert!(out.contains("average"));
}

#[test]
fn fig3_smoke_has_epf_bars() {
    let out = run_ok(&[
        "fig3",
        "--smoke",
        "--injections",
        "4",
        "--workload",
        "transpose",
        "--device",
        "fermi",
    ]);
    assert!(out.contains("Executions per Failure"));
    assert!(out.contains("transpose"));
}

#[test]
fn findings_smoke_prints_all_four() {
    let out = run_ok(&[
        "findings",
        "--smoke",
        "--injections",
        "4",
        "--workload",
        "histogram",
        "--device",
        "g80",
    ]);
    for f in ["F1", "F2", "F3", "F4"] {
        assert!(out.contains(f), "missing {f} in:\n{out}");
    }
}

#[test]
fn csv_and_experiments_files_are_written() {
    let dir = std::env::temp_dir().join("repro_cli_test");
    let _ = std::fs::create_dir_all(&dir);
    let csv = dir.join("s.csv");
    let md = dir.join("e.md");
    let _ = run_ok(&[
        "all",
        "--smoke",
        "--injections",
        "4",
        "--workload",
        "scan",
        "--device",
        "gt200",
        "--csv",
        csv.to_str().unwrap(),
        "--experiments",
        md.to_str().unwrap(),
    ]);
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("workload,device"));
    assert_eq!(csv_text.lines().count(), 2, "header + 1 point");
    let md_text = std::fs::read_to_string(&md).unwrap();
    assert!(md_text.contains("### Fig. 1"));
}

#[test]
fn unknown_arguments_fail_cleanly() {
    let out = repro().arg("--bogus").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));
}

#[test]
fn unknown_workload_fails_cleanly() {
    let out = repro()
        .args(["fig1", "--workload", "nonesuch"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no workload matches"));
}

#[test]
fn help_lists_every_command() {
    let out = run_ok(&["--help"]);
    for cmd in [
        "fig1",
        "fig2",
        "fig3",
        "findings",
        "stats",
        "outcomes",
        "perf",
        "bits",
        "phases",
        "mbu",
        "protect",
        "ablate-sched",
        "ablate-rfsize",
        "ablate-ace",
        "report",
        "--metrics",
        "--progress",
    ] {
        assert!(out.contains(cmd), "help is missing {cmd}");
    }
}

#[test]
fn metrics_jsonl_and_report_end_to_end() {
    let dir = std::env::temp_dir().join("repro_cli_metrics");
    let _ = std::fs::create_dir_all(&dir);
    let jsonl = dir.join("m.jsonl");
    let _ = run_ok(&[
        "fig1",
        "--smoke",
        "--injections",
        "6",
        "--workload",
        "vectoradd",
        "--device",
        "480",
        "--metrics",
        jsonl.to_str().unwrap(),
        "--progress",
    ]);
    let text = std::fs::read_to_string(&jsonl).unwrap();
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let obj = grel_telemetry::Json::parse(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON ({e}): {line}", i + 1));
        events.push(
            obj.get("event")
                .and_then(grel_telemetry::Json::as_str)
                .unwrap_or_else(|| panic!("line {} has no event field", i + 1))
                .to_string(),
        );
    }
    for expected in [
        "run.meta",
        "golden.done",
        "ladder.done",
        "campaign.done",
        "study.point",
        "log",
        "counter",
        "gauge",
        "histogram",
    ] {
        assert!(
            events.iter().any(|e| e == expected),
            "no {expected} event in:\n{text}"
        );
    }
    // Outcome tallies, rung hits and throughput must be present.
    assert!(
        text.contains("campaign_injections_total{outcome="),
        "{text}"
    );
    assert!(text.contains("campaign_rung_hits_total{rung="), "{text}");
    assert!(text.contains("campaign_injections_per_second"), "{text}");

    let report = run_ok(&["report", jsonl.to_str().unwrap()]);
    assert!(report.starts_with("# Run report"), "{report}");
    for section in ["## Outcomes", "## Throughput", "## Top time sinks"] {
        assert!(report.contains(section), "missing {section} in:\n{report}");
    }
}

#[test]
fn quiet_suppresses_status_but_sink_still_logs() {
    let dir = std::env::temp_dir().join("repro_cli_quiet");
    let _ = std::fs::create_dir_all(&dir);
    let jsonl = dir.join("q.jsonl");
    let out = repro()
        .args([
            "fig1",
            "--smoke",
            "--injections",
            "4",
            "--workload",
            "vectoradd",
            "--device",
            "480",
            "--quiet",
            "--metrics",
            jsonl.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("running study"),
        "--quiet leaked status: {stderr}"
    );
    // The sink receives every status line regardless of the level gate.
    let text = std::fs::read_to_string(&jsonl).unwrap();
    assert!(
        text.contains("\"event\":\"log\"") && text.contains("running study"),
        "{text}"
    );
}

#[test]
fn telemetry_flags_leave_stdout_identical() {
    let args = [
        "fig1",
        "--smoke",
        "--injections",
        "4",
        "--workload",
        "transpose",
        "--device",
        "480",
    ];
    let plain = run_ok(&args);
    let dir = std::env::temp_dir().join("repro_cli_identical");
    let _ = std::fs::create_dir_all(&dir);
    let jsonl = dir.join("i.jsonl");
    let mut with_flags: Vec<&str> = args.to_vec();
    with_flags.extend(["--metrics", jsonl.to_str().unwrap(), "--progress"]);
    let instrumented = run_ok(&with_flags);
    assert_eq!(plain, instrumented, "telemetry changed figure output");
}

#[test]
fn report_on_missing_file_fails_cleanly() {
    let out = repro()
        .args(["report", "/nonexistent/metrics.jsonl"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error: reading"));
}

#[test]
fn report_on_invalid_file_fails_cleanly() {
    let dir = std::env::temp_dir().join("repro_cli_badreport");
    let _ = std::fs::create_dir_all(&dir);
    let bad = dir.join("bad.jsonl");
    std::fs::write(&bad, "{\"event\":\"run.meta\"}\nnot json at all\n").unwrap();
    let out = repro()
        .args(["report", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn report_without_path_fails_cleanly() {
    let out = repro().arg("report").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("report needs"));
}
