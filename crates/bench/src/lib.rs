//! # grel-bench — figure regeneration and rendering for the reproduction
//!
//! The `repro` binary drives the full study and prints each figure of the
//! paper as a table/bar chart; this library holds the pieces it shares
//! with the Criterion benches: workload sets, text rendering and CSV
//! export.
//!
//! # Example
//! ```
//! use grel_bench::{workload_set, Scale};
//! assert_eq!(workload_set(Scale::Smoke, 1).len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use gpu_workloads::{
    Backprop, DwtHaar1D, Gaussian, Histogram, Kmeans, MatrixMul, Reduction, Scan, Transpose,
    VectorAdd, Workload,
};
use grel_core::study::{AvfRow, EpfRow, Findings, StudyResult};
use std::fmt::Write as _;

/// Workload sizing for a study run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny inputs for smoke tests and Criterion benches.
    Smoke,
    /// The default figure-harness sizes (see each workload's
    /// `default_size`).
    Default,
}

/// The ten benchmarks at the requested scale, in figure order.
pub fn workload_set(scale: Scale, seed: u64) -> Vec<Box<dyn Workload>> {
    match scale {
        Scale::Default => gpu_workloads::all_workloads(seed),
        Scale::Smoke => vec![
            Box::new(Backprop::new(64, seed)),
            Box::new(DwtHaar1D::new(256, seed)),
            Box::new(Gaussian::new(12, seed)),
            Box::new(Histogram::new(1024, 64, seed)),
            Box::new(Kmeans::new(256, 4, 2, seed)),
            Box::new(MatrixMul::new(32, seed)),
            Box::new(Reduction::new(1024, 256, seed)),
            Box::new(Scan::new(1024, 256, seed)),
            Box::new(Transpose::new(32, seed)),
            Box::new(VectorAdd::new(1024, seed)),
        ],
    }
}

fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut s = String::new();
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Renders a Fig. 1 / Fig. 2 AVF series as a text chart.
///
/// # Example
/// ```
/// use grel_bench::render_avf_figure;
/// use grel_core::study::AvfRow;
/// let rows = vec![AvfRow {
///     workload: "vectoradd".into(),
///     device: "Quadro FX 5600".into(),
///     avf_fi: 0.28, avf_ace: 0.70, occupancy: 0.76,
/// }];
/// let text = render_avf_figure("Fig. 1: Register File AVF", &rows);
/// assert!(text.contains("vectoradd"));
/// assert!(text.contains("AVF-FI"));
/// ```
pub fn render_avf_figure(title: &str, rows: &[AvfRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<12} {:<16} {:>7} {:>7} {:>7}  chart (FI #, occupancy |)",
        "workload", "device", "AVF-FI", "AVF-ACE", "occup."
    );
    let mut last_workload = String::new();
    for r in rows {
        if r.workload != last_workload && !last_workload.is_empty() {
            let _ = writeln!(out);
        }
        last_workload = r.workload.clone();
        let mut chart = bar(r.avf_fi, 40);
        let occ_pos = ((r.occupancy.clamp(0.0, 1.0)) * 39.0).round() as usize;
        chart.replace_range(occ_pos..occ_pos + 1, "|");
        let _ = writeln!(
            out,
            "{:<12} {:<16} {:>6.1}% {:>6.1}% {:>6.1}%  {}",
            r.workload,
            r.device,
            r.avf_fi * 100.0,
            r.avf_ace * 100.0,
            r.occupancy * 100.0,
            chart
        );
    }
    out
}

/// Renders the Fig. 3 EPF series as a log-scale text chart.
///
/// # Example
/// ```
/// use grel_bench::render_epf_figure;
/// use grel_core::study::EpfRow;
/// let rows = vec![EpfRow {
///     workload: "scan".into(), device: "GeForce GTX 480".into(),
///     eit: 1e15, fit_gpu: 50.0, epf: 2e13,
/// }];
/// assert!(render_epf_figure(&rows).contains("2.0e13"));
/// ```
pub fn render_epf_figure(rows: &[EpfRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 3: Executions per Failure (log scale 1e12..1e18) =="
    );
    let _ = writeln!(
        out,
        "{:<12} {:<16} {:>9} {:>10} {:>9}",
        "workload", "device", "EIT", "FIT_GPU", "EPF"
    );
    let mut last_workload = String::new();
    for r in rows {
        if r.workload != last_workload && !last_workload.is_empty() {
            let _ = writeln!(out);
        }
        last_workload = r.workload.clone();
        // Log-position between 1e12 and 1e18.
        let frac = if r.epf.is_finite() && r.epf > 0.0 {
            ((r.epf.log10() - 12.0) / 6.0).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let _ = writeln!(
            out,
            "{:<12} {:<16} {:>9} {:>10.2} {:>9}  {}",
            r.workload,
            r.device,
            sci(r.eit),
            r.fit_gpu,
            sci(r.epf),
            bar(frac, 40)
        );
    }
    out
}

/// Compact scientific notation (`3.7e15`).
///
/// # Example
/// ```
/// assert_eq!(grel_bench::sci(3.7e15), "3.7e15");
/// ```
pub fn sci(v: f64) -> String {
    if !v.is_finite() {
        return "inf".into();
    }
    if v == 0.0 {
        return "0".into();
    }
    let exp = v.abs().log10().floor() as i32;
    let mant = v / 10f64.powi(exp);
    format!("{mant:.1}e{exp}")
}

/// Renders the findings summary (the paper's F1–F4 claims, quantified).
pub fn render_findings(f: &Findings) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Findings (paper claims, measured) ==");
    let _ = writeln!(
        out,
        "F1  AVF varies strongly: register-file AVF-FI spans {:.1}%..{:.1}%",
        f.rf_avf_range.0 * 100.0,
        f.rf_avf_range.1 * 100.0
    );
    let _ = writeln!(
        out,
        "F2  AVF correlates with occupancy: Pearson r = {:.3} (RF), {:.3} (local memory)",
        f.rf_avf_occupancy_corr, f.lds_avf_occupancy_corr
    );
    let _ = writeln!(
        out,
        "F3  ACE vs FI gap: {:+.1} pp mean on the register file (overestimates), {:+.1} pp on local memory (close)",
        f.rf_ace_gap * 100.0,
        f.lds_ace_gap * 100.0
    );
    let _ = writeln!(
        out,
        "F4  EPF spans {} .. {} ({:.1} orders of magnitude)",
        sci(f.epf_range.0),
        sci(f.epf_range.1),
        if f.epf_range.0 > 0.0 && f.epf_range.1.is_finite() {
            (f.epf_range.1 / f.epf_range.0).log10()
        } else {
            f64::NAN
        }
    );
    out
}

/// Serialises the whole study as CSV (one line per point).
pub fn to_csv(study: &StudyResult) -> String {
    let mut out = String::from(
        "workload,device,uses_lds,cycles,rf_avf_fi,rf_avf_sdc,rf_avf_ace,rf_occ,rf_margin99,\
         lds_avf_fi,lds_avf_ace,lds_occ,srf_avf_ace,fit_rf,fit_lds,fit_srf,eit,epf\n",
    );
    for p in &study.points {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            p.workload,
            p.device,
            p.uses_local_memory,
            p.cycles,
            p.rf.avf_fi,
            p.rf.avf_sdc,
            p.rf.avf_ace,
            p.rf.occupancy,
            p.rf.margin_99,
            p.lds.avf_fi,
            p.lds.avf_ace,
            p.lds.occupancy,
            p.srf_avf_ace.unwrap_or(0.0),
            p.fit.rf,
            p.fit.lds,
            p.fit.srf,
            p.eit,
            p.epf
        );
    }
    out
}

/// Serialises the whole study as a JSON array (one object per point).
///
/// Field order, float formatting and point order are all deterministic,
/// so two runs of the same study — at any `--jobs` count — produce
/// byte-identical files; CI diffs this output to enforce the parallel
/// runner's determinism contract.
///
/// # Example
/// ```
/// use grel_core::study::StudyResult;
/// let json = grel_bench::to_json(&StudyResult { points: vec![] });
/// assert_eq!(json, "[\n]\n");
/// ```
pub fn to_json(study: &StudyResult) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    // `{}` on f64 is the shortest round-trip form: deterministic for a
    // given bit pattern, so any drift in the underlying numbers shows
    // up in a byte diff.
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".into()
        }
    }
    let mut out = String::from("[\n");
    for (i, p) in study.points.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"workload\":\"{}\",\"device\":\"{}\",\"uses_lds\":{},\"cycles\":{},\
             \"rf_avf_fi\":{},\"rf_avf_sdc\":{},\"rf_avf_ace\":{},\"rf_occ\":{},\"rf_margin99\":{},\
             \"lds_avf_fi\":{},\"lds_avf_ace\":{},\"lds_occ\":{},\"srf_avf_ace\":{},\
             \"fit_rf\":{},\"fit_lds\":{},\"fit_srf\":{},\"eit\":{},\"epf\":{}}}",
            esc(&p.workload),
            esc(&p.device),
            p.uses_local_memory,
            p.cycles,
            num(p.rf.avf_fi),
            num(p.rf.avf_sdc),
            num(p.rf.avf_ace),
            num(p.rf.occupancy),
            num(p.rf.margin_99),
            num(p.lds.avf_fi),
            num(p.lds.avf_ace),
            num(p.lds.occupancy),
            p.srf_avf_ace.map(num).unwrap_or_else(|| "null".into()),
            num(p.fit.rf),
            num(p.fit.lds),
            num(p.fit.srf),
            num(p.eit),
            num(p.epf)
        );
        out.push_str(if i + 1 < study.points.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("]\n");
    out
}

/// Renders the whole study as the EXPERIMENTS.md body: one markdown table
/// per figure plus the findings block.
pub fn render_experiments_markdown(study: &StudyResult, config_desc: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Measured results\n\nConfiguration: {config_desc}\n");
    let _ = writeln!(out, "### Fig. 1 — Register file AVF\n");
    let _ = writeln!(out, "| workload | device | AVF-FI | AVF-ACE | occupancy |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for r in study.fig1_rows() {
        let _ = writeln!(
            out,
            "| {} | {} | {:.1}% | {:.1}% | {:.1}% |",
            r.workload,
            r.device,
            r.avf_fi * 100.0,
            r.avf_ace * 100.0,
            r.occupancy * 100.0
        );
    }
    let _ = writeln!(out, "\n### Fig. 2 — Local memory AVF\n");
    let _ = writeln!(out, "| workload | device | AVF-FI | AVF-ACE | occupancy |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for r in study.fig2_rows() {
        let _ = writeln!(
            out,
            "| {} | {} | {:.1}% | {:.1}% | {:.1}% |",
            r.workload,
            r.device,
            r.avf_fi * 100.0,
            r.avf_ace * 100.0,
            r.occupancy * 100.0
        );
    }
    let _ = writeln!(out, "\n### Fig. 3 — Executions per Failure\n");
    let _ = writeln!(out, "| workload | device | EIT | FIT_GPU | EPF |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for r in study.fig3_rows() {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.2} | {} |",
            r.workload,
            r.device,
            sci(r.eit),
            r.fit_gpu,
            sci(r.epf)
        );
    }
    let _ = writeln!(
        out,
        "\n### Findings\n\n```text\n{}```",
        render_findings(&study.findings())
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use grel_core::study::{EvalPoint, StructureEval};
    use grel_core::Tally;

    fn fake_point(workload: &str, device: &str) -> EvalPoint {
        let s = StructureEval {
            avf_fi: 0.2,
            avf_sdc: 0.15,
            avf_ace: 0.4,
            occupancy: 0.5,
            margin_99: 0.03,
            tally: Tally {
                masked: 80,
                sdc: 15,
                due: 5,
                hang: 0,
            },
        };
        EvalPoint {
            device: device.into(),
            workload: workload.into(),
            uses_local_memory: true,
            cycles: 10_000,
            rf: s,
            lds: s,
            srf_avf_ace: None,
            fit: grel_core::FitBreakdown {
                rf: 10.0,
                lds: 2.0,
                srf: 0.0,
            },
            eit: 1e15,
            epf: 1e14 / 1.2,
        }
    }

    fn fake_study() -> StudyResult {
        StudyResult {
            points: vec![fake_point("scan", "G80"), fake_point("scan", "Fermi")],
        }
    }

    #[test]
    fn smoke_set_has_all_ten() {
        let names: Vec<String> = workload_set(Scale::Smoke, 3)
            .iter()
            .map(|w| w.name().to_string())
            .collect();
        assert_eq!(names.len(), 10);
        assert!(names.contains(&"gaussian".to_string()));
    }

    #[test]
    fn bars_are_clamped() {
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(1.0, 4), "####");
        assert_eq!(bar(2.0, 4), "####");
        assert_eq!(bar(0.5, 4), "##..");
    }

    #[test]
    fn sci_format() {
        assert_eq!(sci(3.7e15), "3.7e15");
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(f64::INFINITY), "inf");
        assert_eq!(sci(1.0), "1.0e0");
    }

    #[test]
    fn renderers_cover_all_rows() {
        let study = fake_study();
        let f1 = render_avf_figure("Fig. 1", &study.fig1_rows());
        assert!(f1.contains("scan") && f1.contains("average"));
        let f3 = render_epf_figure(&study.fig3_rows());
        assert_eq!(f3.matches("scan").count(), 2);
        let csv = to_csv(&study);
        assert_eq!(csv.lines().count(), 3, "header + 2 points");
        let json = to_json(&study);
        assert_eq!(json.lines().count(), 4, "brackets + 2 points");
        assert!(json.contains("\"device\":\"Fermi\""), "{json}");
        assert_eq!(json, to_json(&study), "serialisation is deterministic");
        let md = render_experiments_markdown(&study, "test");
        assert!(md.contains("### Fig. 1"));
        assert!(md.contains("### Fig. 3"));
        assert!(md.contains("F3"));
    }
}
