//! Markdown run reports from `--metrics` JSONL files.
//!
//! `repro --metrics run.jsonl …` leaves behind one JSON object per line:
//! structured events (`run.meta`, `golden.done`, `ladder.done`,
//! `campaign.done`, `study.point`, `log`) emitted while the study runs,
//! followed by the final `counter` / `gauge` / `histogram` values of the
//! metrics registry. [`render_run_report`] digests that file into a
//! human-readable markdown report: run metadata, outcome tallies,
//! throughput, checkpoint-replay savings and the top time sinks.

use grel_telemetry::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Everything the report needs, pulled out of the JSONL lines.
#[derive(Debug, Default)]
struct RunData {
    meta: Option<Json>,
    campaigns: Vec<Json>,
    points: Vec<Json>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Json>,
}

/// Splits `base{key="value"}` into the base name and the label value.
fn split_label(name: &str) -> (&str, Option<&str>) {
    let Some(brace) = name.find('{') else {
        return (name, None);
    };
    let base = &name[..brace];
    let label = name[brace..].split('"').nth(1).filter(|v| !v.is_empty());
    (base, label)
}

fn parse_lines(text: &str) -> Result<RunData, String> {
    let mut data = RunData::default();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = Json::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let Some(event) = obj.get("event").and_then(Json::as_str) else {
            return Err(format!("line {}: object has no \"event\" field", idx + 1));
        };
        match event {
            "run.meta" => data.meta = Some(obj),
            "campaign.done" => data.campaigns.push(obj),
            "study.point" => data.points.push(obj),
            "counter" => {
                if let (Some(name), Some(value)) = (
                    obj.get("name").and_then(Json::as_str),
                    obj.get("value").and_then(Json::as_u64),
                ) {
                    data.counters.insert(name.to_string(), value);
                }
            }
            "gauge" => {
                if let (Some(name), Some(value)) = (
                    obj.get("name").and_then(Json::as_str),
                    obj.get("value").and_then(Json::as_f64),
                ) {
                    data.gauges.insert(name.to_string(), value);
                }
            }
            "histogram" => {
                if let Some(name) = obj.get("name").and_then(Json::as_str) {
                    data.histograms.insert(name.to_string(), obj.clone());
                }
            }
            // golden.done / ladder.done / log lines carry detail the
            // report summarises from the aggregate metrics instead.
            _ => {}
        }
    }
    Ok(data)
}

/// Sums all counters whose base name (before any `{label}`) matches.
fn counter_sum(data: &RunData, base: &str) -> u64 {
    data.counters
        .iter()
        .filter(|(k, _)| split_label(k).0 == base)
        .map(|(_, v)| *v)
        .sum()
}

/// The labelled buckets of one counter family, in label order.
fn counter_labels(data: &RunData, base: &str) -> Vec<(String, u64)> {
    data.counters
        .iter()
        .filter_map(|(k, v)| {
            let (b, label) = split_label(k);
            (b == base).then(|| (label.unwrap_or("-").to_string(), *v))
        })
        .collect()
}

/// The labelled buckets of one gauge family, in label order.
fn gauge_labels(data: &RunData, base: &str) -> Vec<(String, f64)> {
    data.gauges
        .iter()
        .filter_map(|(k, v)| {
            let (b, label) = split_label(k);
            (b == base).then(|| (label.unwrap_or("-").to_string(), *v))
        })
        .collect()
}

fn hist_field(data: &RunData, name: &str, field: &str) -> Option<f64> {
    data.histograms
        .get(name)
        .and_then(|h| h.get(field))
        .and_then(Json::as_f64)
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.0} us", s * 1e6)
    }
}

fn fmt_count(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Renders the markdown run report for a `--metrics` JSONL file.
///
/// Fails with a line-numbered message if any line is not valid JSON or
/// is not an event object, so a truncated or corrupted file is reported
/// instead of silently summarised.
///
/// # Example
/// ```
/// let jsonl = r#"{"event":"run.meta","command":"all","injections":50}
/// {"event":"counter","name":"campaign_injections_total{outcome=\"masked\"}","value":40}"#;
/// let md = grel_bench::report::render_run_report(jsonl).unwrap();
/// assert!(md.starts_with("# Run report"));
/// ```
pub fn render_run_report(text: &str) -> Result<String, String> {
    let data = parse_lines(text)?;
    if data.meta.is_none()
        && data.campaigns.is_empty()
        && data.counters.is_empty()
        && data.histograms.is_empty()
    {
        return Err("no telemetry events found (is this a --metrics JSONL file?)".into());
    }
    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "# Run report").unwrap();
    writeln!(w).unwrap();

    if let Some(meta) = &data.meta {
        let get_u = |k: &str| meta.get(k).and_then(Json::as_u64);
        let get_s = |k: &str| meta.get(k).and_then(Json::as_str).unwrap_or("?");
        writeln!(
            w,
            "`repro {}` — {} injections/structure, seed {}, {} threads, \
             {} device(s) x {} workload(s), {} scale",
            get_s("command"),
            get_u("injections").unwrap_or(0),
            get_u("seed").unwrap_or(0),
            get_u("threads").unwrap_or(0),
            get_u("devices").unwrap_or(0),
            get_u("workloads").unwrap_or(0),
            get_s("scale"),
        )
        .unwrap();
        writeln!(w).unwrap();
    }

    // -- Outcome totals ------------------------------------------------
    let outcomes = counter_labels(&data, "campaign_injections_total");
    let total_inj = counter_sum(&data, "campaign_injections_total");
    if !outcomes.is_empty() {
        writeln!(w, "## Outcomes").unwrap();
        writeln!(w).unwrap();
        writeln!(w, "| outcome | injections | share |").unwrap();
        writeln!(w, "|---|---:|---:|").unwrap();
        for (label, count) in &outcomes {
            writeln!(
                w,
                "| {label} | {count} | {:.1}% |",
                *count as f64 / total_inj.max(1) as f64 * 100.0
            )
            .unwrap();
        }
        writeln!(w, "| **total** | **{total_inj}** | 100.0% |").unwrap();
        writeln!(w).unwrap();
    }
    if !data.campaigns.is_empty() {
        writeln!(w, "### Per campaign").unwrap();
        writeln!(w).unwrap();
        writeln!(
            w,
            "| workload | device | structure | masked | SDC | DUE | AVF | inj/s |"
        )
        .unwrap();
        writeln!(w, "|---|---|---|---:|---:|---:|---:|---:|").unwrap();
        for c in &data.campaigns {
            let s = |k: &str| c.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
            let u = |k: &str| c.get(k).and_then(Json::as_u64).unwrap_or(0);
            let f = |k: &str| c.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            writeln!(
                w,
                "| {} | {} | {} | {} | {} | {} | {:.1}% | {:.0} |",
                s("workload"),
                s("device"),
                s("structure"),
                u("masked"),
                u("sdc"),
                u("due"),
                f("avf") * 100.0,
                f("injections_per_second"),
            )
            .unwrap();
        }
        writeln!(w).unwrap();
    }

    // -- Throughput ----------------------------------------------------
    writeln!(w, "## Throughput").unwrap();
    writeln!(w).unwrap();
    let campaign_secs = hist_field(&data, "campaign_seconds", "sum").unwrap_or(0.0);
    if campaign_secs > 0.0 {
        writeln!(
            w,
            "- {} injections across {} campaign(s) in {} of campaign time \
             ({:.0} injections/sec overall)",
            fmt_count(total_inj),
            hist_field(&data, "campaign_seconds", "count").unwrap_or(0.0) as u64,
            fmt_secs(campaign_secs),
            total_inj as f64 / campaign_secs,
        )
        .unwrap();
    }
    if let Some(golden) = hist_field(&data, "campaign_golden_seconds", "sum") {
        writeln!(
            w,
            "- golden runs: {} in {}",
            hist_field(&data, "campaign_golden_seconds", "count").unwrap_or(0.0) as u64,
            fmt_secs(golden)
        )
        .unwrap();
    }
    if let Some(ladder) = hist_field(&data, "ladder_build_seconds", "sum") {
        writeln!(
            w,
            "- checkpoint ladders: {} built in {}",
            hist_field(&data, "ladder_build_seconds", "count").unwrap_or(0.0) as u64,
            fmt_secs(ladder)
        )
        .unwrap();
    }
    let instructions = counter_sum(&data, "sim_instructions_total");
    if instructions > 0 {
        writeln!(
            w,
            "- {} warp instructions simulated",
            fmt_count(instructions)
        )
        .unwrap();
    }
    writeln!(w).unwrap();

    // -- Parallel workers ----------------------------------------------
    let worker_inj = counter_labels(&data, "campaign_worker_injections_total");
    if !worker_inj.is_empty() {
        writeln!(w, "## Parallel workers").unwrap();
        writeln!(w).unwrap();
        if let Some(jobs) = data.gauges.get("campaign_workers") {
            writeln!(
                w,
                "- {} replay worker(s) per campaign (`--jobs`); outcomes \
                 are bit-identical at any job count",
                *jobs as u64
            )
            .unwrap();
            writeln!(w).unwrap();
        }
        let rates = gauge_labels(&data, "campaign_worker_injections_per_second");
        writeln!(w, "| worker | injections | inj/s |").unwrap();
        writeln!(w, "|---|---:|---:|").unwrap();
        let mut sorted = worker_inj;
        sorted.sort_by_key(|(label, _)| label.parse::<u64>().unwrap_or(u64::MAX));
        for (label, count) in sorted {
            let rate = rates
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, r)| format!("{r:.0}"))
                .unwrap_or_else(|| "-".into());
            writeln!(w, "| {label} | {count} | {rate} |").unwrap();
        }
        writeln!(w).unwrap();
    }

    // -- Checkpoint savings --------------------------------------------
    let replayed = counter_sum(&data, "campaign_cycles_replayed_total");
    let saved = counter_sum(&data, "campaign_cycles_saved_total");
    if replayed + saved > 0 {
        writeln!(w, "## Checkpoint savings").unwrap();
        writeln!(w).unwrap();
        writeln!(
            w,
            "- {} of {} replay cycles skipped by resuming from checkpoints ({:.1}%)",
            fmt_count(saved),
            fmt_count(replayed + saved),
            saved as f64 / (replayed + saved) as f64 * 100.0
        )
        .unwrap();
        let snapshots = counter_sum(&data, "sim_snapshots_total");
        let bytes = counter_sum(&data, "sim_snapshot_bytes_total");
        if snapshots > 0 {
            writeln!(
                w,
                "- {snapshots} snapshots taken ({:.1} MiB), {} restores",
                bytes as f64 / (1024.0 * 1024.0),
                fmt_count(counter_sum(&data, "sim_restores_total")),
            )
            .unwrap();
        }
        let rungs = counter_labels(&data, "campaign_rung_hits_total");
        if !rungs.is_empty() {
            writeln!(w).unwrap();
            writeln!(w, "| rung | hits |").unwrap();
            writeln!(w, "|---|---:|").unwrap();
            let mut sorted = rungs;
            sorted.sort_by_key(|(label, _)| label.parse::<u64>().unwrap_or(u64::MAX));
            for (label, hits) in sorted {
                writeln!(w, "| {label} | {hits} |").unwrap();
            }
        }
        writeln!(w).unwrap();
    }

    // -- Top time sinks ------------------------------------------------
    if !data.points.is_empty() {
        writeln!(w, "## Top time sinks").unwrap();
        writeln!(w).unwrap();
        let total: f64 = data
            .points
            .iter()
            .filter_map(|p| p.get("seconds").and_then(Json::as_f64))
            .sum();
        let mut points: Vec<&Json> = data.points.iter().collect();
        points.sort_by(|a, b| {
            let sa = a.get("seconds").and_then(Json::as_f64).unwrap_or(0.0);
            let sb = b.get("seconds").and_then(Json::as_f64).unwrap_or(0.0);
            sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
        });
        writeln!(w, "| workload | device | time | share |").unwrap();
        writeln!(w, "|---|---|---:|---:|").unwrap();
        for p in points.iter().take(10) {
            let secs = p.get("seconds").and_then(Json::as_f64).unwrap_or(0.0);
            writeln!(
                w,
                "| {} | {} | {} | {:.1}% |",
                p.get("workload").and_then(Json::as_str).unwrap_or("?"),
                p.get("device").and_then(Json::as_str).unwrap_or("?"),
                fmt_secs(secs),
                secs / total.max(1e-12) * 100.0
            )
            .unwrap();
        }
        if points.len() > 10 {
            writeln!(w, "| … {} more | | | |", points.len() - 10).unwrap();
        }
        writeln!(w).unwrap();
    }

    // -- Injection latency ---------------------------------------------
    if data.histograms.contains_key("campaign_injection_seconds") {
        let f = |field: &str| hist_field(&data, "campaign_injection_seconds", field);
        writeln!(w, "## Injection latency").unwrap();
        writeln!(w).unwrap();
        writeln!(w, "| count | mean | p50 | p90 | p99 | max |").unwrap();
        writeln!(w, "|---:|---:|---:|---:|---:|---:|").unwrap();
        writeln!(
            w,
            "| {} | {} | {} | {} | {} | {} |",
            f("count").unwrap_or(0.0) as u64,
            fmt_secs(f("mean").unwrap_or(0.0)),
            fmt_secs(f("p50").unwrap_or(0.0)),
            fmt_secs(f("p90").unwrap_or(0.0)),
            fmt_secs(f("p99").unwrap_or(0.0)),
            fmt_secs(f("max").unwrap_or(0.0)),
        )
        .unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        [
            r#"{"event":"run.meta","t_ms":0,"command":"all","injections":12,"seed":7,"threads":2,"devices":1,"workloads":1,"scale":"smoke"}"#,
            r#"{"event":"campaign.done","t_ms":5,"workload":"vectoradd","device":"GTX 480","structure":"RF","injections":12,"masked":9,"sdc":2,"due":1,"avf":0.25,"golden_cycles":900,"ladder_rungs":3,"seconds":0.5,"injections_per_second":24.0}"#,
            r#"{"event":"study.point","t_ms":6,"workload":"vectoradd","device":"GTX 480","cycles":900,"rf_avf":0.25,"lds_avf":0.0,"epf":1000.0,"seconds":0.6}"#,
            r#"{"event":"counter","name":"campaign_injections_total{outcome=\"masked\"}","value":9}"#,
            r#"{"event":"counter","name":"campaign_injections_total{outcome=\"sdc\"}","value":2}"#,
            r#"{"event":"counter","name":"campaign_injections_total{outcome=\"due\"}","value":1}"#,
            r#"{"event":"counter","name":"campaign_rung_hits_total{rung=\"0\"}","value":8}"#,
            r#"{"event":"counter","name":"campaign_rung_hits_total{rung=\"none\"}","value":4}"#,
            r#"{"event":"counter","name":"campaign_worker_injections_total{worker=\"0\"}","value":7}"#,
            r#"{"event":"counter","name":"campaign_worker_injections_total{worker=\"1\"}","value":5}"#,
            r#"{"event":"gauge","name":"campaign_workers","value":2.0}"#,
            r#"{"event":"gauge","name":"campaign_worker_injections_per_second{worker=\"0\"}","value":14.0}"#,
            r#"{"event":"gauge","name":"campaign_worker_injections_per_second{worker=\"1\"}","value":10.0}"#,
            r#"{"event":"counter","name":"campaign_cycles_replayed_total","value":400}"#,
            r#"{"event":"counter","name":"campaign_cycles_saved_total","value":600}"#,
            r#"{"event":"counter","name":"sim_snapshots_total","value":3}"#,
            r#"{"event":"counter","name":"sim_snapshot_bytes_total","value":1048576}"#,
            r#"{"event":"histogram","name":"campaign_seconds","count":1,"sum":0.5,"mean":0.5,"min":0.5,"max":0.5,"p50":0.5,"p90":0.5,"p99":0.5}"#,
            r#"{"event":"histogram","name":"campaign_injection_seconds","count":12,"sum":0.36,"mean":0.03,"min":0.01,"max":0.09,"p50":0.03,"p90":0.07,"p99":0.09}"#,
        ]
        .join("\n")
    }

    #[test]
    fn renders_every_section() {
        let md = render_run_report(&sample()).unwrap();
        assert!(md.starts_with("# Run report"));
        for section in [
            "## Outcomes",
            "### Per campaign",
            "## Throughput",
            "## Parallel workers",
            "## Checkpoint savings",
            "## Top time sinks",
            "## Injection latency",
        ] {
            assert!(md.contains(section), "missing {section} in:\n{md}");
        }
        assert!(md.contains("| masked | 9 | 75.0% |"), "{md}");
        assert!(md.contains("| 0 | 7 | 14 |"), "{md}");
        assert!(md.contains("2 replay worker(s)"), "{md}");
        assert!(md.contains("600 of 1000 replay cycles skipped"), "{md}");
        assert!(md.contains("| vectoradd | GTX 480 |"), "{md}");
    }

    #[test]
    fn rejects_invalid_json_with_line_number() {
        let bad = format!("{}\nnot json\n", sample().lines().next().unwrap());
        let err = render_run_report(&bad).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn rejects_non_event_objects() {
        let err = render_run_report(r#"{"foo": 1}"#).unwrap_err();
        assert!(err.contains("no \"event\" field"), "{err}");
    }

    #[test]
    fn rejects_empty_input() {
        assert!(render_run_report("").is_err());
    }

    #[test]
    fn split_label_handles_plain_and_labelled_names() {
        assert_eq!(split_label("x_total"), ("x_total", None));
        assert_eq!(
            split_label("x_total{outcome=\"sdc\"}"),
            ("x_total", Some("sdc"))
        );
    }
}
