//! Markdown run reports from `--metrics` JSONL files.
//!
//! `repro --metrics run.jsonl …` leaves behind one JSON object per line:
//! structured events (`run.meta`, `golden.done`, `ladder.done`,
//! `campaign.done`, `study.point`, `injection.trace`, `log`) emitted
//! while the study runs, followed by the final `counter` / `gauge` /
//! `histogram` values of the metrics registry. [`render_run_report`]
//! digests that file into a human-readable markdown report: run
//! metadata, outcome tallies, the fault-model breakdown (injections per
//! fault kind, watchdog hangs, root-cause attribution), throughput,
//! lifetime-oracle pruning, checkpoint-replay savings,
//! fault-propagation provenance (when the run used `--provenance`) and
//! the top time sinks.

use grel_core::campaign::Outcome;
use grel_core::provenance::{FailureCause, MaskingReason};
use grel_telemetry::Json;
use std::collections::BTreeMap;
use std::fmt::{self, Write};

/// Event names the report understands. Lines whose `event` field is not
/// in this set parse fine but carry no reportable signal; a file with
/// *zero* recognized events is rejected so silence never looks like
/// success.
const KNOWN_EVENTS: [&str; 13] = [
    "run.meta",
    "golden.done",
    "ladder.done",
    "campaign.done",
    "campaign.convergence",
    "campaign.round",
    "study.point",
    "injection.trace",
    "watchdog.fired",
    "log",
    "counter",
    "gauge",
    "histogram",
];

/// Reporting order of fault-kind labels: the transient baseline first,
/// then the permanent stuck-at family, then the control-unit targets.
const KIND_ORDER: [&str; 7] = [
    "transient",
    "stuck0",
    "stuck1",
    "ctrl-sched",
    "ctrl-mask",
    "ctrl-sboard",
    "ctrl-barrier",
];

/// Everything the report needs, pulled out of the JSONL lines.
#[derive(Debug, Default)]
struct RunData {
    meta: Option<Json>,
    campaigns: Vec<Json>,
    points: Vec<Json>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Json>,
    /// `campaign.round` events, in emission order.
    rounds: Vec<Json>,
    /// The *last* `campaign.convergence` event carrying a `strata`
    /// array, per campaign key — the final per-stratum state.
    strata_finals: Vec<Json>,
    /// Lines whose event name is in [`KNOWN_EVENTS`].
    recognized: usize,
}

/// All `key="value"` label pairs of a metric name, in written order.
fn label_pairs(name: &str) -> Vec<(&str, &str)> {
    let Some(brace) = name.find('{') else {
        return Vec::new();
    };
    name[brace + 1..name.len().saturating_sub(1)]
        .split(',')
        .filter_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            Some((k, v.trim_matches('"')))
        })
        .collect()
}

/// Pivots a two-label latency family (`{key="col",bucket="BB"}`) into
/// ordered columns plus a bucket → per-column microsecond-total matrix.
fn latency_matrix(
    data: &RunData,
    base: &str,
    key: &str,
    col_order: &[&str],
) -> (Vec<String>, BTreeMap<u32, Vec<u64>>) {
    let mut cols: Vec<String> = Vec::new();
    let mut cells: Vec<(String, u32, u64)> = Vec::new();
    for (name, v) in &data.counters {
        if split_label(name).0 != base {
            continue;
        }
        let pairs = label_pairs(name);
        let col = pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.to_string());
        let bucket = pairs
            .iter()
            .find(|(k, _)| *k == "bucket")
            .and_then(|(_, v)| v.parse().ok());
        if let (Some(col), Some(bucket)) = (col, bucket) {
            if !cols.contains(&col) {
                cols.push(col.clone());
            }
            cells.push((col, bucket, *v));
        }
    }
    cols.sort_by_key(|c| col_order.iter().position(|k| k == c).unwrap_or(usize::MAX));
    let mut rows: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for (col, bucket, us) in cells {
        let idx = cols
            .iter()
            .position(|c| *c == col)
            .expect("column recorded");
        rows.entry(bucket).or_insert_with(|| vec![0; cols.len()])[idx] += us;
    }
    (cols, rows)
}

/// Human label of a log2 microsecond bucket: bucket `b` covers
/// `[2^b, 2^(b+1))` µs (sub-microsecond replays land in bucket 0).
fn us_bucket_label(b: u32) -> String {
    if b == 0 {
        "<2".into()
    } else {
        format!("{}..{}", 1u128 << b, (1u128 << (b + 1)) - 1)
    }
}

/// Splits `base{key="value"}` into the base name and the label value.
fn split_label(name: &str) -> (&str, Option<&str>) {
    let Some(brace) = name.find('{') else {
        return (name, None);
    };
    let base = &name[..brace];
    let label = name[brace..].split('"').nth(1).filter(|v| !v.is_empty());
    (base, label)
}

fn parse_lines(text: &str) -> Result<RunData, String> {
    let mut data = RunData::default();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = Json::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let Some(event) = obj.get("event").and_then(Json::as_str) else {
            return Err(format!("line {}: object has no \"event\" field", idx + 1));
        };
        if KNOWN_EVENTS.contains(&event) {
            data.recognized += 1;
        }
        match event {
            "run.meta" => data.meta = Some(obj),
            "campaign.done" => data.campaigns.push(obj),
            "campaign.round" => data.rounds.push(obj),
            "campaign.convergence" if obj.get("strata").is_some() => {
                let key = |o: &Json| {
                    ["workload", "device", "structure", "fault_kind"].map(|k| {
                        o.get(k)
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_string()
                    })
                };
                let k = key(&obj);
                match data.strata_finals.iter_mut().find(|o| key(o) == k) {
                    Some(slot) => *slot = obj,
                    None => data.strata_finals.push(obj),
                }
            }
            "study.point" => data.points.push(obj),
            "counter" => {
                if let (Some(name), Some(value)) = (
                    obj.get("name").and_then(Json::as_str),
                    obj.get("value").and_then(Json::as_u64),
                ) {
                    data.counters.insert(name.to_string(), value);
                }
            }
            "gauge" => {
                if let (Some(name), Some(value)) = (
                    obj.get("name").and_then(Json::as_str),
                    obj.get("value").and_then(Json::as_f64),
                ) {
                    data.gauges.insert(name.to_string(), value);
                }
            }
            "histogram" => {
                if let Some(name) = obj.get("name").and_then(Json::as_str) {
                    data.histograms.insert(name.to_string(), obj.clone());
                }
            }
            // golden.done / ladder.done / injection.trace / log lines
            // carry detail the report summarises from the aggregate
            // metrics instead.
            _ => {}
        }
    }
    Ok(data)
}

/// Sums all counters whose base name (before any `{label}`) matches.
fn counter_sum(data: &RunData, base: &str) -> u64 {
    data.counters
        .iter()
        .filter(|(k, _)| split_label(k).0 == base)
        .map(|(_, v)| *v)
        .sum()
}

/// The labelled buckets of one counter family, in label order.
fn counter_labels(data: &RunData, base: &str) -> Vec<(String, u64)> {
    data.counters
        .iter()
        .filter_map(|(k, v)| {
            let (b, label) = split_label(k);
            (b == base).then(|| (label.unwrap_or("-").to_string(), *v))
        })
        .collect()
}

/// One labelled counter value, by exact label.
fn counter_at(data: &RunData, base: &str, key: &str, label: &str) -> u64 {
    data.counters
        .get(&format!("{base}{{{key}=\"{label}\"}}"))
        .copied()
        .unwrap_or(0)
}

/// The labelled buckets of one gauge family, in label order.
fn gauge_labels(data: &RunData, base: &str) -> Vec<(String, f64)> {
    data.gauges
        .iter()
        .filter_map(|(k, v)| {
            let (b, label) = split_label(k);
            (b == base).then(|| (label.unwrap_or("-").to_string(), *v))
        })
        .collect()
}

fn hist_field(data: &RunData, name: &str, field: &str) -> Option<f64> {
    data.histograms
        .get(name)
        .and_then(|h| h.get(field))
        .and_then(Json::as_f64)
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.0} us", s * 1e6)
    }
}

/// Division that can never leak `NaN` or `inf` into the rendered
/// report. Metrics from an empty, truncated or zero-injection campaign
/// produce zero denominators everywhere a share or rate is computed;
/// those render as 0 rather than poisoning the markdown.
fn ratio(num: f64, den: f64) -> f64 {
    let r = num / den;
    if r.is_finite() {
        r
    } else {
        0.0
    }
}

fn fmt_count(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Human label of a log2 latency bucket: bucket `b` covers
/// `[2^(b-1), 2^b)` cycles (bucket 0 is exactly 0 cycles).
fn bucket_label(b: u32) -> String {
    match b {
        0 => "0".into(),
        1 => "1".into(),
        _ => format!("{}..{}", 1u128 << (b - 1), (1u128 << b) - 1),
    }
}

/// Renders one log2-bucket histogram as a markdown table with `#` bars.
fn log2_hist_table(w: &mut impl Write, caption: &str, rows: &[(String, u64)]) -> fmt::Result {
    let peak = rows.iter().map(|(_, n)| *n).max().unwrap_or(0).max(1);
    writeln!(w, "| {caption} (cycles) | injections | |")?;
    writeln!(w, "|---|---:|:---|")?;
    for (label, n) in rows {
        let b: u32 = label.parse().unwrap_or(0);
        writeln!(
            w,
            "| {} | {} | `{}` |",
            bucket_label(b),
            n,
            crate::bar(ratio(*n as f64, peak as f64), 20)
        )?;
    }
    writeln!(w)
}

/// Renders one attribution heatmap (RF word regions or LDS banks): SDC
/// rate per cell with a `#` heat bar scaled to the hottest cell.
fn heatmap_table(
    w: &mut impl Write,
    data: &RunData,
    cell: &str,
    inj_base: &str,
    sdc_base: &str,
    key: &str,
) -> fmt::Result {
    let cells = counter_labels(data, inj_base);
    let rates: Vec<(String, u64, u64, f64)> = cells
        .into_iter()
        .map(|(label, inj)| {
            let sdc = counter_at(data, sdc_base, key, &label);
            let rate = ratio(sdc as f64, inj as f64);
            (label, inj, sdc, rate)
        })
        .collect();
    let peak = rates.iter().map(|r| r.3).fold(0.0f64, f64::max).max(1e-12);
    writeln!(w, "| {cell} | injections | SDC | SDC rate | |")?;
    writeln!(w, "|---|---:|---:|---:|:---|")?;
    for (label, inj, sdc, rate) in rates {
        writeln!(
            w,
            "| {} | {} | {} | {:.1}% | `{}` |",
            label.trim_start_matches('0').parse::<u64>().unwrap_or(0),
            inj,
            sdc,
            rate * 100.0,
            crate::bar(ratio(rate, peak), 20)
        )?;
    }
    writeln!(w)
}

/// Renders the markdown run report for a `--metrics` JSONL file.
///
/// Fails with a line-numbered message if any line is not valid JSON or
/// is not an event object, and with a clear error if no line carries a
/// recognized telemetry event — so a truncated, corrupted or wrong file
/// is reported instead of silently summarised as an empty report.
///
/// # Example
/// ```
/// let jsonl = r#"{"event":"run.meta","command":"all","injections":50}
/// {"event":"counter","name":"campaign_injections_total{outcome=\"masked\"}","value":40}"#;
/// let md = grel_bench::report::render_run_report(jsonl).unwrap();
/// assert!(md.starts_with("# Run report"));
/// ```
pub fn render_run_report(text: &str) -> Result<String, String> {
    let data = parse_lines(text)?;
    if data.recognized == 0 {
        return Err(
            "no recognized telemetry events in input (expected run.meta, campaign.done, \
             counter, … — is this a --metrics JSONL file?)"
                .into(),
        );
    }
    let mut out = String::new();
    render_body(&data, &mut out).map_err(|e| format!("formatting report: {e}"))?;
    Ok(out)
}

/// Writes the report body to any [`fmt::Write`] sink, propagating write
/// failures instead of unwrapping (a `String` sink cannot fail, but a
/// bounded or instrumented sink can).
fn render_body(data: &RunData, w: &mut impl Write) -> fmt::Result {
    writeln!(w, "# Run report")?;
    writeln!(w)?;

    if let Some(meta) = &data.meta {
        let get_u = |k: &str| meta.get(k).and_then(Json::as_u64);
        let get_s = |k: &str| meta.get(k).and_then(Json::as_str).unwrap_or("?");
        writeln!(
            w,
            "`repro {}` — {} injections/structure, seed {}, {} threads, \
             {} device(s) x {} workload(s), {} scale",
            get_s("command"),
            get_u("injections").unwrap_or(0),
            get_u("seed").unwrap_or(0),
            get_u("threads").unwrap_or(0),
            get_u("devices").unwrap_or(0),
            get_u("workloads").unwrap_or(0),
            get_s("scale"),
        )?;
        writeln!(w)?;
    }

    // -- Outcome totals ------------------------------------------------
    let mut outcomes = counter_labels(data, "campaign_injections_total");
    // Tally order (masked, sdc, due), not BTreeMap alphabetical order.
    outcomes.sort_by_key(|(label, _)| {
        label
            .parse::<Outcome>()
            .ok()
            .and_then(|o| Outcome::ALL.iter().position(|x| *x == o))
            .unwrap_or(usize::MAX)
    });
    let total_inj = counter_sum(data, "campaign_injections_total");
    if !outcomes.is_empty() {
        writeln!(w, "## Outcomes")?;
        writeln!(w)?;
        writeln!(w, "| outcome | injections | share |")?;
        writeln!(w, "|---|---:|---:|")?;
        for (label, count) in &outcomes {
            writeln!(
                w,
                "| {label} | {count} | {:.1}% |",
                ratio(*count as f64, total_inj as f64) * 100.0
            )?;
        }
        writeln!(w, "| **total** | **{total_inj}** | 100.0% |")?;
        writeln!(w)?;
    }
    if !data.campaigns.is_empty() {
        writeln!(w, "### Per campaign")?;
        writeln!(w)?;
        writeln!(
            w,
            "| workload | device | structure | model | masked | SDC | DUE | hang | AVF | inj/s |"
        )?;
        writeln!(w, "|---|---|---|---|---:|---:|---:|---:|---:|---:|")?;
        for c in &data.campaigns {
            let s = |k: &str| c.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
            let u = |k: &str| c.get(k).and_then(Json::as_u64).unwrap_or(0);
            let f = |k: &str| c.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            writeln!(
                w,
                "| {} | {} | {} | {} | {} | {} | {} | {} | {:.1}% | {:.0} |",
                s("workload"),
                s("device"),
                s("structure"),
                c.get("fault_kind")
                    .and_then(Json::as_str)
                    .unwrap_or("transient"),
                u(Outcome::Masked.as_str()),
                u(Outcome::Sdc.as_str()),
                u(Outcome::Due.as_str()),
                u(Outcome::Hang.as_str()),
                f("avf") * 100.0,
                f("injections_per_second"),
            )?;
        }
        writeln!(w)?;
    }

    // -- Fault model ---------------------------------------------------
    let mut kinds = counter_labels(data, "campaign_injections_by_kind_total");
    let hangs = counter_sum(data, "campaign_hang_total");
    let mut causes = counter_labels(data, "provenance_cause_total");
    if !kinds.is_empty() || hangs > 0 || !causes.is_empty() {
        writeln!(w, "## Fault model")?;
        writeln!(w)?;
        if !kinds.is_empty() {
            kinds.sort_by_key(|(label, _)| {
                KIND_ORDER
                    .iter()
                    .position(|k| k == label)
                    .unwrap_or(usize::MAX)
            });
            let kind_total: u64 = kinds.iter().map(|(_, n)| *n).sum();
            writeln!(w, "| fault kind | injections | share |")?;
            writeln!(w, "|---|---:|---:|")?;
            for (label, n) in &kinds {
                writeln!(
                    w,
                    "| {label} | {n} | {:.1}% |",
                    ratio(*n as f64, kind_total as f64) * 100.0
                )?;
            }
            writeln!(w)?;
        }
        if hangs > 0 {
            writeln!(
                w,
                "- {} run(s) never terminated and were cut off by the \
                 watchdog (classified `hang`, counted as failures \
                 alongside SDC and DUE)",
                fmt_count(hangs)
            )?;
            let wd_cycles = counter_sum(data, "campaign_watchdog_cycles_total");
            if wd_cycles > 0 {
                writeln!(
                    w,
                    "- hung replays burned {} cycles before the watchdog \
                     fired (see `watchdog.fired` events for the per-kill \
                     cycle and budget)",
                    fmt_count(wd_cycles)
                )?;
            }
            writeln!(w)?;
        }
        if !causes.is_empty() {
            causes.sort_by_key(|(label, _)| {
                FailureCause::LABELS
                    .iter()
                    .position(|c| c == label)
                    .unwrap_or(usize::MAX)
            });
            writeln!(w, "| root cause | failures |")?;
            writeln!(w, "|---|---:|")?;
            for (label, n) in &causes {
                writeln!(w, "| {label} | {n} |")?;
            }
            writeln!(w)?;
        }
    }

    // -- Throughput ----------------------------------------------------
    writeln!(w, "## Throughput")?;
    writeln!(w)?;
    let campaign_secs = hist_field(data, "campaign_seconds", "sum").unwrap_or(0.0);
    if campaign_secs > 0.0 {
        writeln!(
            w,
            "- {} injections across {} campaign(s) in {} of campaign time \
             ({:.0} injections/sec overall)",
            fmt_count(total_inj),
            hist_field(data, "campaign_seconds", "count").unwrap_or(0.0) as u64,
            fmt_secs(campaign_secs),
            ratio(total_inj as f64, campaign_secs),
        )?;
    }
    if let Some(golden) = hist_field(data, "campaign_golden_seconds", "sum") {
        writeln!(
            w,
            "- golden runs: {} in {}",
            hist_field(data, "campaign_golden_seconds", "count").unwrap_or(0.0) as u64,
            fmt_secs(golden)
        )?;
    }
    if let Some(ladder) = hist_field(data, "ladder_build_seconds", "sum") {
        writeln!(
            w,
            "- checkpoint ladders: {} built in {}",
            hist_field(data, "ladder_build_seconds", "count").unwrap_or(0.0) as u64,
            fmt_secs(ladder)
        )?;
    }
    let instructions = counter_sum(data, "sim_instructions_total");
    if instructions > 0 {
        writeln!(
            w,
            "- {} warp instructions simulated",
            fmt_count(instructions)
        )?;
    }
    writeln!(w)?;

    // -- Parallel workers ----------------------------------------------
    let worker_inj = counter_labels(data, "campaign_worker_injections_total");
    if !worker_inj.is_empty() {
        writeln!(w, "## Parallel workers")?;
        writeln!(w)?;
        if let Some(jobs) = data.gauges.get("campaign_workers") {
            writeln!(
                w,
                "- {} replay worker(s) per campaign (`--jobs`); outcomes \
                 are bit-identical at any job count",
                *jobs as u64
            )?;
            writeln!(w)?;
        }
        let rates = gauge_labels(data, "campaign_worker_injections_per_second");
        writeln!(w, "| worker | injections | inj/s |")?;
        writeln!(w, "|---|---:|---:|")?;
        let mut sorted = worker_inj;
        sorted.sort_by_key(|(label, _)| label.parse::<u64>().unwrap_or(u64::MAX));
        for (label, count) in sorted {
            let rate = rates
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, r)| format!("{r:.0}"))
                .unwrap_or_else(|| "-".into());
            writeln!(w, "| {label} | {count} | {rate} |")?;
        }
        writeln!(w)?;
    }

    // -- Oracle pruning ------------------------------------------------
    let pruned = counter_sum(data, "campaign_pruned_total");
    let early = counter_sum(data, "campaign_early_exit_total");
    if pruned + early > 0 {
        writeln!(w, "## Oracle pruning")?;
        writeln!(w)?;
        if pruned > 0 {
            writeln!(
                w,
                "- {} of {} injection(s) ({:.1}%) pre-classified masked by the \
                 lifetime oracle — the flipped word was dead at the fault \
                 cycle, so no replay ran",
                fmt_count(pruned),
                fmt_count(total_inj),
                ratio(pruned as f64, total_inj as f64) * 100.0
            )?;
        }
        if early > 0 {
            writeln!(
                w,
                "- {} replay(s) terminated early as provably masked once the \
                 flipped word was erased without being read",
                fmt_count(early)
            )?;
        }
        writeln!(w)?;
    }

    // -- Sampling ------------------------------------------------------
    if !data.rounds.is_empty() {
        writeln!(w, "## Sampling")?;
        writeln!(w)?;
        writeln!(
            w,
            "Adaptive stratified campaigns: each row is one campaign's \
             final allocation round (round 0 is the pilot)."
        )?;
        writeln!(w)?;
        writeln!(
            w,
            "| workload | device | structure | rounds | sampled | replayed | margin | target | converged |"
        )?;
        writeln!(w, "|---|---|---|---:|---:|---:|---:|---:|---|")?;
        // The last round per campaign key carries the totals.
        let key = |o: &Json| {
            ["workload", "device", "structure", "fault_kind"].map(|k| {
                o.get(k)
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string()
            })
        };
        let mut finals: Vec<&Json> = Vec::new();
        for r in &data.rounds {
            let k = key(r);
            match finals.iter_mut().find(|o| key(o) == k) {
                Some(slot) => *slot = r,
                None => finals.push(r),
            }
        }
        for r in finals {
            let s = |k: &str| r.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
            let u = |k: &str| r.get(k).and_then(Json::as_u64).unwrap_or(0);
            let f = |k: &str| r.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            writeln!(
                w,
                "| {} | {} | {} | {} | {} | {} | {:.2}% | {:.2}% | {} |",
                s("workload"),
                s("device"),
                s("structure"),
                u("round") + 1,
                u("sampled"),
                u("replayed"),
                f("margin") * 100.0,
                f("target_margin") * 100.0,
                if matches!(r.get("converged"), Some(Json::Bool(true))) {
                    "yes"
                } else {
                    "no"
                },
            )?;
        }
        writeln!(w)?;
        for c in &data.strata_finals {
            let s = |k: &str| c.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
            writeln!(
                w,
                "### Strata: {} / {} / {}",
                s("workload"),
                s("device"),
                s("structure")
            )?;
            writeln!(w)?;
            writeln!(w, "| stratum | seen | planned | progress |")?;
            writeln!(w, "|---|---:|---:|---:|")?;
            for st in c.get("strata").and_then(Json::as_arr).unwrap_or(&[]) {
                let label = st.get("label").and_then(Json::as_str).unwrap_or("?");
                let seen = st.get("seen").and_then(Json::as_u64).unwrap_or(0);
                let planned = st.get("planned").and_then(Json::as_u64).unwrap_or(0);
                writeln!(
                    w,
                    "| {label} | {seen} | {planned} | {:.0}% |",
                    ratio(seen as f64, planned as f64) * 100.0
                )?;
            }
            writeln!(w)?;
        }
    }

    // -- Checkpoint savings --------------------------------------------
    let replayed = counter_sum(data, "campaign_cycles_replayed_total");
    let saved = counter_sum(data, "campaign_cycles_saved_total");
    if replayed + saved > 0 {
        writeln!(w, "## Checkpoint savings")?;
        writeln!(w)?;
        writeln!(
            w,
            "- {} of {} replay cycles skipped ({:.1}%) via checkpoints, \
             oracle pruning and early exits",
            fmt_count(saved),
            fmt_count(replayed + saved),
            ratio(saved as f64, (replayed + saved) as f64) * 100.0
        )?;
        let snapshots = counter_sum(data, "sim_snapshots_total");
        let bytes = counter_sum(data, "sim_snapshot_bytes_total");
        if snapshots > 0 {
            writeln!(
                w,
                "- {snapshots} snapshots taken ({:.1} MiB), {} restores",
                bytes as f64 / (1024.0 * 1024.0),
                fmt_count(counter_sum(data, "sim_restores_total")),
            )?;
        }
        let rungs = counter_labels(data, "campaign_rung_hits_total");
        if !rungs.is_empty() {
            writeln!(w)?;
            writeln!(w, "| rung | hits |")?;
            writeln!(w, "|---|---:|")?;
            let mut sorted = rungs;
            sorted.sort_by_key(|(label, _)| label.parse::<u64>().unwrap_or(u64::MAX));
            for (label, hits) in sorted {
                writeln!(w, "| {label} | {hits} |")?;
            }
        }
        writeln!(w)?;
    }

    // -- Propagation (provenance) --------------------------------------
    let mut masking = counter_labels(data, "provenance_masking_total");
    let div_hist = counter_labels(data, "provenance_divergence_cycles_total");
    let read_hist = counter_labels(data, "provenance_first_read_cycles_total");
    if !masking.is_empty() || !div_hist.is_empty() || !read_hist.is_empty() {
        writeln!(w, "## Propagation")?;
        writeln!(w)?;
        let taint = counter_sum(data, "provenance_taint_words_total");
        if taint > 0 && total_inj > 0 {
            writeln!(
                w,
                "- mean taint breadth {:.1} word(s) per injection",
                ratio(taint as f64, total_inj as f64)
            )?;
        }
        let saturated = counter_sum(data, "provenance_taint_saturated_total");
        if saturated > 0 {
            writeln!(w, "- {saturated} injection(s) saturated the taint cap")?;
        }
        if !masking.is_empty() {
            masking.sort_by_key(|(label, _)| {
                MaskingReason::ALL
                    .iter()
                    .position(|m| m.as_str() == label)
                    .unwrap_or(usize::MAX)
            });
            let masked_total: u64 = masking.iter().map(|(_, n)| *n).sum();
            writeln!(w)?;
            writeln!(w, "| masking reason | masked runs | share |")?;
            writeln!(w, "|---|---:|---:|")?;
            for (label, n) in &masking {
                writeln!(
                    w,
                    "| {label} | {n} | {:.1}% |",
                    ratio(*n as f64, masked_total as f64) * 100.0
                )?;
            }
            writeln!(w)?;
        }
        if !read_hist.is_empty() {
            log2_hist_table(w, "first-read latency", &read_hist)?;
        }
        if !div_hist.is_empty() {
            log2_hist_table(w, "cycles to divergence", &div_hist)?;
        }
    }

    // -- Attribution heatmap -------------------------------------------
    let rf_cells = counter_labels(data, "provenance_rf_region_injections_total");
    let lds_cells = counter_labels(data, "provenance_lds_bank_injections_total");
    if !rf_cells.is_empty() || !lds_cells.is_empty() {
        writeln!(w, "## Attribution heatmap")?;
        writeln!(w)?;
        if !rf_cells.is_empty() {
            writeln!(w, "SDC rate per register-file word region:")?;
            writeln!(w)?;
            heatmap_table(
                w,
                data,
                "RF region",
                "provenance_rf_region_injections_total",
                "provenance_rf_region_sdc_total",
                "region",
            )?;
        }
        if !lds_cells.is_empty() {
            writeln!(w, "SDC rate per LDS bank:")?;
            writeln!(w)?;
            heatmap_table(
                w,
                data,
                "LDS bank",
                "provenance_lds_bank_injections_total",
                "provenance_lds_bank_sdc_total",
                "bank",
            )?;
        }
    }

    // -- Top time sinks ------------------------------------------------
    if !data.points.is_empty() {
        writeln!(w, "## Top time sinks")?;
        writeln!(w)?;
        let total: f64 = data
            .points
            .iter()
            .filter_map(|p| p.get("seconds").and_then(Json::as_f64))
            .sum();
        let mut points: Vec<&Json> = data.points.iter().collect();
        points.sort_by(|a, b| {
            let sa = a.get("seconds").and_then(Json::as_f64).unwrap_or(0.0);
            let sb = b.get("seconds").and_then(Json::as_f64).unwrap_or(0.0);
            sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
        });
        writeln!(w, "| workload | device | time | share |")?;
        writeln!(w, "|---|---|---:|---:|")?;
        for p in points.iter().take(10) {
            let secs = p.get("seconds").and_then(Json::as_f64).unwrap_or(0.0);
            writeln!(
                w,
                "| {} | {} | {} | {:.1}% |",
                p.get("workload").and_then(Json::as_str).unwrap_or("?"),
                p.get("device").and_then(Json::as_str).unwrap_or("?"),
                fmt_secs(secs),
                ratio(secs, total) * 100.0
            )?;
        }
        if points.len() > 10 {
            writeln!(w, "| … {} more | | | |", points.len() - 10)?;
        }
        writeln!(w)?;
    }

    // -- Injection latency ---------------------------------------------
    if data.histograms.contains_key("campaign_injection_seconds") {
        let f = |field: &str| hist_field(data, "campaign_injection_seconds", field);
        writeln!(w, "## Injection latency")?;
        writeln!(w)?;
        writeln!(w, "| count | mean | p50 | p90 | p99 | max |")?;
        writeln!(w, "|---:|---:|---:|---:|---:|---:|")?;
        writeln!(
            w,
            "| {} | {} | {} | {} | {} | {} |",
            f("count").unwrap_or(0.0) as u64,
            fmt_secs(f("mean").unwrap_or(0.0)),
            fmt_secs(f("p50").unwrap_or(0.0)),
            fmt_secs(f("p90").unwrap_or(0.0)),
            fmt_secs(f("p99").unwrap_or(0.0)),
            fmt_secs(f("max").unwrap_or(0.0)),
        )?;
        writeln!(w)?;
    }

    // -- Profile (span-traced runs only) -------------------------------
    let worker_busy = counter_labels(data, "campaign_worker_busy_us_total");
    let outcome_order: Vec<&str> = Outcome::ALL.iter().map(|o| o.as_str()).collect();
    let (lat_cols, lat_rows) = latency_matrix(
        data,
        "campaign_injection_latency_us_total",
        "outcome",
        &outcome_order,
    );
    let (kind_cols, kind_rows) = latency_matrix(
        data,
        "campaign_injection_latency_by_kind_us_total",
        "kind",
        &KIND_ORDER,
    );
    if !worker_busy.is_empty() || !lat_rows.is_empty() || !kind_rows.is_empty() {
        writeln!(w, "## Profile")?;
        writeln!(w)?;
        // Phase breakdown out of the wall-time histograms: the serial
        // golden and ladder phases versus the replay fan-out, over the
        // summed study-point time.
        let total = hist_field(data, "study_point_seconds", "sum").unwrap_or(0.0);
        let phases = [
            (
                "golden + oracle capture",
                hist_field(data, "campaign_golden_seconds", "sum").unwrap_or(0.0),
            ),
            (
                "checkpoint ladder builds",
                hist_field(data, "ladder_build_seconds", "sum").unwrap_or(0.0),
            ),
            (
                "injection campaigns",
                hist_field(data, "campaign_seconds", "sum").unwrap_or(0.0),
            ),
        ];
        if total > 0.0 {
            let accounted: f64 = phases.iter().map(|(_, s)| s).sum();
            writeln!(w, "| phase | time | share | |")?;
            writeln!(w, "|---|---:|---:|:---|")?;
            for (name, secs) in phases {
                if secs <= 0.0 {
                    continue;
                }
                writeln!(
                    w,
                    "| {name} | {} | {:.1}% | `{}` |",
                    fmt_secs(secs),
                    secs / total * 100.0,
                    crate::bar(secs / total, 20)
                )?;
            }
            let other = (total - accounted).max(0.0);
            writeln!(
                w,
                "| other (ACE analysis, assembly) | {} | {:.1}% | `{}` |",
                fmt_secs(other),
                other / total * 100.0,
                crate::bar(other / total, 20)
            )?;
            writeln!(
                w,
                "| **total study points** | **{}** | 100.0% | |",
                fmt_secs(total)
            )?;
            writeln!(w)?;
        }
        if !worker_busy.is_empty() {
            writeln!(w, "### Worker utilization")?;
            writeln!(w)?;
            writeln!(w, "| worker | busy | alive | utilization | |")?;
            writeln!(w, "|---|---:|---:|---:|:---|")?;
            let mut sorted = worker_busy;
            sorted.sort_by_key(|(label, _)| label.parse::<u64>().unwrap_or(u64::MAX));
            for (label, busy) in sorted {
                let alive = counter_at(data, "campaign_worker_us_total", "worker", &label);
                let util = ratio(busy as f64, alive as f64);
                writeln!(
                    w,
                    "| {label} | {} | {} | {:.1}% | `{}` |",
                    fmt_secs(busy as f64 / 1e6),
                    fmt_secs(alive as f64 / 1e6),
                    util * 100.0,
                    crate::bar(util, 20)
                )?;
            }
            writeln!(w)?;
        }
        for (caption, cols, rows) in [
            ("by outcome", lat_cols, lat_rows),
            ("by fault kind", kind_cols, kind_rows),
        ] {
            if rows.is_empty() {
                continue;
            }
            writeln!(
                w,
                "### Replay wall time {caption} (log2-µs latency buckets)"
            )?;
            writeln!(w)?;
            write!(w, "| latency (us) |")?;
            for c in &cols {
                write!(w, " {c} |")?;
            }
            writeln!(w)?;
            write!(w, "|---|")?;
            for _ in &cols {
                write!(w, "---:|")?;
            }
            writeln!(w)?;
            for (bucket, cells) in &rows {
                write!(w, "| {} |", us_bucket_label(*bucket))?;
                for us in cells {
                    if *us == 0 {
                        write!(w, " - |")?;
                    } else {
                        write!(w, " {} |", fmt_secs(*us as f64 / 1e6))?;
                    }
                }
                writeln!(w)?;
            }
            writeln!(w)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        [
            r#"{"event":"run.meta","t_ms":0,"command":"all","injections":12,"seed":7,"threads":2,"devices":1,"workloads":1,"scale":"smoke"}"#,
            r#"{"event":"campaign.done","t_ms":5,"workload":"vectoradd","device":"GTX 480","structure":"RF","injections":12,"masked":9,"sdc":2,"due":1,"avf":0.25,"golden_cycles":900,"ladder_rungs":3,"seconds":0.5,"injections_per_second":24.0}"#,
            r#"{"event":"study.point","t_ms":6,"workload":"vectoradd","device":"GTX 480","cycles":900,"rf_avf":0.25,"lds_avf":0.0,"epf":1000.0,"seconds":0.6}"#,
            r#"{"event":"counter","name":"campaign_injections_total{outcome=\"masked\"}","value":9}"#,
            r#"{"event":"counter","name":"campaign_injections_total{outcome=\"sdc\"}","value":2}"#,
            r#"{"event":"counter","name":"campaign_injections_total{outcome=\"due\"}","value":1}"#,
            r#"{"event":"counter","name":"campaign_rung_hits_total{rung=\"0\"}","value":8}"#,
            r#"{"event":"counter","name":"campaign_rung_hits_total{rung=\"none\"}","value":4}"#,
            r#"{"event":"counter","name":"campaign_worker_injections_total{worker=\"0\"}","value":7}"#,
            r#"{"event":"counter","name":"campaign_worker_injections_total{worker=\"1\"}","value":5}"#,
            r#"{"event":"gauge","name":"campaign_workers","value":2.0}"#,
            r#"{"event":"gauge","name":"campaign_worker_injections_per_second{worker=\"0\"}","value":14.0}"#,
            r#"{"event":"gauge","name":"campaign_worker_injections_per_second{worker=\"1\"}","value":10.0}"#,
            r#"{"event":"counter","name":"campaign_cycles_replayed_total","value":400}"#,
            r#"{"event":"counter","name":"campaign_cycles_saved_total","value":600}"#,
            r#"{"event":"counter","name":"sim_snapshots_total","value":3}"#,
            r#"{"event":"counter","name":"sim_snapshot_bytes_total","value":1048576}"#,
            r#"{"event":"histogram","name":"campaign_seconds","count":1,"sum":0.5,"mean":0.5,"min":0.5,"max":0.5,"p50":0.5,"p90":0.5,"p99":0.5}"#,
            r#"{"event":"histogram","name":"campaign_injection_seconds","count":12,"sum":0.36,"mean":0.03,"min":0.01,"max":0.09,"p50":0.03,"p90":0.07,"p99":0.09}"#,
        ]
        .join("\n")
    }

    fn provenance_sample() -> String {
        [
            sample().as_str(),
            r#"{"event":"injection.trace","t_ms":4,"workload":"vectoradd","device":"GTX 480","structure":"register file","sm":0,"word":3,"bit":7,"cycle":120,"outcome":"sdc","first_read_latency":9,"cycles_to_divergence":40,"taint_words":3,"taint_saturated":false,"lds_banks":0}"#,
            r#"{"event":"counter","name":"provenance_masking_total{reason=\"never-read\"}","value":6}"#,
            r#"{"event":"counter","name":"provenance_masking_total{reason=\"overwritten\"}","value":3}"#,
            r#"{"event":"counter","name":"provenance_divergence_cycles_total{bucket=\"06\"}","value":2}"#,
            r#"{"event":"counter","name":"provenance_first_read_cycles_total{bucket=\"04\"}","value":3}"#,
            r#"{"event":"counter","name":"provenance_rf_region_injections_total{region=\"00\"}","value":8}"#,
            r#"{"event":"counter","name":"provenance_rf_region_sdc_total{region=\"00\"}","value":2}"#,
            r#"{"event":"counter","name":"provenance_rf_region_injections_total{region=\"15\"}","value":4}"#,
            r#"{"event":"counter","name":"provenance_lds_bank_injections_total{bank=\"05\"}","value":4}"#,
            r#"{"event":"counter","name":"provenance_lds_bank_sdc_total{bank=\"05\"}","value":4}"#,
            r#"{"event":"counter","name":"provenance_taint_words_total","value":36}"#,
        ]
        .join("\n")
    }

    fn sampling_sample() -> String {
        [
            sample().as_str(),
            r#"{"event":"campaign.round","t_ms":5,"workload":"vectoradd","device":"GTX 480","structure":"register file","fault_kind":"transient","round":0,"sampled":64,"replayed":64,"avf":0.05,"margin":0.031,"target_margin":0.0288,"converged":false}"#,
            r#"{"event":"campaign.round","t_ms":6,"workload":"vectoradd","device":"GTX 480","structure":"register file","fault_kind":"transient","round":1,"sampled":92,"replayed":92,"avf":0.048,"margin":0.021,"target_margin":0.0288,"converged":true}"#,
            r#"{"event":"campaign.convergence","t_ms":6,"workload":"vectoradd","device":"GTX 480","structure":"register file","fault_kind":"transient","seen":92,"planned":92,"masked":80,"sdc":8,"due":3,"hang":1,"avf":0.048,"margin99":0.021,"lo":0.027,"hi":0.069,"target_margin":0.0288,"projected_total":92,"projected_remaining":0,"converged":true,"strata":[{"label":"live/c0/b0","seen":12,"planned":12},{"label":"dead","seen":8,"planned":8}]}"#,
        ]
        .join("\n")
    }

    #[test]
    fn renders_sampling_section() {
        let md = render_run_report(&sampling_sample()).unwrap();
        assert!(md.contains("## Sampling"), "{md}");
        // The table row carries the *last* round's totals.
        assert!(
            md.contains(
                "| vectoradd | GTX 480 | register file | 2 | 92 | 92 | 2.10% | 2.88% | yes |"
            ),
            "{md}"
        );
        assert!(
            md.contains("### Strata: vectoradd / GTX 480 / register file"),
            "{md}"
        );
        assert!(md.contains("| live/c0/b0 | 12 | 12 | 100% |"), "{md}");
        assert!(md.contains("| dead | 8 | 8 | 100% |"), "{md}");
    }

    #[test]
    fn sampling_section_absent_without_round_events() {
        let md = render_run_report(&sample()).unwrap();
        assert!(
            !md.contains("## Sampling"),
            "fixed-size campaigns emit no rounds, so no Sampling section:\n{md}"
        );
    }

    #[test]
    fn renders_every_section() {
        let md = render_run_report(&sample()).unwrap();
        assert!(md.starts_with("# Run report"));
        for section in [
            "## Outcomes",
            "### Per campaign",
            "## Throughput",
            "## Parallel workers",
            "## Checkpoint savings",
            "## Top time sinks",
            "## Injection latency",
        ] {
            assert!(md.contains(section), "missing {section} in:\n{md}");
        }
        assert!(md.contains("| masked | 9 | 75.0% |"), "{md}");
        assert!(md.contains("| 0 | 7 | 14 |"), "{md}");
        assert!(md.contains("2 replay worker(s)"), "{md}");
        assert!(md.contains("600 of 1000 replay cycles skipped"), "{md}");
        assert!(md.contains("| vectoradd | GTX 480 |"), "{md}");
        assert!(
            !md.contains("## Propagation"),
            "no provenance metrics, no Propagation section:\n{md}"
        );
        assert!(
            !md.contains("## Oracle pruning"),
            "no pruning counters, no Oracle pruning section:\n{md}"
        );
        assert!(
            !md.contains("## Fault model"),
            "pre-taxonomy files carry no kind counters, so no Fault model section:\n{md}"
        );
    }

    #[test]
    fn renders_fault_model_section() {
        let jsonl = [
            sample().as_str(),
            r#"{"event":"campaign.done","t_ms":9,"workload":"reduction","device":"GTX 480","structure":"RF","fault_kind":"stuck0","injections":8,"masked":4,"sdc":1,"due":1,"hang":2,"avf":0.5,"golden_cycles":900,"ladder_rungs":3,"seconds":0.4,"injections_per_second":20.0}"#,
            r#"{"event":"counter","name":"campaign_injections_by_kind_total{kind=\"stuck0\"}","value":8}"#,
            r#"{"event":"counter","name":"campaign_injections_by_kind_total{kind=\"transient\"}","value":12}"#,
            r#"{"event":"counter","name":"campaign_injections_by_kind_total{kind=\"ctrl-barrier\"}","value":4}"#,
            r#"{"event":"counter","name":"campaign_hang_total","value":2}"#,
            r#"{"event":"counter","name":"provenance_cause_total{cause=\"deadlock\"}","value":2}"#,
            r#"{"event":"counter","name":"provenance_cause_total{cause=\"stuck-reassert\"}","value":1}"#,
        ]
        .join("\n");
        let md = render_run_report(&jsonl).unwrap();
        assert!(md.contains("## Fault model"), "{md}");
        // Kinds keep taxonomy order, not alphabetical order.
        let transient = md.find("| transient | 12 | 50.0% |").unwrap();
        let stuck0 = md.find("| stuck0 | 8 | 33.3% |").unwrap();
        let barrier = md.find("| ctrl-barrier | 4 | 16.7% |").unwrap();
        assert!(transient < stuck0 && stuck0 < barrier, "{md}");
        assert!(md.contains("2 run(s) never terminated"), "{md}");
        // Causes keep FailureCause::LABELS order: stuck-reassert first.
        let reassert = md.find("| stuck-reassert | 1 |").unwrap();
        let deadlock = md.find("| deadlock | 2 |").unwrap();
        assert!(reassert < deadlock, "{md}");
        // The stuck0 campaign row carries its fault kind and hang count.
        assert!(
            md.contains("| reduction | GTX 480 | RF | stuck0 | 4 | 1 | 1 | 2 | 50.0% | 20 |"),
            "{md}"
        );
        // Pre-taxonomy campaign.done lines default to transient, hang 0.
        assert!(
            md.contains("| vectoradd | GTX 480 | RF | transient | 9 | 2 | 1 | 0 | 25.0% | 24 |"),
            "{md}"
        );
    }

    #[test]
    fn renders_oracle_pruning_section() {
        let jsonl = [
            sample().as_str(),
            r#"{"event":"counter","name":"campaign_pruned_total","value":5}"#,
            r#"{"event":"counter","name":"campaign_early_exit_total","value":2}"#,
            r#"{"event":"counter","name":"campaign_rung_hits_total{rung=\"pruned\"}","value":5}"#,
        ]
        .join("\n");
        let md = render_run_report(&jsonl).unwrap();
        assert!(md.contains("## Oracle pruning"), "{md}");
        assert!(md.contains("5 of 12 injection(s) (41.7%)"), "{md}");
        assert!(md.contains("2 replay(s) terminated early"), "{md}");
        // The synthetic "pruned" rung shows up in the rung table.
        assert!(md.contains("| pruned | 5 |"), "{md}");
    }

    #[test]
    fn outcome_rows_follow_tally_order() {
        let md = render_run_report(&sample()).unwrap();
        let masked = md.find("| masked | 9").unwrap();
        let sdc = md.find("| sdc | 2").unwrap();
        let due = md.find("| due | 1").unwrap();
        assert!(masked < sdc && sdc < due, "{md}");
    }

    #[test]
    fn renders_propagation_and_heatmap_sections() {
        let md = render_run_report(&provenance_sample()).unwrap();
        assert!(md.contains("## Propagation"), "{md}");
        assert!(md.contains("## Attribution heatmap"), "{md}");
        assert!(md.contains("| never-read | 6 |"), "{md}");
        // Masking reasons keep their reporting order: overwritten first.
        let over = md.find("| overwritten | 3").unwrap();
        let never = md.find("| never-read | 6").unwrap();
        assert!(over < never, "{md}");
        // Bucket 6 covers 32..63 cycles; bucket 4 covers 8..15.
        assert!(md.contains("| 32..63 | 2 |"), "{md}");
        assert!(md.contains("| 8..15 | 3 |"), "{md}");
        // RF region 0: 2/8 SDC; the LDS bank runs 4/4 and owns the
        // full-scale heat bar.
        assert!(md.contains("| 0 | 8 | 2 | 25.0% |"), "{md}");
        assert!(
            md.contains("| 5 | 4 | 4 | 100.0% | `####################` |"),
            "{md}"
        );
        assert!(md.contains("mean taint breadth 3.0 word(s)"), "{md}");
    }

    #[test]
    fn renders_profile_section_for_span_traced_runs() {
        let jsonl = [
            sample().as_str(),
            r#"{"event":"watchdog.fired","t_ms":7,"workload":"reduction","device":"GTX 480","kind":"ctrl-barrier","cycle":4500,"budget":5000,"golden_cycles":900}"#,
            r#"{"event":"counter","name":"campaign_hang_total","value":1}"#,
            r#"{"event":"counter","name":"campaign_injections_by_kind_total{kind=\"transient\"}","value":12}"#,
            r#"{"event":"counter","name":"campaign_watchdog_cycles_total","value":4500}"#,
            r#"{"event":"counter","name":"campaign_worker_busy_us_total{worker=\"0\"}","value":900000}"#,
            r#"{"event":"counter","name":"campaign_worker_us_total{worker=\"0\"}","value":1000000}"#,
            r#"{"event":"counter","name":"campaign_injection_latency_us_total{outcome=\"sdc\",bucket=\"10\"}","value":2048}"#,
            r#"{"event":"counter","name":"campaign_injection_latency_us_total{outcome=\"masked\",bucket=\"09\"}","value":1024}"#,
            r#"{"event":"counter","name":"campaign_injection_latency_by_kind_us_total{kind=\"transient\",bucket=\"10\"}","value":3072}"#,
            r#"{"event":"histogram","name":"study_point_seconds","count":1,"sum":2.0,"mean":2.0,"min":2.0,"max":2.0,"p50":2.0,"p90":2.0,"p99":2.0}"#,
        ]
        .join("\n");
        let md = render_run_report(&jsonl).unwrap();
        assert!(md.contains("## Profile"), "{md}");
        // Phase shares come from the wall-time histograms over the
        // summed study-point time (campaign_seconds 0.5 s of 2.0 s).
        assert!(
            md.contains("| injection campaigns | 500.00 ms | 25.0% |"),
            "{md}"
        );
        assert!(
            md.contains("| **total study points** | **2.00 s** | 100.0% | |"),
            "{md}"
        );
        // Worker 0: 0.9 s busy of 1.0 s alive.
        assert!(md.contains("### Worker utilization"), "{md}");
        assert!(md.contains("| 0 | 900.00 ms | 1.00 s | 90.0% |"), "{md}");
        // Latency matrices keep tally column order (masked before sdc)
        // and log2 bucket rows; empty cells render as `-`.
        assert!(md.contains("| latency (us) | masked | sdc |"), "{md}");
        assert!(md.contains("| 512..1023 | 1.02 ms | - |"), "{md}");
        assert!(md.contains("| 1024..2047 | - | 2.05 ms |"), "{md}");
        assert!(md.contains("| latency (us) | transient |"), "{md}");
        assert!(md.contains("| 1024..2047 | 3.07 ms |"), "{md}");
        // The watchdog counter surfaces next to the hang bullet.
        assert!(md.contains("hung replays burned 4500 cycles"), "{md}");
    }

    #[test]
    fn plain_runs_render_no_profile_section() {
        let md = render_run_report(&sample()).unwrap();
        assert!(
            !md.contains("## Profile"),
            "no span counters, no Profile section:\n{md}"
        );
    }

    #[test]
    fn label_pairs_parse_multi_label_names() {
        assert_eq!(label_pairs("x_total"), Vec::<(&str, &str)>::new());
        assert_eq!(
            label_pairs("x_total{outcome=\"sdc\",bucket=\"07\"}"),
            vec![("outcome", "sdc"), ("bucket", "07")]
        );
    }

    #[test]
    fn us_bucket_labels_cover_edges() {
        assert_eq!(us_bucket_label(0), "<2");
        assert_eq!(us_bucket_label(1), "2..3");
        assert_eq!(us_bucket_label(10), "1024..2047");
    }

    #[test]
    fn rejects_invalid_json_with_line_number() {
        let bad = format!("{}\nnot json\n", sample().lines().next().unwrap());
        let err = render_run_report(&bad).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn rejects_non_event_objects() {
        let err = render_run_report(r#"{"foo": 1}"#).unwrap_err();
        assert!(err.contains("no \"event\" field"), "{err}");
    }

    #[test]
    fn rejects_empty_input() {
        assert!(render_run_report("").is_err());
    }

    #[test]
    fn rejects_input_with_zero_recognized_events() {
        // Valid JSONL, but nothing the report knows how to summarise —
        // silence must be an error, not an empty report.
        let err = render_run_report(r#"{"event":"something.else","value":1}"#).unwrap_err();
        assert!(err.contains("no recognized telemetry events"), "{err}");
    }

    #[test]
    fn split_label_handles_plain_and_labelled_names() {
        assert_eq!(split_label("x_total"), ("x_total", None));
        assert_eq!(
            split_label("x_total{outcome=\"sdc\"}"),
            ("x_total", Some("sdc"))
        );
    }

    #[test]
    fn bucket_labels_cover_edges() {
        assert_eq!(bucket_label(0), "0");
        assert_eq!(bucket_label(1), "1");
        assert_eq!(bucket_label(2), "2..3");
        assert_eq!(bucket_label(11), "1024..2047");
    }

    #[test]
    fn ratio_never_leaks_non_finite_values() {
        assert_eq!(ratio(3.0, 4.0), 0.75);
        assert_eq!(ratio(0.0, 0.0), 0.0);
        assert_eq!(ratio(5.0, 0.0), 0.0);
        assert_eq!(ratio(1.0, f64::NAN), 0.0);
        assert_eq!(ratio(1.0, f64::INFINITY), 0.0);
    }

    /// A metrics file from a campaign that sampled nothing — an
    /// all-dead population, an interrupted run, a zero-injection smoke
    /// invocation — has zero denominators behind every share and rate.
    /// The report must render them as 0, never as `NaN` or `inf`.
    #[test]
    fn empty_campaign_report_has_no_non_finite_artifacts() {
        let jsonl = [
            r#"{"event":"run.meta","t_ms":0,"command":"all","injections":0,"seed":7,"threads":1,"devices":1,"workloads":1,"scale":"smoke"}"#,
            r#"{"event":"campaign.done","t_ms":1,"workload":"vectoradd","device":"GTX 480","structure":"RF","injections":0,"masked":0,"sdc":0,"due":0,"avf":0.0,"golden_cycles":900,"ladder_rungs":3,"seconds":0.0,"injections_per_second":0.0}"#,
            r#"{"event":"counter","name":"campaign_injections_total{outcome=\"masked\"}","value":0}"#,
            r#"{"event":"counter","name":"campaign_injections_by_kind_total{kind=\"transient\"}","value":0}"#,
            r#"{"event":"counter","name":"campaign_pruned_total","value":0}"#,
            r#"{"event":"counter","name":"campaign_cycles_replayed_total","value":0}"#,
            r#"{"event":"counter","name":"campaign_cycles_saved_total","value":1}"#,
            r#"{"event":"counter","name":"campaign_worker_busy_us_total{worker=\"0\"}","value":5}"#,
            r#"{"event":"counter","name":"campaign_worker_us_total{worker=\"0\"}","value":0}"#,
            r#"{"event":"counter","name":"provenance_masking_total{reason=\"never-read\"}","value":0}"#,
            r#"{"event":"counter","name":"provenance_taint_words_total","value":0}"#,
            r#"{"event":"counter","name":"provenance_rf_region_injections_total{region=\"00\"}","value":0}"#,
            r#"{"event":"counter","name":"provenance_rf_region_sdc_total{region=\"00\"}","value":0}"#,
            r#"{"event":"histogram","name":"campaign_seconds","count":1,"sum":0.5,"mean":0.5,"min":0.5,"max":0.5,"p50":0.5,"p90":0.5,"p99":0.5}"#,
        ]
        .join("\n");
        let md = render_run_report(&jsonl).unwrap();
        assert!(!md.contains("NaN"), "{md}");
        assert!(!md.contains("inf"), "{md}");
        // Zero-injection shares render as an explicit 0.
        assert!(md.contains("| masked | 0 | 0.0% |"), "{md}");
    }
}
