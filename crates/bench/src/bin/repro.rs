//! `repro` — regenerates every figure of the ISPASS 2017 paper.
//!
//! ```text
//! repro [fig1|fig2|fig3|findings|stats|all|report] [options]
//!
//! Options:
//!   --injections N      fault injections per structure (default 200)
//!   --paper             paper configuration (2000 injections)
//!   --seed S            campaign + input seed (default 2017)
//!   --jobs N, -j N      replay worker threads (default: all cores);
//!                       results are bit-identical at any N
//!   --threads T         alias for --jobs (kept for compatibility)
//!   --smoke             tiny workload sizes (CI smoke run)
//!   --device NAME       restrict to one device (substring match)
//!   --workload NAME     restrict to one benchmark
//!   --csv PATH          also write the raw study points as CSV
//!   --json PATH         also write the raw study points as JSON
//!   --experiments PATH  also write the EXPERIMENTS.md result body
//!   --checkpoint-interval N  checkpoint ladder spacing in cycles (0 = auto)
//!   --no-checkpoints    disable checkpointed replay (from-zero replays)
//!   --no-prune          disable lifetime-oracle pruning and the clean-
//!                       overwrite early-exit (full replays; identical tallies)
//!   --no-batch          disable bit-plane batched replay (scalar one-site
//!                       passes; identical tallies)
//!   --fault-model M     transient (default) | stuck0 | stuck1 | control —
//!                       which fault family the campaigns inject
//!   --provenance        record fault-propagation provenance per injection
//!                       (injection.trace events + provenance_* metrics)
//!   --target-margin M   adaptive stratified sampling: stop each campaign at
//!                       a 99% margin of M instead of a fixed --injections
//!                       count (e.g. 0.0288 for the paper's precision)
//!   --pilot N           adaptive pilot draws per stratum (default 8)
//!   --strata SPEC       stratification axes: default | full | none, or a
//!                       comma list of liveness,cycle,bit,region
//!   --site SPEC         fault site for `trace` (sm:struct:word:bit:cycle[:kind])
//!   --metrics PATH      write telemetry (events + final metrics) as JSONL
//!   --progress          live progress line on stderr (done/total, inj/s, ETA)
//!   --listen ADDR       serve GET /metrics /health /progress /convergence over
//!                       HTTP while the study runs (e.g. 127.0.0.1:9184)
//!   --convergence N     cadence of streaming campaign.convergence events
//!                       in injections (0 disables; default 100)
//!   --profile PATH      record hierarchical spans and write a Chrome
//!                       trace (Perfetto-loadable); PATH.tree gets the
//!                       jobs-invariant structural span tree
//!   --quiet, -q         suppress status lines on stderr (errors still print)
//!   -v, --verbose       also print debug-level status lines
//! ```
//!
//! `repro report <metrics.jsonl>` renders a markdown run report from a
//! JSONL file produced by `--metrics`. `repro trace --site ...` replays
//! one injection with the flight recorder on and prints its propagation
//! narrative. `repro profile` runs the study with span tracing on,
//! prints the phase/hot-spot profile and writes the Chrome trace.

use gpu_archs::all_devices;
use gpu_workloads::Workload;
use grel_bench::{
    render_avf_figure, render_epf_figure, render_experiments_markdown, render_findings, to_csv,
    workload_set, Scale,
};
use grel_core::ace::{AceAnalyzer, AceMode};
use grel_core::campaign::{
    golden_run, run_campaign, run_injections, run_injections_checkpointed, sample_sites,
    CampaignConfig, CheckpointLadder,
};
use grel_core::epf::structure_fit;
use grel_core::sampling::{SamplingPlan, StrataSpec};
use grel_core::stats::{error_margin, required_sample_size, Z_99};
use grel_core::study::{evaluate_point, run_study, run_study_hooked, StudyConfig};
use grel_telemetry::{
    serve, Event, EventSink, JsonlSink, LogLevel, Logger, MetricsRegistry, NullSink, Observatory,
    ProgressHook, RegistryHook, SpanHook, SpanRecorder, SpanTree, StatusBoard, TeeSink,
};
use simt_sim::{
    ArchConfig, FaultKind, FaultModelKind, Gpu, HotspotObserver, SchedulerPolicy, Structure,
};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    command: String,
    injections: u32,
    seed: u64,
    threads: usize,
    scale: Scale,
    device: Option<String>,
    workload: Option<String>,
    csv: Option<String>,
    json: Option<String>,
    experiments: Option<String>,
    checkpoint_interval: u64,
    no_checkpoints: bool,
    no_prune: bool,
    no_batch: bool,
    metrics: Option<String>,
    progress: bool,
    log_level: LogLevel,
    report_path: Option<String>,
    provenance: bool,
    site: Option<String>,
    fault_model: FaultModelKind,
    profile: Option<String>,
    listen: Option<String>,
    convergence: Option<u64>,
    baseline: Option<String>,
    target_margin: Option<f64>,
    pilot: Option<u32>,
    strata: Option<StrataSpec>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: "all".into(),
        injections: 200,
        seed: 2017,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        scale: Scale::Default,
        device: None,
        workload: None,
        csv: None,
        json: None,
        experiments: None,
        checkpoint_interval: 0,
        no_checkpoints: false,
        no_prune: false,
        no_batch: false,
        metrics: None,
        progress: false,
        log_level: LogLevel::Info,
        report_path: None,
        provenance: false,
        site: None,
        fault_model: FaultModelKind::Transient,
        profile: None,
        listen: None,
        convergence: None,
        baseline: None,
        target_margin: None,
        pilot: None,
        strata: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "fig1" | "fig2" | "fig3" | "findings" | "stats" | "all" | "outcomes" | "perf"
            | "bits" | "phases" | "mbu" | "protect" | "ablate-sched" | "ablate-rfsize"
            | "ablate-ace" | "bench-campaign" | "report" | "trace" | "profile" | "drift" => {
                args.command = a
            }
            "--injections" => {
                args.injections = it
                    .next()
                    .ok_or("--injections needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --injections: {e}"))?;
            }
            "--paper" => args.injections = 2000,
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--jobs" | "-j" | "--threads" => {
                args.threads = it
                    .next()
                    .ok_or_else(|| format!("{a} needs a value"))?
                    .parse()
                    .map_err(|e| format!("bad {a}: {e}"))?;
                if args.threads == 0 {
                    return Err(format!("{a} must be at least 1"));
                }
            }
            "--smoke" => args.scale = Scale::Smoke,
            "--device" => args.device = Some(it.next().ok_or("--device needs a value")?),
            "--workload" => args.workload = Some(it.next().ok_or("--workload needs a value")?),
            "--checkpoint-interval" => {
                args.checkpoint_interval = it
                    .next()
                    .ok_or("--checkpoint-interval needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-interval: {e}"))?;
            }
            "--no-checkpoints" => args.no_checkpoints = true,
            "--no-prune" => args.no_prune = true,
            "--no-batch" => args.no_batch = true,
            "--fault-model" => {
                args.fault_model = it
                    .next()
                    .ok_or("--fault-model needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --fault-model: {e}"))?;
            }
            "--provenance" => args.provenance = true,
            "--target-margin" => {
                let m: f64 = it
                    .next()
                    .ok_or("--target-margin needs a value")?
                    .parse()
                    .map_err(|e| format!("--target-margin: {e}"))?;
                if !(m.is_finite() && m > 0.0 && m < 1.0) {
                    return Err("--target-margin must be in (0, 1)".into());
                }
                args.target_margin = Some(m);
            }
            "--pilot" => {
                let p: u32 = it
                    .next()
                    .ok_or("--pilot needs a value")?
                    .parse()
                    .map_err(|e| format!("--pilot: {e}"))?;
                if p == 0 {
                    return Err("--pilot must be at least 1".into());
                }
                args.pilot = Some(p);
            }
            "--strata" => {
                args.strata = Some(parse_strata(&it.next().ok_or("--strata needs a value")?)?)
            }
            "--listen" => args.listen = Some(it.next().ok_or("--listen needs a value")?),
            "--convergence" => {
                args.convergence = Some(
                    it.next()
                        .ok_or("--convergence needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --convergence: {e}"))?,
                );
            }
            "--profile" => args.profile = Some(it.next().ok_or("--profile needs a value")?),
            "--site" => args.site = Some(it.next().ok_or("--site needs a value")?),
            "--metrics" => args.metrics = Some(it.next().ok_or("--metrics needs a value")?),
            "--progress" => args.progress = true,
            "--quiet" | "-q" => args.log_level = LogLevel::Quiet,
            "-v" | "--verbose" => args.log_level = LogLevel::Debug,
            "--csv" => args.csv = Some(it.next().ok_or("--csv needs a value")?),
            "--json" => args.json = Some(it.next().ok_or("--json needs a value")?),
            "--experiments" => {
                args.experiments = Some(it.next().ok_or("--experiments needs a value")?)
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other if args.command == "report" && args.report_path.is_none() => {
                args.report_path = Some(other.to_string())
            }
            other if args.command == "drift" && args.baseline.is_none() => {
                args.baseline = Some(other.to_string())
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.target_margin.is_some() && args.provenance {
        return Err(
            "--target-margin cannot be combined with --provenance (the flight \
             recorder traces a fixed uniform sample)"
                .into(),
        );
    }
    if args.target_margin.is_none() && (args.pilot.is_some() || args.strata.is_some()) {
        return Err("--pilot/--strata only apply with --target-margin".into());
    }
    Ok(args)
}

/// Parses `--strata`: `default`, `full`, `none`, or a comma-separated
/// subset of `liveness,cycle,bit,region`.
fn parse_strata(spec: &str) -> Result<StrataSpec, String> {
    match spec {
        "default" => return Ok(StrataSpec::default()),
        "full" => return Ok(StrataSpec::full()),
        "none" => return Ok(StrataSpec::none()),
        _ => {}
    }
    let mut s = StrataSpec::none();
    for axis in spec.split(',') {
        match axis.trim() {
            "liveness" => s.liveness = true,
            "cycle" => s.cycle = true,
            "bit" => s.bit = true,
            "region" => s.region = true,
            other => {
                return Err(format!(
                    "--strata: unknown axis '{other}' (expected liveness|cycle|bit|region \
                     or default|full|none)"
                ))
            }
        }
    }
    Ok(s)
}

const HELP: &str = "repro — regenerate the figures of \
'Microarchitecture Level Reliability Comparison of Modern GPU Designs' (ISPASS 2017)

usage: repro [COMMAND] [--injections N] [--paper] [--seed S] [--jobs N]
             [--smoke] [--device NAME] [--workload NAME]
             [--csv PATH] [--json PATH] [--experiments PATH]
             [--checkpoint-interval N] [--no-checkpoints] [--no-prune] [--no-batch]
             [--fault-model transient|stuck0|stuck1|control] [--provenance]
             [--target-margin M] [--pilot N] [--strata SPEC]
             [--metrics PATH] [--progress] [--listen ADDR] [--convergence N]
             [--profile PATH] [--quiet] [-v]
       repro profile [study options]
       repro report <metrics.jsonl>
       repro drift [BASELINE.json] [study options]
       repro trace --site sm:struct:word:bit:cycle[:kind] [--device D] [--workload W]

commands:
  fig1          register-file AVF: FI vs ACE vs occupancy  (paper Fig. 1)
  fig2          local-memory AVF                           (paper Fig. 2)
  fig3          executions per failure                     (paper Fig. 3)
  findings      the paper's F1..F4 claims, quantified
  stats         footnote-4 sample-size calibration
  all           everything above (default)
  outcomes      masked/SDC/DUE breakdown per point
  perf          performance profile (cycles, IPC, cache hit rates) per point
  bits          extension: AVF by bit position within the 32-bit word
  phases        extension: AVF by execution phase (early vs late flips)
  mbu           extension: single vs adjacent double/quad bit upsets
  protect       extension: EPF under none/parity/SECDED protection
  ablate-sched  extension: warp scheduler (LRR vs GTO) vs AVF and cycles
  ablate-rfsize extension: register-file size sweep vs AVF and FIT
  ablate-ace    extension: conservative vs refined ACE vs FI
  bench-campaign  measure checkpointed-replay speedup and --jobs scaling
  drift         baseline drift sentinel: re-run the study and compare each
                point against a committed baseline JSON (default
                ci/fault-model-baseline.json; override with a positional
                path). Deterministic fields must match exactly; sampled
                AVFs may move within the fresh run's 99% interval. Exits
                nonzero on drift. Run with the same flags the baseline
                was generated with (CI: --smoke --injections 40 --seed 7)
  profile       run the study with span tracing on, print the phase /
                hot-spot profile and write a Perfetto-loadable Chrome
                trace (default profile_trace.json; override --profile)
  report        render a markdown run report from a --metrics JSONL file
  trace         explain one injection: flip -> first read/overwrite ->
                divergence, masking reason or failure cause
                (--site sm:struct:word:bit:cycle[:kind], struct one of
                rf|lds|srf, kind one of transient|stuck0|stuck1|
                ctrl-<sched|mask|sboard|barrier>; one device + workload
                selected with --device/--workload, first match wins)

parallelism:
  --jobs N (-j N, alias --threads) sets the replay worker-thread count.
  The runner's determinism contract guarantees bit-identical campaign
  and study results at any job count: only wall-clock time changes.

fault models:
  --fault-model selects the injected fault family. `transient` (default)
  is the paper's single-bit flip. `stuck0`/`stuck1` are permanent cell
  faults that re-assert on every write of the target word. `control`
  corrupts parallelism-management state (scheduler slot, per-warp active
  mask, scoreboard entry, block barrier counter) instead of a storage
  array; a replay that stops making progress is cut off by a watchdog and
  classified as a hang (reported separately from DUE). Lifetime pruning
  and the clean-overwrite early exit apply only to the transient model —
  they are unsound for persistent and control faults and are bypassed
  automatically.

pruning:
  Campaigns pre-classify sampled sites against a lifetime oracle captured
  from one instrumented golden run: a flip landing after a word's last
  read (or before its first write, or in unallocated space) is recorded
  as masked without a replay, and replays without an oracle abandon the
  run the moment the flipped word is cleanly overwritten unread. Both
  accelerations are exact — --no-prune disables them and produces
  bit-identical tallies, only slower.

telemetry:
  --metrics PATH writes one JSON object per line: structured events
  (golden.done, ladder.done, campaign.done, campaign.convergence,
  study.point, log) while the study runs, then the final
  counter/gauge/histogram values. --progress draws a live done/total +
  inj/s + ETA line on stderr. Neither flag changes campaign results.

observatory:
  --listen ADDR binds a dependency-free HTTP endpoint for the duration
  of the run: GET /metrics (Prometheus text exposition of the live
  registry), /health, /progress (done/pruned/batched/total JSON) and
  /convergence (latest campaign.convergence snapshot per campaign).
  Scrapes are read-only — figure output and --json files are
  byte-identical with or without --listen. campaign.convergence events
  stream every --convergence N merged injections (default 100) with the
  running AVF, its 99% finite-population interval and the projected
  injections still needed to reach the paper's +/-2.88% target; the
  event stream is a pure function of the merged outcome order, so it is
  byte-identical at any --jobs.

profiling:
  --profile PATH records a hierarchical span for every study phase
  (golden run, oracle capture, checkpoint ladder, prune, replay, merge)
  and every campaign injection, then writes a Chrome trace-event JSON
  to PATH — load it at https://ui.perfetto.dev or chrome://tracing.
  PATH.tree gets the duration-stripped structural span tree, which is
  byte-identical at any --jobs. Spans never change campaign results.

adaptive sampling:
  --target-margin M replaces the fixed --injections budget with a stop
  rule: each campaign stratifies its site population (dead vs live per
  the lifetime oracle, fault-cycle quartile, bit half; see --strata),
  draws a deterministic pilot per stratum, then Neyman-allocates further
  rounds to the high-variance strata until the post-stratified 99%
  margin is at or below M. The same seed-stable site stream and striped
  worker pool as the uniform path are used, so adaptive tallies are
  bit-identical at any --jobs and with pruning/batching on or off.
  Incompatible with --provenance.

provenance:
  --provenance turns the fault-propagation flight recorder on for every
  campaign injection: each replay additionally emits an injection.trace
  event (first-read latency, taint breadth, cycles to divergence,
  masking reason) and the campaign publishes provenance_* attribution
  metrics (SDC rate per RF word region / LDS bank). Tallies and study
  results are identical with or without it.";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            return ExitCode::FAILURE;
        }
    };

    if args.command == "report" {
        let Some(path) = &args.report_path else {
            eprintln!("error: report needs the path of a --metrics JSONL file\n{HELP}");
            return ExitCode::FAILURE;
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match grel_bench::report::render_run_report(&text) {
            Ok(md) => {
                print!("{md}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.command == "stats" {
        println!("== Statistical fault injection calibration (paper footnote 4) ==");
        for n in [200u64, 500, 1000, 2000, 5000] {
            println!(
                "  {n:>5} injections -> +/-{:.2}% at 99% confidence",
                error_margin(u64::MAX, n, Z_99) * 100.0
            );
        }
        println!(
            "  2.88% at 99% confidence needs {} injections (paper uses 2000)",
            required_sample_size(u64::MAX, 0.0288, Z_99)
        );
        return ExitCode::SUCCESS;
    }

    // Every status line goes through the level-gated logger; with
    // --metrics the sink also receives each line as a `log` event, so
    // stdout stays purely machine-parseable figure output.
    let sink: Arc<dyn EventSink> = match &args.metrics {
        Some(path) => match JsonlSink::to_file(Path::new(path)) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("error: cannot open metrics file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Arc::new(NullSink),
    };
    let log = Logger::with_sink(args.log_level, Arc::clone(&sink));

    let mut archs = all_devices();
    if let Some(d) = &args.device {
        let dl = d.to_ascii_lowercase();
        archs.retain(|a| {
            a.name.to_ascii_lowercase().contains(&dl)
                || a.microarch.to_ascii_lowercase().contains(&dl)
        });
        if archs.is_empty() {
            log.error(&format!("no device matches '{d}'"));
            return ExitCode::FAILURE;
        }
    }
    let mut workloads = workload_set(args.scale, args.seed);
    if let Some(w) = &args.workload {
        let wl = w.to_ascii_lowercase();
        workloads.retain(|x| x.name().to_ascii_lowercase().contains(&wl));
        if workloads.is_empty() {
            log.error(&format!("no workload matches '{w}'"));
            return ExitCode::FAILURE;
        }
    }

    let cfg = StudyConfig {
        campaign: CampaignConfig {
            injections: args.injections,
            seed: args.seed,
            threads: args.threads,
            watchdog_factor: 10,
            checkpoint_interval: args.checkpoint_interval,
            // A one-byte budget holds no snapshot: every replay starts
            // from cycle zero, which is exactly what --no-checkpoints
            // promises.
            checkpoint_budget_bytes: if args.no_checkpoints { 1 } else { 0 },
            prune: !args.no_prune,
            early_exit: !args.no_prune,
            fault_model: args.fault_model,
            batch: !args.no_batch,
            convergence: args.convergence.unwrap_or(100),
        },
        workload_seed: args.seed,
        fi_on_unused_lds: false,
        provenance: args.provenance,
        ace_mode: Default::default(),
        sampling: match args.target_margin {
            Some(target_margin) => {
                let mut plan = SamplingPlan::with_target(target_margin);
                if let Some(p) = args.pilot {
                    plan.pilot = p;
                }
                if let Some(s) = args.strata {
                    plan.strata = s;
                }
                plan
            }
            None => SamplingPlan::default(),
        },
    };

    match args.command.as_str() {
        "trace" => return trace_site(&archs, &workloads, &args, &log),
        "drift" => return drift_sentinel(&archs, &workloads, &cfg, &args, &log),
        "bench-campaign" => return bench_campaign(&archs, &workloads, &cfg, &log),
        "ablate-sched" => return ablate_scheduler(&archs, &workloads, &cfg),
        "ablate-rfsize" => return ablate_rf_size(&archs, &workloads, &cfg),
        "ablate-ace" => return ablate_ace(&archs, &workloads, &cfg),
        "perf" => return perf_table(&archs, &workloads),
        "bits" => return bit_sensitivity(&archs, &workloads, &cfg),
        "phases" => return phase_sensitivity(&archs, &workloads, &cfg),
        "mbu" => return mbu_table(&archs, &workloads, &cfg),
        "protect" => return protect_table(&archs, &workloads, &cfg),
        _ => {}
    }

    if let Some(target) = args.target_margin {
        log.info(&format!(
            "adaptive sampling: stop at +/-{:.2}% @ 99% (pilot {}/stratum)",
            target * 100.0,
            cfg.sampling.pilot
        ));
    }
    let margin = error_margin(u64::MAX, args.injections.max(1) as u64, Z_99);
    log.info(&format!(
        "running study: {} workloads x {} devices, {} injections/structure (+/-{:.2}% @ 99%), {} jobs",
        workloads.len(),
        archs.len(),
        args.injections,
        margin * 100.0,
        args.threads
    ));
    log.debug(&format!(
        "checkpoints: interval {} cycles (0 = auto), budget {}",
        cfg.campaign.checkpoint_interval,
        if args.no_checkpoints {
            "disabled"
        } else {
            "auto"
        }
    ));

    let registry = Arc::new(MetricsRegistry::new());
    // --listen tees the event stream into a StatusBoard so the HTTP
    // /convergence endpoint can answer with the latest snapshot per
    // campaign; without it events flow straight to the JSONL/null sink.
    let board = args.listen.as_ref().map(|_| Arc::new(StatusBoard::new()));
    let tee = board
        .as_ref()
        .map(|b| TeeSink(&*sink, b.as_ref() as &dyn EventSink));
    let event_sink: &dyn EventSink = match &tee {
        Some(t) => t,
        None => &*sink,
    };
    if args.metrics.is_some() {
        sink.emit(
            &Event::new("run.meta")
                .field("command", args.command.as_str())
                .field("injections", args.injections as u64)
                .field("fault_model", args.fault_model.as_str())
                .field("seed", args.seed)
                .field("threads", args.threads as u64)
                .field("jobs", args.threads as u64)
                .field("devices", archs.len() as u64)
                .field("workloads", workloads.len() as u64)
                .field(
                    "scale",
                    if args.scale == Scale::Smoke {
                        "smoke"
                    } else {
                        "default"
                    },
                ),
        );
    }
    // The `profile` command implies tracing; --profile turns it on for
    // any study command. The recorder outlives the hooks so the tree
    // can be assembled after the run.
    let profile_path = args
        .profile
        .clone()
        .or_else(|| (args.command == "profile").then(|| "profile_trace.json".to_string()));
    let recorder = profile_path.as_ref().map(|_| SpanRecorder::new());
    let telemetry_on = args.metrics.is_some() || args.progress || args.listen.is_some();
    // One campaign per structure: RF always, LDS when the workload
    // touches local memory (mirrors evaluate_point).
    let per_point: u64 = workloads
        .iter()
        .map(|w| 1 + u64::from(w.uses_local_memory() || cfg.fi_on_unused_lds))
        .sum();
    let progress_total = per_point * archs.len() as u64 * args.injections as u64;
    let server = match (&args.listen, &board) {
        (Some(addr), Some(board)) => {
            let observatory = Observatory {
                registry: Arc::clone(&registry),
                board: Arc::clone(board),
                planned_injections: progress_total,
            };
            match serve(addr.as_str(), observatory) {
                Ok(handle) => {
                    log.info(&format!(
                        "observatory listening on http://{}/ (GET /metrics /health /progress /convergence)",
                        handle.local_addr()
                    ));
                    Some(handle)
                }
                Err(e) => {
                    log.error(&format!("cannot bind observatory on {addr}: {e}"));
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => None,
    };
    let start = std::time::Instant::now();
    let outcome = if let Some(recorder) = &recorder {
        let span_hook = SpanHook::new(recorder);
        let reg_hook = RegistryHook::with_sink(&registry, event_sink);
        if args.progress {
            let prog = ProgressHook::new(progress_total);
            let study = run_study_hooked(&archs, &workloads, &cfg, &((reg_hook, &prog), span_hook));
            prog.finish();
            study
        } else {
            run_study_hooked(&archs, &workloads, &cfg, &(reg_hook, span_hook))
        }
    } else if telemetry_on {
        let reg_hook = RegistryHook::with_sink(&registry, event_sink);
        if args.progress {
            let prog = ProgressHook::new(progress_total);
            let study = run_study_hooked(&archs, &workloads, &cfg, &(reg_hook, &prog));
            prog.finish();
            study
        } else {
            run_study_hooked(&archs, &workloads, &cfg, &reg_hook)
        }
    } else {
        run_study(&archs, &workloads, &cfg)
    };
    let study = match outcome {
        Ok(s) => s,
        Err(e) => {
            log.error(&format!("study failed: {e}"));
            return ExitCode::FAILURE;
        }
    };
    log.info(&format!("study completed in {:.1?}", start.elapsed()));

    if let Some(path) = &args.metrics {
        let snap = registry.snapshot();
        for (name, value) in snap.counters() {
            sink.emit(
                &Event::new("counter")
                    .field("name", name)
                    .field("value", value),
            );
        }
        for (name, value) in snap.gauges() {
            sink.emit(
                &Event::new("gauge")
                    .field("name", name)
                    .field("value", value),
            );
        }
        for (name, h) in snap.histograms() {
            sink.emit(
                &Event::new("histogram")
                    .field("name", name)
                    .field("count", h.count())
                    .field("sum", h.sum())
                    .field("mean", h.mean())
                    .field("min", h.min())
                    .field("max", h.max())
                    .field("p50", h.quantile(0.5))
                    .field("p90", h.quantile(0.9))
                    .field("p99", h.quantile(0.99)),
            );
        }
        sink.flush();
        log.info(&format!("wrote metrics to {path}"));
    }

    let mut profile_tree: Option<SpanTree> = None;
    if let (Some(recorder), Some(path)) = (&recorder, &profile_path) {
        let tree = recorder.finish();
        if tree.is_empty() {
            log.error("profiling produced no spans; refusing to write an empty trace");
            return ExitCode::FAILURE;
        }
        if tree.dropped > 0 {
            log.info(&format!(
                "span ring overflowed: {} spans dropped (trace is still valid)",
                tree.dropped
            ));
        }
        if let Err(e) = std::fs::write(path, tree.to_chrome_trace().to_string()) {
            log.error(&format!("writing {path}: {e}"));
            return ExitCode::FAILURE;
        }
        let tree_path = format!("{path}.tree");
        if let Err(e) = std::fs::write(&tree_path, tree.structural_text()) {
            log.error(&format!("writing {tree_path}: {e}"));
            return ExitCode::FAILURE;
        }
        log.info(&format!(
            "wrote Chrome trace to {path} ({} spans; structural tree: {tree_path})",
            tree.spans.len()
        ));
        profile_tree = Some(tree);
    }

    match args.command.as_str() {
        "fig1" => print!(
            "{}",
            render_avf_figure("Fig. 1: Register File AVF", &study.fig1_rows())
        ),
        "fig2" => print!(
            "{}",
            render_avf_figure("Fig. 2: Local Memory AVF", &study.fig2_rows())
        ),
        "fig3" => print!("{}", render_epf_figure(&study.fig3_rows())),
        "findings" => print!("{}", render_findings(&study.findings())),
        "outcomes" => {
            println!("fault model: {}", args.fault_model.as_str());
            println!(
                "{:<12} {:<16} {:>9} | {:>7} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} {:>7}",
                "workload",
                "device",
                "struct",
                "masked",
                "SDC",
                "DUE",
                "hang",
                "masked",
                "SDC",
                "DUE",
                "hang"
            );
            for p in &study.points {
                println!(
                    "{:<12} {:<16} {:>9} | {:>7} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} {:>7}",
                    p.workload,
                    p.device,
                    "RF | LDS",
                    p.rf.tally.masked,
                    p.rf.tally.sdc,
                    p.rf.tally.due,
                    p.rf.tally.hang,
                    p.lds.tally.masked,
                    p.lds.tally.sdc,
                    p.lds.tally.due,
                    p.lds.tally.hang
                );
            }
        }
        "profile" => {
            if let Some(tree) = &profile_tree {
                println!("== Campaign profile: phase spans ==");
                println!("(per-injection and per-worker spans are in the Chrome trace)");
                for n in &tree.spans {
                    if n.name.starts_with("inj:") || n.name.starts_with("worker:") {
                        continue;
                    }
                    let tags = n
                        .tags
                        .iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(" ");
                    println!(
                        "{:indent$}{:<24} {:>10.3} ms  x{:<4} {}",
                        "",
                        n.name,
                        n.dur_us as f64 / 1e3,
                        n.count,
                        tags,
                        indent = 2 * n.depth as usize
                    );
                }
                println!();
            }
            println!("== Simulator hot spots (one clean run per point) ==");
            println!(
                "{:<12} {:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>9}",
                "workload",
                "device",
                "rf-acc",
                "rf-live",
                "lds-acc",
                "srf-acc",
                "dispatch",
                "launches",
                "cycles"
            );
            for w in &workloads {
                for arch in &archs {
                    let mut gpu = Gpu::new(arch.clone());
                    let mut obs = HotspotObserver::default();
                    match w.run(&mut gpu, &mut obs) {
                        Ok(_) => println!(
                            "{:<12} {:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>9}",
                            w.name(),
                            arch.name,
                            obs.rf.accesses(),
                            obs.rf.active_cycles(),
                            obs.lds.accesses(),
                            obs.srf.accesses(),
                            obs.sched_dispatches,
                            obs.launches,
                            obs.end_cycle
                        ),
                        Err(e) => println!("{:<12} {:<16} {e}", w.name(), arch.name),
                    }
                }
            }
        }
        _ => {
            print!(
                "{}",
                render_avf_figure("Fig. 1: Register File AVF", &study.fig1_rows())
            );
            println!();
            print!(
                "{}",
                render_avf_figure("Fig. 2: Local Memory AVF", &study.fig2_rows())
            );
            println!();
            print!("{}", render_epf_figure(&study.fig3_rows()));
            println!();
            print!("{}", render_findings(&study.findings()));
        }
    }

    let config_desc = format!(
        "{} injections/structure (+/-{:.2}% @ 99% confidence), {} fault model, seed {}, {} scale, devices: {}",
        args.injections,
        margin * 100.0,
        args.fault_model.as_str(),
        args.seed,
        if args.scale == Scale::Smoke {
            "smoke"
        } else {
            "default"
        },
        archs
            .iter()
            .map(|a| a.name.clone())
            .collect::<Vec<_>>()
            .join(", ")
    );
    if let Some(path) = &args.csv {
        if let Err(e) = std::fs::write(path, to_csv(&study)) {
            log.error(&format!("writing {path}: {e}"));
            return ExitCode::FAILURE;
        }
        log.info(&format!("wrote {path}"));
    }
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, grel_bench::to_json(&study)) {
            log.error(&format!("writing {path}: {e}"));
            return ExitCode::FAILURE;
        }
        log.info(&format!("wrote {path}"));
    }
    if let Some(path) = &args.experiments {
        let body = render_experiments_markdown(&study, &config_desc);
        if let Err(e) = std::fs::write(path, body) {
            log.error(&format!("writing {path}: {e}"));
            return ExitCode::FAILURE;
        }
        log.info(&format!("wrote {path}"));
    }
    sink.flush();
    if let Some(server) = server {
        server.stop();
    }
    ExitCode::SUCCESS
}

/// `repro drift [BASELINE.json]`: the baseline drift sentinel. Re-runs
/// the study with the current flags and compares every point against
/// the committed baseline written by an earlier `--json` run.
/// Deterministic fields (cycles, ACE AVFs, occupancies) must match
/// exactly — the golden run and ACE analysis are bit-reproducible, so
/// any difference is a behaviour change. Sampled fault-injection AVFs
/// are statistical: the baseline value only counts as drift when it
/// falls outside the fresh run's 99% finite-population interval, so an
/// unchanged tree always passes while a real AVF shift is flagged.
fn drift_sentinel(
    archs: &[ArchConfig],
    workloads: &[Box<dyn Workload>],
    cfg: &StudyConfig,
    args: &Args,
    log: &Logger,
) -> ExitCode {
    use grel_telemetry::Json;
    use std::collections::BTreeMap;

    let path = args
        .baseline
        .clone()
        .unwrap_or_else(|| "ci/fault-model-baseline.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            log.error(&format!("reading baseline {path}: {e}"));
            return ExitCode::FAILURE;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            log.error(&format!("baseline {path} is not valid JSON: {e}"));
            return ExitCode::FAILURE;
        }
    };
    let Some(baseline_points) = baseline.as_arr() else {
        log.error(&format!("baseline {path} is not a JSON array of points"));
        return ExitCode::FAILURE;
    };
    let mut by_key: BTreeMap<(String, String), &Json> = BTreeMap::new();
    for b in baseline_points {
        let workload = b.get("workload").and_then(Json::as_str).unwrap_or("");
        let device = b.get("device").and_then(Json::as_str).unwrap_or("");
        by_key.insert((workload.to_string(), device.to_string()), b);
    }

    log.info(&format!(
        "drift sentinel: fresh study vs {path} ({} baseline points)",
        baseline_points.len()
    ));
    let study = match run_study(archs, workloads, cfg) {
        Ok(s) => s,
        Err(e) => {
            log.error(&format!("study failed: {e}"));
            return ExitCode::FAILURE;
        }
    };

    // A baseline `null` (NaN/absent on the fresh side) matches only a
    // non-finite fresh value; two finite values compare by rule.
    let within = |b: Option<f64>, fresh: f64, margin: f64| match (b, fresh.is_finite()) {
        (None, false) => true,
        (Some(b), true) => b >= (fresh - margin).max(0.0) && b <= (fresh + margin).min(1.0),
        _ => false,
    };
    let exact = |b: Option<f64>, fresh: f64| match (b, fresh.is_finite()) {
        (None, false) => true,
        (Some(b), true) => b == fresh,
        _ => false,
    };
    let show = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.6}"));

    println!("== Baseline drift sentinel ==");
    println!("baseline: {path}");
    println!("{:<12} {:<16} {:<8} notes", "workload", "device", "status");
    let mut drifting = 0usize;
    for p in &study.points {
        let key = (p.workload.clone(), p.device.clone());
        let Some(b) = by_key.remove(&key) else {
            drifting += 1;
            println!(
                "{:<12} {:<16} {:<8} point missing from baseline",
                p.workload, p.device, "DRIFT"
            );
            continue;
        };
        let f = |k: &str| b.get(k).and_then(Json::as_f64);
        let mut notes: Vec<String> = Vec::new();
        // Deterministic fields: bit-exact or it's a behaviour change.
        if f("cycles") != Some(p.cycles as f64) {
            notes.push(format!("cycles {} -> {}", show(f("cycles")), p.cycles));
        }
        for (key, fresh) in [
            ("rf_avf_ace", p.rf.avf_ace),
            ("rf_occ", p.rf.occupancy),
            ("lds_avf_ace", p.lds.avf_ace),
            ("lds_occ", p.lds.occupancy),
            ("srf_avf_ace", p.srf_avf_ace.unwrap_or(f64::NAN)),
        ] {
            if !exact(f(key), fresh) {
                notes.push(format!("{key} {} -> {fresh:.6} (exact)", show(f(key))));
            }
        }
        // Sampled fields: the baseline proportion must sit inside the
        // fresh run's 99% interval (margin 0 degenerates to exact).
        for (key, fresh, margin) in [
            ("rf_avf_fi", p.rf.avf_fi, p.rf.margin_99),
            ("rf_avf_sdc", p.rf.avf_sdc, p.rf.margin_99),
            ("lds_avf_fi", p.lds.avf_fi, p.lds.margin_99),
        ] {
            if !within(f(key), fresh, margin) {
                notes.push(format!(
                    "{key} {} outside {fresh:.6} +/- {margin:.6}",
                    show(f(key))
                ));
            }
        }
        if notes.is_empty() {
            println!("{:<12} {:<16} {:<8}", p.workload, p.device, "ok");
        } else {
            drifting += 1;
            println!(
                "{:<12} {:<16} {:<8} {}",
                p.workload,
                p.device,
                "DRIFT",
                notes.join("; ")
            );
        }
    }
    for (workload, device) in by_key.into_keys() {
        drifting += 1;
        println!(
            "{workload:<12} {device:<16} {:<8} point missing from fresh run",
            "DRIFT"
        );
    }
    println!(
        "{} points compared, {} drifting",
        study.points.len(),
        drifting
    );
    if drifting > 0 {
        log.error(&format!(
            "baseline drift detected in {drifting} campaign(s) vs {path}"
        ));
        return ExitCode::FAILURE;
    }
    log.info("no drift: fresh study is statistically consistent with the baseline");
    ExitCode::SUCCESS
}

/// `repro trace --site sm:struct:word:bit:cycle`: replays one injection
/// with the flight recorder on and prints the propagation narrative
/// (flip -> first read/overwrite -> divergence or masking reason). The
/// first device/workload surviving the `--device`/`--workload` filters
/// is traced.
fn trace_site(
    archs: &[ArchConfig],
    workloads: &[Box<dyn Workload>],
    args: &Args,
    log: &Logger,
) -> ExitCode {
    let Some(spec) = &args.site else {
        log.error("trace needs --site sm:struct:word:bit:cycle[:kind] (struct: rf, lds or srf)");
        return ExitCode::FAILURE;
    };
    let site = match grel_core::provenance::parse_site(spec) {
        Ok(s) => s,
        Err(e) => {
            log.error(&format!("bad --site: {e}"));
            return ExitCode::FAILURE;
        }
    };
    let arch = &archs[0];
    let workload = workloads[0].as_ref();
    if matches!(site.kind, FaultKind::Control(_)) {
        // Control sites index a warp-scheduler slot, not a storage word.
        if site.word >= arch.max_warps_per_sm {
            log.error(&format!(
                "warp slot {} out of range: {} has {} warp slots per SM",
                site.word, arch.name, arch.max_warps_per_sm
            ));
            return ExitCode::FAILURE;
        }
    } else {
        let words = match site.structure {
            Structure::VectorRegisterFile => arch.rf_words_per_sm(),
            Structure::LocalMemory => arch.lds_words_per_sm(),
            Structure::ScalarRegisterFile => arch.srf_words_per_sm(),
        };
        if words == 0 {
            log.error(&format!("{} has no {}", arch.name, site.structure));
            return ExitCode::FAILURE;
        }
        if site.word >= words {
            log.error(&format!(
                "word {} out of range: {} has {} {} words per SM",
                site.word, arch.name, words, site.structure
            ));
            return ExitCode::FAILURE;
        }
    }
    log.info(&format!(
        "tracing {} on {} / {}",
        site,
        arch.name,
        workload.name()
    ));
    match grel_core::provenance::trace_one(arch, workload, site, 10) {
        Ok(t) => {
            println!(
                "== Injection trace ({} / {}) ==",
                arch.name,
                workload.name()
            );
            print!("{}", t.narrative());
            ExitCode::SUCCESS
        }
        Err(e) => {
            log.error(&format!("trace failed: {e}"));
            ExitCode::FAILURE
        }
    }
}

/// Extension: protection trade-off — the decision the paper says EPF is
/// for ("different protection mechanisms can deliver different
/// improvements in the FIT rates and ... different impact on
/// performance").
fn protect_table(
    archs: &[ArchConfig],
    workloads: &[Box<dyn Workload>],
    cfg: &StudyConfig,
) -> ExitCode {
    println!("== Extension: EPF under storage protection schemes ==");
    println!(
        "{:<12} {:<16} {:>10} {:>12} {:>12} {:>9}",
        "workload", "device", "scheme", "FIT_GPU", "EPF", "SDC share"
    );
    for w in workloads {
        for arch in archs {
            match evaluate_point(arch, w.as_ref(), cfg) {
                Ok(p) => {
                    let sdc_share = if p.rf.avf_fi > 0.0 {
                        p.rf.avf_sdc / p.rf.avf_fi
                    } else {
                        0.0
                    };
                    for proj in grel_core::protection_sweep(&p.fit, p.eit, sdc_share) {
                        println!(
                            "{:<12} {:<16} {:>10} {:>12.3} {:>12} {:>8.1}%",
                            p.workload,
                            p.device,
                            proj.scheme.to_string(),
                            proj.fit_gpu,
                            grel_bench::sci(proj.epf),
                            proj.sdc_share * 100.0
                        );
                    }
                    println!();
                }
                Err(e) => println!("{:<12} {:<16} {e}", w.name(), arch.name),
            }
        }
    }
    ExitCode::SUCCESS
}

/// Extension: AVF by bit position (nibble-grouped for sample density).
fn bit_sensitivity(
    archs: &[ArchConfig],
    workloads: &[Box<dyn Workload>],
    cfg: &StudyConfig,
) -> ExitCode {
    println!("== Extension: register-file AVF by bit position (nibbles) ==");
    println!(
        "{:<12} {:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload",
        "device",
        "b0-3",
        "b4-7",
        "b8-11",
        "b12-15",
        "b16-19",
        "b20-23",
        "b24-27",
        "b28-31"
    );
    for w in workloads {
        for arch in archs {
            match grel_core::detailed_campaign(
                arch,
                w.as_ref(),
                Structure::VectorRegisterFile,
                cfg.campaign,
            ) {
                Ok(detail) => {
                    let by_bit = grel_core::avf_by_bit(&detail);
                    let nib = |lo: usize| {
                        let vals: Vec<f64> = (lo..lo + 4)
                            .map(|b| by_bit[b])
                            .filter(|v| !v.is_nan())
                            .collect();
                        if vals.is_empty() {
                            "-".to_string()
                        } else {
                            format!(
                                "{:.1}%",
                                vals.iter().sum::<f64>() / vals.len() as f64 * 100.0
                            )
                        }
                    };
                    println!(
                        "{:<12} {:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                        w.name(),
                        arch.name,
                        nib(0),
                        nib(4),
                        nib(8),
                        nib(12),
                        nib(16),
                        nib(20),
                        nib(24),
                        nib(28)
                    );
                }
                Err(e) => println!("{:<12} {:<16} {e}", w.name(), arch.name),
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}

/// Extension: AVF by execution phase (quartiles of the run).
fn phase_sensitivity(
    archs: &[ArchConfig],
    workloads: &[Box<dyn Workload>],
    cfg: &StudyConfig,
) -> ExitCode {
    println!("== Extension: register-file AVF by execution phase ==");
    println!(
        "{:<12} {:<16} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "workload", "device", "Q1", "Q2", "Q3", "Q4", "DUE share"
    );
    for w in workloads {
        for arch in archs {
            let golden = match grel_core::golden_run(arch, w.as_ref()) {
                Ok(g) => g,
                Err(e) => {
                    println!("{:<12} {:<16} {e}", w.name(), arch.name);
                    continue;
                }
            };
            match grel_core::detailed_campaign(
                arch,
                w.as_ref(),
                Structure::VectorRegisterFile,
                cfg.campaign,
            ) {
                Ok(detail) => {
                    let phases = grel_core::avf_by_phase(&detail, golden.cycles, 4);
                    let cell = |p: (f64, u64)| {
                        if p.0.is_nan() {
                            "-".to_string()
                        } else {
                            format!("{:.1}%", p.0 * 100.0)
                        }
                    };
                    println!(
                        "{:<12} {:<16} {:>9} {:>9} {:>9} {:>9} {:>8.1}%",
                        w.name(),
                        arch.name,
                        cell(phases[0]),
                        cell(phases[1]),
                        cell(phases[2]),
                        cell(phases[3]),
                        grel_core::due_fraction(&detail) * 100.0
                    );
                }
                Err(e) => println!("{:<12} {:<16} {e}", w.name(), arch.name),
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}

/// Extension: adjacent multi-bit upsets vs single-bit upsets.
fn mbu_table(archs: &[ArchConfig], workloads: &[Box<dyn Workload>], cfg: &StudyConfig) -> ExitCode {
    println!("== Extension: multi-bit upsets (adjacent bits, register file) ==");
    println!(
        "{:<12} {:<16} {:>9} {:>9} {:>9}",
        "workload", "device", "1-bit", "2-bit", "4-bit"
    );
    for w in workloads {
        for arch in archs {
            let mut row = format!("{:<12} {:<16}", w.name(), arch.name);
            for width in [1u8, 2, 4] {
                match grel_core::mbu_campaign(
                    arch,
                    w.as_ref(),
                    Structure::VectorRegisterFile,
                    width,
                    cfg.campaign,
                ) {
                    Ok(t) => {
                        let avf = t.failures() as f64 / t.total().max(1) as f64;
                        row.push_str(&format!(" {:>8.1}%", avf * 100.0));
                    }
                    Err(e) => row.push_str(&format!(" {e}")),
                }
            }
            println!("{row}");
        }
        println!();
    }
    ExitCode::SUCCESS
}

/// Performance profile table: the throughput half of the paper's
/// reliability-performance correlation.
fn perf_table(archs: &[ArchConfig], workloads: &[Box<dyn Workload>]) -> ExitCode {
    println!(
        "{:<12} {:<16} {:>9} {:>10} {:>6} {:>7} {:>9} {:>7} {:>7} {:>6} {:>9}",
        "workload",
        "device",
        "cycles",
        "warp-inst",
        "IPC",
        "lanes/i",
        "mem-trans",
        "L1 hit",
        "L2 hit",
        "util",
        "time (us)"
    );
    for w in workloads {
        for arch in archs {
            match grel_core::perf::profile(arch, w.as_ref()) {
                Ok(p) => println!(
                    "{:<12} {:<16} {:>9} {:>10} {:>6.2} {:>7.1} {:>9} {:>6.1}% {:>7} {:>5.0}% {:>9.1}",
                    p.workload,
                    p.device,
                    p.cycles,
                    p.warp_instructions,
                    p.ipc(),
                    p.lanes_per_instruction(),
                    p.mem_transactions,
                    p.l1_hit_rate * 100.0,
                    p.l2_hit_rate
                        .map(|r| format!("{:.1}%", r * 100.0))
                        .unwrap_or_else(|| "-".into()),
                    p.sm_utilization * 100.0,
                    p.device_time_us
                ),
                Err(e) => println!("{:<12} {:<16} {e}", w.name(), arch.name),
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}

/// Measures the wall-clock effect of checkpointed replay: runs the same
/// register-file campaign (same sites, same golden run) once from cycle
/// zero and once resuming from the checkpoint ladder, asserts outcome
/// equality, and reports the speedup. A second table then re-runs the
/// checkpointed campaign at 1, 2, 4 … `--jobs` worker threads, asserting
/// the tally never changes, and reports the parallel scaling. A third
/// table benchmarks the lifetime-oracle fast path (full replay vs
/// early-exit vs pruned, identical tallies asserted), and the whole run
/// is written machine-readable to `BENCH_campaign.json`. A final
/// span-traced pass per pair (identical tally asserted again) writes
/// the phase/worker timing breakdown to `BENCH_profile.json`.
fn bench_campaign(
    archs: &[ArchConfig],
    workloads: &[Box<dyn Workload>],
    cfg: &StudyConfig,
    log: &Logger,
) -> ExitCode {
    use grel_core::campaign::{run_campaign_with_ladder_hooked, Outcome, Tally};
    use grel_telemetry::Json;
    use std::time::Instant;

    fn tally_of(outcomes: &[Outcome]) -> Tally {
        Tally {
            masked: outcomes.iter().filter(|o| **o == Outcome::Masked).count() as u64,
            sdc: outcomes.iter().filter(|o| **o == Outcome::Sdc).count() as u64,
            due: outcomes.iter().filter(|o| **o == Outcome::Due).count() as u64,
            hang: outcomes.iter().filter(|o| **o == Outcome::Hang).count() as u64,
        }
    }
    println!(
        "== Checkpointed replay vs from-zero replay (RF campaign, {} injections) ==",
        cfg.campaign.injections
    );
    // jobs = 1, 2, 4, … up to the requested worker count (always
    // including both endpoints), for the scaling table below.
    let max_jobs = cfg.campaign.threads.max(1);
    let mut jobs_ladder = vec![1usize];
    let mut j = 2;
    while j < max_jobs {
        jobs_ladder.push(j);
        j *= 2;
    }
    if max_jobs > 1 {
        jobs_ladder.push(max_jobs);
    }
    let mut scaling: Vec<(String, String, usize, f64)> = Vec::new();
    // (device, workload, mode, wall, inj/s, pruned frac, early frac,
    //  fork frac, vs full, vs pruned)
    type PruneRow = (String, String, String, f64, f64, f64, f64, f64, f64, f64);
    let mut prune_rows: Vec<PruneRow> = Vec::new();
    // (device, workload, target margin, uniform replayed, adaptive
    //  replayed, adaptive rounds, adaptive margin, savings, converged)
    type SamplingRow = (String, String, f64, u64, u64, usize, f64, f64, bool);
    let mut sampling_rows: Vec<SamplingRow> = Vec::new();
    let mut pairs_json: Vec<Json> = Vec::new();
    let mut profile_pairs_json: Vec<Json> = Vec::new();
    println!(
        "{:<16} {:<12} {:>5} {:>11} {:>13} {:>8}",
        "device", "workload", "rungs", "from-zero", "checkpointed", "speedup"
    );
    for arch in archs {
        for w in workloads {
            let golden = match golden_run(arch, w.as_ref()) {
                Ok(g) => g,
                Err(e) => {
                    log.error(&format!("golden run failed on {}: {e}", arch.name));
                    return ExitCode::FAILURE;
                }
            };
            let sites = sample_sites(
                arch,
                Structure::VectorRegisterFile,
                golden.cycles,
                cfg.campaign.injections,
                cfg.campaign.seed,
            );
            let t0 = Instant::now();
            let base = match run_injections(arch, w.as_ref(), &golden, &sites, cfg.campaign) {
                Ok(t) => t,
                Err(e) => {
                    log.error(&format!(
                        "from-zero replay failed on {} / {}: {e}",
                        arch.name,
                        w.name()
                    ));
                    return ExitCode::FAILURE;
                }
            };
            let t_zero = t0.elapsed();
            // The checkpointed side pays for building its own ladder, so
            // the comparison is end-to-end, not best-case.
            let t1 = Instant::now();
            let ladder = match CheckpointLadder::build(arch, w.as_ref(), &golden, &cfg.campaign) {
                Ok(l) => l,
                Err(e) => {
                    log.error(&format!(
                        "checkpoint ladder failed on {} / {}: {e}",
                        arch.name,
                        w.name()
                    ));
                    return ExitCode::FAILURE;
                }
            };
            let fast = match run_injections_checkpointed(
                arch,
                w.as_ref(),
                &golden,
                &ladder,
                &sites,
                cfg.campaign,
            ) {
                Ok(t) => t,
                Err(e) => {
                    log.error(&format!(
                        "checkpointed replay failed on {} / {}: {e}",
                        arch.name,
                        w.name()
                    ));
                    return ExitCode::FAILURE;
                }
            };
            let t_ckpt = t1.elapsed();
            assert_eq!(base, fast, "checkpointed outcomes must match from-zero");
            println!(
                "{:<16} {:<12} {:>5} {:>10.3}s {:>12.3}s {:>7.2}x",
                arch.name,
                w.name(),
                ladder.len(),
                t_zero.as_secs_f64(),
                t_ckpt.as_secs_f64(),
                t_zero.as_secs_f64() / t_ckpt.as_secs_f64().max(1e-9)
            );
            // Parallel scaling: same ladder, same sites, varying jobs.
            // The tally must be identical at every job count — that is
            // the runner's determinism contract, enforced right here.
            let mut pair_scaling_json: Vec<Json> = Vec::new();
            for &jobs in &jobs_ladder {
                let mut c = cfg.campaign;
                c.threads = jobs;
                let t = Instant::now();
                match run_injections_checkpointed(arch, w.as_ref(), &golden, &ladder, &sites, c) {
                    Ok(tally) => {
                        assert_eq!(
                            tally, fast,
                            "tally must be job-count invariant (jobs = {jobs})"
                        );
                        let secs = t.elapsed().as_secs_f64();
                        pair_scaling_json.push(Json::Obj(vec![
                            ("jobs".into(), Json::from(jobs)),
                            ("seconds".into(), Json::from(secs)),
                            (
                                "injections_per_second".into(),
                                Json::from(cfg.campaign.injections as f64 / secs.max(1e-9)),
                            ),
                        ]));
                        scaling.push((arch.name.clone(), w.name().to_string(), jobs, secs));
                    }
                    Err(e) => {
                        log.error(&format!(
                            "parallel replay failed on {} / {} with {jobs} jobs: {e}",
                            arch.name,
                            w.name()
                        ));
                        return ExitCode::FAILURE;
                    }
                }
            }
            // Replay fast paths: same golden run, same seed (so the same
            // sampled sites), four configurations. The pruned run pays
            // for its own oracle-capture instrumented replay, so the
            // comparison is end-to-end, not best-case; the batched run
            // stacks bit-plane shared passes on top of the pruned
            // configuration, so its `vs pruned` column is the marginal
            // gain of batching alone.
            let base_tally = tally_of(&base);
            let mut modes_json: Vec<Json> = Vec::new();
            let mut full_secs = 0.0;
            let mut pruned_secs = 0.0;
            // (uniform margin_99, uniform replayed = injections − pruned)
            let mut uniform: Option<(f64, u64)> = None;
            for (mode, prune, early_exit, batch) in [
                ("full", false, false, false),
                ("early-exit", false, true, false),
                ("pruned", true, true, false),
                ("batched", true, true, true),
            ] {
                let mut c = cfg.campaign;
                c.prune = prune;
                c.early_exit = early_exit;
                c.batch = batch;
                let registry = MetricsRegistry::new();
                let hook = RegistryHook::new(&registry);
                let t = Instant::now();
                let res = match run_campaign_with_ladder_hooked(
                    arch,
                    w.as_ref(),
                    Structure::VectorRegisterFile,
                    c,
                    &golden,
                    &ladder,
                    &hook,
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        log.error(&format!(
                            "{mode} campaign failed on {} / {}: {e}",
                            arch.name,
                            w.name()
                        ));
                        return ExitCode::FAILURE;
                    }
                };
                let secs = t.elapsed().as_secs_f64();
                assert_eq!(
                    res.tally, base_tally,
                    "a replay fast path must not change the tally ({mode})"
                );
                if mode == "full" {
                    full_secs = secs;
                }
                if mode == "pruned" {
                    pruned_secs = secs;
                }
                let snap = registry.snapshot();
                let pruned = snap.counter("campaign_pruned_total").unwrap_or(0);
                if mode == "pruned" {
                    uniform = Some((
                        res.margin_99,
                        (cfg.campaign.injections as u64).saturating_sub(pruned),
                    ));
                }
                let early = snap.counter("campaign_early_exit_total").unwrap_or(0);
                let batched = snap.counter("campaign_batched_total").unwrap_or(0);
                let forks = snap.counter("campaign_batch_forks_total").unwrap_or(0);
                let n = cfg.campaign.injections as f64;
                let ips = n / secs.max(1e-9);
                let pruned_frac = pruned as f64 / n.max(1.0);
                let early_frac = early as f64 / n.max(1.0);
                let fork_frac = forks as f64 / (batched as f64).max(1.0);
                let speedup = full_secs / secs.max(1e-9);
                let vs_pruned = if mode == "batched" {
                    pruned_secs / secs.max(1e-9)
                } else {
                    0.0
                };
                prune_rows.push((
                    arch.name.clone(),
                    w.name().to_string(),
                    mode.to_string(),
                    secs,
                    ips,
                    pruned_frac,
                    early_frac,
                    fork_frac,
                    speedup,
                    vs_pruned,
                ));
                modes_json.push(Json::Obj(vec![
                    ("mode".into(), Json::from(mode)),
                    ("seconds".into(), Json::from(secs)),
                    ("injections_per_second".into(), Json::from(ips)),
                    ("pruned_fraction".into(), Json::from(pruned_frac)),
                    ("early_exit_fraction".into(), Json::from(early_frac)),
                    ("batched_sites".into(), Json::from(batched)),
                    ("batch_forks".into(), Json::from(forks)),
                    ("fork_fraction".into(), Json::from(fork_frac)),
                    ("speedup_vs_full".into(), Json::from(speedup)),
                    ("speedup_vs_pruned".into(), Json::from(vs_pruned)),
                ]));
            }
            // Profiled pass: the same checkpointed campaign once more at
            // the requested job count with span tracing on. The tally
            // must match the unprofiled runs (spans are observe-only),
            // and the span tree feeds BENCH_profile.json.
            let precorder = SpanRecorder::new();
            {
                let preg = MetricsRegistry::new();
                let phook = (RegistryHook::new(&preg), SpanHook::new(&precorder));
                match run_campaign_with_ladder_hooked(
                    arch,
                    w.as_ref(),
                    Structure::VectorRegisterFile,
                    cfg.campaign,
                    &golden,
                    &ladder,
                    &phook,
                ) {
                    Ok(r) => assert_eq!(
                        r.tally, base_tally,
                        "span tracing must not change the tally"
                    ),
                    Err(e) => {
                        log.error(&format!(
                            "profiled campaign failed on {} / {}: {e}",
                            arch.name,
                            w.name()
                        ));
                        return ExitCode::FAILURE;
                    }
                }
            }
            let ptree = precorder.finish();
            let phases: Vec<Json> = ptree
                .nodes_named(|n| {
                    matches!(n, "oracle" | "prune" | "replay" | "merge")
                        || n.starts_with("campaign:")
                })
                .map(|n| {
                    Json::Obj(vec![
                        ("name".into(), Json::from(n.name.as_str())),
                        ("path".into(), Json::from(n.path.as_str())),
                        ("count".into(), Json::from(n.count)),
                        ("dur_us".into(), Json::from(n.dur_us)),
                    ])
                })
                .collect();
            let tag_u64 = |n: &grel_telemetry::SpanNode, key: &str| {
                n.tags
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.parse::<u64>().ok())
                    .unwrap_or(0)
            };
            let workers: Vec<Json> = ptree
                .nodes_named(|n| n.starts_with("worker:"))
                .map(|n| {
                    Json::Obj(vec![
                        ("lane".into(), Json::from(n.lane)),
                        ("alive_us".into(), Json::from(n.dur_us)),
                        ("busy_us".into(), Json::from(tag_u64(n, "busy_us"))),
                        ("injections".into(), Json::from(tag_u64(n, "injections"))),
                    ])
                })
                .collect();
            let injection_spans = ptree.nodes_named(|n| n.starts_with("inj:")).count() as u64;
            profile_pairs_json.push(Json::Obj(vec![
                ("device".into(), Json::from(arch.name.as_str())),
                ("workload".into(), Json::from(w.name())),
                ("spans".into(), Json::from(ptree.spans.len())),
                ("dropped".into(), Json::from(ptree.dropped)),
                ("injection_spans".into(), Json::from(injection_spans)),
                ("phases".into(), Json::Arr(phases)),
                ("workers".into(), Json::Arr(workers)),
            ]));
            // Adaptive stratified sampling vs the uniform fixed-size
            // campaign at equal margin: the uniform side replays
            // `injections − pruned` sites to earn its margin; the
            // adaptive side stops at the same (or a user-supplied
            // `--target-margin`) margin and reports how many replays
            // that actually took.
            let (uniform_margin, uniform_replayed) = uniform.expect("the pruned mode always runs");
            let plan = if cfg.sampling.enabled() {
                cfg.sampling
            } else {
                SamplingPlan::with_target(uniform_margin)
            };
            let mut ac = cfg.campaign;
            ac.prune = true;
            ac.early_exit = true;
            ac.batch = true;
            let adaptive = match grel_core::run_adaptive_campaign(
                arch,
                w.as_ref(),
                Structure::VectorRegisterFile,
                ac,
                plan,
            ) {
                Ok(r) => r,
                Err(e) => {
                    log.error(&format!(
                        "adaptive campaign failed on {} / {}: {e}",
                        arch.name,
                        w.name()
                    ));
                    return ExitCode::FAILURE;
                }
            };
            let savings = uniform_replayed as f64 / (adaptive.replayed as f64).max(1.0);
            sampling_rows.push((
                arch.name.clone(),
                w.name().to_string(),
                plan.target_margin,
                uniform_replayed,
                adaptive.replayed,
                adaptive.rounds.len(),
                adaptive.margin,
                savings,
                adaptive.converged,
            ));
            let sampling_json = Json::Obj(vec![
                ("target_margin".into(), Json::from(plan.target_margin)),
                ("uniform_margin".into(), Json::from(uniform_margin)),
                (
                    "uniform_injections".into(),
                    Json::from(cfg.campaign.injections),
                ),
                ("uniform_replayed".into(), Json::from(uniform_replayed)),
                ("adaptive_sampled".into(), Json::from(adaptive.sampled)),
                ("adaptive_replayed".into(), Json::from(adaptive.replayed)),
                ("adaptive_rounds".into(), Json::from(adaptive.rounds.len())),
                ("adaptive_margin".into(), Json::from(adaptive.margin)),
                ("adaptive_avf".into(), Json::from(adaptive.avf)),
                ("converged".into(), Json::Bool(adaptive.converged)),
                ("replay_savings".into(), Json::from(savings)),
            ]);
            pairs_json.push(Json::Obj(vec![
                ("device".into(), Json::from(arch.name.as_str())),
                ("workload".into(), Json::from(w.name())),
                ("sampling".into(), sampling_json),
                ("golden_cycles".into(), Json::from(golden.cycles)),
                ("rungs".into(), Json::from(ladder.len())),
                ("from_zero_seconds".into(), Json::from(t_zero.as_secs_f64())),
                (
                    "checkpointed_seconds".into(),
                    Json::from(t_ckpt.as_secs_f64()),
                ),
                ("modes".into(), Json::Arr(modes_json)),
                ("scaling".into(), Json::Arr(pair_scaling_json)),
            ]));
        }
    }
    if jobs_ladder.len() > 1 {
        println!();
        println!("== Parallel scaling (checkpointed replay, identical tallies asserted) ==");
        println!(
            "{:<16} {:<12} {:>5} {:>10} {:>8} {:>6}",
            "device", "workload", "jobs", "wall", "inj/s", "vs -j1"
        );
        let mut base_secs = 0.0;
        for (device, workload, jobs, secs) in &scaling {
            if *jobs == 1 {
                base_secs = *secs;
            }
            println!(
                "{:<16} {:<12} {:>5} {:>9.3}s {:>8.0} {:>5.2}x",
                device,
                workload,
                jobs,
                secs,
                cfg.campaign.injections as f64 / secs.max(1e-9),
                base_secs / secs.max(1e-9)
            );
        }
    }
    println!();
    println!("== Replay fast paths (RF campaign at -j{max_jobs}, identical tallies asserted) ==");
    println!(
        "{:<16} {:<12} {:<10} {:>9} {:>8} {:>7} {:>7} {:>7} {:>8} {:>9}",
        "device",
        "workload",
        "mode",
        "wall",
        "inj/s",
        "pruned",
        "early",
        "forked",
        "vs full",
        "vs pruned"
    );
    for (device, workload, mode, secs, ips, pruned, early, forked, speedup, vs_pruned) in
        &prune_rows
    {
        let vs_pruned_col = if *vs_pruned > 0.0 {
            format!("{vs_pruned:>8.2}x")
        } else {
            format!("{:>9}", "-")
        };
        println!(
            "{:<16} {:<12} {:<10} {:>8.3}s {:>8.0} {:>6.1}% {:>6.1}% {:>6.1}% {:>7.2}x {}",
            device,
            workload,
            mode,
            secs,
            ips,
            pruned * 100.0,
            early * 100.0,
            forked * 100.0,
            speedup,
            vs_pruned_col
        );
    }
    println!();
    println!("== Adaptive stratified sampling vs uniform (equal margin, replayed injections) ==");
    println!(
        "{:<16} {:<12} {:>8} {:>9} {:>9} {:>7} {:>8} {:>8} {:>5}",
        "device",
        "workload",
        "target",
        "uniform",
        "adaptive",
        "rounds",
        "margin",
        "savings",
        "conv"
    );
    for (device, workload, target, uni, ada, rounds, margin, savings, conv) in &sampling_rows {
        println!(
            "{:<16} {:<12} {:>7.2}% {:>9} {:>9} {:>7} {:>7.2}% {:>7.2}x {:>5}",
            device,
            workload,
            target * 100.0,
            uni,
            ada,
            rounds,
            margin * 100.0,
            savings,
            if *conv { "yes" } else { "no" }
        );
    }
    let doc = Json::Obj(vec![
        ("bench".into(), Json::from("campaign")),
        ("structure".into(), Json::from("rf")),
        ("injections".into(), Json::from(cfg.campaign.injections)),
        ("jobs".into(), Json::from(max_jobs)),
        ("pairs".into(), Json::Arr(pairs_json)),
    ]);
    if let Err(e) = std::fs::write("BENCH_campaign.json", doc.to_string()) {
        log.error(&format!("failed to write BENCH_campaign.json: {e}"));
        return ExitCode::FAILURE;
    }
    log.info("wrote BENCH_campaign.json");
    let profile_doc = Json::Obj(vec![
        ("bench".into(), Json::from("profile")),
        ("structure".into(), Json::from("rf")),
        ("injections".into(), Json::from(cfg.campaign.injections)),
        ("jobs".into(), Json::from(max_jobs)),
        ("pairs".into(), Json::Arr(profile_pairs_json)),
    ]);
    if let Err(e) = std::fs::write("BENCH_profile.json", profile_doc.to_string()) {
        log.error(&format!("failed to write BENCH_profile.json: {e}"));
        return ExitCode::FAILURE;
    }
    log.info("wrote BENCH_profile.json");
    ExitCode::SUCCESS
}

/// Extension experiment: does the warp scheduler change reliability?
/// The paper's intro names "execution scheduling" as a studied factor.
fn ablate_scheduler(
    archs: &[ArchConfig],
    workloads: &[Box<dyn Workload>],
    cfg: &StudyConfig,
) -> ExitCode {
    println!("== Ablation: warp scheduler vs reliability ==");
    println!(
        "{:<12} {:<16} {:>5} {:>9} {:>8} {:>8}",
        "workload", "device", "sched", "cycles", "RF AVF", "RF occ"
    );
    for w in workloads {
        for base in archs {
            for policy in [SchedulerPolicy::Lrr, SchedulerPolicy::Gto] {
                let mut arch = base.clone();
                arch.scheduler = policy;
                match evaluate_point(&arch, w.as_ref(), cfg) {
                    Ok(p) => println!(
                        "{:<12} {:<16} {:>5} {:>9} {:>7.1}% {:>7.1}%",
                        p.workload,
                        p.device,
                        format!("{policy:?}"),
                        p.cycles,
                        p.rf.avf_fi * 100.0,
                        p.rf.occupancy * 100.0
                    ),
                    Err(e) => println!("{:<12} {:<16} {policy:?}: {e}", w.name(), base.name),
                }
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}

/// Extension experiment: register-file size sweep ("resource sizes").
/// Halving the file raises occupancy (and AVF); doubling dilutes it but
/// adds bits, so FIT moves less than AVF — the designer's trade-off.
fn ablate_rf_size(
    archs: &[ArchConfig],
    workloads: &[Box<dyn Workload>],
    cfg: &StudyConfig,
) -> ExitCode {
    println!("== Ablation: register-file size vs AVF and FIT ==");
    println!(
        "{:<12} {:<16} {:>7} {:>9} {:>8} {:>8} {:>10}",
        "workload", "device", "RF KiB", "cycles", "RF AVF", "RF occ", "RF FIT"
    );
    for w in workloads {
        for base in archs {
            for scale in [1u32, 2, 4] {
                let mut arch = base.clone();
                // scale = 2 is the stock size; 1 halves, 4 doubles.
                arch.regfile_bytes_per_sm = base.regfile_bytes_per_sm / 2 * scale;
                match evaluate_point(&arch, w.as_ref(), cfg) {
                    Ok(p) => println!(
                        "{:<12} {:<16} {:>7} {:>9} {:>7.1}% {:>7.1}% {:>10.2}",
                        p.workload,
                        p.device,
                        arch.regfile_bytes_per_sm / 1024,
                        p.cycles,
                        p.rf.avf_fi * 100.0,
                        p.rf.occupancy * 100.0,
                        structure_fit(&arch, Structure::VectorRegisterFile, p.rf.avf_fi)
                    ),
                    Err(e) => println!(
                        "{:<12} {:<16} {:>7}  launch fails: {e}",
                        w.name(),
                        base.name,
                        arch.regfile_bytes_per_sm / 1024
                    ),
                }
            }
            println!();
        }
    }
    ExitCode::SUCCESS
}

/// Extension experiment: ACE refinement level vs fault injection — the
/// methodological trade-off behind the paper's finding F3.
fn ablate_ace(
    archs: &[ArchConfig],
    workloads: &[Box<dyn Workload>],
    cfg: &StudyConfig,
) -> ExitCode {
    println!("== Ablation: ACE refinement vs fault injection ==");
    println!(
        "{:<12} {:<16} {:>6} | {:>8} {:>9} {:>8}",
        "workload", "device", "struct", "ACE-cons", "ACE-refnd", "FI"
    );
    for w in workloads {
        for arch in archs {
            let mut g1 = Gpu::new(arch.clone());
            let mut cons = AceAnalyzer::new(arch);
            if let Err(e) = w.run(&mut g1, &mut cons) {
                println!("{:<12} {:<16} {e}", w.name(), arch.name);
                continue;
            }
            let mut g2 = Gpu::new(arch.clone());
            let mut refi = AceAnalyzer::with_mode(arch, AceMode::WriteToLastRead);
            w.run(&mut g2, &mut refi).expect("second golden run");
            let structures: &[Structure] = if w.uses_local_memory() {
                &[Structure::VectorRegisterFile, Structure::LocalMemory]
            } else {
                &[Structure::VectorRegisterFile]
            };
            for &s in structures {
                let fi = run_campaign(arch, w.as_ref(), s, cfg.campaign).expect("campaign");
                let tag = match s {
                    Structure::VectorRegisterFile => "RF",
                    Structure::LocalMemory => "LDS",
                    Structure::ScalarRegisterFile => "SRF",
                };
                println!(
                    "{:<12} {:<16} {:>6} | {:>7.1}% {:>8.1}% {:>7.1}%",
                    w.name(),
                    arch.name,
                    tag,
                    cons.report(s).avf_ace * 100.0,
                    refi.report(s).avf_ace * 100.0,
                    fi.avf() * 100.0
                );
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}
