//! Property tests for the MASS ISA: functional-semantics algebra,
//! control-map invariants over randomly generated structured programs,
//! and lowering invariants.

use proptest::prelude::*;
use simt_isa::op::{eval_binop, eval_cmp, eval_terop, eval_unop};
use simt_isa::{
    lower, ArchCaps, BinOp, CmpOp, ControlMap, Instr, KernelBuilder, PReg, TerOp, UnOp,
};

proptest! {
    /// Integer add/sub/neg form the expected wrapping group.
    #[test]
    fn int_group_laws(a in any::<u32>(), b in any::<u32>()) {
        let sum = eval_binop(BinOp::IAdd, a, b);
        prop_assert_eq!(eval_binop(BinOp::ISub, sum, b), a);
        prop_assert_eq!(eval_binop(BinOp::IAdd, a, eval_unop(UnOp::INeg, a)), 0);
        prop_assert_eq!(eval_binop(BinOp::IAdd, a, b), eval_binop(BinOp::IAdd, b, a));
    }

    /// Bitwise identities.
    #[test]
    fn bitwise_identities(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(eval_binop(BinOp::Xor, a, a), 0);
        prop_assert_eq!(eval_binop(BinOp::And, a, u32::MAX), a);
        prop_assert_eq!(eval_binop(BinOp::Or, a, 0), a);
        prop_assert_eq!(eval_unop(UnOp::Not, eval_unop(UnOp::Not, a)), a);
        prop_assert_eq!(
            eval_unop(UnOp::Popc, a) + eval_unop(UnOp::Popc, !a),
            32
        );
        let _ = b;
    }

    /// IMad agrees with mul-then-add.
    #[test]
    fn imad_is_mul_add(a in any::<u32>(), b in any::<u32>(), c in any::<u32>()) {
        prop_assert_eq!(
            eval_terop(TerOp::IMad, a, b, c),
            eval_binop(BinOp::IAdd, eval_binop(BinOp::IMul, a, b), c)
        );
    }

    /// Signed/unsigned comparison trichotomy.
    #[test]
    fn comparison_trichotomy(a in any::<u32>(), b in any::<u32>()) {
        let lt = eval_cmp(CmpOp::SLt, a, b, false);
        let eq = eval_cmp(CmpOp::Eq, a, b, false);
        let gt = eval_cmp(CmpOp::SGt, a, b, false);
        prop_assert_eq!(lt as u8 + eq as u8 + gt as u8, 1);
        prop_assert_eq!(eval_cmp(CmpOp::ULe, a, b, false), !eval_cmp(CmpOp::UGt, a, b, false));
    }

    /// Division identity where defined (unsigned).
    #[test]
    fn unsigned_divmod_identity(a in any::<u32>(), b in 1u32..) {
        let q = eval_binop(BinOp::UDiv, a, b);
        let r = eval_binop(BinOp::URem, a, b);
        prop_assert!(r < b);
        prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
    }

    /// Float min/max are commutative on non-NaN inputs and pick an input.
    #[test]
    fn float_minmax(a in any::<f32>().prop_filter("finite", |v| v.is_finite()),
                    b in any::<f32>().prop_filter("finite", |v| v.is_finite())) {
        let (ab, bb) = (a.to_bits(), b.to_bits());
        let mn = f32::from_bits(eval_binop(BinOp::FMin, ab, bb));
        let mx = f32::from_bits(eval_binop(BinOp::FMax, ab, bb));
        prop_assert!(mn <= mx);
        prop_assert!(mn == a || mn == b);
        prop_assert!(mx == a || mx == b);
    }
}

/// A random well-nested structured program.
fn structured_program() -> impl Strategy<Value = Vec<Instr>> {
    // Encode as a tree: each node emits either a flat op or a region.
    fn node() -> impl Strategy<Value = Vec<Instr>> {
        let leaf = prop_oneof![Just(vec![Instr::Nop]), Just(vec![Instr::Bar]),];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                // if region (with or without else)
                (inner.clone(), any::<bool>()).prop_map(|(body, with_else)| {
                    let mut v = vec![Instr::IfBegin {
                        p: PReg(0),
                        negate: false,
                    }];
                    v.extend(body.clone());
                    if with_else {
                        v.push(Instr::Else);
                        v.extend(body);
                    }
                    v.push(Instr::IfEnd);
                    v
                }),
                // loop region with a break inside
                inner.prop_map(|body| {
                    let mut v = vec![Instr::LoopBegin];
                    v.push(Instr::Break {
                        p: PReg(0),
                        negate: false,
                    });
                    v.extend(body);
                    v.push(Instr::LoopEnd);
                    v
                }),
            ]
        })
    }
    proptest::collection::vec(node(), 1..5).prop_map(|parts| {
        let mut v: Vec<Instr> = parts.into_iter().flatten().collect();
        v.push(Instr::Exit);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated well-nested program builds a consistent control
    /// map: closers point back at their openers and targets are ordered.
    #[test]
    fn control_map_is_consistent(body in structured_program()) {
        let cm = ControlMap::build(&body).expect("well-nested by construction");
        for (i, ins) in body.iter().enumerate() {
            match ins {
                Instr::IfBegin { .. } => {
                    let info = cm.if_info(i).expect("opener registered");
                    prop_assert!(info.end_idx > i);
                    prop_assert!(matches!(body[info.end_idx], Instr::IfEnd));
                    if let Some(e) = info.else_idx {
                        prop_assert!(e > i && e < info.end_idx);
                        prop_assert!(matches!(body[e], Instr::Else));
                        prop_assert_eq!(cm.else_owner(e), Some(i));
                    }
                    prop_assert_eq!(cm.if_end_owner(info.end_idx), Some(i));
                }
                Instr::LoopBegin => {
                    let info = cm.loop_info(i).expect("opener registered");
                    prop_assert!(info.end_idx > i);
                    prop_assert!(matches!(body[info.end_idx], Instr::LoopEnd));
                    prop_assert_eq!(cm.loop_end_owner(info.end_idx), Some(i));
                }
                Instr::Break { .. } => {
                    let owner = cm.break_owner(i).expect("break owner");
                    prop_assert!(owner < i);
                    prop_assert!(matches!(body[owner], Instr::LoopBegin));
                    let end = cm.loop_info(owner).unwrap().end_idx;
                    prop_assert!(i < end);
                }
                _ => {}
            }
        }
    }

    /// Truncating the program inside a region always fails validation.
    #[test]
    fn truncated_programs_are_rejected(body in structured_program()) {
        // Find a prefix that ends strictly inside some region.
        if let Some(open_idx) = body.iter().position(|i| {
            matches!(i, Instr::IfBegin { .. } | Instr::LoopBegin)
        }) {
            let truncated = &body[..=open_idx];
            prop_assert!(ControlMap::build(truncated).is_err());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lowering to a vector-only architecture removes every scalar
    /// register and preserves instruction count and control structure.
    #[test]
    fn lowering_invariants(n_sregs in 0u16..8, n_vregs in 1u16..8) {
        let mut kb = KernelBuilder::new("gen", 2);
        let mut sregs = Vec::new();
        for _ in 0..n_sregs {
            sregs.push(kb.sreg());
        }
        let mut vregs = Vec::new();
        for _ in 0..n_vregs {
            vregs.push(kb.vreg());
        }
        for (i, s) in sregs.iter().enumerate() {
            kb.iadd(*s, kb.param(0), i as u32);
        }
        for (i, v) in vregs.iter().enumerate() {
            if let Some(s) = sregs.first() {
                kb.iadd(*v, *s, i as u32);
            } else {
                kb.mov(*v, i as u32);
            }
        }
        kb.exit();
        let k = kb.build().unwrap();

        let nv = lower(&k, ArchCaps { has_scalar_unit: false, warp_size: 32 }).unwrap();
        let si = lower(&k, ArchCaps { has_scalar_unit: true, warp_size: 64 }).unwrap();

        prop_assert_eq!(nv.body().len(), k.body().len());
        prop_assert_eq!(si.body(), k.body());
        prop_assert_eq!(nv.sregs_per_warp(), 0);
        prop_assert_eq!(
            nv.vregs_per_thread(),
            k.num_vregs() + k.num_sregs()
        );
        for ins in nv.body() {
            if let Some(d) = ins.dst_reg() {
                prop_assert!(d.is_vector());
            }
            for op in ins.src_operands() {
                if let Some(r) = op.reg() {
                    prop_assert!(r.is_vector());
                }
            }
        }
        prop_assert_eq!(nv.control(), k.control());
    }
}

/// A random flat data-instruction (registers confined to small indices).
fn random_data_instr() -> impl Strategy<Value = Instr> {
    use simt_isa::{MemSpace, Operand, Reg, SReg, VReg};
    let operand = prop_oneof![
        (0u16..4).prop_map(|i| Operand::Reg(Reg::V(VReg(i)))),
        (0u16..3).prop_map(|i| Operand::Reg(Reg::S(SReg(i)))),
        any::<u32>().prop_map(Operand::Imm),
    ];
    let vdst = (0u16..4).prop_map(|i| Reg::V(VReg(i)));
    prop_oneof![
        (vdst.clone(), operand.clone()).prop_map(|(dst, a)| Instr::Un {
            op: UnOp::Mov,
            dst,
            a
        }),
        (vdst.clone(), operand.clone(), operand.clone()).prop_map(|(dst, a, b)| Instr::Bin {
            op: BinOp::IAdd,
            dst,
            a,
            b
        }),
        (
            vdst.clone(),
            operand.clone(),
            operand.clone(),
            operand.clone()
        )
            .prop_map(|(dst, a, b, c)| Instr::Ter {
                op: TerOp::FFma,
                dst,
                a,
                b,
                c
            }),
        (vdst.clone(), operand.clone(), -16i32..16).prop_map(|(dst, a, off)| Instr::Ld {
            space: MemSpace::Global,
            dst,
            addr: a,
            offset: off * 4
        }),
        (operand.clone(), operand, -16i32..16).prop_map(|(a, s, off)| Instr::St {
            space: MemSpace::Shared,
            addr: a,
            offset: off * 4,
            src: s
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Disassembling any kernel and parsing the text reproduces the exact
    /// instruction stream and register counts.
    #[test]
    fn disassembly_round_trips(instrs in proptest::collection::vec(random_data_instr(), 1..24)) {
        let mut kb = KernelBuilder::new("rt", 2);
        kb.vregs(4);
        let _ = kb.sreg(); // s2
        let p = kb.preg();
        kb.shared(256);
        for i in &instrs {
            kb.push(*i);
        }
        // A little control flow for coverage.
        kb.isetp(CmpOp::Eq, p, 0u32, 0u32);
        kb.if_begin(p);
        kb.bar();
        kb.if_end();
        kb.exit();
        let k = kb.build().unwrap();
        let text = format!(".params 2\n.shared 256\n{}", k.disassemble());
        let k2 = simt_isa::parse_kernel(&text).expect("parse own disassembly");
        prop_assert_eq!(k2.body(), k.body());
        prop_assert_eq!(k2.shared_bytes(), k.shared_bytes());
        prop_assert!(k2.num_vregs() <= k.num_vregs());
        prop_assert_eq!(k2.num_pregs(), k.num_pregs());
    }
}
