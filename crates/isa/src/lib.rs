//! # MASS — a register-level SIMT instruction set
//!
//! `simt-isa` defines **MASS** (Microarchitectural Assembly for SIMT), the
//! register-level instruction set consumed by the `simt-sim` GPU simulator.
//! It plays the role that SASS plays for NVIDIA GPUs and the Southern Islands
//! ISA plays for AMD GPUs in the ISPASS 2017 study this repository
//! reproduces: reliability analysis is performed on the *architectural
//! registers the lowered code actually uses*, not on a virtual IR such as
//! PTX.
//!
//! The crate provides:
//!
//! * register classes ([`VReg`] per-lane vector registers, [`SReg`] per-warp
//!   scalar registers, [`PReg`] per-lane predicates) — see [`reg`];
//! * the instruction set ([`Instr`]) with integer/float ALU ops, memory ops
//!   over global/shared spaces, atomics, barriers and **structured** SIMT
//!   control flow (`IfBegin`/`Else`/`IfEnd`, `LoopBegin`/`Break`/`LoopEnd`)
//!   — see [`instr`];
//! * a validating [`KernelBuilder`] and the immutable [`Kernel`] it produces;
//! * a control-flow map ([`ControlMap`]) that pre-resolves the matching
//!   indices of every structured-control instruction so the simulator's SIMT
//!   reconvergence stack never searches;
//! * per-architecture lowering ([`lower::lower`]): on architectures with a
//!   scalar unit (AMD Southern Islands) scalar instructions run once per
//!   wavefront on the scalar register file, while on NVIDIA-style
//!   architectures they are rewritten onto per-thread vector registers —
//!   reproducing the ISA asymmetry between the two vendor families.
//!
//! ## Example
//!
//! ```
//! use simt_isa::{KernelBuilder, Special, MemSpace};
//!
//! // c[i] = a[i] + b[i]  — params: s0 = &a, s1 = &b, s2 = &c, s3 = n
//! let mut b = KernelBuilder::new("vectoradd", 4);
//! let [a, bb, c, n] = [b.param(0), b.param(1), b.param(2), b.param(3)];
//! let tid = b.vreg();
//! let gid = b.vreg();
//! let va = b.vreg();
//! let vb = b.vreg();
//! let addr = b.vreg();
//! let in_range = b.preg();
//! b.global_tid_x(gid); // gid = ctaid.x * ntid.x + tid.x
//! let _ = tid;
//! b.isetp_lt_u(in_range, gid, n);
//! b.if_begin(in_range);
//! b.shl_imm(addr, gid, 2);
//! b.iadd(va, addr, a);
//! b.ld(MemSpace::Global, va, va);
//! b.iadd(vb, addr, bb);
//! b.ld(MemSpace::Global, vb, vb);
//! b.fadd(va, va, vb);
//! b.iadd(addr, addr, c);
//! b.st(MemSpace::Global, addr, va);
//! b.if_end();
//! let kernel = b.build().expect("valid kernel");
//! assert_eq!(kernel.name(), "vectoradd");
//! assert!(kernel.num_vregs() >= 5);
//! # let _ = Special::TidX;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod error;
pub mod instr;
pub mod kernel;
pub mod lower;
pub mod op;
pub mod parse;
pub mod reg;

pub use cfg::ControlMap;
pub use error::IsaError;
pub use instr::Instr;
pub use kernel::{Kernel, KernelBuilder};
pub use lower::{lower, ArchCaps, LoweredKernel};
pub use op::{AtomOp, BinOp, CmpOp, MemSpace, TerOp, UnOp};
pub use parse::{parse_kernel, ParseError};
pub use reg::{Operand, PReg, Reg, SReg, Special, VReg};
