//! Pre-resolved structured-control-flow map.
//!
//! The simulator's SIMT reconvergence stack needs, for every structured
//! control instruction, the index of its partners (the `Else`/`IfEnd` of an
//! `IfBegin`, the `LoopEnd` of a `LoopBegin`, …). [`ControlMap::build`]
//! resolves these once at kernel-build time so execution never scans the
//! instruction stream.

use crate::error::IsaError;
use crate::instr::Instr;
use serde::{Deserialize, Serialize};

/// Resolved partner indices for one `IfBegin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IfInfo {
    /// Index of the matching `Else`, if present.
    pub else_idx: Option<usize>,
    /// Index of the matching `IfEnd`.
    pub end_idx: usize,
}

/// Resolved partner indices for one `LoopBegin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopInfo {
    /// Index of the matching `LoopEnd`.
    pub end_idx: usize,
}

/// Structured-control-flow map of a kernel body.
///
/// Entries are keyed by the instruction index of the *opening* instruction
/// (`IfBegin`, `LoopBegin`); closers and `Break`s carry back-references.
///
/// # Example
/// ```
/// use simt_isa::{ControlMap, Instr, PReg};
/// let body = vec![
///     Instr::IfBegin { p: PReg(0), negate: false },
///     Instr::Nop,
///     Instr::IfEnd,
///     Instr::Exit,
/// ];
/// let map = ControlMap::build(&body)?;
/// assert_eq!(map.if_info(0).unwrap().end_idx, 2);
/// # Ok::<(), simt_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlMap {
    ifs: Vec<(usize, IfInfo)>,
    loops: Vec<(usize, LoopInfo)>,
    /// For every `Break` index: the index of the enclosing `LoopBegin`.
    breaks: Vec<(usize, usize)>,
    /// For every `Else` index: the owning `IfBegin` index.
    elses: Vec<(usize, usize)>,
    /// For every `IfEnd` index: the owning `IfBegin` index.
    if_ends: Vec<(usize, usize)>,
    /// For every `LoopEnd` index: the owning `LoopBegin` index.
    loop_ends: Vec<(usize, usize)>,
}

#[derive(Debug)]
enum Frame {
    If {
        begin: usize,
        else_idx: Option<usize>,
    },
    Loop {
        begin: usize,
    },
}

impl ControlMap {
    /// Builds the map, validating nesting as it goes.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnmatchedControl`] for closers without openers or
    /// `Else` outside an `If`, [`IsaError::BreakOutsideLoop`] for stray
    /// `Break`s, and [`IsaError::UnclosedControl`] when the body ends inside
    /// an open construct.
    pub fn build(body: &[Instr]) -> Result<Self, IsaError> {
        let mut map = ControlMap::default();
        let mut stack: Vec<Frame> = Vec::new();
        for (i, ins) in body.iter().enumerate() {
            match ins {
                Instr::IfBegin { .. } => stack.push(Frame::If {
                    begin: i,
                    else_idx: None,
                }),
                Instr::Else => match stack.last_mut() {
                    Some(Frame::If { begin, else_idx }) if else_idx.is_none() => {
                        *else_idx = Some(i);
                        let b = *begin;
                        map.elses.push((i, b));
                    }
                    _ => {
                        return Err(IsaError::UnmatchedControl {
                            index: i,
                            what: "else without open if",
                        })
                    }
                },
                Instr::IfEnd => match stack.pop() {
                    Some(Frame::If { begin, else_idx }) => {
                        map.ifs.push((
                            begin,
                            IfInfo {
                                else_idx,
                                end_idx: i,
                            },
                        ));
                        map.if_ends.push((i, begin));
                    }
                    _ => {
                        return Err(IsaError::UnmatchedControl {
                            index: i,
                            what: "if.end without open if",
                        })
                    }
                },
                Instr::LoopBegin => stack.push(Frame::Loop { begin: i }),
                Instr::Break { .. } => {
                    let owner = stack.iter().rev().find_map(|f| match f {
                        Frame::Loop { begin } => Some(*begin),
                        Frame::If { .. } => None,
                    });
                    match owner {
                        Some(b) => map.breaks.push((i, b)),
                        None => return Err(IsaError::BreakOutsideLoop { index: i }),
                    }
                }
                Instr::LoopEnd => match stack.pop() {
                    Some(Frame::Loop { begin }) => {
                        map.loops.push((begin, LoopInfo { end_idx: i }));
                        map.loop_ends.push((i, begin));
                    }
                    _ => {
                        return Err(IsaError::UnmatchedControl {
                            index: i,
                            what: "loop.end without open loop",
                        })
                    }
                },
                _ => {}
            }
        }
        if let Some(frame) = stack.pop() {
            let (index, what) = match frame {
                Frame::If { begin, .. } => (begin, "if.begin"),
                Frame::Loop { begin } => (begin, "loop.begin"),
            };
            return Err(IsaError::UnclosedControl { index, what });
        }
        map.ifs.sort_unstable_by_key(|(k, _)| *k);
        map.loops.sort_unstable_by_key(|(k, _)| *k);
        map.breaks.sort_unstable_by_key(|(k, _)| *k);
        map.elses.sort_unstable_by_key(|(k, _)| *k);
        map.if_ends.sort_unstable_by_key(|(k, _)| *k);
        map.loop_ends.sort_unstable_by_key(|(k, _)| *k);
        Ok(map)
    }

    /// Partner indices for the `IfBegin` at `idx`.
    pub fn if_info(&self, idx: usize) -> Option<IfInfo> {
        self.ifs
            .binary_search_by_key(&idx, |(k, _)| *k)
            .ok()
            .map(|i| self.ifs[i].1)
    }

    /// Partner indices for the `LoopBegin` at `idx`.
    pub fn loop_info(&self, idx: usize) -> Option<LoopInfo> {
        self.loops
            .binary_search_by_key(&idx, |(k, _)| *k)
            .ok()
            .map(|i| self.loops[i].1)
    }

    /// The enclosing `LoopBegin` index for the `Break` at `idx`.
    pub fn break_owner(&self, idx: usize) -> Option<usize> {
        self.breaks
            .binary_search_by_key(&idx, |(k, _)| *k)
            .ok()
            .map(|i| self.breaks[i].1)
    }

    /// The owning `IfBegin` index for the `Else` at `idx`.
    pub fn else_owner(&self, idx: usize) -> Option<usize> {
        self.elses
            .binary_search_by_key(&idx, |(k, _)| *k)
            .ok()
            .map(|i| self.elses[i].1)
    }

    /// The owning `IfBegin` index for the `IfEnd` at `idx`.
    pub fn if_end_owner(&self, idx: usize) -> Option<usize> {
        self.if_ends
            .binary_search_by_key(&idx, |(k, _)| *k)
            .ok()
            .map(|i| self.if_ends[i].1)
    }

    /// The owning `LoopBegin` index for the `LoopEnd` at `idx`.
    pub fn loop_end_owner(&self, idx: usize) -> Option<usize> {
        self.loop_ends
            .binary_search_by_key(&idx, |(k, _)| *k)
            .ok()
            .map(|i| self.loop_ends[i].1)
    }

    /// Number of `If` regions in the kernel.
    pub fn num_ifs(&self) -> usize {
        self.ifs.len()
    }

    /// Number of loop regions in the kernel.
    pub fn num_loops(&self) -> usize {
        self.loops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::PReg;

    fn p0() -> Instr {
        Instr::IfBegin {
            p: PReg(0),
            negate: false,
        }
    }

    #[test]
    fn simple_if_else() {
        let body = vec![p0(), Instr::Nop, Instr::Else, Instr::Nop, Instr::IfEnd];
        let m = ControlMap::build(&body).unwrap();
        let info = m.if_info(0).unwrap();
        assert_eq!(info.else_idx, Some(2));
        assert_eq!(info.end_idx, 4);
        assert_eq!(m.else_owner(2), Some(0));
        assert_eq!(m.if_end_owner(4), Some(0));
        assert_eq!(m.num_ifs(), 1);
    }

    #[test]
    fn nested_regions() {
        let body = vec![
            Instr::LoopBegin, // 0
            p0(),             // 1
            Instr::Break {
                p: PReg(1),
                negate: false,
            }, // 2
            Instr::IfEnd,     // 3
            p0(),             // 4
            Instr::IfEnd,     // 5
            Instr::LoopEnd,   // 6
        ];
        let m = ControlMap::build(&body).unwrap();
        assert_eq!(m.loop_info(0).unwrap().end_idx, 6);
        assert_eq!(m.break_owner(2), Some(0));
        assert_eq!(m.if_info(1).unwrap().end_idx, 3);
        assert_eq!(m.if_info(4).unwrap().end_idx, 5);
        assert_eq!(m.loop_end_owner(6), Some(0));
        assert_eq!(m.num_loops(), 1);
        assert_eq!(m.num_ifs(), 2);
    }

    #[test]
    fn break_through_if_finds_loop() {
        let body = vec![
            Instr::LoopBegin,
            p0(),
            p0(),
            Instr::Break {
                p: PReg(2),
                negate: true,
            },
            Instr::IfEnd,
            Instr::IfEnd,
            Instr::LoopEnd,
        ];
        let m = ControlMap::build(&body).unwrap();
        assert_eq!(m.break_owner(3), Some(0));
    }

    #[test]
    fn rejects_unmatched_else() {
        let err = ControlMap::build(&[Instr::Else]).unwrap_err();
        assert!(matches!(err, IsaError::UnmatchedControl { index: 0, .. }));
    }

    #[test]
    fn rejects_double_else() {
        let body = vec![p0(), Instr::Else, Instr::Else, Instr::IfEnd];
        assert!(ControlMap::build(&body).is_err());
    }

    #[test]
    fn rejects_crossed_regions() {
        // loop.begin; if.begin; loop.end  — closes the if frame instead.
        let body = vec![Instr::LoopBegin, p0(), Instr::LoopEnd, Instr::IfEnd];
        assert!(ControlMap::build(&body).is_err());
    }

    #[test]
    fn rejects_unclosed() {
        let err = ControlMap::build(&[Instr::LoopBegin, Instr::Nop]).unwrap_err();
        assert!(matches!(err, IsaError::UnclosedControl { index: 0, .. }));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let body = vec![
            p0(),
            Instr::Break {
                p: PReg(0),
                negate: false,
            },
            Instr::IfEnd,
        ];
        let err = ControlMap::build(&body).unwrap_err();
        assert!(matches!(err, IsaError::BreakOutsideLoop { index: 1 }));
    }

    #[test]
    fn lookup_missing_returns_none() {
        let m = ControlMap::build(&[Instr::Nop, Instr::Exit]).unwrap();
        assert_eq!(m.if_info(0), None);
        assert_eq!(m.loop_info(0), None);
        assert_eq!(m.break_owner(1), None);
    }
}
