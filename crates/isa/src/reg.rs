//! Register classes and operands of the MASS ISA.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A per-lane 32-bit vector register.
///
/// Every thread (lane) of a warp/wavefront owns a private instance. Vector
/// registers are the primary fault-injection target of the reproduced study
/// (the "vector register file" of Fig. 1).
///
/// # Example
/// ```
/// use simt_isa::VReg;
/// assert_eq!(VReg(3).to_string(), "v3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VReg(pub u16);

/// A per-warp 32-bit scalar register.
///
/// On architectures with a scalar unit (AMD Southern Islands) a scalar
/// register physically exists once per wavefront in the scalar register
/// file. On NVIDIA-style architectures the lowering pass
/// ([`crate::lower::lower`]) rewrites scalar registers onto per-thread
/// vector registers, mirroring how uniform values occupy SASS registers.
///
/// # Example
/// ```
/// use simt_isa::SReg;
/// assert_eq!(SReg(0).to_string(), "s0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SReg(pub u16);

/// A per-lane 1-bit predicate register.
///
/// Predicates steer structured control flow and `Sel`; they are held in a
/// dedicated structure that is *not* a fault-injection target (matching the
/// paper, which injects only the vector register file and local memory).
///
/// # Example
/// ```
/// use simt_isa::PReg;
/// assert_eq!(PReg(1).to_string(), "p1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PReg(pub u8);

/// Any general-purpose register (vector or scalar).
///
/// # Example
/// ```
/// use simt_isa::{Reg, VReg, SReg};
/// let r: Reg = VReg(2).into();
/// assert!(r.is_vector());
/// let s: Reg = SReg(1).into();
/// assert!(!s.is_vector());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Reg {
    /// A per-lane vector register.
    V(VReg),
    /// A per-warp scalar register.
    S(SReg),
}

impl Reg {
    /// Returns `true` if this is a vector (per-lane) register.
    ///
    /// # Example
    /// ```
    /// use simt_isa::{Reg, VReg};
    /// assert!(Reg::V(VReg(0)).is_vector());
    /// ```
    pub fn is_vector(self) -> bool {
        matches!(self, Reg::V(_))
    }

    /// Returns `true` if this is a scalar (per-warp) register.
    ///
    /// # Example
    /// ```
    /// use simt_isa::{Reg, SReg};
    /// assert!(Reg::S(SReg(0)).is_scalar());
    /// ```
    pub fn is_scalar(self) -> bool {
        matches!(self, Reg::S(_))
    }
}

impl From<VReg> for Reg {
    fn from(r: VReg) -> Self {
        Reg::V(r)
    }
}

impl From<SReg> for Reg {
    fn from(r: SReg) -> Self {
        Reg::S(r)
    }
}

/// Special read-only values produced by the hardware.
///
/// `TidX`/`TidY` are per-lane; the rest are uniform across a warp (and are
/// therefore legal sources for scalar instructions).
///
/// # Example
/// ```
/// use simt_isa::Special;
/// assert!(Special::TidX.is_per_lane());
/// assert!(!Special::CtaIdX.is_per_lane());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Special {
    /// Thread index within the block, x dimension.
    TidX,
    /// Thread index within the block, y dimension.
    TidY,
    /// Block index within the grid, x dimension.
    CtaIdX,
    /// Block index within the grid, y dimension.
    CtaIdY,
    /// Block dimension, x.
    NTidX,
    /// Block dimension, y.
    NTidY,
    /// Grid dimension, x.
    NCtaIdX,
    /// Grid dimension, y.
    NCtaIdY,
    /// Lane index within the warp.
    LaneId,
    /// Warp index within the block.
    WarpId,
}

impl Special {
    /// Whether the value differs between lanes of a warp.
    ///
    /// Per-lane specials may not feed scalar instructions; the
    /// [`crate::KernelBuilder`] validator enforces this.
    pub fn is_per_lane(self) -> bool {
        matches!(self, Special::TidX | Special::TidY | Special::LaneId)
    }
}

/// A source operand: a register, an immediate 32-bit pattern, or a special
/// hardware value.
///
/// Floating-point immediates are carried as their IEEE-754 bit pattern; use
/// [`Operand::from_f32`].
///
/// # Example
/// ```
/// use simt_isa::Operand;
/// let half = Operand::from_f32(0.5);
/// assert_eq!(half, Operand::Imm(0.5f32.to_bits()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A general-purpose register source.
    Reg(Reg),
    /// A 32-bit immediate (bit pattern).
    Imm(u32),
    /// A hardware special value.
    Special(Special),
}

impl Operand {
    /// Builds an immediate operand from an `f32`, preserving the bit pattern.
    ///
    /// # Example
    /// ```
    /// use simt_isa::Operand;
    /// assert_eq!(Operand::from_f32(1.0), Operand::Imm(0x3f80_0000));
    /// ```
    pub fn from_f32(v: f32) -> Self {
        Operand::Imm(v.to_bits())
    }

    /// Builds an immediate operand from an `i32`, preserving two's complement.
    ///
    /// # Example
    /// ```
    /// use simt_isa::Operand;
    /// assert_eq!(Operand::from_i32(-1), Operand::Imm(u32::MAX));
    /// ```
    pub fn from_i32(v: i32) -> Self {
        Operand::Imm(v as u32)
    }

    /// The register read by this operand, if any.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// Whether this operand is uniform across all lanes of a warp.
    ///
    /// Immediates and scalar registers are always uniform; vector registers
    /// never are (statically); specials are uniform unless per-lane.
    pub fn is_uniform(self) -> bool {
        match self {
            Operand::Reg(Reg::V(_)) => false,
            Operand::Reg(Reg::S(_)) | Operand::Imm(_) => true,
            Operand::Special(s) => !s.is_per_lane(),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Self {
        Operand::Reg(Reg::V(r))
    }
}

impl From<SReg> for Operand {
    fn from(r: SReg) -> Self {
        Operand::Reg(Reg::S(r))
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v)
    }
}

impl From<Special> for Operand {
    fn from(s: Special) -> Self {
        Operand::Special(s)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for SReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for PReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::V(r) => r.fmt(f),
            Reg::S(r) => r.fmt(f),
        }
    }
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Special::TidX => "%tid.x",
            Special::TidY => "%tid.y",
            Special::CtaIdX => "%ctaid.x",
            Special::CtaIdY => "%ctaid.y",
            Special::NTidX => "%ntid.x",
            Special::NTidY => "%ntid.y",
            Special::NCtaIdX => "%nctaid.x",
            Special::NCtaIdY => "%nctaid.y",
            Special::LaneId => "%laneid",
            Special::WarpId => "%warpid",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => r.fmt(f),
            Operand::Imm(v) => write!(f, "0x{v:x}"),
            Operand::Special(s) => s.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(VReg(12).to_string(), "v12");
        assert_eq!(SReg(3).to_string(), "s3");
        assert_eq!(PReg(0).to_string(), "p0");
        assert_eq!(Reg::V(VReg(1)).to_string(), "v1");
        assert_eq!(Operand::Imm(255).to_string(), "0xff");
        assert_eq!(Operand::Special(Special::TidX).to_string(), "%tid.x");
    }

    #[test]
    fn uniformity() {
        assert!(!Operand::from(VReg(0)).is_uniform());
        assert!(Operand::from(SReg(0)).is_uniform());
        assert!(Operand::Imm(7).is_uniform());
        assert!(Operand::Special(Special::CtaIdX).is_uniform());
        assert!(!Operand::Special(Special::TidX).is_uniform());
        assert!(!Operand::Special(Special::LaneId).is_uniform());
    }

    #[test]
    fn conversions() {
        let r: Reg = VReg(5).into();
        assert_eq!(r, Reg::V(VReg(5)));
        let o: Operand = SReg(2).into();
        assert_eq!(o, Operand::Reg(Reg::S(SReg(2))));
        assert_eq!(Operand::from(7u32), Operand::Imm(7));
        assert_eq!(Operand::from_i32(-2), Operand::Imm(0xffff_fffe));
    }

    #[test]
    fn reg_class_predicates() {
        assert!(Reg::V(VReg(0)).is_vector());
        assert!(!Reg::V(VReg(0)).is_scalar());
        assert!(Reg::S(SReg(0)).is_scalar());
        assert!(!Reg::S(SReg(0)).is_vector());
    }

    #[test]
    fn float_imm_roundtrip() {
        if let Operand::Imm(bits) = Operand::from_f32(3.25) {
            assert_eq!(f32::from_bits(bits), 3.25);
        } else {
            panic!("expected immediate");
        }
    }
}
