//! Error type for kernel construction and lowering.

use std::error::Error;
use std::fmt;

/// Errors raised while validating or lowering a kernel.
///
/// # Example
/// ```
/// use simt_isa::{KernelBuilder, IsaError};
/// let mut b = KernelBuilder::new("bad", 0);
/// b.if_end(); // unmatched
/// match b.build() {
///     Err(IsaError::UnmatchedControl { index, .. }) => assert_eq!(index, 0),
///     other => panic!("expected UnmatchedControl, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A structured-control instruction has no matching opener/closer.
    UnmatchedControl {
        /// Instruction index within the kernel body.
        index: usize,
        /// Human-readable description of what was expected.
        what: &'static str,
    },
    /// A control region opened but never closed.
    UnclosedControl {
        /// Index of the opening instruction.
        index: usize,
        /// Description of the unclosed construct.
        what: &'static str,
    },
    /// A register index is out of the declared range.
    RegisterOutOfRange {
        /// Instruction index.
        index: usize,
        /// Textual register name (e.g. `v17`).
        reg: String,
        /// Number of registers declared for that class.
        declared: u32,
    },
    /// A scalar (per-warp) instruction reads a non-uniform source.
    NonUniformScalarSource {
        /// Instruction index.
        index: usize,
        /// Textual operand form.
        operand: String,
    },
    /// The kernel declares more resources than the ISA permits.
    ResourceLimit {
        /// Which resource.
        what: &'static str,
        /// Requested amount.
        requested: u64,
        /// Maximum allowed.
        limit: u64,
    },
    /// The kernel body is empty.
    EmptyKernel,
    /// `Break` appears outside any loop.
    BreakOutsideLoop {
        /// Instruction index.
        index: usize,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UnmatchedControl { index, what } => {
                write!(f, "instruction {index}: unmatched control flow ({what})")
            }
            IsaError::UnclosedControl { index, what } => {
                write!(f, "instruction {index}: {what} is never closed")
            }
            IsaError::RegisterOutOfRange {
                index,
                reg,
                declared,
            } => write!(
                f,
                "instruction {index}: register {reg} out of range (declared {declared})"
            ),
            IsaError::NonUniformScalarSource { index, operand } => write!(
                f,
                "instruction {index}: scalar instruction reads non-uniform source {operand}"
            ),
            IsaError::ResourceLimit {
                what,
                requested,
                limit,
            } => {
                write!(f, "{what}: requested {requested} exceeds limit {limit}")
            }
            IsaError::EmptyKernel => f.write_str("kernel body is empty"),
            IsaError::BreakOutsideLoop { index } => {
                write!(f, "instruction {index}: break outside of a loop")
            }
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = IsaError::RegisterOutOfRange {
            index: 3,
            reg: "v9".into(),
            declared: 4,
        };
        assert_eq!(
            e.to_string(),
            "instruction 3: register v9 out of range (declared 4)"
        );
        assert!(IsaError::EmptyKernel.to_string().contains("empty"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<IsaError>();
    }
}
