//! Per-architecture lowering of MASS kernels.
//!
//! The reproduced study stresses that a fair cross-vendor comparison must
//! inject faults into the registers the *real* binary uses (SASS for
//! NVIDIA, Southern Islands ISA for AMD), not a virtual IR. MASS kernels
//! are authored once; [`lower`] then specializes them:
//!
//! * **Scalar-unit architectures** (AMD Southern Islands): scalar
//!   instructions execute once per wavefront against a physical scalar
//!   register file; vector registers hold only per-lane state.
//! * **Vector-only architectures** (NVIDIA G80/GT200/Fermi): every scalar
//!   register is rewritten onto a per-thread vector register appended after
//!   the kernel's own vector registers — exactly how uniform values occupy
//!   SASS registers, inflating the per-thread register footprint (and thus
//!   the fault-injection target surface).

use crate::cfg::ControlMap;
use crate::error::IsaError;
use crate::instr::Instr;
use crate::kernel::Kernel;
use crate::reg::{Operand, Reg, SReg, VReg};
use serde::{Deserialize, Serialize};

/// Architecture capabilities that affect lowering.
///
/// # Example
/// ```
/// use simt_isa::ArchCaps;
/// let si = ArchCaps { has_scalar_unit: true, warp_size: 64 };
/// let fermi = ArchCaps { has_scalar_unit: false, warp_size: 32 };
/// assert_ne!(si, fermi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArchCaps {
    /// Whether the architecture has a scalar register file and scalar
    /// execution unit (AMD Southern Islands: yes; NVIDIA families: no).
    pub has_scalar_unit: bool,
    /// Warp (NVIDIA) / wavefront (AMD) width in threads.
    pub warp_size: u32,
}

/// A kernel specialized for one architecture.
///
/// Obtained from [`lower`]; this is what the simulator executes and what
/// determines the per-thread register allocation (and therefore occupancy
/// and the fault-site space).
///
/// # Example
/// ```
/// use simt_isa::{KernelBuilder, ArchCaps, lower};
/// let mut b = KernelBuilder::new("k", 1);
/// let v = b.vreg();
/// b.mov(v, b.param(0));
/// b.exit();
/// let k = b.build()?;
/// let nv = lower(&k, ArchCaps { has_scalar_unit: false, warp_size: 32 })?;
/// let si = lower(&k, ArchCaps { has_scalar_unit: true, warp_size: 64 })?;
/// // On NVIDIA the parameter lives in a vector register per thread:
/// assert_eq!(nv.vregs_per_thread(), 2);
/// assert_eq!(nv.sregs_per_warp(), 0);
/// // On Southern Islands it stays in the scalar file:
/// assert_eq!(si.vregs_per_thread(), 1);
/// assert_eq!(si.sregs_per_warp(), 1);
/// # Ok::<(), simt_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoweredKernel {
    name: String,
    body: Vec<Instr>,
    control: ControlMap,
    caps: ArchCaps,
    vregs_per_thread: u16,
    sregs_per_warp: u16,
    num_pregs: u8,
    num_params: u16,
    shared_bytes: u32,
    /// Registers (class-resolved) holding each parameter after lowering.
    param_regs: Vec<Reg>,
}

impl LoweredKernel {
    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The lowered instruction stream.
    pub fn body(&self) -> &[Instr] {
        &self.body
    }

    /// The structured-control-flow map (indices match [`Self::body`]).
    pub fn control(&self) -> &ControlMap {
        &self.control
    }

    /// The capabilities this kernel was lowered for.
    pub fn caps(&self) -> ArchCaps {
        self.caps
    }

    /// Vector registers allocated per thread.
    pub fn vregs_per_thread(&self) -> u16 {
        self.vregs_per_thread
    }

    /// Scalar registers allocated per warp (0 on vector-only archs).
    pub fn sregs_per_warp(&self) -> u16 {
        self.sregs_per_warp
    }

    /// Predicate registers per lane.
    pub fn num_pregs(&self) -> u8 {
        self.num_pregs
    }

    /// Number of 32-bit kernel parameters.
    pub fn num_params(&self) -> u16 {
        self.num_params
    }

    /// Static shared memory per block in bytes.
    pub fn shared_bytes(&self) -> u32 {
        self.shared_bytes
    }

    /// The register that receives parameter `i` at launch.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_params()`.
    pub fn param_reg(&self, i: u16) -> Reg {
        self.param_regs[i as usize]
    }
}

fn map_reg(r: Reg, to_vector: bool, vreg_base: u16) -> Reg {
    match r {
        Reg::S(SReg(i)) if to_vector => Reg::V(VReg(vreg_base + i)),
        other => other,
    }
}

fn map_operand(op: Operand, to_vector: bool, vreg_base: u16) -> Operand {
    match op {
        Operand::Reg(r) => Operand::Reg(map_reg(r, to_vector, vreg_base)),
        other => other,
    }
}

/// Lowers a validated kernel for an architecture.
///
/// On scalar-unit architectures this is the identity mapping. On
/// vector-only architectures every `SReg(i)` becomes
/// `VReg(num_vregs + i)` and scalar instructions become per-lane vector
/// instructions (each lane computes the same uniform value, as SASS does).
///
/// # Errors
///
/// Returns [`IsaError::ResourceLimit`] if the combined vector-register
/// demand exceeds [`crate::kernel::MAX_VREGS`] on a vector-only
/// architecture.
pub fn lower(kernel: &Kernel, caps: ArchCaps) -> Result<LoweredKernel, IsaError> {
    let to_vector = !caps.has_scalar_unit;
    let vreg_base = kernel.num_vregs();
    let (vregs_per_thread, sregs_per_warp) = if to_vector {
        let total = vreg_base as u32 + kernel.num_sregs() as u32;
        if total > crate::kernel::MAX_VREGS as u32 {
            return Err(IsaError::ResourceLimit {
                what: "vector registers after scalar folding",
                requested: total as u64,
                limit: crate::kernel::MAX_VREGS as u64,
            });
        }
        (total as u16, 0)
    } else {
        (vreg_base, kernel.num_sregs())
    };

    let body: Vec<Instr> = kernel
        .body()
        .iter()
        .map(|ins| match *ins {
            Instr::Un { op, dst, a } => Instr::Un {
                op,
                dst: map_reg(dst, to_vector, vreg_base),
                a: map_operand(a, to_vector, vreg_base),
            },
            Instr::Bin { op, dst, a, b } => Instr::Bin {
                op,
                dst: map_reg(dst, to_vector, vreg_base),
                a: map_operand(a, to_vector, vreg_base),
                b: map_operand(b, to_vector, vreg_base),
            },
            Instr::Ter { op, dst, a, b, c } => Instr::Ter {
                op,
                dst: map_reg(dst, to_vector, vreg_base),
                a: map_operand(a, to_vector, vreg_base),
                b: map_operand(b, to_vector, vreg_base),
                c: map_operand(c, to_vector, vreg_base),
            },
            Instr::SetP {
                op,
                float,
                pd,
                a,
                b,
            } => Instr::SetP {
                op,
                float,
                pd,
                a: map_operand(a, to_vector, vreg_base),
                b: map_operand(b, to_vector, vreg_base),
            },
            Instr::Sel { p, dst, a, b } => Instr::Sel {
                p,
                dst: map_reg(dst, to_vector, vreg_base),
                a: map_operand(a, to_vector, vreg_base),
                b: map_operand(b, to_vector, vreg_base),
            },
            Instr::Ld {
                space,
                dst,
                addr,
                offset,
            } => Instr::Ld {
                space,
                dst: map_reg(dst, to_vector, vreg_base),
                addr: map_operand(addr, to_vector, vreg_base),
                offset,
            },
            Instr::St {
                space,
                addr,
                offset,
                src,
            } => Instr::St {
                space,
                addr: map_operand(addr, to_vector, vreg_base),
                offset,
                src: map_operand(src, to_vector, vreg_base),
            },
            Instr::Atom {
                space,
                op,
                dst,
                addr,
                offset,
                src,
            } => Instr::Atom {
                space,
                op,
                dst: map_reg(dst, to_vector, vreg_base),
                addr: map_operand(addr, to_vector, vreg_base),
                offset,
                src: map_operand(src, to_vector, vreg_base),
            },
            other => other,
        })
        .collect();

    let param_regs = (0..kernel.num_params())
        .map(|i| map_reg(Reg::S(SReg(i)), to_vector, vreg_base))
        .collect();

    Ok(LoweredKernel {
        name: kernel.name().to_string(),
        control: kernel.control().clone(),
        caps,
        body,
        vregs_per_thread,
        sregs_per_warp,
        num_pregs: kernel.num_pregs(),
        num_params: kernel.num_params(),
        shared_bytes: kernel.shared_bytes(),
        param_regs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::op::MemSpace;

    const NV: ArchCaps = ArchCaps {
        has_scalar_unit: false,
        warp_size: 32,
    };
    const SI: ArchCaps = ArchCaps {
        has_scalar_unit: true,
        warp_size: 64,
    };

    fn sample_kernel() -> Kernel {
        let mut b = KernelBuilder::new("sample", 2);
        let base = b.param(0);
        let n = b.param(1);
        let s = b.sreg();
        let gid = b.vreg();
        let addr = b.vreg();
        let p = b.preg();
        b.iadd(s, n, 1u32);
        b.global_tid_x(gid);
        b.isetp_lt_u(p, gid, s);
        b.if_begin(p);
        b.word_addr(addr, base, gid);
        b.st(MemSpace::Global, addr, gid);
        b.if_end();
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn identity_on_scalar_arch() {
        let k = sample_kernel();
        let l = lower(&k, SI).unwrap();
        assert_eq!(l.body(), k.body());
        assert_eq!(l.vregs_per_thread(), k.num_vregs());
        assert_eq!(l.sregs_per_warp(), k.num_sregs());
        assert_eq!(l.param_reg(0), Reg::S(SReg(0)));
        assert_eq!(l.name(), "sample");
        assert_eq!(l.caps(), SI);
    }

    #[test]
    fn scalar_folding_on_vector_arch() {
        let k = sample_kernel();
        let l = lower(&k, NV).unwrap();
        assert_eq!(l.sregs_per_warp(), 0);
        assert_eq!(
            l.vregs_per_thread(),
            k.num_vregs() + k.num_sregs(),
            "scalar registers fold into the vector file"
        );
        // s2 (the allocated sreg) became v{num_vregs + 2}.
        let folded = Reg::V(VReg(k.num_vregs() + 2));
        assert!(l.body().iter().any(|i| i.dst_reg() == Some(folded)));
        // No scalar registers remain anywhere.
        for ins in l.body() {
            if let Some(d) = ins.dst_reg() {
                assert!(d.is_vector());
            }
            for op in ins.src_operands() {
                if let Some(r) = op.reg() {
                    assert!(r.is_vector());
                }
            }
        }
        assert_eq!(l.param_reg(1), Reg::V(VReg(k.num_vregs() + 1)));
    }

    #[test]
    fn control_map_survives_lowering() {
        let k = sample_kernel();
        let l = lower(&k, NV).unwrap();
        assert_eq!(l.control(), k.control());
        assert_eq!(l.shared_bytes(), k.shared_bytes());
        assert_eq!(l.num_pregs(), k.num_pregs());
        assert_eq!(l.num_params(), 2);
    }

    #[test]
    fn folding_overflow_is_reported() {
        let mut b = KernelBuilder::new("big", 0);
        b.vregs(200);
        for _ in 0..80 {
            let s = b.sreg();
            b.mov(s, 0u32);
        }
        b.exit();
        let k = b.build().unwrap();
        assert!(lower(&k, SI).is_ok(), "fits with a scalar file");
        assert!(
            matches!(lower(&k, NV), Err(IsaError::ResourceLimit { .. })),
            "overflows when folded"
        );
    }
}
