//! Textual MASS assembly parser.
//!
//! Parses the format produced by [`crate::Kernel::disassemble`] (plus
//! `.kernel` / `.params` / `.shared` directives), so kernels can be
//! stored, diffed and re-loaded as text — the way the original tools
//! consume SASS / Southern Islands disassembly. Round-trip guarantee:
//! `parse_kernel(k.disassemble())` reproduces `k`'s instruction stream.
//!
//! ```text
//! .kernel saxpy
//! .params 4
//! .shared 64
//!     imad v0, %ctaid.x, %ntid.x, %tid.x
//!     setp.ult.s32 p0, v0, s2
//!     if.begin p0
//!         ld.global [v1] -> v2
//!         st.shared [v3+4] <- v2
//!     if.end
//!     exit
//! ```

use crate::error::IsaError;
use crate::instr::Instr;
use crate::kernel::{Kernel, KernelBuilder};
use crate::op::{AtomOp, BinOp, CmpOp, MemSpace, TerOp, UnOp};
use crate::reg::{Operand, PReg, Reg, SReg, Special, VReg};
use std::error::Error;
use std::fmt;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

impl From<(usize, String)> for ParseError {
    fn from((line, message): (usize, String)) -> Self {
        ParseError { line, message }
    }
}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: msg.into(),
    })
}

/// Strips comments (`//` and `;`) and line-number prefixes like `  12:`.
fn clean(line: &str) -> &str {
    let line = line.split("//").next().unwrap_or("");
    let line = line.split(';').next().unwrap_or("");
    let line = line.trim();
    // Disassembly prefixes every instruction with "NNN:".
    if let Some(colon) = line.find(':') {
        if line[..colon].trim().chars().all(|c| c.is_ascii_digit())
            && !line[..colon].trim().is_empty()
        {
            return line[colon + 1..].trim();
        }
    }
    line
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let tok = tok.trim();
    if let Some(n) = tok.strip_prefix('v') {
        if let Ok(i) = n.parse::<u16>() {
            return Ok(Reg::V(VReg(i)));
        }
    }
    if let Some(n) = tok.strip_prefix('s') {
        if let Ok(i) = n.parse::<u16>() {
            return Ok(Reg::S(SReg(i)));
        }
    }
    err(line, format!("expected register, got '{tok}'"))
}

fn parse_pred(tok: &str, line: usize) -> Result<(PReg, bool), ParseError> {
    let tok = tok.trim();
    let (tok, neg) = match tok.strip_prefix('!') {
        Some(rest) => (rest, true),
        None => (tok, false),
    };
    if let Some(n) = tok.strip_prefix('p') {
        if let Ok(i) = n.parse::<u8>() {
            return Ok((PReg(i), neg));
        }
    }
    err(line, format!("expected predicate, got '{tok}'"))
}

fn parse_special(tok: &str) -> Option<Special> {
    Some(match tok {
        "%tid.x" => Special::TidX,
        "%tid.y" => Special::TidY,
        "%ctaid.x" => Special::CtaIdX,
        "%ctaid.y" => Special::CtaIdY,
        "%ntid.x" => Special::NTidX,
        "%ntid.y" => Special::NTidY,
        "%nctaid.x" => Special::NCtaIdX,
        "%nctaid.y" => Special::NCtaIdY,
        "%laneid" => Special::LaneId,
        "%warpid" => Special::WarpId,
        _ => return None,
    })
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseError> {
    let tok = tok.trim();
    if let Some(s) = parse_special(tok) {
        return Ok(Operand::Special(s));
    }
    if tok.starts_with('v') || tok.starts_with('s') {
        if let Ok(r) = parse_reg(tok, line) {
            return Ok(Operand::Reg(r));
        }
    }
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        if let Ok(v) = u32::from_str_radix(hex, 16) {
            return Ok(Operand::Imm(v));
        }
    }
    if let Some(f) = tok.strip_suffix('f') {
        if let Ok(v) = f.parse::<f32>() {
            return Ok(Operand::from_f32(v));
        }
    }
    if let Ok(v) = tok.parse::<i64>() {
        if (i32::MIN as i64..=u32::MAX as i64).contains(&v) {
            return Ok(Operand::Imm(v as u32));
        }
    }
    err(line, format!("cannot parse operand '{tok}'"))
}

/// Parses `[base]`, `[base+off]`, `[base-off]`.
fn parse_addr(tok: &str, line: usize) -> Result<(Operand, i32), ParseError> {
    let tok = tok.trim();
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| ParseError {
            line,
            message: format!("expected [address], got '{tok}'"),
        })?;
    // Find a +/- separating base from offset (not a leading sign).
    for (i, c) in inner.char_indices().skip(1) {
        if c == '+' || c == '-' {
            let base = parse_operand(&inner[..i], line)?;
            let off: i32 = inner[i..].parse().map_err(|e| ParseError {
                line,
                message: format!("bad offset: {e}"),
            })?;
            return Ok((base, off));
        }
    }
    Ok((parse_operand(inner, line)?, 0))
}

fn split_args(rest: &str) -> Vec<&str> {
    rest.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn unop_of(m: &str) -> Option<UnOp> {
    Some(match m {
        "mov" => UnOp::Mov,
        "ineg" => UnOp::INeg,
        "iabs" => UnOp::IAbs,
        "not" => UnOp::Not,
        "fneg" => UnOp::FNeg,
        "fabs" => UnOp::FAbs,
        "fsqrt" => UnOp::FSqrt,
        "frcp" => UnOp::FRcp,
        "fexp2" => UnOp::FExp2,
        "flog2" => UnOp::FLog2,
        "i2f" => UnOp::I2F,
        "u2f" => UnOp::U2F,
        "f2i" => UnOp::F2I,
        "f2u" => UnOp::F2U,
        "clz" => UnOp::Clz,
        "popc" => UnOp::Popc,
        _ => return None,
    })
}

fn binop_of(m: &str) -> Option<BinOp> {
    Some(match m {
        "iadd" => BinOp::IAdd,
        "isub" => BinOp::ISub,
        "imul" => BinOp::IMul,
        "imulhi" => BinOp::IMulHi,
        "idiv" => BinOp::IDiv,
        "udiv" => BinOp::UDiv,
        "irem" => BinOp::IRem,
        "urem" => BinOp::URem,
        "imin" => BinOp::IMin,
        "imax" => BinOp::IMax,
        "umin" => BinOp::UMin,
        "umax" => BinOp::UMax,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "ashr" => BinOp::AShr,
        "fadd" => BinOp::FAdd,
        "fsub" => BinOp::FSub,
        "fmul" => BinOp::FMul,
        "fdiv" => BinOp::FDiv,
        "fmin" => BinOp::FMin,
        "fmax" => BinOp::FMax,
        _ => return None,
    })
}

fn cmp_of(m: &str) -> Option<CmpOp> {
    Some(match m {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "slt" => CmpOp::SLt,
        "sle" => CmpOp::SLe,
        "sgt" => CmpOp::SGt,
        "sge" => CmpOp::SGe,
        "ult" => CmpOp::ULt,
        "ule" => CmpOp::ULe,
        "ugt" => CmpOp::UGt,
        "uge" => CmpOp::UGe,
        _ => return None,
    })
}

fn atom_of(m: &str) -> Option<AtomOp> {
    Some(match m {
        "add" => AtomOp::Add,
        "min" => AtomOp::Min,
        "max" => AtomOp::Max,
        "exch" => AtomOp::Exch,
        _ => return None,
    })
}

fn space_of(m: &str) -> Option<MemSpace> {
    Some(match m {
        "global" => MemSpace::Global,
        "shared" => MemSpace::Shared,
        _ => return None,
    })
}

fn parse_instr(line_txt: &str, line: usize) -> Result<Instr, ParseError> {
    let (mnemonic, rest) = match line_txt.find(char::is_whitespace) {
        Some(i) => (&line_txt[..i], line_txt[i..].trim()),
        None => (line_txt, ""),
    };
    // Control flow and simple forms first.
    match mnemonic {
        "bar.sync" | "bar" => return Ok(Instr::Bar),
        "else" => return Ok(Instr::Else),
        "if.end" => return Ok(Instr::IfEnd),
        "loop.begin" => return Ok(Instr::LoopBegin),
        "loop.end" => return Ok(Instr::LoopEnd),
        "exit" => return Ok(Instr::Exit),
        "nop" => return Ok(Instr::Nop),
        "if.begin" => {
            let (p, negate) = parse_pred(rest, line)?;
            return Ok(Instr::IfBegin { p, negate });
        }
        "break" => {
            let (p, negate) = parse_pred(rest, line)?;
            return Ok(Instr::Break { p, negate });
        }
        _ => {}
    }

    let parts: Vec<&str> = mnemonic.split('.').collect();
    match parts.as_slice() {
        ["ld", space] => {
            // ld.<space> [addr] -> dst
            let space = space_of(space).ok_or_else(|| ParseError {
                line,
                message: format!("bad space '{space}'"),
            })?;
            let (addr_txt, dst_txt) = rest.split_once("->").ok_or_else(|| ParseError {
                line,
                message: "ld needs '[addr] -> dst'".into(),
            })?;
            let (addr, offset) = parse_addr(addr_txt, line)?;
            let dst = parse_reg(dst_txt, line)?;
            Ok(Instr::Ld {
                space,
                dst,
                addr,
                offset,
            })
        }
        ["st", space] => {
            let space = space_of(space).ok_or_else(|| ParseError {
                line,
                message: format!("bad space '{space}'"),
            })?;
            let (addr_txt, src_txt) = rest.split_once("<-").ok_or_else(|| ParseError {
                line,
                message: "st needs '[addr] <- src'".into(),
            })?;
            let (addr, offset) = parse_addr(addr_txt, line)?;
            let src = parse_operand(src_txt, line)?;
            Ok(Instr::St {
                space,
                addr,
                offset,
                src,
            })
        }
        ["atom", op, space] => {
            // atom.<op>.<space> dst, [addr], src
            let op = atom_of(op).ok_or_else(|| ParseError {
                line,
                message: format!("bad atom op '{op}'"),
            })?;
            let space = space_of(space).ok_or_else(|| ParseError {
                line,
                message: format!("bad space '{space}'"),
            })?;
            let args = split_args(rest);
            if args.len() != 3 {
                return err(line, "atom needs dst, [addr], src");
            }
            let dst = parse_reg(args[0], line)?;
            let (addr, offset) = parse_addr(args[1], line)?;
            let src = parse_operand(args[2], line)?;
            Ok(Instr::Atom {
                space,
                op,
                dst,
                addr,
                offset,
                src,
            })
        }
        ["setp", cmp, ty] => {
            let op = cmp_of(cmp).ok_or_else(|| ParseError {
                line,
                message: format!("bad compare '{cmp}'"),
            })?;
            let float = match *ty {
                "f32" => true,
                "s32" | "u32" => false,
                other => return err(line, format!("bad setp type '{other}'")),
            };
            let args = split_args(rest);
            if args.len() != 3 {
                return err(line, "setp needs pd, a, b");
            }
            let (pd, neg) = parse_pred(args[0], line)?;
            if neg {
                return err(line, "setp destination cannot be negated");
            }
            Ok(Instr::SetP {
                op,
                float,
                pd,
                a: parse_operand(args[1], line)?,
                b: parse_operand(args[2], line)?,
            })
        }
        ["sel"] => {
            // sel dst, a, b, p
            let args = split_args(rest);
            if args.len() != 4 {
                return err(line, "sel needs dst, a, b, p");
            }
            let (p, neg) = parse_pred(args[3], line)?;
            if neg {
                return err(line, "sel predicate cannot be negated");
            }
            Ok(Instr::Sel {
                p,
                dst: parse_reg(args[0], line)?,
                a: parse_operand(args[1], line)?,
                b: parse_operand(args[2], line)?,
            })
        }
        [m] => {
            let args = split_args(rest);
            if let Some(op) = unop_of(m) {
                if args.len() != 2 {
                    return err(line, format!("{m} needs dst, a"));
                }
                return Ok(Instr::Un {
                    op,
                    dst: parse_reg(args[0], line)?,
                    a: parse_operand(args[1], line)?,
                });
            }
            if let Some(op) = binop_of(m) {
                if args.len() != 3 {
                    return err(line, format!("{m} needs dst, a, b"));
                }
                return Ok(Instr::Bin {
                    op,
                    dst: parse_reg(args[0], line)?,
                    a: parse_operand(args[1], line)?,
                    b: parse_operand(args[2], line)?,
                });
            }
            let ter = match *m {
                "imad" => Some(TerOp::IMad),
                "ffma" => Some(TerOp::FFma),
                _ => None,
            };
            if let Some(op) = ter {
                if args.len() != 4 {
                    return err(line, format!("{m} needs dst, a, b, c"));
                }
                return Ok(Instr::Ter {
                    op,
                    dst: parse_reg(args[0], line)?,
                    a: parse_operand(args[1], line)?,
                    b: parse_operand(args[2], line)?,
                    c: parse_operand(args[3], line)?,
                });
            }
            err(line, format!("unknown mnemonic '{m}'"))
        }
        _ => err(line, format!("unknown mnemonic '{mnemonic}'")),
    }
}

/// Parses a full kernel from MASS assembly text.
///
/// Register counts are inferred from the highest index used; `.params`
/// and `.shared` directives declare the parameter count and static LDS
/// size. The result passes the same validation as builder-built kernels.
///
/// # Errors
///
/// [`ParseError`] for syntax problems; validation failures are reported
/// as a [`ParseError`] at line 0 wrapping the [`IsaError`].
///
/// # Example
/// ```
/// use simt_isa::parse::parse_kernel;
/// let k = parse_kernel(r"
///     .kernel iota
///     .params 1
///     imad v0, %ctaid.x, %ntid.x, %tid.x
///     imad v1, v0, 4, s0
///     st.global [v1] <- v0
///     exit
/// ").unwrap();
/// assert_eq!(k.name(), "iota");
/// assert_eq!(k.num_vregs(), 2);
/// assert_eq!(k.len(), 4);
/// ```
pub fn parse_kernel(text: &str) -> Result<Kernel, ParseError> {
    let mut name = String::from("anonymous");
    let mut params: u16 = 0;
    let mut shared: u32 = 0;
    let mut instrs: Vec<Instr> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = clean(raw);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".kernel") {
            let n = rest.trim();
            if n.is_empty() {
                return err(lineno, ".kernel needs a name");
            }
            name = n
                .split_whitespace()
                .next()
                .unwrap_or("anonymous")
                .to_string();
            continue;
        }
        if let Some(rest) = line.strip_prefix(".params") {
            params = rest.trim().parse().map_err(|e| ParseError {
                line: lineno,
                message: format!("bad .params: {e}"),
            })?;
            continue;
        }
        if let Some(rest) = line.strip_prefix(".shared") {
            shared = rest.trim().parse().map_err(|e| ParseError {
                line: lineno,
                message: format!("bad .shared: {e}"),
            })?;
            continue;
        }
        if line.starts_with('.') {
            return err(lineno, format!("unknown directive '{line}'"));
        }
        instrs.push(parse_instr(line, lineno)?);
    }

    // Infer register counts.
    let mut max_v: i32 = -1;
    let mut max_s: i32 = params as i32 - 1;
    let mut max_p: i32 = -1;
    let mut see_reg = |r: Reg| match r {
        Reg::V(VReg(i)) => max_v = max_v.max(i as i32),
        Reg::S(SReg(i)) => max_s = max_s.max(i as i32),
    };
    for ins in &instrs {
        if let Some(d) = ins.dst_reg() {
            see_reg(d);
        }
        for op in ins.src_operands() {
            if let Some(r) = op.reg() {
                see_reg(r);
            }
        }
        for p in [ins.src_pred(), ins.dst_pred()].into_iter().flatten() {
            max_p = max_p.max(p.0 as i32);
        }
    }

    let mut kb = KernelBuilder::new(name, params);
    kb.vregs((max_v + 1) as u16);
    for _ in params..(max_s + 1) as u16 {
        kb.sreg();
    }
    for _ in 0..(max_p + 1) as u8 {
        kb.preg();
    }
    kb.shared(shared);
    for ins in instrs {
        kb.push(ins);
    }
    kb.build().map_err(|e: IsaError| ParseError {
        line: 0,
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::op::MemSpace;
    use crate::reg::Special;

    #[test]
    fn parses_minimal_kernel() {
        let k = parse_kernel(".kernel k\nexit\n").unwrap();
        assert_eq!(k.name(), "k");
        assert_eq!(k.body(), &[Instr::Exit]);
    }

    #[test]
    fn parses_all_operand_forms() {
        let k = parse_kernel(
            ".params 1\n\
             mov v0, 0x10\n\
             mov v1, 42\n\
             mov v2, -1\n\
             mov v3, 1.5f\n\
             mov v4, %tid.x\n\
             mov v5, s0\n\
             exit",
        )
        .unwrap();
        assert_eq!(
            k.body()[0],
            Instr::Un {
                op: UnOp::Mov,
                dst: Reg::V(VReg(0)),
                a: Operand::Imm(16)
            }
        );
        assert_eq!(k.body()[1].src_operands()[0], Operand::Imm(42));
        assert_eq!(k.body()[2].src_operands()[0], Operand::Imm(u32::MAX));
        assert_eq!(k.body()[3].src_operands()[0], Operand::from_f32(1.5));
        assert_eq!(
            k.body()[4].src_operands()[0],
            Operand::Special(Special::TidX)
        );
        assert_eq!(k.num_vregs(), 6);
        assert_eq!(k.num_sregs(), 1);
    }

    #[test]
    fn parses_memory_and_atomics() {
        let k = parse_kernel(
            "ld.global [v0+8] -> v1\n\
             st.shared [v1-4] <- 0x7\n\
             atom.add.shared v2, [v1], 1\n\
             exit",
        )
        .unwrap();
        assert_eq!(
            k.body()[0],
            Instr::Ld {
                space: MemSpace::Global,
                dst: Reg::V(VReg(1)),
                addr: Operand::Reg(Reg::V(VReg(0))),
                offset: 8
            }
        );
        assert!(matches!(k.body()[1], Instr::St { offset: -4, .. }));
        assert!(matches!(
            k.body()[2],
            Instr::Atom {
                op: AtomOp::Add,
                ..
            }
        ));
    }

    #[test]
    fn parses_control_flow_with_negation() {
        let k = parse_kernel(
            "setp.ult.s32 p0, %tid.x, 0x10\n\
             if.begin !p0\n\
             nop\n\
             else\n\
             bar.sync\n\
             if.end\n\
             loop.begin\n\
             break p0\n\
             loop.end\n\
             exit",
        )
        .unwrap();
        assert_eq!(
            k.body()[1],
            Instr::IfBegin {
                p: PReg(0),
                negate: true
            }
        );
        assert_eq!(
            k.body()[7],
            Instr::Break {
                p: PReg(0),
                negate: false
            }
        );
        assert_eq!(k.control().num_loops(), 1);
    }

    #[test]
    fn comments_and_line_numbers_are_ignored() {
        let k = parse_kernel(
            "// a comment\n\
             .kernel c // trailing\n\
             0: nop ; another comment style\n\
             12:   exit\n",
        )
        .unwrap();
        assert_eq!(k.len(), 2);
        assert_eq!(k.name(), "c");
    }

    #[test]
    fn error_reports_line_number() {
        let e = parse_kernel("nop\nbogus v0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn validation_errors_surface() {
        // if.end without opener is caught by kernel validation.
        let e = parse_kernel("if.end\nexit").unwrap_err();
        assert!(e.message.contains("unmatched"));
    }

    #[test]
    fn roundtrip_disassemble_parse() {
        let mut kb = KernelBuilder::new("round", 2);
        let (a, n) = (kb.param(0), kb.param(1));
        let s = kb.sreg();
        let gid = kb.vreg();
        let v = kb.vreg();
        let addr = kb.vreg();
        let p = kb.preg();
        kb.iadd(s, n, 7u32);
        kb.global_tid_x(gid);
        kb.isetp_lt_u(p, gid, s);
        kb.if_begin(p);
        kb.word_addr(addr, a, gid);
        kb.ld(MemSpace::Global, v, addr);
        kb.ffma(v, v, Operand::from_f32(2.0), v);
        kb.st(MemSpace::Global, addr, v);
        kb.else_();
        kb.loop_begin();
        kb.brk_not(p);
        kb.loop_end();
        kb.if_end();
        kb.bar();
        kb.exit();
        let k = kb.build().unwrap();
        let text = format!(".params 2\n{}", k.disassemble());
        let k2 = parse_kernel(&text).unwrap();
        assert_eq!(k2.body(), k.body(), "instruction stream round-trips");
        assert_eq!(k2.num_vregs(), k.num_vregs());
        assert_eq!(k2.num_sregs(), k.num_sregs());
        assert_eq!(k2.num_pregs(), k.num_pregs());
    }
}
