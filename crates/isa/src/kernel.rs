//! Kernels and the validating [`KernelBuilder`].

use crate::cfg::ControlMap;
use crate::error::IsaError;
use crate::instr::Instr;
use crate::op::{AtomOp, BinOp, CmpOp, MemSpace, TerOp, UnOp};
use crate::reg::{Operand, PReg, Reg, SReg, Special, VReg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum vector registers a kernel may declare per thread.
pub const MAX_VREGS: u16 = 256;
/// Maximum scalar registers a kernel may declare per warp.
pub const MAX_SREGS: u16 = 104;
/// Maximum predicate registers per lane.
pub const MAX_PREGS: u8 = 8;
/// Maximum static shared memory per block, in bytes.
pub const MAX_SHARED_BYTES: u32 = 1 << 20;
/// Maximum kernel parameters (each one 32-bit word in `s0..`).
pub const MAX_PARAMS: u16 = 32;

/// A validated, immutable MASS kernel.
///
/// Produced by [`KernelBuilder::build`]; consumed (after
/// [`crate::lower::lower`]-ing) by the simulator.
///
/// # Example
/// ```
/// use simt_isa::KernelBuilder;
/// let mut b = KernelBuilder::new("noop", 0);
/// b.exit();
/// let k = b.build()?;
/// assert_eq!(k.name(), "noop");
/// assert_eq!(k.len(), 1);
/// # Ok::<(), simt_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    name: String,
    body: Vec<Instr>,
    num_vregs: u16,
    num_sregs: u16,
    num_pregs: u8,
    num_params: u16,
    shared_bytes: u32,
    control: ControlMap,
}

impl Kernel {
    /// Kernel name (for reports and disassembly headers).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction stream.
    pub fn body(&self) -> &[Instr] {
        &self.body
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the body is empty (never true for built kernels).
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Declared per-thread vector registers.
    pub fn num_vregs(&self) -> u16 {
        self.num_vregs
    }

    /// Declared per-warp scalar registers (including parameter registers).
    pub fn num_sregs(&self) -> u16 {
        self.num_sregs
    }

    /// Declared per-lane predicate registers.
    pub fn num_pregs(&self) -> u8 {
        self.num_pregs
    }

    /// Number of 32-bit kernel parameters (preloaded into `s0..`).
    pub fn num_params(&self) -> u16 {
        self.num_params
    }

    /// Static shared-memory (LDS) footprint per block, in bytes.
    pub fn shared_bytes(&self) -> u32 {
        self.shared_bytes
    }

    /// The pre-resolved structured-control-flow map.
    pub fn control(&self) -> &ControlMap {
        &self.control
    }

    /// Renders the kernel as human-readable assembly.
    ///
    /// # Example
    /// ```
    /// use simt_isa::KernelBuilder;
    /// let mut b = KernelBuilder::new("k", 0);
    /// b.exit();
    /// let text = b.build()?.disassemble();
    /// assert!(text.contains(".kernel k"));
    /// assert!(text.contains("exit"));
    /// # Ok::<(), simt_isa::IsaError>(())
    /// ```
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        use fmt::Write;
        let _ = writeln!(
            out,
            ".kernel {} // vregs={} sregs={} pregs={} params={} shared={}B",
            self.name,
            self.num_vregs,
            self.num_sregs,
            self.num_pregs,
            self.num_params,
            self.shared_bytes
        );
        let mut indent = 1usize;
        for (i, ins) in self.body.iter().enumerate() {
            let closes = matches!(ins, Instr::Else | Instr::IfEnd | Instr::LoopEnd);
            if closes {
                indent = indent.saturating_sub(1);
            }
            let _ = writeln!(out, "{i:4}: {}{}", "  ".repeat(indent), ins);
            if matches!(ins, Instr::IfBegin { .. } | Instr::Else | Instr::LoopBegin) {
                indent += 1;
            }
        }
        out
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disassemble())
    }
}

/// Incrementally builds and validates a [`Kernel`].
///
/// Registers are allocated through [`KernelBuilder::vreg`],
/// [`KernelBuilder::sreg`] and [`KernelBuilder::preg`]; the `n` kernel
/// parameters occupy scalar registers `s0..s{n-1}` and are retrieved with
/// [`KernelBuilder::param`]. Emission methods append one instruction each
/// and mirror the ISA mnemonics.
///
/// # Example
/// ```
/// use simt_isa::{KernelBuilder, MemSpace};
/// // out[gid] = in[gid] * 2.0
/// let mut b = KernelBuilder::new("scale", 2);
/// let (src, dst) = (b.param(0), b.param(1));
/// let gid = b.vreg();
/// let addr = b.vreg();
/// let v = b.vreg();
/// b.global_tid_x(gid);
/// b.shl(addr, gid, 2u32);
/// b.iadd(addr, addr, src);
/// b.ld(MemSpace::Global, v, addr);
/// b.fmul(v, v, 2.0f32.to_bits());
/// b.isub(addr, addr, src);
/// b.iadd(addr, addr, dst);
/// b.st(MemSpace::Global, addr, v);
/// let k = b.build()?;
/// assert_eq!(k.num_params(), 2);
/// # Ok::<(), simt_isa::IsaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    body: Vec<Instr>,
    next_vreg: u16,
    next_sreg: u16,
    next_preg: u8,
    num_params: u16,
    shared_bytes: u32,
}

impl KernelBuilder {
    /// Starts a kernel with `num_params` 32-bit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `num_params` exceeds [`MAX_PARAMS`].
    pub fn new(name: impl Into<String>, num_params: u16) -> Self {
        assert!(
            num_params <= MAX_PARAMS,
            "kernel declares {num_params} params, limit is {MAX_PARAMS}"
        );
        KernelBuilder {
            name: name.into(),
            body: Vec::new(),
            next_vreg: 0,
            next_sreg: num_params,
            next_preg: 0,
            num_params,
            shared_bytes: 0,
        }
    }

    /// The scalar register holding parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a declared parameter index.
    pub fn param(&self, i: u16) -> SReg {
        assert!(i < self.num_params, "parameter {i} not declared");
        SReg(i)
    }

    /// Allocates a fresh per-thread vector register.
    pub fn vreg(&mut self) -> VReg {
        let r = VReg(self.next_vreg);
        self.next_vreg += 1;
        r
    }

    /// Allocates `n` consecutive vector registers, returning the first.
    pub fn vregs(&mut self, n: u16) -> VReg {
        let r = VReg(self.next_vreg);
        self.next_vreg += n;
        r
    }

    /// Allocates a fresh per-warp scalar register.
    pub fn sreg(&mut self) -> SReg {
        let r = SReg(self.next_sreg);
        self.next_sreg += 1;
        r
    }

    /// Allocates a fresh predicate register.
    pub fn preg(&mut self) -> PReg {
        let r = PReg(self.next_preg);
        self.next_preg += 1;
        r
    }

    /// Declares `bytes` of static shared memory (accumulative).
    ///
    /// Returns the byte offset of the newly declared region so multiple
    /// logical arrays can share the LDS.
    pub fn shared(&mut self, bytes: u32) -> u32 {
        let off = self.shared_bytes;
        self.shared_bytes += bytes;
        off
    }

    /// Appends a raw instruction (escape hatch; still validated by
    /// [`KernelBuilder::build`]).
    pub fn push(&mut self, ins: Instr) -> &mut Self {
        self.body.push(ins);
        self
    }

    // ---- unary ----

    fn un(&mut self, op: UnOp, dst: impl Into<Reg>, a: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Un {
            op,
            dst: dst.into(),
            a: a.into(),
        })
    }

    /// `dst = a` (register/immediate/special copy).
    pub fn mov(&mut self, dst: impl Into<Reg>, a: impl Into<Operand>) -> &mut Self {
        self.un(UnOp::Mov, dst, a)
    }

    /// `dst = f32 immediate` (convenience over [`KernelBuilder::mov`]).
    pub fn movf(&mut self, dst: impl Into<Reg>, v: f32) -> &mut Self {
        self.un(UnOp::Mov, dst, Operand::from_f32(v))
    }

    /// `dst = -a` (two's complement).
    pub fn ineg(&mut self, dst: impl Into<Reg>, a: impl Into<Operand>) -> &mut Self {
        self.un(UnOp::INeg, dst, a)
    }

    /// `dst = |a|` (signed).
    pub fn iabs(&mut self, dst: impl Into<Reg>, a: impl Into<Operand>) -> &mut Self {
        self.un(UnOp::IAbs, dst, a)
    }

    /// `dst = !a` (bitwise).
    pub fn not(&mut self, dst: impl Into<Reg>, a: impl Into<Operand>) -> &mut Self {
        self.un(UnOp::Not, dst, a)
    }

    /// `dst = -a` (float).
    pub fn fneg(&mut self, dst: impl Into<Reg>, a: impl Into<Operand>) -> &mut Self {
        self.un(UnOp::FNeg, dst, a)
    }

    /// `dst = |a|` (float).
    pub fn fabs(&mut self, dst: impl Into<Reg>, a: impl Into<Operand>) -> &mut Self {
        self.un(UnOp::FAbs, dst, a)
    }

    /// `dst = sqrt(a)`.
    pub fn fsqrt(&mut self, dst: impl Into<Reg>, a: impl Into<Operand>) -> &mut Self {
        self.un(UnOp::FSqrt, dst, a)
    }

    /// `dst = 1/a`.
    pub fn frcp(&mut self, dst: impl Into<Reg>, a: impl Into<Operand>) -> &mut Self {
        self.un(UnOp::FRcp, dst, a)
    }

    /// `dst = 2^a`.
    pub fn fexp2(&mut self, dst: impl Into<Reg>, a: impl Into<Operand>) -> &mut Self {
        self.un(UnOp::FExp2, dst, a)
    }

    /// `dst = log2(a)`.
    pub fn flog2(&mut self, dst: impl Into<Reg>, a: impl Into<Operand>) -> &mut Self {
        self.un(UnOp::FLog2, dst, a)
    }

    /// `dst = (f32) (i32) a`.
    pub fn i2f(&mut self, dst: impl Into<Reg>, a: impl Into<Operand>) -> &mut Self {
        self.un(UnOp::I2F, dst, a)
    }

    /// `dst = (f32) (u32) a`.
    pub fn u2f(&mut self, dst: impl Into<Reg>, a: impl Into<Operand>) -> &mut Self {
        self.un(UnOp::U2F, dst, a)
    }

    /// `dst = (i32) (f32) a` (truncating, saturating).
    pub fn f2i(&mut self, dst: impl Into<Reg>, a: impl Into<Operand>) -> &mut Self {
        self.un(UnOp::F2I, dst, a)
    }

    /// `dst = (u32) (f32) a` (truncating, saturating).
    pub fn f2u(&mut self, dst: impl Into<Reg>, a: impl Into<Operand>) -> &mut Self {
        self.un(UnOp::F2U, dst, a)
    }

    // ---- binary ----

    fn bin(
        &mut self,
        op: BinOp,
        dst: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Instr::Bin {
            op,
            dst: dst.into(),
            a: a.into(),
            b: b.into(),
        })
    }

    /// `dst = a + b` (wrapping).
    pub fn iadd(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::IAdd, d, a, b)
    }

    /// `dst = a - b` (wrapping).
    pub fn isub(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::ISub, d, a, b)
    }

    /// `dst = a * b` (low 32 bits).
    pub fn imul(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::IMul, d, a, b)
    }

    /// `dst = a / b` (signed; 0 on b == 0).
    pub fn idiv(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::IDiv, d, a, b)
    }

    /// `dst = a / b` (unsigned; 0 on b == 0).
    pub fn udiv(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::UDiv, d, a, b)
    }

    /// `dst = a % b` (unsigned; 0 on b == 0).
    pub fn urem(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::URem, d, a, b)
    }

    /// `dst = min(a, b)` (signed).
    pub fn imin(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::IMin, d, a, b)
    }

    /// `dst = max(a, b)` (signed).
    pub fn imax(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::IMax, d, a, b)
    }

    /// `dst = a & b`.
    pub fn and(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::And, d, a, b)
    }

    /// `dst = a | b`.
    pub fn or(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::Or, d, a, b)
    }

    /// `dst = a ^ b`.
    pub fn xor(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::Xor, d, a, b)
    }

    /// `dst = a << b`.
    pub fn shl(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::Shl, d, a, b)
    }

    /// `dst = a >> b` (logical).
    pub fn shr(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::Shr, d, a, b)
    }

    /// `dst = a >> b` (arithmetic).
    pub fn ashr(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::AShr, d, a, b)
    }

    /// Alias of [`KernelBuilder::shl`] with an immediate shift.
    pub fn shl_imm(&mut self, d: impl Into<Reg>, a: impl Into<Operand>, sh: u32) -> &mut Self {
        self.bin(BinOp::Shl, d, a, Operand::Imm(sh))
    }

    /// `dst = a + b` (float).
    pub fn fadd(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::FAdd, d, a, b)
    }

    /// `dst = a - b` (float).
    pub fn fsub(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::FSub, d, a, b)
    }

    /// `dst = a * b` (float).
    pub fn fmul(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::FMul, d, a, b)
    }

    /// `dst = a / b` (float).
    pub fn fdiv(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::FDiv, d, a, b)
    }

    /// `dst = min(a, b)` (float).
    pub fn fmin(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::FMin, d, a, b)
    }

    /// `dst = max(a, b)` (float).
    pub fn fmax(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.bin(BinOp::FMax, d, a, b)
    }

    // ---- ternary ----

    /// `dst = a * b + c` (integer, wrapping).
    pub fn imad(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Instr::Ter {
            op: TerOp::IMad,
            dst: d.into(),
            a: a.into(),
            b: b.into(),
            c: c.into(),
        })
    }

    /// `dst = fma(a, b, c)` (float).
    pub fn ffma(
        &mut self,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Instr::Ter {
            op: TerOp::FFma,
            dst: d.into(),
            a: a.into(),
            b: b.into(),
            c: c.into(),
        })
    }

    // ---- predicates / select ----

    /// Integer comparison into predicate `pd`.
    pub fn isetp(
        &mut self,
        op: CmpOp,
        pd: PReg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Instr::SetP {
            op,
            float: false,
            pd,
            a: a.into(),
            b: b.into(),
        })
    }

    /// Float comparison into predicate `pd`.
    pub fn fsetp(
        &mut self,
        op: CmpOp,
        pd: PReg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Instr::SetP {
            op,
            float: true,
            pd,
            a: a.into(),
            b: b.into(),
        })
    }

    /// `pd = (u32) a < (u32) b` — the ubiquitous bounds check.
    pub fn isetp_lt_u(
        &mut self,
        pd: PReg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.isetp(CmpOp::ULt, pd, a, b)
    }

    /// `dst = p ? a : b`.
    pub fn sel(
        &mut self,
        p: PReg,
        d: impl Into<Reg>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Instr::Sel {
            p,
            dst: d.into(),
            a: a.into(),
            b: b.into(),
        })
    }

    // ---- memory ----

    /// `dst = space[addr]`.
    pub fn ld(
        &mut self,
        space: MemSpace,
        dst: impl Into<Reg>,
        addr: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Instr::Ld {
            space,
            dst: dst.into(),
            addr: addr.into(),
            offset: 0,
        })
    }

    /// `dst = space[addr + offset]`.
    pub fn ld_off(
        &mut self,
        space: MemSpace,
        dst: impl Into<Reg>,
        addr: impl Into<Operand>,
        offset: i32,
    ) -> &mut Self {
        self.push(Instr::Ld {
            space,
            dst: dst.into(),
            addr: addr.into(),
            offset,
        })
    }

    /// `space[addr] = src`.
    pub fn st(
        &mut self,
        space: MemSpace,
        addr: impl Into<Operand>,
        src: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Instr::St {
            space,
            addr: addr.into(),
            offset: 0,
            src: src.into(),
        })
    }

    /// `space[addr + offset] = src`.
    pub fn st_off(
        &mut self,
        space: MemSpace,
        addr: impl Into<Operand>,
        offset: i32,
        src: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Instr::St {
            space,
            addr: addr.into(),
            offset,
            src: src.into(),
        })
    }

    /// Atomic `op` on `space[addr]`, old value into `dst`.
    pub fn atom(
        &mut self,
        space: MemSpace,
        op: AtomOp,
        dst: impl Into<Reg>,
        addr: impl Into<Operand>,
        src: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Instr::Atom {
            space,
            op,
            dst: dst.into(),
            addr: addr.into(),
            offset: 0,
            src: src.into(),
        })
    }

    /// Block-wide barrier.
    pub fn bar(&mut self) -> &mut Self {
        self.push(Instr::Bar)
    }

    // ---- control flow ----

    /// Opens an `if` region for lanes where `p` holds.
    pub fn if_begin(&mut self, p: PReg) -> &mut Self {
        self.push(Instr::IfBegin { p, negate: false })
    }

    /// Opens an `if` region for lanes where `p` does **not** hold.
    pub fn if_begin_not(&mut self, p: PReg) -> &mut Self {
        self.push(Instr::IfBegin { p, negate: true })
    }

    /// Switches to the complementary lane set of the open `if`.
    pub fn else_(&mut self) -> &mut Self {
        self.push(Instr::Else)
    }

    /// Closes the open `if` region.
    pub fn if_end(&mut self) -> &mut Self {
        self.push(Instr::IfEnd)
    }

    /// Opens a loop region.
    pub fn loop_begin(&mut self) -> &mut Self {
        self.push(Instr::LoopBegin)
    }

    /// Lanes where `p` holds leave the loop.
    pub fn brk(&mut self, p: PReg) -> &mut Self {
        self.push(Instr::Break { p, negate: false })
    }

    /// Lanes where `p` does **not** hold leave the loop.
    pub fn brk_not(&mut self, p: PReg) -> &mut Self {
        self.push(Instr::Break { p, negate: true })
    }

    /// Closes the open loop region.
    pub fn loop_end(&mut self) -> &mut Self {
        self.push(Instr::LoopEnd)
    }

    /// Terminates the thread.
    pub fn exit(&mut self) -> &mut Self {
        self.push(Instr::Exit)
    }

    /// Emits a no-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    // ---- idioms ----

    /// `dst = %ctaid.x * %ntid.x + %tid.x` — the global 1-D thread id.
    pub fn global_tid_x(&mut self, dst: impl Into<Reg>) -> &mut Self {
        let dst = dst.into();
        self.push(Instr::Ter {
            op: TerOp::IMad,
            dst,
            a: Operand::Special(Special::CtaIdX),
            b: Operand::Special(Special::NTidX),
            c: Operand::Special(Special::TidX),
        })
    }

    /// `dst = %ctaid.y * %ntid.y + %tid.y` — the global y thread id.
    pub fn global_tid_y(&mut self, dst: impl Into<Reg>) -> &mut Self {
        let dst = dst.into();
        self.push(Instr::Ter {
            op: TerOp::IMad,
            dst,
            a: Operand::Special(Special::CtaIdY),
            b: Operand::Special(Special::NTidY),
            c: Operand::Special(Special::TidY),
        })
    }

    /// Byte address of word `index` in the buffer whose base (byte) address
    /// is in `base`: `dst = base + index * 4`.
    pub fn word_addr(
        &mut self,
        dst: impl Into<Reg>,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Instr::Ter {
            op: TerOp::IMad,
            dst: dst.into(),
            a: index.into(),
            b: Operand::Imm(4),
            c: base.into(),
        })
    }

    /// Finalizes the kernel, running full validation.
    ///
    /// # Errors
    ///
    /// Returns an [`IsaError`] if the body is empty, a structured control
    /// region is malformed, a register is out of its declared range, a
    /// scalar instruction reads a non-uniform source, or a resource exceeds
    /// its ISA limit.
    pub fn build(&self) -> Result<Kernel, IsaError> {
        if self.body.is_empty() {
            return Err(IsaError::EmptyKernel);
        }
        if self.next_vreg > MAX_VREGS {
            return Err(IsaError::ResourceLimit {
                what: "vector registers",
                requested: self.next_vreg as u64,
                limit: MAX_VREGS as u64,
            });
        }
        if self.next_sreg > MAX_SREGS {
            return Err(IsaError::ResourceLimit {
                what: "scalar registers",
                requested: self.next_sreg as u64,
                limit: MAX_SREGS as u64,
            });
        }
        if self.next_preg > MAX_PREGS {
            return Err(IsaError::ResourceLimit {
                what: "predicate registers",
                requested: self.next_preg as u64,
                limit: MAX_PREGS as u64,
            });
        }
        if self.shared_bytes > MAX_SHARED_BYTES {
            return Err(IsaError::ResourceLimit {
                what: "shared memory",
                requested: self.shared_bytes as u64,
                limit: MAX_SHARED_BYTES as u64,
            });
        }
        let control = ControlMap::build(&self.body)?;
        self.validate_registers()?;
        self.validate_scalar_uniformity()?;
        Ok(Kernel {
            name: self.name.clone(),
            body: self.body.clone(),
            num_vregs: self.next_vreg,
            num_sregs: self.next_sreg,
            num_pregs: self.next_preg,
            num_params: self.num_params,
            shared_bytes: self.shared_bytes,
            control,
        })
    }

    fn check_reg(&self, index: usize, r: Reg) -> Result<(), IsaError> {
        let ok = match r {
            Reg::V(VReg(i)) => i < self.next_vreg,
            Reg::S(SReg(i)) => i < self.next_sreg,
        };
        if ok {
            Ok(())
        } else {
            let declared = match r {
                Reg::V(_) => self.next_vreg as u32,
                Reg::S(_) => self.next_sreg as u32,
            };
            Err(IsaError::RegisterOutOfRange {
                index,
                reg: r.to_string(),
                declared,
            })
        }
    }

    fn check_preg(&self, index: usize, p: PReg) -> Result<(), IsaError> {
        if p.0 < self.next_preg {
            Ok(())
        } else {
            Err(IsaError::RegisterOutOfRange {
                index,
                reg: p.to_string(),
                declared: self.next_preg as u32,
            })
        }
    }

    fn validate_registers(&self) -> Result<(), IsaError> {
        for (i, ins) in self.body.iter().enumerate() {
            if let Some(d) = ins.dst_reg() {
                self.check_reg(i, d)?;
            }
            for op in ins.src_operands() {
                if let Some(r) = op.reg() {
                    self.check_reg(i, r)?;
                }
            }
            if let Some(p) = ins.src_pred() {
                self.check_preg(i, p)?;
            }
            if let Some(p) = ins.dst_pred() {
                self.check_preg(i, p)?;
            }
        }
        Ok(())
    }

    fn validate_scalar_uniformity(&self) -> Result<(), IsaError> {
        for (i, ins) in self.body.iter().enumerate() {
            if !ins.is_scalar() {
                continue;
            }
            // Sel and Atom read per-lane state; they may not target scalars.
            if matches!(ins, Instr::Sel { .. } | Instr::Atom { .. }) {
                return Err(IsaError::NonUniformScalarSource {
                    index: i,
                    operand: "per-lane predicate/atomic".into(),
                });
            }
            for op in ins.src_operands() {
                if !op.is_uniform() {
                    return Err(IsaError::NonUniformScalarSource {
                        index: i,
                        operand: op.to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_introspect() {
        let mut b = KernelBuilder::new("k", 2);
        let s = b.sreg();
        let v = b.vreg();
        let p = b.preg();
        b.iadd(s, b.param(0), b.param(1));
        b.mov(v, s);
        b.isetp_lt_u(p, v, 10u32);
        b.exit();
        let k = b.build().unwrap();
        assert_eq!(k.num_sregs(), 3); // 2 params + 1 allocated
        assert_eq!(k.num_vregs(), 1);
        assert_eq!(k.num_pregs(), 1);
        assert_eq!(k.len(), 4);
        assert!(!k.is_empty());
    }

    #[test]
    fn empty_kernel_rejected() {
        assert_eq!(
            KernelBuilder::new("e", 0).build(),
            Err(IsaError::EmptyKernel)
        );
    }

    #[test]
    fn out_of_range_register_rejected() {
        let mut b = KernelBuilder::new("k", 0);
        b.mov(VReg(5), Operand::Imm(0)); // v5 never allocated
        let err = b.build().unwrap_err();
        assert!(matches!(err, IsaError::RegisterOutOfRange { .. }));
    }

    #[test]
    fn out_of_range_predicate_rejected() {
        let mut b = KernelBuilder::new("k", 0);
        let v = b.vreg();
        b.isetp(CmpOp::Eq, PReg(0), v, 0u32); // p0 never allocated
        assert!(matches!(
            b.build().unwrap_err(),
            IsaError::RegisterOutOfRange { .. }
        ));
    }

    #[test]
    fn scalar_reading_vector_rejected() {
        let mut b = KernelBuilder::new("k", 0);
        let s = b.sreg();
        let v = b.vreg();
        b.mov(v, 0u32);
        b.iadd(s, v, 1u32);
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            IsaError::NonUniformScalarSource { index: 1, .. }
        ));
    }

    #[test]
    fn scalar_reading_tid_rejected() {
        let mut b = KernelBuilder::new("k", 0);
        let s = b.sreg();
        b.mov(s, Special::TidX);
        assert!(matches!(
            b.build().unwrap_err(),
            IsaError::NonUniformScalarSource { .. }
        ));
    }

    #[test]
    fn scalar_reading_ctaid_allowed() {
        let mut b = KernelBuilder::new("k", 0);
        let s = b.sreg();
        b.mov(s, Special::CtaIdX);
        b.exit();
        assert!(b.build().is_ok());
    }

    #[test]
    fn scalar_sel_rejected() {
        let mut b = KernelBuilder::new("k", 0);
        let s = b.sreg();
        let p = b.preg();
        let v = b.vreg();
        b.isetp(CmpOp::Eq, p, v, 0u32);
        b.sel(p, s, 0u32, 1u32);
        assert!(matches!(
            b.build().unwrap_err(),
            IsaError::NonUniformScalarSource { .. }
        ));
    }

    #[test]
    fn vreg_limit_enforced() {
        let mut b = KernelBuilder::new("k", 0);
        b.vregs(MAX_VREGS + 1);
        b.exit();
        assert!(matches!(
            b.build().unwrap_err(),
            IsaError::ResourceLimit {
                what: "vector registers",
                ..
            }
        ));
    }

    #[test]
    fn shared_offsets_accumulate() {
        let mut b = KernelBuilder::new("k", 0);
        let a = b.shared(64);
        let c = b.shared(128);
        assert_eq!(a, 0);
        assert_eq!(c, 64);
        b.exit();
        assert_eq!(b.build().unwrap().shared_bytes(), 192);
    }

    #[test]
    fn params_occupy_low_sregs() {
        let mut b = KernelBuilder::new("k", 3);
        assert_eq!(b.param(2), SReg(2));
        assert_eq!(b.sreg(), SReg(3));
    }

    #[test]
    #[should_panic(expected = "parameter 1 not declared")]
    fn param_out_of_range_panics() {
        let b = KernelBuilder::new("k", 1);
        let _ = b.param(1);
    }

    #[test]
    fn disassembly_is_indented_and_complete() {
        let mut b = KernelBuilder::new("dis", 0);
        let p = b.preg();
        let v = b.vreg();
        b.isetp(CmpOp::Eq, p, v, 0u32);
        b.if_begin(p);
        b.mov(v, 1u32);
        b.else_();
        b.mov(v, 2u32);
        b.if_end();
        b.exit();
        let k = b.build().unwrap();
        let text = k.disassemble();
        assert!(text.contains(".kernel dis"));
        assert_eq!(text.lines().count(), 1 + k.len());
        assert!(text.contains("if.begin p0"));
        assert_eq!(format!("{k}"), text);
    }

    #[test]
    fn control_map_is_built() {
        let mut b = KernelBuilder::new("cm", 0);
        let p = b.preg();
        let v = b.vreg();
        b.loop_begin();
        b.isetp(CmpOp::UGe, p, v, 4u32);
        b.brk(p);
        b.iadd(v, v, 1u32);
        b.loop_end();
        b.exit();
        let k = b.build().unwrap();
        assert_eq!(k.control().num_loops(), 1);
        assert_eq!(k.control().loop_info(0).unwrap().end_idx, 4);
    }
}
