//! Operation kinds of the MASS ISA: ALU ops, comparisons, atomics and
//! memory spaces.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Unary ALU operations.
///
/// Integer ops interpret the source as `i32`/`u32` bit patterns; float ops
/// as IEEE-754 `f32`.
///
/// # Example
/// ```
/// use simt_isa::UnOp;
/// assert_eq!(UnOp::FSqrt.to_string(), "fsqrt");
/// assert!(UnOp::FSqrt.is_sfu());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Copy the source.
    Mov,
    /// Two's complement negation.
    INeg,
    /// Integer absolute value (`i32`).
    IAbs,
    /// Bitwise complement.
    Not,
    /// Float negation.
    FNeg,
    /// Float absolute value.
    FAbs,
    /// Float square root (SFU).
    FSqrt,
    /// Float reciprocal (SFU).
    FRcp,
    /// Float base-2 exponential (SFU).
    FExp2,
    /// Float base-2 logarithm (SFU).
    FLog2,
    /// Signed `i32` to `f32` conversion.
    I2F,
    /// Unsigned `u32` to `f32` conversion.
    U2F,
    /// `f32` to signed `i32` conversion (truncating, saturating).
    F2I,
    /// `f32` to unsigned `u32` conversion (truncating, saturating).
    F2U,
    /// Count of leading zeros.
    Clz,
    /// Population count.
    Popc,
}

impl UnOp {
    /// Whether the op executes on the special-function unit (longer latency).
    pub fn is_sfu(self) -> bool {
        matches!(self, UnOp::FSqrt | UnOp::FRcp | UnOp::FExp2 | UnOp::FLog2)
    }

    /// Whether the op is a floating-point operation.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            UnOp::FNeg
                | UnOp::FAbs
                | UnOp::FSqrt
                | UnOp::FRcp
                | UnOp::FExp2
                | UnOp::FLog2
                | UnOp::I2F
                | UnOp::U2F
        )
    }
}

/// Binary ALU operations.
///
/// # Example
/// ```
/// use simt_isa::BinOp;
/// assert_eq!(BinOp::IAdd.to_string(), "iadd");
/// assert!(BinOp::FDiv.is_sfu());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Integer addition (wrapping).
    IAdd,
    /// Integer subtraction (wrapping).
    ISub,
    /// Integer multiplication, low 32 bits (wrapping).
    IMul,
    /// Integer multiplication, high 32 bits of the signed 64-bit product.
    IMulHi,
    /// Signed integer division (0 on divide-by-zero, like GPU emulation).
    IDiv,
    /// Unsigned integer division (0 on divide-by-zero).
    UDiv,
    /// Signed integer remainder (0 on divide-by-zero).
    IRem,
    /// Unsigned integer remainder (0 on divide-by-zero).
    URem,
    /// Signed minimum.
    IMin,
    /// Signed maximum.
    IMax,
    /// Unsigned minimum.
    UMin,
    /// Unsigned maximum.
    UMax,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left (shift amount masked to 5 bits).
    Shl,
    /// Logical shift right (shift amount masked to 5 bits).
    Shr,
    /// Arithmetic shift right (shift amount masked to 5 bits).
    AShr,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division (SFU-class latency).
    FDiv,
    /// Float minimum (IEEE `minNum` semantics).
    FMin,
    /// Float maximum (IEEE `maxNum` semantics).
    FMax,
}

impl BinOp {
    /// Whether the op executes on the special-function unit.
    pub fn is_sfu(self) -> bool {
        matches!(self, BinOp::FDiv)
    }

    /// Whether the op is a multiply/divide-class integer op (longer latency
    /// than simple integer ALU on most of the modelled architectures).
    pub fn is_imul_class(self) -> bool {
        matches!(
            self,
            BinOp::IMul | BinOp::IMulHi | BinOp::IDiv | BinOp::UDiv | BinOp::IRem | BinOp::URem
        )
    }

    /// Whether the op is a floating-point operation.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FMin | BinOp::FMax
        )
    }
}

/// Ternary ALU operations.
///
/// # Example
/// ```
/// use simt_isa::TerOp;
/// assert_eq!(TerOp::FFma.to_string(), "ffma");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TerOp {
    /// Integer multiply-add: `d = a * b + c` (wrapping).
    IMad,
    /// Float fused multiply-add: `d = a * b + c`.
    FFma,
}

/// Comparison operators for `SetP` instructions.
///
/// Integer comparisons come in signed (`S*`) and unsigned (`U*`) flavours;
/// float comparisons are ordered (a comparison with NaN yields `false`).
///
/// # Example
/// ```
/// use simt_isa::CmpOp;
/// assert_eq!(CmpOp::SLt.to_string(), "slt");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal (bit pattern for ints, IEEE equality for floats).
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    SLt,
    /// Signed less-or-equal.
    SLe,
    /// Signed greater-than.
    SGt,
    /// Signed greater-or-equal.
    SGe,
    /// Unsigned less-than.
    ULt,
    /// Unsigned less-or-equal.
    ULe,
    /// Unsigned greater-than.
    UGt,
    /// Unsigned greater-or-equal.
    UGe,
}

/// Read-modify-write operations for `Atom` instructions.
///
/// # Example
/// ```
/// use simt_isa::AtomOp;
/// assert_eq!(AtomOp::Add.to_string(), "add");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AtomOp {
    /// Integer add.
    Add,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Exchange (store source, return old value).
    Exch,
}

/// Addressable memory spaces.
///
/// # Example
/// ```
/// use simt_isa::MemSpace;
/// assert_eq!(MemSpace::Shared.to_string(), "shared");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// Device (global) memory, byte-addressed across the whole arena.
    Global,
    /// Per-block local/shared memory (LDS), byte-addressed from 0.
    Shared,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Mov => "mov",
            UnOp::INeg => "ineg",
            UnOp::IAbs => "iabs",
            UnOp::Not => "not",
            UnOp::FNeg => "fneg",
            UnOp::FAbs => "fabs",
            UnOp::FSqrt => "fsqrt",
            UnOp::FRcp => "frcp",
            UnOp::FExp2 => "fexp2",
            UnOp::FLog2 => "flog2",
            UnOp::I2F => "i2f",
            UnOp::U2F => "u2f",
            UnOp::F2I => "f2i",
            UnOp::F2U => "f2u",
            UnOp::Clz => "clz",
            UnOp::Popc => "popc",
        };
        f.write_str(s)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::IAdd => "iadd",
            BinOp::ISub => "isub",
            BinOp::IMul => "imul",
            BinOp::IMulHi => "imulhi",
            BinOp::IDiv => "idiv",
            BinOp::UDiv => "udiv",
            BinOp::IRem => "irem",
            BinOp::URem => "urem",
            BinOp::IMin => "imin",
            BinOp::IMax => "imax",
            BinOp::UMin => "umin",
            BinOp::UMax => "umax",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::AShr => "ashr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::FMin => "fmin",
            BinOp::FMax => "fmax",
        };
        f.write_str(s)
    }
}

impl fmt::Display for TerOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TerOp::IMad => "imad",
            TerOp::FFma => "ffma",
        })
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::SLt => "slt",
            CmpOp::SLe => "sle",
            CmpOp::SGt => "sgt",
            CmpOp::SGe => "sge",
            CmpOp::ULt => "ult",
            CmpOp::ULe => "ule",
            CmpOp::UGt => "ugt",
            CmpOp::UGe => "uge",
        };
        f.write_str(s)
    }
}

impl fmt::Display for AtomOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AtomOp::Add => "add",
            AtomOp::Min => "min",
            AtomOp::Max => "max",
            AtomOp::Exch => "exch",
        })
    }
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
        })
    }
}

/// Evaluates a unary op on a 32-bit value.
///
/// This is the single source of truth for functional semantics; the
/// simulator calls it per active lane.
///
/// # Example
/// ```
/// use simt_isa::op::{eval_unop};
/// use simt_isa::UnOp;
/// assert_eq!(eval_unop(UnOp::INeg, 1), u32::MAX);
/// assert_eq!(eval_unop(UnOp::I2F, 2), 2.0f32.to_bits());
/// ```
pub fn eval_unop(op: UnOp, a: u32) -> u32 {
    match op {
        UnOp::Mov => a,
        UnOp::INeg => (a as i32).wrapping_neg() as u32,
        UnOp::IAbs => (a as i32).wrapping_abs() as u32,
        UnOp::Not => !a,
        UnOp::FNeg => (-f32::from_bits(a)).to_bits(),
        UnOp::FAbs => f32::from_bits(a).abs().to_bits(),
        UnOp::FSqrt => f32::from_bits(a).sqrt().to_bits(),
        UnOp::FRcp => (1.0 / f32::from_bits(a)).to_bits(),
        UnOp::FExp2 => f32::from_bits(a).exp2().to_bits(),
        UnOp::FLog2 => f32::from_bits(a).log2().to_bits(),
        UnOp::I2F => (a as i32 as f32).to_bits(),
        UnOp::U2F => (a as f32).to_bits(),
        UnOp::F2I => {
            let v = f32::from_bits(a);
            if v.is_nan() {
                0
            } else {
                (v as i64).clamp(i32::MIN as i64, i32::MAX as i64) as i32 as u32
            }
        }
        UnOp::F2U => {
            let v = f32::from_bits(a);
            if v.is_nan() {
                0
            } else {
                (v as i64).clamp(0, u32::MAX as i64) as u32
            }
        }
        UnOp::Clz => a.leading_zeros(),
        UnOp::Popc => a.count_ones(),
    }
}

/// Evaluates a binary op on two 32-bit values.
///
/// Integer division and remainder by zero produce 0 (GPUs emulate integer
/// division in software and never fault on it).
///
/// # Example
/// ```
/// use simt_isa::op::eval_binop;
/// use simt_isa::BinOp;
/// assert_eq!(eval_binop(BinOp::IAdd, 2, 3), 5);
/// assert_eq!(eval_binop(BinOp::UDiv, 7, 0), 0);
/// ```
pub fn eval_binop(op: BinOp, a: u32, b: u32) -> u32 {
    match op {
        BinOp::IAdd => a.wrapping_add(b),
        BinOp::ISub => a.wrapping_sub(b),
        BinOp::IMul => a.wrapping_mul(b),
        BinOp::IMulHi => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        BinOp::IDiv => {
            if b == 0 {
                0
            } else {
                (a as i32).wrapping_div(b as i32) as u32
            }
        }
        BinOp::UDiv => a.checked_div(b).unwrap_or(0),
        BinOp::IRem => {
            if b == 0 {
                0
            } else {
                (a as i32).wrapping_rem(b as i32) as u32
            }
        }
        BinOp::URem => {
            if b == 0 {
                0
            } else {
                a % b
            }
        }
        BinOp::IMin => (a as i32).min(b as i32) as u32,
        BinOp::IMax => (a as i32).max(b as i32) as u32,
        BinOp::UMin => a.min(b),
        BinOp::UMax => a.max(b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b & 31),
        BinOp::Shr => a.wrapping_shr(b & 31),
        BinOp::AShr => ((a as i32).wrapping_shr(b & 31)) as u32,
        BinOp::FAdd => (f32::from_bits(a) + f32::from_bits(b)).to_bits(),
        BinOp::FSub => (f32::from_bits(a) - f32::from_bits(b)).to_bits(),
        BinOp::FMul => (f32::from_bits(a) * f32::from_bits(b)).to_bits(),
        BinOp::FDiv => (f32::from_bits(a) / f32::from_bits(b)).to_bits(),
        BinOp::FMin => f32::from_bits(a).min(f32::from_bits(b)).to_bits(),
        BinOp::FMax => f32::from_bits(a).max(f32::from_bits(b)).to_bits(),
    }
}

/// Evaluates a ternary op.
///
/// # Example
/// ```
/// use simt_isa::op::eval_terop;
/// use simt_isa::TerOp;
/// assert_eq!(eval_terop(TerOp::IMad, 2, 3, 4), 10);
/// ```
pub fn eval_terop(op: TerOp, a: u32, b: u32, c: u32) -> u32 {
    match op {
        TerOp::IMad => a.wrapping_mul(b).wrapping_add(c),
        TerOp::FFma => f32::from_bits(a)
            .mul_add(f32::from_bits(b), f32::from_bits(c))
            .to_bits(),
    }
}

/// Evaluates a comparison, returning the predicate value.
///
/// Float flavours are selected by `float`; ordered semantics (NaN compares
/// false except `Ne`).
///
/// # Example
/// ```
/// use simt_isa::op::eval_cmp;
/// use simt_isa::CmpOp;
/// assert!(eval_cmp(CmpOp::SLt, (-1i32) as u32, 1, false));
/// assert!(!eval_cmp(CmpOp::ULt, (-1i32) as u32, 1, false));
/// assert!(eval_cmp(CmpOp::SLt, 1.0f32.to_bits(), 2.0f32.to_bits(), true));
/// ```
pub fn eval_cmp(op: CmpOp, a: u32, b: u32, float: bool) -> bool {
    if float {
        let (x, y) = (f32::from_bits(a), f32::from_bits(b));
        match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::SLt | CmpOp::ULt => x < y,
            CmpOp::SLe | CmpOp::ULe => x <= y,
            CmpOp::SGt | CmpOp::UGt => x > y,
            CmpOp::SGe | CmpOp::UGe => x >= y,
        }
    } else {
        let (sa, sb) = (a as i32, b as i32);
        match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::SLt => sa < sb,
            CmpOp::SLe => sa <= sb,
            CmpOp::SGt => sa > sb,
            CmpOp::SGe => sa >= sb,
            CmpOp::ULt => a < b,
            CmpOp::ULe => a <= b,
            CmpOp::UGt => a > b,
            CmpOp::UGe => a >= b,
        }
    }
}

/// Applies an atomic read-modify-write op, returning `(new, old)`.
///
/// # Example
/// ```
/// use simt_isa::op::eval_atom;
/// use simt_isa::AtomOp;
/// assert_eq!(eval_atom(AtomOp::Add, 10, 5), (15, 10));
/// assert_eq!(eval_atom(AtomOp::Exch, 10, 5), (5, 10));
/// ```
pub fn eval_atom(op: AtomOp, old: u32, src: u32) -> (u32, u32) {
    let new = match op {
        AtomOp::Add => old.wrapping_add(src),
        AtomOp::Min => (old as i32).min(src as i32) as u32,
        AtomOp::Max => (old as i32).max(src as i32) as u32,
        AtomOp::Exch => src,
    };
    (new, old)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arith() {
        assert_eq!(eval_binop(BinOp::IAdd, u32::MAX, 1), 0);
        assert_eq!(eval_binop(BinOp::ISub, 0, 1), u32::MAX);
        assert_eq!(eval_binop(BinOp::IMul, 3, 7), 21);
        assert_eq!(eval_binop(BinOp::IMulHi, 0x8000_0000, 2), u32::MAX);
        assert_eq!(eval_binop(BinOp::IDiv, (-9i32) as u32, 2), (-4i32) as u32);
        assert_eq!(eval_binop(BinOp::IDiv, 5, 0), 0);
        assert_eq!(eval_binop(BinOp::IRem, 9, 0), 0);
        assert_eq!(eval_binop(BinOp::URem, 9, 4), 1);
    }

    #[test]
    fn minmax_signedness() {
        assert_eq!(
            eval_binop(BinOp::IMin, (-1i32) as u32, 1),
            (-1i32) as u32,
            "signed min"
        );
        assert_eq!(
            eval_binop(BinOp::UMin, (-1i32) as u32, 1),
            1,
            "unsigned min"
        );
        assert_eq!(eval_binop(BinOp::IMax, (-1i32) as u32, 1), 1);
        assert_eq!(eval_binop(BinOp::UMax, (-1i32) as u32, 1), u32::MAX);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(eval_binop(BinOp::Shl, 1, 33), 2, "shift masked mod 32");
        assert_eq!(eval_binop(BinOp::Shr, 0x8000_0000, 31), 1);
        assert_eq!(
            eval_binop(BinOp::AShr, 0x8000_0000, 31),
            u32::MAX,
            "arithmetic shift sign-extends"
        );
    }

    #[test]
    fn float_arith() {
        let f = |v: f32| v.to_bits();
        assert_eq!(eval_binop(BinOp::FAdd, f(1.5), f(2.5)), f(4.0));
        assert_eq!(eval_binop(BinOp::FDiv, f(1.0), f(0.0)), f(f32::INFINITY));
        assert_eq!(eval_terop(TerOp::FFma, f(2.0), f(3.0), f(1.0)), f(7.0));
        assert_eq!(eval_unop(UnOp::FSqrt, f(9.0)), f(3.0));
        assert_eq!(eval_unop(UnOp::FRcp, f(4.0)), f(0.25));
    }

    #[test]
    fn conversions_saturate() {
        assert_eq!(eval_unop(UnOp::F2I, 3e10f32.to_bits()), i32::MAX as u32);
        assert_eq!(eval_unop(UnOp::F2I, (-3e10f32).to_bits()), i32::MIN as u32);
        assert_eq!(eval_unop(UnOp::F2U, (-1.0f32).to_bits()), 0);
        assert_eq!(eval_unop(UnOp::F2I, f32::NAN.to_bits()), 0);
        assert_eq!(eval_unop(UnOp::I2F, (-3i32) as u32), (-3.0f32).to_bits());
        assert_eq!(eval_unop(UnOp::U2F, u32::MAX), (u32::MAX as f32).to_bits());
    }

    #[test]
    fn bit_ops() {
        assert_eq!(eval_unop(UnOp::Clz, 1), 31);
        assert_eq!(eval_unop(UnOp::Popc, 0xff), 8);
        assert_eq!(eval_unop(UnOp::Not, 0), u32::MAX);
    }

    #[test]
    fn comparisons() {
        assert!(eval_cmp(CmpOp::Eq, 5, 5, false));
        assert!(eval_cmp(CmpOp::Ne, 5, 6, false));
        assert!(eval_cmp(CmpOp::SGe, 0, (-1i32) as u32, false));
        assert!(!eval_cmp(CmpOp::UGe, 0, (-1i32) as u32, false));
        // NaN: ordered comparisons false, Ne true.
        let nan = f32::NAN.to_bits();
        assert!(!eval_cmp(CmpOp::Eq, nan, nan, true));
        assert!(eval_cmp(CmpOp::Ne, nan, nan, true));
        assert!(!eval_cmp(CmpOp::SLt, nan, 0, true));
    }

    #[test]
    fn atomics() {
        assert_eq!(eval_atom(AtomOp::Min, 3, (-7i32) as u32).0, (-7i32) as u32);
        assert_eq!(eval_atom(AtomOp::Max, 3, 9), (9, 3));
        assert_eq!(eval_atom(AtomOp::Add, u32::MAX, 1).0, 0);
    }

    #[test]
    fn op_classes() {
        assert!(UnOp::FExp2.is_sfu());
        assert!(!UnOp::Mov.is_sfu());
        assert!(BinOp::IDiv.is_imul_class());
        assert!(!BinOp::IAdd.is_imul_class());
        assert!(BinOp::FMin.is_float());
        assert!(UnOp::I2F.is_float());
    }
}
