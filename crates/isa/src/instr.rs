//! The MASS instruction set.

use crate::op::{AtomOp, BinOp, CmpOp, MemSpace, TerOp, UnOp};
use crate::reg::{Operand, PReg, Reg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single MASS instruction.
///
/// Data instructions name an explicit destination register whose class
/// (vector vs scalar) decides whether the instruction executes per lane or
/// once per warp. Control flow is *structured*: `IfBegin`/`Else`/`IfEnd`
/// and `LoopBegin`/`Break`/`LoopEnd` nest properly (the
/// [`crate::KernelBuilder`] validator rejects malformed nesting) and drive
/// the simulator's SIMT reconvergence stack.
///
/// # Example
/// ```
/// use simt_isa::{Instr, VReg, Operand, BinOp};
/// let i = Instr::Bin {
///     op: BinOp::IAdd,
///     dst: VReg(0).into(),
///     a: VReg(1).into(),
///     b: Operand::Imm(4),
/// };
/// assert_eq!(i.to_string(), "iadd v0, v1, 0x4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// Unary ALU operation: `dst = op(a)`.
    Un {
        /// Operation.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        a: Operand,
    },
    /// Binary ALU operation: `dst = op(a, b)`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left source.
        a: Operand,
        /// Right source.
        b: Operand,
    },
    /// Ternary ALU operation: `dst = op(a, b, c)`.
    Ter {
        /// Operation.
        op: TerOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
        /// Third source.
        c: Operand,
    },
    /// Predicate-setting comparison: `pd = cmp(a, b)`.
    SetP {
        /// Comparison operator.
        op: CmpOp,
        /// Interpret operands as `f32`.
        float: bool,
        /// Destination predicate.
        pd: PReg,
        /// Left source.
        a: Operand,
        /// Right source.
        b: Operand,
    },
    /// Predicated select: `dst = p ? a : b`.
    Sel {
        /// Steering predicate.
        p: PReg,
        /// Destination register.
        dst: Reg,
        /// Value when `p` is true.
        a: Operand,
        /// Value when `p` is false.
        b: Operand,
    },
    /// Load a 32-bit word: `dst = space[addr + offset]`.
    Ld {
        /// Memory space.
        space: MemSpace,
        /// Destination register.
        dst: Reg,
        /// Byte address base.
        addr: Operand,
        /// Constant byte offset.
        offset: i32,
    },
    /// Store a 32-bit word: `space[addr + offset] = src`.
    St {
        /// Memory space.
        space: MemSpace,
        /// Byte address base.
        addr: Operand,
        /// Constant byte offset.
        offset: i32,
        /// Value to store.
        src: Operand,
    },
    /// Atomic read-modify-write on a 32-bit word; the old value is written
    /// to `dst`.
    Atom {
        /// Memory space (global or shared).
        space: MemSpace,
        /// Read-modify-write operation.
        op: AtomOp,
        /// Receives the pre-op value.
        dst: Reg,
        /// Byte address base.
        addr: Operand,
        /// Constant byte offset.
        offset: i32,
        /// Operation source value.
        src: Operand,
    },
    /// Block-wide barrier (`bar.sync`). Exited warps do not participate.
    Bar,
    /// Open a divergent region for lanes where the predicate holds
    /// (inverted when `negate` is set).
    IfBegin {
        /// Steering predicate.
        p: PReg,
        /// Take the branch where `p` is false instead.
        negate: bool,
    },
    /// Switch a divergent region to the complementary lane set.
    Else,
    /// Close a divergent region and reconverge.
    IfEnd,
    /// Open a loop region (lanes iterate until all have broken out).
    LoopBegin,
    /// Leave the enclosing loop for lanes where the predicate holds
    /// (inverted when `negate` is set).
    Break {
        /// Steering predicate.
        p: PReg,
        /// Break where `p` is false instead.
        negate: bool,
    },
    /// Close a loop region: jump back while any lane remains active.
    LoopEnd,
    /// Terminate the thread (all remaining lanes of the warp).
    Exit,
    /// No operation (issue slot filler).
    Nop,
}

impl Instr {
    /// The destination general-purpose register, if the instruction writes
    /// one.
    ///
    /// # Example
    /// ```
    /// use simt_isa::{Instr, VReg, Reg, Operand, UnOp};
    /// let i = Instr::Un { op: UnOp::Mov, dst: VReg(1).into(), a: Operand::Imm(0) };
    /// assert_eq!(i.dst_reg(), Some(Reg::V(VReg(1))));
    /// assert_eq!(Instr::Bar.dst_reg(), None);
    /// ```
    pub fn dst_reg(&self) -> Option<Reg> {
        match *self {
            Instr::Un { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Ter { dst, .. }
            | Instr::Sel { dst, .. }
            | Instr::Ld { dst, .. }
            | Instr::Atom { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// All register-source operands of the instruction.
    ///
    /// # Example
    /// ```
    /// use simt_isa::{Instr, VReg, Operand, BinOp};
    /// let i = Instr::Bin { op: BinOp::IAdd, dst: VReg(0).into(),
    ///                      a: VReg(1).into(), b: Operand::Imm(1) };
    /// assert_eq!(i.src_operands().len(), 2);
    /// ```
    pub fn src_operands(&self) -> Vec<Operand> {
        let mut v = Vec::new();
        self.for_each_src(|op| v.push(op));
        v
    }

    /// Calls `f` for every source operand without allocating (hot-path
    /// variant of [`Instr::src_operands`], used by the simulator's
    /// scoreboard check).
    pub fn for_each_src<F: FnMut(Operand)>(&self, mut f: F) {
        match *self {
            Instr::Un { a, .. } => f(a),
            Instr::Bin { a, b, .. } | Instr::SetP { a, b, .. } | Instr::Sel { a, b, .. } => {
                f(a);
                f(b);
            }
            Instr::Ter { a, b, c, .. } => {
                f(a);
                f(b);
                f(c);
            }
            Instr::Ld { addr, .. } => f(addr),
            Instr::St { addr, src, .. } | Instr::Atom { addr, src, .. } => {
                f(addr);
                f(src);
            }
            _ => {}
        }
    }

    /// The predicate register read by the instruction, if any.
    pub fn src_pred(&self) -> Option<PReg> {
        match *self {
            Instr::Sel { p, .. } | Instr::IfBegin { p, .. } | Instr::Break { p, .. } => Some(p),
            _ => None,
        }
    }

    /// The predicate register written by the instruction, if any.
    pub fn dst_pred(&self) -> Option<PReg> {
        match *self {
            Instr::SetP { pd, .. } => Some(pd),
            _ => None,
        }
    }

    /// Whether the instruction accesses memory (load/store/atomic).
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Ld { .. } | Instr::St { .. } | Instr::Atom { .. }
        )
    }

    /// Whether the instruction is structured control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::IfBegin { .. }
                | Instr::Else
                | Instr::IfEnd
                | Instr::LoopBegin
                | Instr::Break { .. }
                | Instr::LoopEnd
                | Instr::Exit
        )
    }

    /// Whether the instruction executes once per warp (scalar destination)
    /// rather than per lane.
    ///
    /// Control flow, barriers and stores are lane-wise by definition; a data
    /// instruction is scalar iff its destination is a scalar register.
    pub fn is_scalar(&self) -> bool {
        matches!(self.dst_reg(), Some(Reg::S(_)))
    }
}

fn fmt_mem(
    f: &mut fmt::Formatter<'_>,
    name: &str,
    space: MemSpace,
    addr: &Operand,
    offset: i32,
) -> fmt::Result {
    if offset == 0 {
        write!(f, "{name}.{space} [{addr}]")
    } else if offset > 0 {
        write!(f, "{name}.{space} [{addr}+{offset}]")
    } else {
        write!(f, "{name}.{space} [{addr}{offset}]")
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Un { op, dst, a } => write!(f, "{op} {dst}, {a}"),
            Instr::Bin { op, dst, a, b } => write!(f, "{op} {dst}, {a}, {b}"),
            Instr::Ter { op, dst, a, b, c } => write!(f, "{op} {dst}, {a}, {b}, {c}"),
            Instr::SetP {
                op,
                float,
                pd,
                a,
                b,
            } => {
                let ty = if *float { "f32" } else { "s32" };
                write!(f, "setp.{op}.{ty} {pd}, {a}, {b}")
            }
            Instr::Sel { p, dst, a, b } => write!(f, "sel {dst}, {a}, {b}, {p}"),
            Instr::Ld {
                space,
                dst,
                addr,
                offset,
            } => {
                fmt_mem(f, "ld", *space, addr, *offset)?;
                write!(f, " -> {dst}")
            }
            Instr::St {
                space,
                addr,
                offset,
                src,
            } => {
                fmt_mem(f, "st", *space, addr, *offset)?;
                write!(f, " <- {src}")
            }
            Instr::Atom {
                space,
                op,
                dst,
                addr,
                offset,
                src,
            } => {
                write!(f, "atom.{op}.{space} {dst}, ")?;
                if *offset == 0 {
                    write!(f, "[{addr}], {src}")
                } else {
                    write!(f, "[{addr}+{offset}], {src}")
                }
            }
            Instr::Bar => f.write_str("bar.sync"),
            Instr::IfBegin { p, negate } => {
                if *negate {
                    write!(f, "if.begin !{p}")
                } else {
                    write!(f, "if.begin {p}")
                }
            }
            Instr::Else => f.write_str("else"),
            Instr::IfEnd => f.write_str("if.end"),
            Instr::LoopBegin => f.write_str("loop.begin"),
            Instr::Break { p, negate } => {
                if *negate {
                    write!(f, "break !{p}")
                } else {
                    write!(f, "break {p}")
                }
            }
            Instr::LoopEnd => f.write_str("loop.end"),
            Instr::Exit => f.write_str("exit"),
            Instr::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{SReg, VReg};

    #[test]
    fn display() {
        let i = Instr::Ld {
            space: MemSpace::Shared,
            dst: VReg(2).into(),
            addr: VReg(1).into(),
            offset: 8,
        };
        assert_eq!(i.to_string(), "ld.shared [v1+8] -> v2");
        let s = Instr::St {
            space: MemSpace::Global,
            addr: VReg(0).into(),
            offset: -4,
            src: Operand::Imm(1),
        };
        assert_eq!(s.to_string(), "st.global [v0-4] <- 0x1");
        assert_eq!(Instr::Bar.to_string(), "bar.sync");
        assert_eq!(
            Instr::IfBegin {
                p: PReg(0),
                negate: true
            }
            .to_string(),
            "if.begin !p0"
        );
        let sp = Instr::SetP {
            op: CmpOp::ULt,
            float: false,
            pd: PReg(1),
            a: VReg(0).into(),
            b: Operand::Imm(16),
        };
        assert_eq!(sp.to_string(), "setp.ult.s32 p1, v0, 0x10");
    }

    #[test]
    fn dst_and_sources() {
        let i = Instr::Atom {
            space: MemSpace::Shared,
            op: AtomOp::Add,
            dst: VReg(3).into(),
            addr: VReg(1).into(),
            offset: 0,
            src: VReg(2).into(),
        };
        assert_eq!(i.dst_reg(), Some(Reg::V(VReg(3))));
        assert_eq!(i.src_operands().len(), 2);
        assert!(i.is_mem());
        assert!(!i.is_control());
    }

    #[test]
    fn scalar_classification() {
        let sc = Instr::Bin {
            op: BinOp::IAdd,
            dst: SReg(0).into(),
            a: SReg(1).into(),
            b: Operand::Imm(1),
        };
        assert!(sc.is_scalar());
        let ve = Instr::Bin {
            op: BinOp::IAdd,
            dst: VReg(0).into(),
            a: SReg(1).into(),
            b: Operand::Imm(1),
        };
        assert!(!ve.is_scalar());
    }

    #[test]
    fn predicates() {
        let sp = Instr::SetP {
            op: CmpOp::Eq,
            float: false,
            pd: PReg(2),
            a: VReg(0).into(),
            b: Operand::Imm(0),
        };
        assert_eq!(sp.dst_pred(), Some(PReg(2)));
        assert_eq!(sp.src_pred(), None);
        let br = Instr::Break {
            p: PReg(1),
            negate: false,
        };
        assert_eq!(br.src_pred(), Some(PReg(1)));
        assert!(br.is_control());
    }
}
