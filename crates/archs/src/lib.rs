//! # gpu-archs — the four GPU designs of the ISPASS 2017 study
//!
//! Device models for:
//!
//! | Device | Microarchitecture | ISA model |
//! |---|---|---|
//! | [`hd_radeon_7970`] | AMD Southern Islands (Tahiti) | scalar + vector files, wavefront 64 |
//! | [`quadro_fx_5600`] | NVIDIA G80 | vector-only, warp 32, uncached global loads |
//! | [`quadro_fx_5800`] | NVIDIA GT200 | vector-only, warp 32, uncached global loads |
//! | [`geforce_gtx_480`] | NVIDIA Fermi (GF100) | vector-only, warp 32, L1+L2 |
//!
//! Geometry (SM/CU counts, register-file and shared-memory sizes, clocks,
//! warp widths, scheduler generations, coalescing rules and cache
//! hierarchies) follows the public specifications of each device and the
//! configurations shipped with GPGPU-Sim 3.2.2 / Multi2Sim 4.2, the
//! simulators the original paper builds GUFI and SIFI on.
//!
//! Raw FIT rates per Mbit are *technology-scaled defaults* (the paper does
//! not publish its raw rates); override them via the mutable fields if you
//! have better numbers — EPF shapes are insensitive to a common factor.
//!
//! # Example
//! ```
//! use gpu_archs::{all_devices, hd_radeon_7970};
//! assert_eq!(all_devices().len(), 4);
//! let si = hd_radeon_7970();
//! assert!(si.caps().has_scalar_unit);
//! assert_eq!(si.warp_size, 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use simt_sim::{ArchConfig, CacheGeom, Latencies, SchedulerPolicy, Vendor};

/// AMD HD Radeon 7970 (Southern Islands, Tahiti XT).
///
/// 32 compute units at 925 MHz; per CU: 256 KiB vector register file
/// (4 SIMDs × 64 KiB), 8 KiB scalar register file, 64 KiB LDS with 32
/// banks; wavefront width 64 executed on 16-wide SIMDs (4 cycles per
/// wavefront instruction); 16 KiB per-CU L1 and a shared 768 KiB L2.
///
/// # Example
/// ```
/// use gpu_archs::hd_radeon_7970;
/// let a = hd_radeon_7970();
/// assert_eq!(a.num_sms, 32);
/// assert_eq!(a.regfile_bytes_per_sm, 256 * 1024);
/// ```
pub fn hd_radeon_7970() -> ArchConfig {
    ArchConfig {
        name: "HD Radeon 7970".into(),
        microarch: "Southern Islands".into(),
        vendor: Vendor::Amd,
        warp_size: 64,
        num_sms: 32,
        simd_width: 16,
        clock_mhz: 925,
        regfile_bytes_per_sm: 256 * 1024,
        sregfile_bytes_per_sm: 8 * 1024,
        lds_bytes_per_sm: 64 * 1024,
        max_warps_per_sm: 40,
        max_blocks_per_sm: 16,
        issue_width: 4,
        scheduler: SchedulerPolicy::Lrr,
        lat: Latencies {
            alu: 4,
            imul: 8,
            fp: 4,
            sfu: 16,
            lds: 32,
            l1_hit: 70,
            l2_hit: 200,
            dram: 420,
            mem_serialize: 4,
        },
        lds_banks: 32,
        lds_bank_penalty: 2,
        l1: Some(CacheGeom {
            bytes: 16 * 1024,
            line_bytes: 64,
            assoc: 4,
        }),
        l2: Some(CacheGeom {
            bytes: 768 * 1024,
            line_bytes: 64,
            assoc: 16,
        }),
        coalesce_bytes: 128,
        // 28 nm SRAM.
        raw_fit_per_mbit: 650.0,
        watchdog_factor: 20,
    }
}

/// NVIDIA Quadro FX 5600 (G80, the first CUDA-capable generation).
///
/// 16 SMs at 1350 MHz shader clock; per SM: 32 KiB register file
/// (8192 × 32-bit), 16 KiB shared memory with 16 banks; warp 32 on 8-wide
/// SIMD (4 cycles per warp instruction); global loads are uncached and
/// coalesce into 64-byte segments per half-warp.
///
/// # Example
/// ```
/// use gpu_archs::quadro_fx_5600;
/// let a = quadro_fx_5600();
/// assert_eq!(a.rf_words_per_sm(), 8192);
/// assert!(a.l1.is_none(), "G80 global loads are uncached");
/// ```
pub fn quadro_fx_5600() -> ArchConfig {
    ArchConfig {
        name: "Quadro FX 5600".into(),
        microarch: "G80".into(),
        vendor: Vendor::Nvidia,
        warp_size: 32,
        num_sms: 16,
        simd_width: 8,
        clock_mhz: 1350,
        regfile_bytes_per_sm: 32 * 1024,
        sregfile_bytes_per_sm: 0,
        lds_bytes_per_sm: 16 * 1024,
        max_warps_per_sm: 24,
        max_blocks_per_sm: 8,
        issue_width: 1,
        scheduler: SchedulerPolicy::Lrr,
        lat: Latencies {
            alu: 10,
            imul: 16,
            fp: 10,
            sfu: 26,
            lds: 26,
            l1_hit: 420, // unused: no L1
            l2_hit: 420, // unused: no L2
            dram: 420,
            mem_serialize: 6,
        },
        lds_banks: 16,
        lds_bank_penalty: 2,
        l1: None,
        l2: None,
        coalesce_bytes: 64,
        // 90 nm SRAM.
        raw_fit_per_mbit: 1100.0,
        watchdog_factor: 20,
    }
}

/// NVIDIA Quadro FX 5800 (GT200).
///
/// 30 SMs at 1296 MHz; per SM: 64 KiB register file (16384 × 32-bit),
/// 16 KiB shared memory with 16 banks; warp 32 on 8-wide SIMD; relaxed
/// coalescing (64-byte segments) but still no data cache for global loads.
///
/// # Example
/// ```
/// use gpu_archs::quadro_fx_5800;
/// let a = quadro_fx_5800();
/// assert_eq!(a.num_sms, 30);
/// assert_eq!(a.rf_words_per_sm(), 16384);
/// ```
pub fn quadro_fx_5800() -> ArchConfig {
    ArchConfig {
        name: "Quadro FX 5800".into(),
        microarch: "GT200".into(),
        vendor: Vendor::Nvidia,
        warp_size: 32,
        num_sms: 30,
        simd_width: 8,
        clock_mhz: 1296,
        regfile_bytes_per_sm: 64 * 1024,
        sregfile_bytes_per_sm: 0,
        lds_bytes_per_sm: 16 * 1024,
        max_warps_per_sm: 32,
        max_blocks_per_sm: 8,
        issue_width: 1,
        scheduler: SchedulerPolicy::Lrr,
        lat: Latencies {
            alu: 8,
            imul: 14,
            fp: 8,
            sfu: 24,
            lds: 24,
            l1_hit: 440,
            l2_hit: 440,
            dram: 440,
            mem_serialize: 4,
        },
        lds_banks: 16,
        lds_bank_penalty: 2,
        l1: None,
        l2: None,
        coalesce_bytes: 64,
        // 65 nm SRAM.
        raw_fit_per_mbit: 900.0,
        watchdog_factor: 20,
    }
}

/// NVIDIA GeForce GTX 480 (Fermi, GF100).
///
/// 15 SMs at 1401 MHz; per SM: 128 KiB register file (32768 × 32-bit),
/// 48 KiB shared memory with 32 banks, dual warp schedulers (GTO-style
/// greedy), 16-wide half-pipelines; 16 KiB L1 (the 48/16 split configured
/// for shared-heavy workloads) and a shared 768 KiB L2; 128-byte
/// coalescing.
///
/// # Example
/// ```
/// use gpu_archs::geforce_gtx_480;
/// let a = geforce_gtx_480();
/// assert_eq!(a.rf_words_per_sm(), 32768);
/// assert!(a.l1.is_some() && a.l2.is_some());
/// ```
pub fn geforce_gtx_480() -> ArchConfig {
    ArchConfig {
        name: "GeForce GTX 480".into(),
        microarch: "Fermi".into(),
        vendor: Vendor::Nvidia,
        warp_size: 32,
        num_sms: 15,
        simd_width: 16,
        clock_mhz: 1401,
        regfile_bytes_per_sm: 128 * 1024,
        sregfile_bytes_per_sm: 0,
        lds_bytes_per_sm: 48 * 1024,
        max_warps_per_sm: 48,
        max_blocks_per_sm: 8,
        issue_width: 2,
        scheduler: SchedulerPolicy::Gto,
        lat: Latencies {
            alu: 6,
            imul: 12,
            fp: 6,
            sfu: 20,
            lds: 20,
            l1_hit: 80,
            l2_hit: 220,
            dram: 450,
            mem_serialize: 4,
        },
        lds_banks: 32,
        lds_bank_penalty: 2,
        l1: Some(CacheGeom {
            bytes: 16 * 1024,
            line_bytes: 128,
            assoc: 4,
        }),
        l2: Some(CacheGeom {
            bytes: 768 * 1024,
            line_bytes: 128,
            assoc: 16,
        }),
        coalesce_bytes: 128,
        // 40 nm SRAM.
        raw_fit_per_mbit: 800.0,
        watchdog_factor: 20,
    }
}

/// All four devices of the study, in the paper's figure order:
/// HD Radeon 7970, Quadro FX 5600, Quadro FX 5800, GeForce GTX 480.
///
/// # Example
/// ```
/// use gpu_archs::all_devices;
/// let names: Vec<_> = all_devices().iter().map(|a| a.name.clone()).collect();
/// assert_eq!(names[0], "HD Radeon 7970");
/// assert_eq!(names[3], "GeForce GTX 480");
/// ```
pub fn all_devices() -> Vec<ArchConfig> {
    vec![
        hd_radeon_7970(),
        quadro_fx_5600(),
        quadro_fx_5800(),
        geforce_gtx_480(),
    ]
}

/// Looks a device up by (case-insensitive) name or microarchitecture.
///
/// # Example
/// ```
/// use gpu_archs::device_by_name;
/// assert!(device_by_name("fermi").is_some());
/// assert!(device_by_name("Quadro FX 5600").is_some());
/// assert!(device_by_name("voodoo2").is_none());
/// ```
pub fn device_by_name(name: &str) -> Option<ArchConfig> {
    let n = name.to_ascii_lowercase();
    all_devices()
        .into_iter()
        .find(|a| a.name.to_ascii_lowercase() == n || a.microarch.to_ascii_lowercase() == n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_distinct_devices() {
        let devs = all_devices();
        assert_eq!(devs.len(), 4);
        let mut names: Vec<_> = devs.iter().map(|a| a.name.clone()).collect();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn only_si_has_scalar_unit() {
        for a in all_devices() {
            let is_amd = a.vendor == Vendor::Amd;
            assert_eq!(a.caps().has_scalar_unit, is_amd, "{}", a.name);
            assert_eq!(a.warp_size, if is_amd { 64 } else { 32 });
        }
    }

    #[test]
    fn register_file_sizes_match_specs() {
        assert_eq!(hd_radeon_7970().rf_words_per_sm(), 65536);
        assert_eq!(quadro_fx_5600().rf_words_per_sm(), 8192);
        assert_eq!(quadro_fx_5800().rf_words_per_sm(), 16384);
        assert_eq!(geforce_gtx_480().rf_words_per_sm(), 32768);
    }

    #[test]
    fn shared_memory_sizes_match_specs() {
        assert_eq!(hd_radeon_7970().lds_bytes_per_sm, 65536);
        assert_eq!(quadro_fx_5600().lds_bytes_per_sm, 16384);
        assert_eq!(quadro_fx_5800().lds_bytes_per_sm, 16384);
        assert_eq!(geforce_gtx_480().lds_bytes_per_sm, 49152);
    }

    #[test]
    fn pre_fermi_is_uncached() {
        assert!(quadro_fx_5600().l1.is_none());
        assert!(quadro_fx_5600().l2.is_none());
        assert!(quadro_fx_5800().l1.is_none());
        assert!(geforce_gtx_480().l1.is_some());
    }

    #[test]
    fn warp_issue_cycles_per_generation() {
        assert_eq!(quadro_fx_5600().warp_issue_cycles(), 4);
        assert_eq!(quadro_fx_5800().warp_issue_cycles(), 4);
        assert_eq!(geforce_gtx_480().warp_issue_cycles(), 2);
        assert_eq!(hd_radeon_7970().warp_issue_cycles(), 4);
    }

    #[test]
    fn lookup_by_name_and_microarch() {
        assert_eq!(device_by_name("g80").unwrap().name, "Quadro FX 5600");
        assert_eq!(device_by_name("GT200").unwrap().name, "Quadro FX 5800");
        assert_eq!(
            device_by_name("southern islands").unwrap().name,
            "HD Radeon 7970"
        );
        assert_eq!(
            device_by_name("GeForce GTX 480").unwrap().microarch,
            "Fermi"
        );
    }

    #[test]
    fn fit_rates_positive() {
        for a in all_devices() {
            assert!(a.raw_fit_per_mbit > 0.0, "{}", a.name);
            assert!(a.clock_mhz > 0);
        }
    }
}

/// Builder for custom device models, starting from an existing device.
///
/// Lets reliability studies sweep a single parameter (register-file size,
/// clock, SM count, scheduler…) while keeping everything else fixed — the
/// "resource sizes" axis the paper's introduction names.
///
/// # Example
/// ```
/// use gpu_archs::{geforce_gtx_480, DeviceBuilder};
/// use simt_sim::SchedulerPolicy;
///
/// let half_rf = DeviceBuilder::from(geforce_gtx_480())
///     .name("GTX 480 (half RF)")
///     .regfile_kib(64)
///     .scheduler(SchedulerPolicy::Lrr)
///     .build();
/// assert_eq!(half_rf.rf_words_per_sm(), 16384);
/// assert_eq!(half_rf.name, "GTX 480 (half RF)");
/// ```
#[derive(Debug, Clone)]
pub struct DeviceBuilder {
    cfg: ArchConfig,
}

impl DeviceBuilder {
    /// Starts from an existing device configuration.
    pub fn from(cfg: ArchConfig) -> Self {
        DeviceBuilder { cfg }
    }

    /// Sets the marketing name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.cfg.name = name.into();
        self
    }

    /// Sets the number of SMs / compute units.
    pub fn num_sms(mut self, n: u32) -> Self {
        self.cfg.num_sms = n;
        self
    }

    /// Sets the shader clock in MHz.
    pub fn clock_mhz(mut self, mhz: u32) -> Self {
        self.cfg.clock_mhz = mhz;
        self
    }

    /// Sets the vector register file size per SM, in KiB.
    pub fn regfile_kib(mut self, kib: u32) -> Self {
        self.cfg.regfile_bytes_per_sm = kib * 1024;
        self
    }

    /// Sets the local memory size per SM, in KiB.
    pub fn lds_kib(mut self, kib: u32) -> Self {
        self.cfg.lds_bytes_per_sm = kib * 1024;
        self
    }

    /// Sets the warp scheduling policy.
    pub fn scheduler(mut self, policy: SchedulerPolicy) -> Self {
        self.cfg.scheduler = policy;
        self
    }

    /// Sets the maximum resident warps per SM.
    pub fn max_warps(mut self, n: u32) -> Self {
        self.cfg.max_warps_per_sm = n;
        self
    }

    /// Sets the raw soft-error rate in FIT per Mbit.
    pub fn raw_fit_per_mbit(mut self, fit: f64) -> Self {
        self.cfg.raw_fit_per_mbit = fit;
        self
    }

    /// Finishes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no SMs, empty register
    /// file, zero clock, or a warp wider than 64 lanes).
    pub fn build(self) -> ArchConfig {
        let c = &self.cfg;
        assert!(c.num_sms > 0, "device needs at least one SM");
        assert!(c.regfile_bytes_per_sm >= 1024, "register file too small");
        assert!(c.clock_mhz > 0, "clock must be positive");
        assert!(c.warp_size <= 64, "lane masks support up to 64 lanes");
        self.cfg
    }
}

#[cfg(test)]
mod builder_tests {
    use super::*;

    #[test]
    fn builder_overrides_selected_fields_only() {
        let base = quadro_fx_5800();
        let tweaked = DeviceBuilder::from(base.clone())
            .name("GT200-lite")
            .num_sms(8)
            .regfile_kib(32)
            .build();
        assert_eq!(tweaked.num_sms, 8);
        assert_eq!(tweaked.regfile_bytes_per_sm, 32 * 1024);
        assert_eq!(tweaked.lds_bytes_per_sm, base.lds_bytes_per_sm);
        assert_eq!(tweaked.warp_size, base.warp_size);
        assert_eq!(tweaked.lat, base.lat);
    }

    #[test]
    #[should_panic(expected = "at least one SM")]
    fn degenerate_device_rejected() {
        let _ = DeviceBuilder::from(quadro_fx_5600()).num_sms(0).build();
    }

    #[test]
    fn built_devices_keep_derived_quantities_consistent() {
        let half = DeviceBuilder::from(geforce_gtx_480())
            .regfile_kib(64)
            .build();
        assert_eq!(half.rf_words_per_sm(), 16384);
        assert_eq!(half.caps(), geforce_gtx_480().caps(), "caps unchanged");
    }
}
