//! `histogram` — 64-bin histogram with per-block shared bins and a global
//! atomic merge (CUDA/APP SDK).

use crate::common::uniform_u32;
use crate::Workload;
use simt_isa::{AtomOp, CmpOp, Kernel, KernelBuilder, MemSpace, Special};
use simt_sim::{Buffer, Gpu, LaunchConfig, LaunchPlan, PlanStep, SimError};

/// Histograms `n` integer samples into `bins` buckets: each block
/// accumulates into shared-memory bins with LDS atomics, then merges into
/// the global result with global atomics.
///
/// The atomic-heavy benchmark of the set; a register fault that corrupts a
/// sample value indexes outside the shared bins and raises a DUE, just as
/// the real kernel would fault.
///
/// # Example
/// ```
/// use gpu_workloads::{Histogram, Workload};
/// let w = Histogram::new(2048, 64, 1);
/// assert!(w.uses_local_memory());
/// let total: u32 = w.reference().iter().sum();
/// assert_eq!(total, 2048);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    n: u32,
    bins: u32,
    block: u32,
    input: Vec<u32>,
}

impl Histogram {
    /// Histograms `n` seeded samples in `[0, bins)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is 0 or exceeds the 256-thread block.
    pub fn new(n: u32, bins: u32, seed: u64) -> Self {
        let block = 256;
        assert!(bins > 0 && bins <= block, "bins must be in 1..={block}");
        Histogram {
            n,
            bins,
            block,
            input: uniform_u32(n as usize, bins, seed ^ 0x415),
        }
    }

    /// Default size used by the figure harness (16384 samples, 64 bins).
    pub fn default_size(seed: u64) -> Self {
        Self::new(16384, 64, seed)
    }

    fn kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("histogram", 4);
        let (pin, phist, pn, pbins) = (kb.param(0), kb.param(1), kb.param(2), kb.param(3));
        let gid = kb.vreg();
        let v = kb.vreg();
        let addr = kb.vreg();
        let tid4 = kb.vreg();
        let old = kb.vreg();
        let p = kb.preg();
        let inb = kb.preg();
        kb.shared(self.bins * 4);

        // Zero the shared bins.
        kb.shl_imm(tid4, Special::TidX, 2);
        kb.isetp_lt_u(p, Special::TidX, pbins);
        kb.if_begin(p);
        kb.st(MemSpace::Shared, tid4, 0u32);
        kb.if_end();
        kb.bar();
        // Vote into the shared bins.
        kb.global_tid_x(gid);
        kb.isetp_lt_u(inb, gid, pn);
        kb.if_begin(inb);
        kb.word_addr(addr, pin, gid);
        kb.ld(MemSpace::Global, v, addr);
        kb.shl_imm(addr, v, 2);
        kb.atom(MemSpace::Shared, AtomOp::Add, old, addr, 1u32);
        kb.if_end();
        kb.bar();
        // Merge into the global histogram.
        kb.isetp(CmpOp::ULt, p, Special::TidX, pbins);
        kb.if_begin(p);
        kb.ld(MemSpace::Shared, v, tid4);
        kb.mov(addr, Special::TidX);
        kb.word_addr(addr, phist, addr);
        kb.atom(MemSpace::Global, AtomOp::Add, old, addr, v);
        kb.if_end();
        kb.exit();
        kb.build().expect("histogram kernel is valid")
    }
}

/// Launch plan: upload samples, one atomic-voting launch, read the bins.
#[derive(Clone)]
struct HistogramPlan {
    w: Histogram,
    stage: u32,
    hist: Option<Buffer>,
}

impl LaunchPlan for HistogramPlan {
    fn next(&mut self, gpu: &mut Gpu) -> Result<PlanStep, SimError> {
        self.stage += 1;
        match self.stage {
            1 => {
                let kernel = crate::lower_for(&self.w.kernel(), gpu)?;
                let bin = gpu.alloc_words(self.w.n);
                let hist = gpu.alloc_words(self.w.bins);
                gpu.write_words(bin, &self.w.input);
                self.hist = Some(hist);
                let grid = self.w.n.div_ceil(self.w.block);
                Ok(PlanStep::Launch {
                    kernel,
                    cfg: LaunchConfig::linear(grid, self.w.block),
                    params: vec![bin.addr(), hist.addr(), self.w.n, self.w.bins],
                })
            }
            _ => Ok(PlanStep::Done(
                gpu.read_words(self.hist.expect("launched"), self.w.bins),
            )),
        }
    }

    // The finishing `next` call's host reads are exactly the `Done`
    // vector, in order, and no step decision depends on them: batched
    // replay may classify final-read divergence directly.
    fn outputs_verbatim(&self) -> bool {
        true
    }

    fn clone_plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(self.clone())
    }
}

impl Workload for Histogram {
    fn name(&self) -> &str {
        "histogram"
    }

    fn uses_local_memory(&self) -> bool {
        true
    }

    fn plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(HistogramPlan {
            w: self.clone(),
            stage: 0,
            hist: None,
        })
    }

    fn reference(&self) -> Vec<u32> {
        let mut hist = vec![0u32; self.bins as usize];
        for &v in &self.input {
            hist[v as usize] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_archs::{all_devices, hd_radeon_7970};
    use simt_sim::NoopObserver;

    #[test]
    fn matches_reference_on_every_device() {
        let w = Histogram::new(2048, 64, 31);
        for arch in all_devices() {
            let mut gpu = Gpu::new(arch.clone());
            assert_eq!(
                w.run(&mut gpu, &mut NoopObserver).unwrap(),
                w.reference(),
                "{}",
                arch.name
            );
        }
    }

    #[test]
    fn counts_sum_to_n() {
        let w = Histogram::new(1000, 16, 3);
        let mut gpu = Gpu::new(hd_radeon_7970());
        let out = w.run(&mut gpu, &mut NoopObserver).unwrap();
        assert_eq!(out.iter().sum::<u32>(), 1000);
    }

    #[test]
    fn single_bin_collects_everything() {
        let w = Histogram::new(512, 1, 3);
        let mut gpu = Gpu::new(hd_radeon_7970());
        let out = w.run(&mut gpu, &mut NoopObserver).unwrap();
        assert_eq!(out, vec![512]);
    }

    #[test]
    #[should_panic(expected = "bins must be")]
    fn rejects_too_many_bins() {
        let _ = Histogram::new(100, 300, 0);
    }
}
