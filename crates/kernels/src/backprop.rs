//! `backprop` — one training step of a two-layer perceptron (Rodinia):
//! GPU layer-forward with a shared-memory tree reduction, host output
//! layer and deltas, GPU weight adjustment.

use crate::common::{f32_words, sigmoid, uniform_f32};
use crate::Workload;
use simt_isa::{CmpOp, Kernel, KernelBuilder, MemSpace, Special};
use simt_sim::{Buffer, Dim, Gpu, LaunchConfig, LaunchPlan, PlanStep, SimError};

/// Hidden units (fixed at 16 as in Rodinia's `bpnn` GPU path).
pub const HID: u32 = 16;
const ETA: f32 = 0.3;
const MOMENTUM: f32 = 0.3;

/// One backpropagation step for a network with `n_in` input units and 16
/// hidden units: `bpnn_layerforward` (shared-memory partial products +
/// tree reduction per 16-input block) and `bpnn_adjust_weights` on the
/// GPU, sigmoid/output layer/deltas on the host — the exact split Rodinia
/// uses.
///
/// Outputs are the partial-sum matrix, the adjusted input→hidden weights
/// and the stored weight deltas.
///
/// # Example
/// ```
/// use gpu_workloads::{Backprop, Workload};
/// let w = Backprop::new(64, 5);
/// assert!(w.uses_local_memory());
/// ```
#[derive(Debug, Clone)]
pub struct Backprop {
    n_in: u32,
    input: Vec<f32>,
    w1: Vec<f32>,
    w2: Vec<f32>,
    target: f32,
}

impl Backprop {
    /// A network with `n_in` input units (must be a multiple of 16).
    pub fn new(n_in: u32, seed: u64) -> Self {
        assert!(
            n_in.is_multiple_of(16) && n_in > 0,
            "n_in must be a positive multiple of 16"
        );
        Backprop {
            n_in,
            input: uniform_f32(n_in as usize, seed ^ 0xb9),
            w1: uniform_f32((n_in * HID) as usize, seed ^ 0xba),
            w2: uniform_f32(HID as usize, seed ^ 0xbb),
            target: 0.7,
        }
    }

    /// Default size used by the figure harness (1024 input units).
    pub fn default_size(seed: u64) -> Self {
        Self::new(1024, seed)
    }

    /// `bpnn_layerforward`: per 16×16 block, stage the input slice and the
    /// weight×input products in shared memory, tree-reduce over the input
    /// dimension, emit one partial sum per hidden unit.
    fn layerforward(&self) -> Kernel {
        let mut kb = KernelBuilder::new("backprop_layerforward", 3);
        let (pinput, pw1, ppartial) = (kb.param(0), kb.param(1), kb.param(2));
        let v = kb.vreg();
        let w = kb.vreg();
        let addr = kb.vreg();
        let saddr = kb.vreg();
        let idx = kb.vreg();
        let t = kb.vreg();
        let p = kb.preg();
        let node_off = kb.shared(16 * 4);
        let wm_off = kb.shared(16 * 16 * 4);

        // index_in = ctaid.y*16 + tid.y
        kb.imad(idx, Special::CtaIdY, 16u32, Special::TidY);
        // if (tx == 0) input_node[ty] = input[index_in]
        kb.isetp(CmpOp::Eq, p, Special::TidX, 0u32);
        kb.if_begin(p);
        kb.word_addr(addr, pinput, idx);
        kb.ld(MemSpace::Global, v, addr);
        kb.imad(saddr, Special::TidY, 4u32, node_off);
        kb.st(MemSpace::Shared, saddr, v);
        kb.if_end();
        kb.bar();
        // wm[ty][tx] = w1[index_in*HID + tx] * input_node[ty]
        kb.imad(addr, idx, HID, Special::TidX);
        kb.word_addr(addr, pw1, addr);
        kb.ld(MemSpace::Global, w, addr);
        kb.imad(saddr, Special::TidY, 4u32, node_off);
        kb.ld(MemSpace::Shared, v, saddr);
        kb.fmul(w, w, v);
        kb.imad(saddr, Special::TidY, 16u32, Special::TidX);
        kb.imad(saddr, saddr, 4u32, wm_off);
        kb.st(MemSpace::Shared, saddr, w);
        kb.bar();
        // Tree-reduce over ty exactly as Rodinia: for power in 2,4,8,16.
        for i in 1..=4u32 {
            let power = 1u32 << i;
            kb.and(t, Special::TidY, power - 1);
            kb.isetp(CmpOp::Eq, p, t, 0u32);
            kb.if_begin(p);
            kb.ld(MemSpace::Shared, v, saddr);
            kb.ld_off(MemSpace::Shared, t, saddr, ((power / 2) * 16 * 4) as i32);
            kb.fadd(v, v, t);
            kb.st(MemSpace::Shared, saddr, v);
            kb.if_end();
            kb.bar();
        }
        // if (ty == 0) partial[ctaid.y*HID + tx] = wm[0][tx]
        kb.isetp(CmpOp::Eq, p, Special::TidY, 0u32);
        kb.if_begin(p);
        kb.imad(saddr, Special::TidX, 4u32, wm_off);
        kb.ld(MemSpace::Shared, v, saddr);
        kb.imad(addr, Special::CtaIdY, HID, Special::TidX);
        kb.word_addr(addr, ppartial, addr);
        kb.st(MemSpace::Global, addr, v);
        kb.if_end();
        kb.exit();
        kb.build().expect("layerforward kernel is valid")
    }

    /// `bpnn_adjust_weights`: `dw = η·δ[j]·x[i] + μ·oldw[i][j]`,
    /// `w += dw`, `oldw = dw`.
    fn adjust_weights(&self) -> Kernel {
        let mut kb = KernelBuilder::new("backprop_adjust", 6);
        let (pdelta, pinput, pw1, poldw, peta, pmom) = (
            kb.param(0),
            kb.param(1),
            kb.param(2),
            kb.param(3),
            kb.param(4),
            kb.param(5),
        );
        let row = kb.vreg();
        let idx = kb.vreg();
        let d = kb.vreg();
        let x = kb.vreg();
        let old = kb.vreg();
        let dw = kb.vreg();
        let addr = kb.vreg();
        let v = kb.vreg();

        kb.imad(row, Special::CtaIdY, 16u32, Special::TidY);
        kb.imad(idx, row, HID, Special::TidX);
        // d = delta[tx] ; x = input[row]
        kb.word_addr(addr, pdelta, Special::TidX);
        kb.ld(MemSpace::Global, d, addr);
        kb.word_addr(addr, pinput, row);
        kb.ld(MemSpace::Global, x, addr);
        // dw = eta*d*x + momentum*oldw[idx]
        kb.fmul(dw, d, x);
        kb.fmul(dw, dw, peta);
        kb.word_addr(addr, poldw, idx);
        kb.ld(MemSpace::Global, old, addr);
        kb.ffma(dw, old, pmom, dw);
        kb.st(MemSpace::Global, addr, dw); // oldw[idx] = dw
        kb.word_addr(addr, pw1, idx);
        kb.ld(MemSpace::Global, v, addr);
        kb.fadd(v, v, dw);
        kb.st(MemSpace::Global, addr, v);
        kb.exit();
        kb.build().expect("adjust kernel is valid")
    }

    /// Host mirror of the block tree reduction for one (block, hidden)
    /// pair.
    fn host_partial(&self, by: usize, j: usize) -> f32 {
        let mut wm: Vec<f32> = (0..16)
            .map(|ty| {
                let i = by * 16 + ty;
                self.w1[i * HID as usize + j] * self.input[i]
            })
            .collect();
        for i in 1..=4u32 {
            let power = (1u32 << i) as usize;
            for ty in (0..16).step_by(power) {
                wm[ty] += wm[ty + power / 2];
            }
        }
        wm[0]
    }

    /// Host phases shared by `run` and `reference`: hidden activations,
    /// output, deltas.
    fn host_deltas(&self, partial: &[f32]) -> Vec<f32> {
        let blocks = (self.n_in / 16) as usize;
        let hid = HID as usize;
        let hidden: Vec<f32> = (0..hid)
            .map(|j| {
                let mut s = 0.0f32;
                for by in 0..blocks {
                    s += partial[by * hid + j];
                }
                sigmoid(s)
            })
            .collect();
        let mut o = 0.0f32;
        for (h, w2) in hidden.iter().zip(&self.w2) {
            o += h * w2;
        }
        let out = sigmoid(o);
        let delta_out = out * (1.0 - out) * (self.target - out);
        (0..hid)
            .map(|j| hidden[j] * (1.0 - hidden[j]) * self.w2[j] * delta_out)
            .collect()
    }
}

/// Launch plan: layer-forward launch, host delta computation, weight
/// adjustment launch, readback of partials/weights/deltas.
#[derive(Clone)]
struct BackpropPlan {
    w: Backprop,
    stage: u32,
    bufs: Option<(Buffer, Buffer, Buffer, Buffer, Buffer)>,
}

impl BackpropPlan {
    fn grid(&self) -> LaunchConfig {
        LaunchConfig::new(Dim::new(1, self.w.n_in / 16), Dim::new(16, 16))
    }
}

impl LaunchPlan for BackpropPlan {
    fn next(&mut self, gpu: &mut Gpu) -> Result<PlanStep, SimError> {
        self.stage += 1;
        let blocks = self.w.n_in / 16;
        match self.stage {
            1 => {
                let k1 = crate::lower_for(&self.w.layerforward(), gpu)?;
                let binput = gpu.alloc_words(self.w.n_in);
                let bw1 = gpu.alloc_words(self.w.n_in * HID);
                let bpartial = gpu.alloc_words(blocks * HID);
                let bdelta = gpu.alloc_words(HID);
                let boldw = gpu.alloc_words(self.w.n_in * HID);
                gpu.write_floats(binput, &self.w.input);
                gpu.write_floats(bw1, &self.w.w1);
                self.bufs = Some((binput, bw1, bpartial, bdelta, boldw));
                Ok(PlanStep::Launch {
                    kernel: k1,
                    cfg: self.grid(),
                    params: vec![binput.addr(), bw1.addr(), bpartial.addr()],
                })
            }
            2 => {
                // Host phase between the launches: hidden activations,
                // output layer, deltas.
                let (binput, bw1, bpartial, bdelta, boldw) = self.bufs.expect("allocated");
                let partial = gpu.read_floats(bpartial, blocks * HID);
                let delta = self.w.host_deltas(&partial);
                gpu.write_floats(bdelta, &delta);
                Ok(PlanStep::Launch {
                    kernel: crate::lower_for(&self.w.adjust_weights(), gpu)?,
                    cfg: self.grid(),
                    params: vec![
                        bdelta.addr(),
                        binput.addr(),
                        bw1.addr(),
                        boldw.addr(),
                        ETA.to_bits(),
                        MOMENTUM.to_bits(),
                    ],
                })
            }
            _ => {
                let (_, bw1, bpartial, _, boldw) = self.bufs.expect("allocated");
                let mut out = gpu.read_words(bpartial, blocks * HID);
                out.extend(gpu.read_words(bw1, self.w.n_in * HID));
                out.extend(gpu.read_words(boldw, self.w.n_in * HID));
                Ok(PlanStep::Done(out))
            }
        }
    }

    // The finishing `next` call's host reads are exactly the `Done`
    // vector, in order, and no step decision depends on them: batched
    // replay may classify final-read divergence directly.
    fn outputs_verbatim(&self) -> bool {
        true
    }

    fn clone_plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(self.clone())
    }
}

impl Workload for Backprop {
    fn name(&self) -> &str {
        "backprop"
    }

    fn uses_local_memory(&self) -> bool {
        true
    }

    fn plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(BackpropPlan {
            w: self.clone(),
            stage: 0,
            bufs: None,
        })
    }

    fn reference(&self) -> Vec<u32> {
        let blocks = (self.n_in / 16) as usize;
        let hid = HID as usize;
        let partial: Vec<f32> = (0..blocks * hid)
            .map(|i| self.host_partial(i / hid, i % hid))
            .collect();
        let delta = self.host_deltas(&partial);
        let mut w1 = self.w1.clone();
        let mut oldw = vec![0.0f32; self.n_in as usize * hid];
        for row in 0..self.n_in as usize {
            for (j, d) in delta.iter().enumerate() {
                let idx = row * hid + j;
                let dw = MOMENTUM.mul_add(oldw[idx], d * self.input[row] * ETA);
                oldw[idx] = dw;
                w1[idx] += dw;
            }
        }
        let mut out = f32_words(&partial);
        out.extend(f32_words(&w1));
        out.extend(f32_words(&oldw));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::words_f32;
    use gpu_archs::{all_devices, quadro_fx_5600};
    use simt_sim::NoopObserver;

    #[test]
    fn matches_reference_on_every_device() {
        let w = Backprop::new(64, 43);
        for arch in all_devices() {
            let mut gpu = Gpu::new(arch.clone());
            assert_eq!(
                w.run(&mut gpu, &mut NoopObserver).unwrap(),
                w.reference(),
                "{}",
                arch.name
            );
        }
    }

    #[test]
    fn partial_sums_match_direct_dot_product() {
        let w = Backprop::new(32, 3);
        let r = words_f32(&w.reference());
        // partial[by*HID + j] should be close to the direct dot product of
        // inputs 16·by..16·(by+1) with weight column j.
        for by in 0..2usize {
            for j in 0..HID as usize {
                let direct: f32 = (0..16)
                    .map(|ty| {
                        let i = by * 16 + ty;
                        w.w1[i * HID as usize + j] * w.input[i]
                    })
                    .sum();
                let tree = r[by * HID as usize + j];
                assert!((tree - direct).abs() < 1e-3, "partial[{by}][{j}]");
            }
        }
    }

    #[test]
    fn weights_move_toward_target() {
        let w = Backprop::new(32, 5);
        let mut gpu = Gpu::new(quadro_fx_5600());
        let out = words_f32(&w.run(&mut gpu, &mut NoopObserver).unwrap());
        let hid = HID as usize;
        let blocks = 2usize;
        let w1_new = &out[blocks * hid..blocks * hid + 32 * hid];
        assert!(
            w1_new.iter().zip(&w.w1).any(|(a, b)| a != b),
            "training must change at least one weight"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_bad_input_size() {
        let _ = Backprop::new(40, 0);
    }
}
