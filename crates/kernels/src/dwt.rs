//! `dwtHaar1D` — 1-D Haar discrete wavelet transform (CUDA/APP SDK),
//! one decomposition level per launch, staged through shared memory.

use crate::common::{f32_words, uniform_f32};
use crate::Workload;
use simt_isa::{Kernel, KernelBuilder, MemSpace, Special};
use simt_sim::{Buffer, Gpu, LaunchConfig, LaunchPlan, PlanStep, SimError};

const INV_SQRT2: f32 = std::f32::consts::FRAC_1_SQRT_2;

/// Full Haar decomposition of `n` floats: log₂(n) launches, each pairing
/// neighbours into an approximation (`(a+b)/√2`) and a detail
/// (`(a−b)/√2`), with the pair staged through shared memory as the SDK
/// kernel does.
///
/// Output layout is the standard in-place pyramid: `coef[0]` is the final
/// approximation, `coef[half..2·half]` the details of the level with that
/// half-length.
///
/// # Example
/// ```
/// use gpu_workloads::{DwtHaar1D, Workload};
/// let w = DwtHaar1D::new(256, 7);
/// assert!(w.uses_local_memory());
/// assert_eq!(w.reference().len(), 256);
/// ```
#[derive(Debug, Clone)]
pub struct DwtHaar1D {
    n: u32,
    block: u32,
    input: Vec<f32>,
}

impl DwtHaar1D {
    /// Transforms `n` seeded samples.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two ≥ 2.
    pub fn new(n: u32, seed: u64) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "n must be a power of two >= 2"
        );
        DwtHaar1D {
            n,
            block: 128,
            input: uniform_f32(n as usize, seed ^ 0xd7),
        }
    }

    /// Default size used by the figure harness (2048 samples).
    pub fn default_size(seed: u64) -> Self {
        Self::new(2048, seed)
    }

    /// One decomposition level: `half` output pairs.
    fn kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("dwtHaar1D", 4);
        let (pin, papprox, pdetail, phalf) = (kb.param(0), kb.param(1), kb.param(2), kb.param(3));
        let gid = kb.vreg();
        let a = kb.vreg();
        let b = kb.vreg();
        let addr = kb.vreg();
        let saddr = kb.vreg();
        let inb = kb.preg();
        kb.shared(2 * self.block * 4);

        kb.global_tid_x(gid);
        kb.isetp_lt_u(inb, gid, phalf);
        kb.if_begin(inb);
        // Stage the pair in[2*gid], in[2*gid+1] through shared memory.
        kb.shl_imm(addr, gid, 3); // byte offset of in[2*gid]
        kb.iadd(addr, addr, pin);
        kb.ld(MemSpace::Global, a, addr);
        kb.ld_off(MemSpace::Global, b, addr, 4);
        kb.shl_imm(saddr, Special::TidX, 3);
        kb.st(MemSpace::Shared, saddr, a);
        kb.st_off(MemSpace::Shared, saddr, 4, b);
        kb.bar();
        kb.ld(MemSpace::Shared, a, saddr);
        kb.ld_off(MemSpace::Shared, b, saddr, 4);
        // approx = (a + b) * 1/sqrt(2) ; detail = (a - b) * 1/sqrt(2)
        let sum = kb.vreg();
        let diff = kb.vreg();
        kb.fadd(sum, a, b);
        kb.fmul(sum, sum, INV_SQRT2.to_bits());
        kb.fsub(diff, a, b);
        kb.fmul(diff, diff, INV_SQRT2.to_bits());
        kb.word_addr(addr, papprox, gid);
        kb.st(MemSpace::Global, addr, sum);
        kb.word_addr(addr, pdetail, gid);
        kb.st(MemSpace::Global, addr, diff);
        kb.if_end();
        kb.exit();
        kb.build().expect("dwtHaar1D kernel is valid")
    }
}

/// Launch plan: one decomposition level per launch, ping-ponging the
/// approximation buffers, then read the coefficient pyramid.
#[derive(Clone)]
struct DwtPlan {
    w: DwtHaar1D,
    kernel: Option<simt_isa::LoweredKernel>,
    coef: Option<Buffer>,
    bufs: Option<[Buffer; 2]>,
    half: u32,
}

impl LaunchPlan for DwtPlan {
    fn next(&mut self, gpu: &mut Gpu) -> Result<PlanStep, SimError> {
        if self.coef.is_none() {
            self.kernel = Some(crate::lower_for(&self.w.kernel(), gpu)?);
            let coef = gpu.alloc_words(self.w.n);
            let ping = gpu.alloc_words(self.w.n);
            let pong = gpu.alloc_words(self.w.n / 2);
            gpu.write_floats(ping, &self.w.input);
            self.coef = Some(coef);
            self.bufs = Some([ping, pong]);
            self.half = self.w.n / 2;
        }
        let coef = self.coef.expect("initialised");
        if self.half >= 1 {
            let bufs = self.bufs.as_mut().expect("initialised");
            let half = self.half;
            let threads = half.min(self.w.block);
            let grid = half.div_ceil(threads);
            // The last level's approximation is the pyramid root coef[0].
            let approx = if half == 1 { coef } else { bufs[1] };
            let step = PlanStep::Launch {
                kernel: self.kernel.clone().expect("initialised"),
                cfg: LaunchConfig::linear(grid, threads),
                params: vec![bufs[0].addr(), approx.addr(), coef.addr() + half * 4, half],
            };
            bufs.swap(0, 1);
            self.half /= 2;
            return Ok(step);
        }
        Ok(PlanStep::Done(gpu.read_words(coef, self.w.n)))
    }

    // The finishing `next` call's host reads are exactly the `Done`
    // vector, in order, and no step decision depends on them: batched
    // replay may classify final-read divergence directly.
    fn outputs_verbatim(&self) -> bool {
        true
    }

    fn clone_plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(self.clone())
    }
}

impl Workload for DwtHaar1D {
    fn name(&self) -> &str {
        "dwtHaar1D"
    }

    fn uses_local_memory(&self) -> bool {
        true
    }

    fn plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(DwtPlan {
            w: self.clone(),
            kernel: None,
            coef: None,
            bufs: None,
            half: 0,
        })
    }

    fn reference(&self) -> Vec<u32> {
        let mut coef = vec![0.0f32; self.n as usize];
        let mut cur = self.input.clone();
        let mut half = (self.n / 2) as usize;
        while half >= 1 {
            let mut next = vec![0.0f32; half];
            for i in 0..half {
                let (a, b) = (cur[2 * i], cur[2 * i + 1]);
                next[i] = (a + b) * INV_SQRT2;
                coef[half + i] = (a - b) * INV_SQRT2;
            }
            cur = next;
            half /= 2;
        }
        coef[0] = cur[0];
        f32_words(&coef)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_archs::{all_devices, quadro_fx_5600};
    use simt_sim::NoopObserver;

    #[test]
    fn matches_reference_on_every_device() {
        let w = DwtHaar1D::new(256, 29);
        for arch in all_devices() {
            let mut gpu = Gpu::new(arch.clone());
            assert_eq!(
                w.run(&mut gpu, &mut NoopObserver).unwrap(),
                w.reference(),
                "{}",
                arch.name
            );
        }
    }

    #[test]
    fn constant_signal_has_zero_details() {
        let mut w = DwtHaar1D::new(64, 0);
        w.input = vec![2.0; 64];
        let mut gpu = Gpu::new(quadro_fx_5600());
        let out = crate::common::words_f32(&w.run(&mut gpu, &mut NoopObserver).unwrap());
        for (i, v) in out.iter().enumerate().skip(1) {
            assert_eq!(*v, 0.0, "detail {i} of a constant signal");
        }
        // Energy concentrates in coef[0]: 2.0 * sqrt(64) = 16.
        assert!((out[0] - 16.0).abs() < 1e-4);
    }

    #[test]
    fn energy_is_preserved() {
        let w = DwtHaar1D::new(128, 8);
        let out = crate::common::words_f32(&w.reference());
        let e_in: f32 = w.input.iter().map(|x| x * x).sum();
        let e_out: f32 = out.iter().map(|x| x * x).sum();
        assert!(
            (e_in - e_out).abs() / e_in < 1e-4,
            "Parseval: {e_in} vs {e_out}"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        let _ = DwtHaar1D::new(100, 0);
    }
}
