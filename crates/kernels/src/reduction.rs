//! `reduction` — two-level parallel tree sum in shared memory
//! (CUDA/APP SDK).

use crate::common::{f32_words, uniform_f32};
use crate::Workload;
use simt_isa::{CmpOp, Kernel, KernelBuilder, MemSpace, Special};
use simt_sim::{Buffer, Gpu, LaunchConfig, LaunchPlan, PlanStep, SimError};

/// Sums `n` floats with the classic shared-memory tree: each block reduces
/// `block` elements, a second launch reduces the per-block partials.
///
/// # Example
/// ```
/// use gpu_workloads::{Reduction, Workload};
/// let w = Reduction::new(1024, 256, 3);
/// assert!(w.uses_local_memory());
/// assert_eq!(w.reference().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Reduction {
    n: u32,
    block: u32,
    input: Vec<f32>,
}

impl Reduction {
    /// Sums `n` elements using blocks of `block` threads.
    ///
    /// # Panics
    ///
    /// Panics unless `block` is a power of two, `n` a multiple of `block`,
    /// and the block count a power of two (second-level tree requirement).
    pub fn new(n: u32, block: u32, seed: u64) -> Self {
        assert!(block.is_power_of_two(), "block must be a power of two");
        assert!(
            n.is_multiple_of(block) && n > 0,
            "n must be a positive multiple of block"
        );
        assert!(
            (n / block).is_power_of_two(),
            "block count must be a power of two"
        );
        Reduction {
            n,
            block,
            input: uniform_f32(n as usize, seed ^ 0x5ed),
        }
    }

    /// Default size used by the figure harness (16384 elements, block 256).
    pub fn default_size(seed: u64) -> Self {
        Self::new(16384, 256, seed)
    }

    /// The tree-reduction kernel: works for any power-of-two block size,
    /// so both levels reuse it.
    fn kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("reduction", 3);
        let (pin, pout, pn) = (kb.param(0), kb.param(1), kb.param(2));
        let s = kb.sreg();
        let s4 = kb.sreg();
        let gid = kb.vreg();
        let v = kb.vreg();
        let tid4 = kb.vreg();
        let addr = kb.vreg();
        let t = kb.vreg();
        let inb = kb.preg();
        let p = kb.preg();
        kb.shared(1024); // covers blocks up to 256 threads

        // v = gid < n ? in[gid] : 0
        kb.global_tid_x(gid);
        kb.movf(v, 0.0);
        kb.isetp_lt_u(inb, gid, pn);
        kb.if_begin(inb);
        kb.word_addr(addr, pin, gid);
        kb.ld(MemSpace::Global, v, addr);
        kb.if_end();
        // sdata[tid] = v
        kb.shl_imm(tid4, Special::TidX, 2);
        kb.st(MemSpace::Shared, tid4, v);
        kb.bar();
        // for (s = ntid/2; s > 0; s >>= 1)
        kb.shr(s, Special::NTidX, 1u32);
        kb.loop_begin();
        {
            kb.isetp(CmpOp::Eq, p, s, 0u32);
            kb.brk(p);
            // if (tid < s) sdata[tid] += sdata[tid + s]
            kb.isetp_lt_u(p, Special::TidX, s);
            kb.if_begin(p);
            kb.ld(MemSpace::Shared, v, tid4);
            kb.shl_imm(s4, s, 2);
            kb.iadd(addr, tid4, s4);
            kb.ld(MemSpace::Shared, t, addr);
            kb.fadd(v, v, t);
            kb.st(MemSpace::Shared, tid4, v);
            kb.if_end();
            kb.bar();
            kb.shr(s, s, 1u32);
        }
        kb.loop_end();
        // if (tid == 0) out[ctaid] = sdata[0]
        kb.isetp(CmpOp::Eq, p, Special::TidX, 0u32);
        kb.if_begin(p);
        kb.ld(MemSpace::Shared, v, tid4);
        kb.mov(addr, Special::CtaIdX);
        kb.word_addr(addr, pout, addr);
        kb.st(MemSpace::Global, addr, v);
        kb.if_end();
        kb.exit();
        kb.build().expect("reduction kernel is valid")
    }

    /// Host mirror of the shared-memory tree order.
    fn tree_reduce(vals: &[f32]) -> f32 {
        let mut v = vals.to_vec();
        let mut s = v.len() / 2;
        while s > 0 {
            for i in 0..s {
                v[i] += v[i + s];
            }
            s /= 2;
        }
        v[0]
    }
}

/// Launch plan: first-level block reduction, second-level reduction of the
/// partials (same kernel), read the scalar result.
#[derive(Clone)]
struct ReductionPlan {
    w: Reduction,
    stage: u32,
    kernel: Option<simt_isa::LoweredKernel>,
    partial: Option<Buffer>,
    out: Option<Buffer>,
}

impl LaunchPlan for ReductionPlan {
    fn next(&mut self, gpu: &mut Gpu) -> Result<PlanStep, SimError> {
        self.stage += 1;
        let blocks = self.w.n / self.w.block;
        match self.stage {
            1 => {
                let kernel = crate::lower_for(&self.w.kernel(), gpu)?;
                let bin = gpu.alloc_words(self.w.n);
                let partial = gpu.alloc_words(blocks);
                let out = gpu.alloc_words(1);
                gpu.write_floats(bin, &self.w.input);
                self.partial = Some(partial);
                self.out = Some(out);
                self.kernel = Some(kernel.clone());
                Ok(PlanStep::Launch {
                    kernel,
                    cfg: LaunchConfig::linear(blocks, self.w.block),
                    params: vec![bin.addr(), partial.addr(), self.w.n],
                })
            }
            2 => Ok(PlanStep::Launch {
                kernel: self.kernel.clone().expect("lowered in stage 1"),
                cfg: LaunchConfig::linear(1, blocks),
                params: vec![
                    self.partial.expect("allocated").addr(),
                    self.out.expect("allocated").addr(),
                    blocks,
                ],
            }),
            _ => Ok(PlanStep::Done(
                gpu.read_words(self.out.expect("allocated"), 1),
            )),
        }
    }

    // The finishing `next` call's host reads are exactly the `Done`
    // vector, in order, and no step decision depends on them: batched
    // replay may classify final-read divergence directly.
    fn outputs_verbatim(&self) -> bool {
        true
    }

    fn clone_plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(self.clone())
    }
}

impl Workload for Reduction {
    fn name(&self) -> &str {
        "reduction"
    }

    fn uses_local_memory(&self) -> bool {
        true
    }

    fn plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(ReductionPlan {
            w: self.clone(),
            stage: 0,
            kernel: None,
            partial: None,
            out: None,
        })
    }

    fn reference(&self) -> Vec<u32> {
        let blocks = (self.n / self.block) as usize;
        let b = self.block as usize;
        let partials: Vec<f32> = (0..blocks)
            .map(|i| Self::tree_reduce(&self.input[i * b..(i + 1) * b]))
            .collect();
        f32_words(&[Self::tree_reduce(&partials)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_archs::{all_devices, quadro_fx_5800};
    use simt_sim::NoopObserver;

    #[test]
    fn matches_reference_on_every_device() {
        let w = Reduction::new(1024, 128, 17);
        for arch in all_devices() {
            let mut gpu = Gpu::new(arch.clone());
            assert_eq!(
                w.run(&mut gpu, &mut NoopObserver).unwrap(),
                w.reference(),
                "{}",
                arch.name
            );
        }
    }

    #[test]
    fn sum_is_close_to_sequential() {
        let w = Reduction::new(512, 64, 5);
        let tree = f32::from_bits(w.reference()[0]);
        let seq: f32 = w.input.iter().sum();
        assert!((tree - seq).abs() < 1e-2, "tree {tree} vs seq {seq}");
    }

    #[test]
    fn ones_sum_exactly() {
        let mut w = Reduction::new(256, 64, 0);
        w.input = vec![1.0; 256];
        let mut gpu = Gpu::new(quadro_fx_5800());
        let out = w.run(&mut gpu, &mut NoopObserver).unwrap();
        assert_eq!(f32::from_bits(out[0]), 256.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_block() {
        let _ = Reduction::new(300, 100, 0);
    }
}
