//! Shared helpers for workload input generation and host references.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for input generation: same seed, same inputs, on
/// every platform (pinned `StdRng` algorithm via the locked `rand`
/// version).
///
/// # Example
/// ```
/// use gpu_workloads::common::rng;
/// let mut a = rng(5);
/// let mut b = rng(5);
/// use rand::Rng;
/// assert_eq!(a.gen::<u32>(), b.gen::<u32>());
/// ```
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `n` uniform floats in `[0, 1)`.
///
/// # Example
/// ```
/// use gpu_workloads::common::uniform_f32;
/// let v = uniform_f32(8, 3);
/// assert_eq!(v.len(), 8);
/// assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
/// ```
pub fn uniform_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen::<f32>()).collect()
}

/// `n` uniform integers in `[0, bound)`.
///
/// # Example
/// ```
/// use gpu_workloads::common::uniform_u32;
/// let v = uniform_u32(100, 16, 3);
/// assert!(v.iter().all(|&x| x < 16));
/// ```
pub fn uniform_u32(n: usize, bound: u32, seed: u64) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0..bound)).collect()
}

/// Reinterprets a float slice as its IEEE-754 words.
///
/// # Example
/// ```
/// use gpu_workloads::common::f32_words;
/// assert_eq!(f32_words(&[1.0]), vec![0x3f80_0000]);
/// ```
pub fn f32_words(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Reinterprets a word slice as floats.
///
/// # Example
/// ```
/// use gpu_workloads::common::words_f32;
/// assert_eq!(words_f32(&[0x3f80_0000]), vec![1.0]);
/// ```
pub fn words_f32(v: &[u32]) -> Vec<f32> {
    v.iter().map(|&x| f32::from_bits(x)).collect()
}

/// The logistic sigmoid evaluated exactly as the GPU-adjacent host phases
/// of `backprop` do (`1 / (1 + 2^(-x·log2 e))`, matching the `FExp2`-based
/// kernel math).
///
/// # Example
/// ```
/// use gpu_workloads::common::sigmoid;
/// assert_eq!(sigmoid(0.0), 0.5);
/// assert!(sigmoid(10.0) > 0.99);
/// ```
pub fn sigmoid(x: f32) -> f32 {
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    1.0 / (1.0 + (-x * LOG2_E).exp2())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_seeded() {
        assert_eq!(uniform_f32(16, 9), uniform_f32(16, 9));
        assert_ne!(uniform_f32(16, 9), uniform_f32(16, 10));
        assert_eq!(uniform_u32(16, 100, 9), uniform_u32(16, 100, 9));
    }

    #[test]
    fn word_roundtrip() {
        let v = vec![0.0f32, -1.5, f32::INFINITY];
        assert_eq!(words_f32(&f32_words(&v)), v);
    }

    #[test]
    fn sigmoid_properties() {
        assert!(sigmoid(-10.0) < 0.01);
        assert!((sigmoid(1.0) + sigmoid(-1.0) - 1.0).abs() < 1e-6);
    }
}
