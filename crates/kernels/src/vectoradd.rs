//! `vectoradd` — element-wise float vector addition (CUDA/APP SDK).

use crate::common::{f32_words, uniform_f32};
use crate::Workload;
use simt_isa::{Kernel, KernelBuilder, MemSpace};
use simt_sim::{Buffer, Gpu, LaunchConfig, LaunchPlan, PlanStep, SimError};

/// `c[i] = a[i] + b[i]` over `n` floats, one thread per element.
///
/// The no-local-memory, bandwidth-bound baseline of the benchmark set: a
/// short register lifetime per thread, so its register-file AVF is driven
/// almost entirely by occupancy.
///
/// # Example
/// ```
/// use gpu_workloads::{VectorAdd, Workload};
/// let w = VectorAdd::new(256, 1);
/// assert_eq!(w.name(), "vectoradd");
/// assert!(!w.uses_local_memory());
/// assert_eq!(w.reference().len(), 256);
/// ```
#[derive(Debug, Clone)]
pub struct VectorAdd {
    n: u32,
    block: u32,
    a: Vec<f32>,
    b: Vec<f32>,
}

impl VectorAdd {
    /// A workload over `n` elements with seeded inputs.
    pub fn new(n: u32, seed: u64) -> Self {
        VectorAdd {
            n,
            block: 128,
            a: uniform_f32(n as usize, seed ^ 0xadd0),
            b: uniform_f32(n as usize, seed ^ 0xadd1),
        }
    }

    /// The default size used by the figure harness (8192 elements).
    pub fn default_size(seed: u64) -> Self {
        Self::new(32768, seed)
    }

    /// Number of elements.
    pub fn len(&self) -> u32 {
        self.n
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("vectoradd", 4);
        let (pa, pb, pc, pn) = (kb.param(0), kb.param(1), kb.param(2), kb.param(3));
        let gid = kb.vreg();
        let off = kb.vreg();
        let va = kb.vreg();
        let vb = kb.vreg();
        let addr = kb.vreg();
        let inb = kb.preg();
        kb.global_tid_x(gid);
        kb.isetp_lt_u(inb, gid, pn);
        kb.if_begin(inb);
        kb.shl_imm(off, gid, 2);
        kb.iadd(addr, off, pa);
        kb.ld(MemSpace::Global, va, addr);
        kb.iadd(addr, off, pb);
        kb.ld(MemSpace::Global, vb, addr);
        kb.fadd(va, va, vb);
        kb.iadd(addr, off, pc);
        kb.st(MemSpace::Global, addr, va);
        kb.if_end();
        kb.exit();
        kb.build().expect("vectoradd kernel is valid")
    }
}

/// Launch plan: upload `a`/`b`, one kernel launch, read back `c`.
#[derive(Clone)]
struct VectorAddPlan {
    w: VectorAdd,
    stage: u32,
    out: Option<Buffer>,
}

impl LaunchPlan for VectorAddPlan {
    fn next(&mut self, gpu: &mut Gpu) -> Result<PlanStep, SimError> {
        self.stage += 1;
        match self.stage {
            1 => {
                let kernel = crate::lower_for(&self.w.kernel(), gpu)?;
                let a = gpu.alloc_words(self.w.n);
                let b = gpu.alloc_words(self.w.n);
                let c = gpu.alloc_words(self.w.n);
                gpu.write_floats(a, &self.w.a);
                gpu.write_floats(b, &self.w.b);
                self.out = Some(c);
                let grid = self.w.n.div_ceil(self.w.block);
                Ok(PlanStep::Launch {
                    kernel,
                    cfg: LaunchConfig::linear(grid, self.w.block),
                    params: vec![a.addr(), b.addr(), c.addr(), self.w.n],
                })
            }
            _ => Ok(PlanStep::Done(
                gpu.read_words(self.out.expect("launched"), self.w.n),
            )),
        }
    }

    // The finishing `next` call's host reads are exactly the `Done`
    // vector, in order, and no step decision depends on them: batched
    // replay may classify final-read divergence directly.
    fn outputs_verbatim(&self) -> bool {
        true
    }

    fn clone_plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(self.clone())
    }
}

impl Workload for VectorAdd {
    fn name(&self) -> &str {
        "vectoradd"
    }

    fn uses_local_memory(&self) -> bool {
        false
    }

    fn plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(VectorAddPlan {
            w: self.clone(),
            stage: 0,
            out: None,
        })
    }

    fn reference(&self) -> Vec<u32> {
        let c: Vec<f32> = self.a.iter().zip(&self.b).map(|(x, y)| x + y).collect();
        f32_words(&c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_archs::{all_devices, quadro_fx_5600};
    use simt_sim::NoopObserver;

    #[test]
    fn matches_reference_on_every_device() {
        let w = VectorAdd::new(512, 11);
        for arch in all_devices() {
            let mut gpu = Gpu::new(arch.clone());
            let out = w.run(&mut gpu, &mut NoopObserver).unwrap();
            assert_eq!(out, w.reference(), "{}", arch.name);
        }
    }

    #[test]
    fn non_multiple_of_block_is_guarded() {
        let w = VectorAdd::new(300, 3);
        let mut gpu = Gpu::new(quadro_fx_5600());
        let out = w.run(&mut gpu, &mut NoopObserver).unwrap();
        assert_eq!(out.len(), 300);
        assert_eq!(out, w.reference());
    }

    #[test]
    fn deterministic_across_runs() {
        let w = VectorAdd::new(256, 5);
        let mut g1 = Gpu::new(quadro_fx_5600());
        let mut g2 = Gpu::new(quadro_fx_5600());
        let o1 = w.run(&mut g1, &mut NoopObserver).unwrap();
        let o2 = w.run(&mut g2, &mut NoopObserver).unwrap();
        assert_eq!(o1, o2);
        assert_eq!(
            g1.app_cycle(),
            g2.app_cycle(),
            "timing is deterministic too"
        );
    }
}
