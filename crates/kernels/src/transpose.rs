//! `transpose` — tiled matrix transpose through padded shared memory
//! (CUDA/APP SDK).

use crate::common::{f32_words, uniform_f32};
use crate::Workload;
use simt_isa::{Kernel, KernelBuilder, MemSpace, Special};
use simt_sim::{Buffer, Dim, Gpu, LaunchConfig, LaunchPlan, PlanStep, SimError};

const TILE: u32 = 16;
/// Tile rows are padded by one word to spread accesses across LDS banks.
const PITCH: u32 = TILE + 1;

/// Out-of-place transpose of an `n × n` float matrix using 16×16 shared
/// tiles with +1 padding (the classic bank-conflict-free formulation).
///
/// Every element passes through local memory exactly once, making this the
/// highest-LDS-traffic benchmark of the set relative to its runtime.
///
/// # Example
/// ```
/// use gpu_workloads::{Transpose, Workload};
/// let w = Transpose::new(32, 9);
/// assert!(w.uses_local_memory());
/// assert_eq!(w.reference().len(), 32 * 32);
/// ```
#[derive(Debug, Clone)]
pub struct Transpose {
    n: u32,
    input: Vec<f32>,
}

impl Transpose {
    /// An `n × n` transpose with seeded input.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a multiple of the 16-element tile.
    pub fn new(n: u32, seed: u64) -> Self {
        assert!(
            n.is_multiple_of(TILE) && n > 0,
            "n must be a positive multiple of {TILE}"
        );
        Transpose {
            n,
            input: uniform_f32((n * n) as usize, seed ^ 0x7a05),
        }
    }

    /// Default size used by the figure harness (128 × 128).
    pub fn default_size(seed: u64) -> Self {
        Self::new(128, seed)
    }

    /// Matrix edge length.
    pub fn n(&self) -> u32 {
        self.n
    }

    fn kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("transpose", 3);
        let (pin, pout, pn) = (kb.param(0), kb.param(1), kb.param(2));
        let x = kb.vreg();
        let y = kb.vreg();
        let idx = kb.vreg();
        let v = kb.vreg();
        let saddr = kb.vreg();
        kb.shared(PITCH * TILE * 4);

        // x = ctaid.x*TILE + tid.x ; y = ctaid.y*TILE + tid.y
        kb.imad(x, Special::CtaIdX, TILE, Special::TidX);
        kb.imad(y, Special::CtaIdY, TILE, Special::TidY);
        // tile[tid.y*PITCH + tid.x] = in[y*n + x]
        kb.imad(idx, y, pn, x);
        kb.word_addr(idx, pin, idx);
        kb.ld(MemSpace::Global, v, idx);
        kb.imad(saddr, Special::TidY, PITCH, Special::TidX);
        kb.shl_imm(saddr, saddr, 2);
        kb.st(MemSpace::Shared, saddr, v);
        kb.bar();
        // out[(ctaid.x*TILE + tid.y)*n + ctaid.y*TILE + tid.x] =
        //     tile[tid.x*PITCH + tid.y]
        kb.imad(saddr, Special::TidX, PITCH, Special::TidY);
        kb.shl_imm(saddr, saddr, 2);
        kb.ld(MemSpace::Shared, v, saddr);
        kb.imad(x, Special::CtaIdY, TILE, Special::TidX);
        kb.imad(y, Special::CtaIdX, TILE, Special::TidY);
        kb.imad(idx, y, pn, x);
        kb.word_addr(idx, pout, idx);
        kb.st(MemSpace::Global, idx, v);
        kb.exit();
        kb.build().expect("transpose kernel is valid")
    }
}

/// Launch plan: upload the matrix, one tiled launch, read the transpose.
#[derive(Clone)]
struct TransposePlan {
    w: Transpose,
    stage: u32,
    out: Option<Buffer>,
}

impl LaunchPlan for TransposePlan {
    fn next(&mut self, gpu: &mut Gpu) -> Result<PlanStep, SimError> {
        self.stage += 1;
        let words = self.w.n * self.w.n;
        match self.stage {
            1 => {
                let kernel = crate::lower_for(&self.w.kernel(), gpu)?;
                let bin = gpu.alloc_words(words);
                let bout = gpu.alloc_words(words);
                gpu.write_floats(bin, &self.w.input);
                self.out = Some(bout);
                let blocks = self.w.n / TILE;
                Ok(PlanStep::Launch {
                    kernel,
                    cfg: LaunchConfig::new(Dim::new(blocks, blocks), Dim::new(TILE, TILE)),
                    params: vec![bin.addr(), bout.addr(), self.w.n],
                })
            }
            _ => Ok(PlanStep::Done(
                gpu.read_words(self.out.expect("launched"), words),
            )),
        }
    }

    // The finishing `next` call's host reads are exactly the `Done`
    // vector, in order, and no step decision depends on them: batched
    // replay may classify final-read divergence directly.
    fn outputs_verbatim(&self) -> bool {
        true
    }

    fn clone_plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(self.clone())
    }
}

impl Workload for Transpose {
    fn name(&self) -> &str {
        "transpose"
    }

    fn uses_local_memory(&self) -> bool {
        true
    }

    fn plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(TransposePlan {
            w: self.clone(),
            stage: 0,
            out: None,
        })
    }

    fn reference(&self) -> Vec<u32> {
        let n = self.n as usize;
        let mut out = vec![0.0f32; n * n];
        for y in 0..n {
            for x in 0..n {
                out[x * n + y] = self.input[y * n + x];
            }
        }
        f32_words(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_archs::{all_devices, geforce_gtx_480};
    use simt_sim::NoopObserver;

    #[test]
    fn matches_reference_on_every_device() {
        let w = Transpose::new(32, 21);
        for arch in all_devices() {
            let mut gpu = Gpu::new(arch.clone());
            assert_eq!(
                w.run(&mut gpu, &mut NoopObserver).unwrap(),
                w.reference(),
                "{}",
                arch.name
            );
        }
    }

    #[test]
    fn transpose_is_involution() {
        let w = Transpose::new(16, 4);
        let once = crate::common::words_f32(&w.reference());
        // Transposing the transpose restores the input.
        let n = 16usize;
        let mut twice = vec![0.0f32; n * n];
        for y in 0..n {
            for x in 0..n {
                twice[x * n + y] = once[y * n + x];
            }
        }
        assert_eq!(twice, w.input);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_non_tile_multiple() {
        let _ = Transpose::new(20, 0);
    }

    #[test]
    fn default_size_runs() {
        let w = Transpose::default_size(1);
        let mut gpu = Gpu::new(geforce_gtx_480());
        assert_eq!(w.run(&mut gpu, &mut NoopObserver).unwrap(), w.reference());
    }
}
