//! # gpu-workloads — the ten benchmarks of the ISPASS 2017 study
//!
//! The original paper evaluates ten benchmarks available in both the CUDA
//! SDK and the AMD APP SDK (seven) plus Rodinia (three), using the *same*
//! algorithm on every device. This crate provides them as MASS kernels
//! with seeded input generators and host-side golden references that
//! mirror the GPU's floating-point operation order **exactly**, so a
//! fault-free simulation matches the reference bit-for-bit:
//!
//! | Workload | Origin | Local memory | Structure |
//! |---|---|---|---|
//! | [`Backprop`] | Rodinia | yes | 2 kernels + host layer |
//! | [`DwtHaar1D`] | CUDA/APP SDK | yes | log₂(n) launches |
//! | [`Gaussian`] | Rodinia | no | 2 kernels × (n−1) iterations |
//! | [`Histogram`] | CUDA/APP SDK | yes | shared bins + global merge |
//! | [`Kmeans`] | Rodinia | no | iterative, host centroid update |
//! | [`MatrixMul`] | CUDA/APP SDK | yes | tiled, barrier-synchronised |
//! | [`Reduction`] | CUDA/APP SDK | yes | 2-level tree |
//! | [`Scan`] | CUDA/APP SDK | yes | 3 kernels (Hillis–Steele) |
//! | [`Transpose`] | CUDA/APP SDK | yes | padded tiles |
//! | [`VectorAdd`] | CUDA/APP SDK | no | single kernel |
//!
//! The "Local memory" column matches Fig. 2 of the paper, which evaluates
//! LDS vulnerability only for the seven benchmarks that use it.
//!
//! # Example
//! ```
//! use gpu_workloads::{VectorAdd, Workload};
//! use gpu_archs::quadro_fx_5600;
//! use simt_sim::{Gpu, NoopObserver};
//!
//! let w = VectorAdd::new(1024, 42);
//! let mut gpu = Gpu::new(quadro_fx_5600());
//! let out = w.run(&mut gpu, &mut NoopObserver)?;
//! assert_eq!(out, w.reference());
//! # Ok::<(), simt_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backprop;
pub mod common;
pub mod dwt;
pub mod gaussian;
pub mod histogram;
pub mod kmeans;
pub mod matmul;
pub mod reduction;
pub mod scan;
pub mod transpose;
pub mod vectoradd;

pub use backprop::Backprop;
pub use dwt::DwtHaar1D;
pub use gaussian::Gaussian;
pub use histogram::Histogram;
pub use kmeans::Kmeans;
pub use matmul::MatrixMul;
pub use reduction::Reduction;
pub use scan::Scan;
pub use transpose::Transpose;
pub use vectoradd::VectorAdd;

use simt_sim::{Gpu, LaunchPlan, Session, SimError, SimObserver};

/// Lowers a kernel for the device's capabilities, mapping ISA errors to a
/// launch-configuration failure.
pub(crate) fn lower_for(
    kernel: &simt_isa::Kernel,
    gpu: &Gpu,
) -> Result<simt_isa::LoweredKernel, SimError> {
    simt_isa::lower(kernel, gpu.arch().caps()).map_err(|e| SimError::LaunchConfig {
        reason: e.to_string(),
    })
}

/// A benchmark that can run on any modelled GPU and knows its own golden
/// output.
///
/// Implementations are deterministic: the same seed produces the same
/// inputs, the same launch schedule and — on a fault-free device — an
/// output bit-identical to [`Workload::reference`].
///
/// Execution is described by [`Workload::plan`] — an explicit, resumable
/// schedule of kernel launches and host steps — which a
/// [`simt_sim::Session`] drives cycle-by-cycle. [`Workload::run`] is a
/// convenience wrapper that drives a fresh session to completion.
pub trait Workload: Send + Sync {
    /// Benchmark name as used in the paper's figures (e.g. `matrixMul`).
    fn name(&self) -> &str;

    /// Whether the kernels use local/shared memory (Fig. 2 membership).
    fn uses_local_memory(&self) -> bool;

    /// The workload's deterministic launch plan: the full schedule of
    /// kernel launches and host-side steps, resumable and cloneable so a
    /// [`simt_sim::Session`] can checkpoint and replay it mid-flight.
    fn plan(&self) -> Box<dyn LaunchPlan>;

    /// Executes the full workload (all launches plus any host phases) on
    /// `gpu`, returning the concatenated output words.
    ///
    /// This is a thin shim over [`Workload::plan`]: it drives a
    /// [`simt_sim::Session`] to completion and produces identical outputs
    /// and cycle counts to stepping the plan by hand.
    ///
    /// # Errors
    ///
    /// Propagates launch failures, including [`simt_sim::Due`]s raised
    /// under fault injection.
    fn run(&self, gpu: &mut Gpu, mut obs: &mut dyn SimObserver) -> Result<Vec<u32>, SimError> {
        Session::new(gpu, self.plan()).run_to_completion(&mut obs)
    }

    /// The host-computed golden output (bit-exact against a fault-free
    /// [`Workload::run`]).
    fn reference(&self) -> Vec<u32>;
}

/// All ten benchmarks with their default (paper-scale-reduced) sizes and
/// the given input seed, in the paper's alphabetical figure order.
///
/// # Example
/// ```
/// use gpu_workloads::all_workloads;
/// let ws = all_workloads(7);
/// assert_eq!(ws.len(), 10);
/// assert_eq!(ws[0].name(), "backprop");
/// assert_eq!(ws[9].name(), "vectoradd");
/// ```
pub fn all_workloads(seed: u64) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Backprop::default_size(seed)),
        Box::new(DwtHaar1D::default_size(seed)),
        Box::new(Gaussian::default_size(seed)),
        Box::new(Histogram::default_size(seed)),
        Box::new(Kmeans::default_size(seed)),
        Box::new(MatrixMul::default_size(seed)),
        Box::new(Reduction::default_size(seed)),
        Box::new(Scan::default_size(seed)),
        Box::new(Transpose::default_size(seed)),
        Box::new(VectorAdd::default_size(seed)),
    ]
}

/// The seven local-memory-using benchmarks of Fig. 2.
///
/// # Example
/// ```
/// use gpu_workloads::local_memory_workloads;
/// let ws = local_memory_workloads(7);
/// assert_eq!(ws.len(), 7);
/// assert!(ws.iter().all(|w| w.uses_local_memory()));
/// ```
pub fn local_memory_workloads(seed: u64) -> Vec<Box<dyn Workload>> {
    all_workloads(seed)
        .into_iter()
        .filter(|w| w.uses_local_memory())
        .collect()
}

/// Looks a workload up by name (paper spelling, case-insensitive).
///
/// # Example
/// ```
/// use gpu_workloads::workload_by_name;
/// assert!(workload_by_name("matrixMul", 1).is_some());
/// assert!(workload_by_name("nonesuch", 1).is_none());
/// ```
pub fn workload_by_name(name: &str, seed: u64) -> Option<Box<dyn Workload>> {
    let n = name.to_ascii_lowercase();
    all_workloads(seed)
        .into_iter()
        .find(|w| w.name().to_ascii_lowercase() == n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper_figures() {
        let ws = all_workloads(1);
        let names: Vec<&str> = ws.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "backprop",
                "dwtHaar1D",
                "gaussian",
                "histogram",
                "kmeans",
                "matrixMul",
                "reduction",
                "scan",
                "transpose",
                "vectoradd"
            ]
        );
        // Fig. 2 membership: gaussian, kmeans, vectoradd have no LDS use.
        let lds: Vec<&str> = ws
            .iter()
            .filter(|w| w.uses_local_memory())
            .map(|w| w.name())
            .collect();
        assert_eq!(
            lds,
            vec![
                "backprop",
                "dwtHaar1D",
                "histogram",
                "matrixMul",
                "reduction",
                "scan",
                "transpose"
            ]
        );
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(
            workload_by_name("MATRIXMUL", 1).unwrap().name(),
            "matrixMul"
        );
        assert_eq!(
            workload_by_name("dwthaar1d", 1).unwrap().name(),
            "dwtHaar1D"
        );
    }
}
