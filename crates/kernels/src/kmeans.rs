//! `kmeans` — iterative k-means clustering (Rodinia): GPU nearest-centroid
//! assignment, host centroid update.

use crate::common::uniform_f32;
use crate::Workload;
use simt_isa::{CmpOp, Kernel, KernelBuilder, MemSpace};
use simt_sim::{Buffer, Gpu, LaunchConfig, LaunchPlan, PlanStep, SimError};

/// `iters` rounds of k-means over `n` points with `FEATURES` features and
/// `k` clusters: the assignment kernel runs on the GPU (distance loop over
/// centroids, features unrolled, branch-free best tracking via selects,
/// exactly like Rodinia's `kmeans_cuda_kernel`), the averaging runs on the
/// host.
///
/// Output is the final membership vector.
///
/// # Example
/// ```
/// use gpu_workloads::{Kmeans, Workload};
/// let w = Kmeans::new(256, 4, 2, 1);
/// assert!(!w.uses_local_memory());
/// assert_eq!(w.reference().len(), 256);
/// ```
#[derive(Debug, Clone)]
pub struct Kmeans {
    n: u32,
    k: u32,
    iters: u32,
    points: Vec<f32>,
}

/// Features per point (unrolled in the kernel).
pub const FEATURES: u32 = 4;

impl Kmeans {
    /// Clusters `n` seeded points into `k` clusters for `iters` rounds.
    pub fn new(n: u32, k: u32, iters: u32, seed: u64) -> Self {
        assert!(k >= 1 && n >= k, "need at least one point per cluster");
        Kmeans {
            n,
            k,
            iters,
            points: uniform_f32((n * FEATURES) as usize, seed ^ 0x43a),
        }
    }

    /// Default size used by the figure harness (2048 points, 8 clusters,
    /// 3 iterations).
    pub fn default_size(seed: u64) -> Self {
        Self::new(2048, 8, 3, seed)
    }

    fn kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("kmeans", 5);
        let (ppts, pcent, pmemb, pn, pk) = (
            kb.param(0),
            kb.param(1),
            kb.param(2),
            kb.param(3),
            kb.param(4),
        );
        let c = kb.sreg();
        let caddr = kb.sreg();
        let gid = kb.vreg();
        let paddr = kb.vreg();
        let best = kb.vreg();
        let best_d = kb.vreg();
        let dist = kb.vreg();
        let diff = kb.vreg();
        let pv = kb.vreg();
        let cv = kb.vreg();
        let addr = kb.vreg();
        let inb = kb.preg();
        let done = kb.preg();
        let closer = kb.preg();

        kb.global_tid_x(gid);
        kb.isetp_lt_u(inb, gid, pn);
        kb.if_begin(inb);
        // paddr = &points[gid * FEATURES]
        kb.imad(paddr, gid, FEATURES * 4, ppts);
        kb.mov(best, 0u32);
        kb.movf(best_d, f32::INFINITY);
        kb.mov(c, 0u32);
        kb.loop_begin();
        {
            kb.isetp(CmpOp::UGe, done, c, pk);
            kb.brk(done);
            // caddr = &centroids[c * FEATURES]
            kb.imad(caddr, c, FEATURES * 4, pcent);
            kb.movf(dist, 0.0);
            for j in 0..FEATURES {
                kb.ld_off(MemSpace::Global, pv, paddr, (j * 4) as i32);
                kb.ld_off(MemSpace::Global, cv, caddr, (j * 4) as i32);
                kb.fsub(diff, pv, cv);
                kb.ffma(dist, diff, diff, dist);
            }
            // Branch-free best tracking.
            kb.fsetp(CmpOp::SLt, closer, dist, best_d);
            kb.sel(closer, best_d, dist, best_d);
            kb.sel(closer, best, c, best);
            kb.iadd(c, c, 1u32);
        }
        kb.loop_end();
        kb.word_addr(addr, pmemb, gid);
        kb.st(MemSpace::Global, addr, best);
        kb.if_end();
        kb.exit();
        kb.build().expect("kmeans kernel is valid")
    }

    /// Host mirror of one assignment round (for the reference).
    fn host_assign(&self, centroids: &[f32]) -> Vec<u32> {
        let (n, k, f) = (self.n as usize, self.k as usize, FEATURES as usize);
        (0..n)
            .map(|p| {
                let mut best = 0u32;
                let mut best_d = f32::INFINITY;
                for c in 0..k {
                    let mut dist = 0.0f32;
                    for j in 0..f {
                        let diff = self.points[p * f + j] - centroids[c * f + j];
                        dist = diff.mul_add(diff, dist);
                    }
                    if dist < best_d {
                        best_d = dist;
                        best = c as u32;
                    }
                }
                best
            })
            .collect()
    }

    /// Host centroid update shared by `run` and `reference` (must be a
    /// single implementation so fault-free runs stay bit-identical).
    fn update_centroids(&self, membership: &[u32]) -> Vec<f32> {
        let (k, f) = (self.k as usize, FEATURES as usize);
        let mut sums = vec![0.0f32; k * f];
        let mut counts = vec![0u32; k];
        for (p, &m) in membership.iter().enumerate() {
            // A fault-corrupted membership index must not crash the host
            // phase: clamp like Rodinia's bounds-checked accumulation.
            let m = (m as usize).min(k - 1);
            counts[m] += 1;
            for j in 0..f {
                sums[m * f + j] += self.points[p * f + j];
            }
        }
        let mut cent = self.initial_centroids();
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..f {
                    cent[c * f + j] = sums[c * f + j] / counts[c] as f32;
                }
            }
        }
        cent
    }

    /// Initial centroids: the first `k` points (Rodinia's choice).
    fn initial_centroids(&self) -> Vec<f32> {
        self.points[..(self.k * FEATURES) as usize].to_vec()
    }
}

/// Launch plan: one assignment launch per round with a host centroid
/// update between rounds; the host state (current centroids, last
/// membership) lives in the plan so checkpoints capture it.
#[derive(Clone)]
struct KmeansPlan {
    w: Kmeans,
    kernel: Option<simt_isa::LoweredKernel>,
    bufs: Option<(Buffer, Buffer, Buffer)>,
    centroids: Vec<f32>,
    membership: Vec<u32>,
    iter: u32,
}

impl KmeansPlan {
    /// Uploads the current centroids and emits the assignment launch.
    fn launch_round(&mut self, gpu: &mut Gpu) -> PlanStep {
        let (pts, cent, memb) = self.bufs.expect("initialised");
        gpu.write_floats(cent, &self.centroids);
        PlanStep::Launch {
            kernel: self.kernel.clone().expect("initialised"),
            cfg: LaunchConfig::linear(self.w.n.div_ceil(128), 128),
            params: vec![pts.addr(), cent.addr(), memb.addr(), self.w.n, self.w.k],
        }
    }
}

impl LaunchPlan for KmeansPlan {
    fn next(&mut self, gpu: &mut Gpu) -> Result<PlanStep, SimError> {
        if self.bufs.is_none() {
            self.kernel = Some(crate::lower_for(&self.w.kernel(), gpu)?);
            let pts = gpu.alloc_words(self.w.n * FEATURES);
            let cent = gpu.alloc_words(self.w.k * FEATURES);
            let memb = gpu.alloc_words(self.w.n);
            gpu.write_floats(pts, &self.w.points);
            self.bufs = Some((pts, cent, memb));
            self.centroids = self.w.initial_centroids();
            self.membership = vec![0u32; self.w.n as usize];
            if self.w.iters == 0 {
                return Ok(PlanStep::Done(self.membership.clone()));
            }
            return Ok(self.launch_round(gpu));
        }
        // A round's launch just completed: read the assignments and update
        // the centroids on the host.
        let (_, _, memb) = self.bufs.expect("initialised");
        self.membership = gpu.read_words(memb, self.w.n);
        self.centroids = self.w.update_centroids(&self.membership);
        self.iter += 1;
        if self.iter < self.w.iters {
            Ok(self.launch_round(gpu))
        } else {
            Ok(PlanStep::Done(self.membership.clone()))
        }
    }

    // The finishing `next` call's host reads are exactly the `Done`
    // vector, in order, and no step decision depends on them: batched
    // replay may classify final-read divergence directly.
    fn outputs_verbatim(&self) -> bool {
        true
    }

    fn clone_plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(self.clone())
    }
}

impl Workload for Kmeans {
    fn name(&self) -> &str {
        "kmeans"
    }

    fn uses_local_memory(&self) -> bool {
        false
    }

    fn plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(KmeansPlan {
            w: self.clone(),
            kernel: None,
            bufs: None,
            centroids: Vec::new(),
            membership: Vec::new(),
            iter: 0,
        })
    }

    fn reference(&self) -> Vec<u32> {
        let mut centroids = self.initial_centroids();
        let mut membership = Vec::new();
        for _ in 0..self.iters {
            membership = self.host_assign(&centroids);
            centroids = self.update_centroids(&membership);
        }
        membership
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_archs::{all_devices, geforce_gtx_480};
    use simt_sim::NoopObserver;

    #[test]
    fn matches_reference_on_every_device() {
        let w = Kmeans::new(256, 4, 2, 41);
        for arch in all_devices() {
            let mut gpu = Gpu::new(arch.clone());
            assert_eq!(
                w.run(&mut gpu, &mut NoopObserver).unwrap(),
                w.reference(),
                "{}",
                arch.name
            );
        }
    }

    #[test]
    fn memberships_are_valid_clusters() {
        let w = Kmeans::new(200, 5, 3, 2);
        let memb = w.reference();
        assert!(memb.iter().all(|&m| m < 5));
        // Every cluster that seeded from a point keeps at least its seed
        // point nearby — at minimum the assignment is non-degenerate:
        assert!(memb.iter().any(|&m| m != memb[0]) || w.k == 1);
    }

    #[test]
    fn one_cluster_is_trivial() {
        let w = Kmeans::new(64, 1, 2, 3);
        let mut gpu = Gpu::new(geforce_gtx_480());
        let out = w.run(&mut gpu, &mut NoopObserver).unwrap();
        assert_eq!(out, vec![0u32; 64]);
    }

    #[test]
    fn iterations_refine_centroids() {
        let w1 = Kmeans::new(256, 4, 1, 7);
        let w3 = Kmeans::new(256, 4, 3, 7);
        // Same inputs, more rounds: assignments exist and are comparable.
        assert_eq!(w1.reference().len(), w3.reference().len());
    }
}
