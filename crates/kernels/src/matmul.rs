//! `matrixMul` — tiled dense matrix multiplication through shared memory
//! (CUDA/APP SDK).

use crate::common::{f32_words, uniform_f32};
use crate::Workload;
use simt_isa::{CmpOp, Kernel, KernelBuilder, MemSpace, Special};
use simt_sim::{Buffer, Dim, Gpu, LaunchConfig, LaunchPlan, PlanStep, SimError};

const TILE: u32 = 16;

/// `C = A × B` for `n × n` float matrices, 16×16 tiles staged in shared
/// memory with the classic double-barrier loop, inner product unrolled.
///
/// The compute-bound benchmark of the set: long accumulator lifetimes in
/// the register file and heavy LDS reuse.
///
/// # Example
/// ```
/// use gpu_workloads::{MatrixMul, Workload};
/// let w = MatrixMul::new(32, 5);
/// assert_eq!(w.name(), "matrixMul");
/// assert!(w.uses_local_memory());
/// ```
#[derive(Debug, Clone)]
pub struct MatrixMul {
    n: u32,
    a: Vec<f32>,
    b: Vec<f32>,
}

impl MatrixMul {
    /// An `n × n` multiply with seeded inputs.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a multiple of the 16-element tile.
    pub fn new(n: u32, seed: u64) -> Self {
        assert!(
            n.is_multiple_of(TILE) && n > 0,
            "n must be a positive multiple of {TILE}"
        );
        MatrixMul {
            n,
            a: uniform_f32((n * n) as usize, seed ^ 0x3a7a),
            b: uniform_f32((n * n) as usize, seed ^ 0x3a7b),
        }
    }

    /// Default size used by the figure harness (96 × 96).
    pub fn default_size(seed: u64) -> Self {
        Self::new(96, seed)
    }

    /// Matrix edge length.
    pub fn n(&self) -> u32 {
        self.n
    }

    fn kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("matrixMul", 4);
        let (pa, pb, pc, pn) = (kb.param(0), kb.param(1), kb.param(2), kb.param(3));
        let ntiles = kb.sreg();
        let m = kb.sreg();
        let m16 = kb.sreg();
        let row = kb.vreg();
        let col = kb.vreg();
        let acc = kb.vreg();
        let idx = kb.vreg();
        let v = kb.vreg();
        let sa = kb.vreg();
        let as_base = kb.vreg();
        let bs_base = kb.vreg();
        let done = kb.preg();
        let as_off = kb.shared(TILE * TILE * 4);
        let bs_off = kb.shared(TILE * TILE * 4);

        kb.imad(row, Special::CtaIdY, TILE, Special::TidY);
        kb.imad(col, Special::CtaIdX, TILE, Special::TidX);
        kb.movf(acc, 0.0);
        // Shared bases for the unrolled inner product.
        kb.imul(as_base, Special::TidY, TILE * 4); // tid.y row of As
        kb.shl_imm(bs_base, Special::TidX, 2); // tid.x col of Bs
        kb.udiv(ntiles, pn, TILE);
        kb.mov(m, 0u32);
        kb.loop_begin();
        {
            kb.isetp(CmpOp::UGe, done, m, ntiles);
            kb.brk(done);
            kb.imul(m16, m, TILE);
            // As[tid.y][tid.x] = A[row*n + m*16 + tid.x]
            kb.imad(idx, row, pn, m16);
            kb.iadd(idx, idx, Special::TidX);
            kb.word_addr(idx, pa, idx);
            kb.ld(MemSpace::Global, v, idx);
            kb.imad(sa, Special::TidY, TILE, Special::TidX);
            kb.shl_imm(sa, sa, 2);
            kb.st_off(MemSpace::Shared, sa, as_off as i32, v);
            // Bs[tid.y][tid.x] = B[(m*16 + tid.y)*n + col]
            kb.iadd(idx, m16, Special::TidY);
            kb.imad(idx, idx, pn, col);
            kb.word_addr(idx, pb, idx);
            kb.ld(MemSpace::Global, v, idx);
            kb.st_off(MemSpace::Shared, sa, bs_off as i32, v);
            kb.bar();
            // acc += As[tid.y][k] * Bs[k][tid.x], unrolled over k.
            let t0 = kb.vreg();
            let t1 = kb.vreg();
            for k in 0..TILE {
                kb.ld_off(MemSpace::Shared, t0, as_base, (as_off + k * 4) as i32);
                kb.ld_off(
                    MemSpace::Shared,
                    t1,
                    bs_base,
                    (bs_off + k * TILE * 4) as i32,
                );
                kb.ffma(acc, t0, t1, acc);
            }
            kb.bar();
            kb.iadd(m, m, 1u32);
        }
        kb.loop_end();
        // C[row*n + col] = acc
        kb.imad(idx, row, pn, col);
        kb.word_addr(idx, pc, idx);
        kb.st(MemSpace::Global, idx, acc);
        kb.exit();
        kb.build().expect("matrixMul kernel is valid")
    }
}

/// Launch plan: upload `A`/`B`, one tiled launch, read back `C`.
#[derive(Clone)]
struct MatrixMulPlan {
    w: MatrixMul,
    stage: u32,
    out: Option<Buffer>,
}

impl LaunchPlan for MatrixMulPlan {
    fn next(&mut self, gpu: &mut Gpu) -> Result<PlanStep, SimError> {
        self.stage += 1;
        let words = self.w.n * self.w.n;
        match self.stage {
            1 => {
                let kernel = crate::lower_for(&self.w.kernel(), gpu)?;
                let a = gpu.alloc_words(words);
                let b = gpu.alloc_words(words);
                let c = gpu.alloc_words(words);
                gpu.write_floats(a, &self.w.a);
                gpu.write_floats(b, &self.w.b);
                self.out = Some(c);
                let blocks = self.w.n / TILE;
                Ok(PlanStep::Launch {
                    kernel,
                    cfg: LaunchConfig::new(Dim::new(blocks, blocks), Dim::new(TILE, TILE)),
                    params: vec![a.addr(), b.addr(), c.addr(), self.w.n],
                })
            }
            _ => Ok(PlanStep::Done(
                gpu.read_words(self.out.expect("launched"), words),
            )),
        }
    }

    // The finishing `next` call's host reads are exactly the `Done`
    // vector, in order, and no step decision depends on them: batched
    // replay may classify final-read divergence directly.
    fn outputs_verbatim(&self) -> bool {
        true
    }

    fn clone_plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(self.clone())
    }
}

impl Workload for MatrixMul {
    fn name(&self) -> &str {
        "matrixMul"
    }

    fn uses_local_memory(&self) -> bool {
        true
    }

    fn plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(MatrixMulPlan {
            w: self.clone(),
            stage: 0,
            out: None,
        })
    }

    fn reference(&self) -> Vec<u32> {
        let n = self.n as usize;
        let mut c = vec![0.0f32; n * n];
        for row in 0..n {
            for col in 0..n {
                // Mirror the kernel exactly: fused multiply-adds in k order.
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc = self.a[row * n + k].mul_add(self.b[k * n + col], acc);
                }
                c[row * n + col] = acc;
            }
        }
        f32_words(&c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_archs::{all_devices, hd_radeon_7970};
    use simt_sim::NoopObserver;

    #[test]
    fn matches_reference_on_every_device() {
        let w = MatrixMul::new(32, 13);
        for arch in all_devices() {
            let mut gpu = Gpu::new(arch.clone());
            assert_eq!(
                w.run(&mut gpu, &mut NoopObserver).unwrap(),
                w.reference(),
                "{}",
                arch.name
            );
        }
    }

    #[test]
    fn identity_times_matrix_is_matrix() {
        let mut w = MatrixMul::new(16, 2);
        w.a = vec![0.0; 256];
        for i in 0..16 {
            w.a[i * 16 + i] = 1.0;
        }
        let mut gpu = Gpu::new(hd_radeon_7970());
        let out = w.run(&mut gpu, &mut NoopObserver).unwrap();
        assert_eq!(out, f32_words(&w.b));
    }

    #[test]
    fn scalar_loop_counter_stays_scalar_on_si() {
        // On Southern Islands the tile counter lowers to the scalar file.
        let w = MatrixMul::new(16, 2);
        let k = simt_isa::lower(&w.kernel(), hd_radeon_7970().caps()).unwrap();
        assert!(
            k.sregs_per_warp() >= 3,
            "ntiles, m, m16 in scalar registers"
        );
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_bad_size() {
        let _ = MatrixMul::new(30, 0);
    }
}
