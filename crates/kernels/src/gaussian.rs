//! `gaussian` — Gaussian elimination (Rodinia): iterative `Fan1`/`Fan2`
//! kernel pairs, one per pivot column.

use crate::common::{f32_words, uniform_f32};
use crate::Workload;
use simt_isa::{CmpOp, Kernel, KernelBuilder, MemSpace};
use simt_sim::{Buffer, Dim, Gpu, LaunchConfig, LaunchPlan, PlanStep, SimError};

/// Forward elimination of an `n × n` system `A·x = b` with the Rodinia
/// kernel pair: `Fan1` computes the column of multipliers, `Fan2` updates
/// the trailing submatrix and right-hand side; `n − 1` iterations of two
/// launches each (the paper's most launch-heavy workload).
///
/// Outputs are the eliminated `A` followed by the updated `b`, exactly
/// what the GPU produces (Rodinia's back-substitution is host-side).
///
/// # Example
/// ```
/// use gpu_workloads::{Gaussian, Workload};
/// let w = Gaussian::new(16, 3);
/// assert!(!w.uses_local_memory());
/// assert_eq!(w.reference().len(), 16 * 16 + 16);
/// ```
#[derive(Debug, Clone)]
pub struct Gaussian {
    n: u32,
    a: Vec<f32>,
    b: Vec<f32>,
}

impl Gaussian {
    /// An `n × n` system with a seeded, diagonally dominant matrix (so no
    /// pivot degenerates).
    pub fn new(n: u32, seed: u64) -> Self {
        assert!(n >= 2, "system must be at least 2x2");
        let mut a = uniform_f32((n * n) as usize, seed ^ 0x6a55);
        let b = uniform_f32(n as usize, seed ^ 0x6a56);
        for i in 0..n as usize {
            a[i * n as usize + i] += n as f32; // diagonal dominance
        }
        Gaussian { n, a, b }
    }

    /// Default size used by the figure harness (32 × 32).
    pub fn default_size(seed: u64) -> Self {
        Self::new(32, seed)
    }

    /// `Fan1`: m[i][t] = a[i][t] / a[t][t] for rows i > t.
    fn fan1(&self) -> Kernel {
        let mut kb = KernelBuilder::new("gaussian_fan1", 4);
        let (pm, pa, pn, pt) = (kb.param(0), kb.param(1), kb.param(2), kb.param(3));
        let rows = kb.sreg(); // n - 1 - t
        let gid = kb.vreg();
        let row = kb.vreg();
        let num = kb.vreg();
        let den = kb.vreg();
        let addr = kb.vreg();
        let inb = kb.preg();
        kb.isub(rows, pn, pt);
        kb.isub(rows, rows, 1u32);
        kb.global_tid_x(gid);
        kb.isetp_lt_u(inb, gid, rows);
        kb.if_begin(inb);
        // row = t + 1 + gid
        kb.iadd(row, gid, pt);
        kb.iadd(row, row, 1u32);
        // num = a[row*n + t] ; den = a[t*n + t]
        kb.imad(addr, row, pn, pt);
        kb.word_addr(addr, pa, addr);
        kb.ld(MemSpace::Global, num, addr);
        kb.imad(addr, pt, pn, pt);
        kb.word_addr(addr, pa, addr);
        kb.ld(MemSpace::Global, den, addr);
        kb.fdiv(num, num, den);
        // m[row*n + t] = num
        kb.imad(addr, row, pn, pt);
        kb.word_addr(addr, pm, addr);
        kb.st(MemSpace::Global, addr, num);
        kb.if_end();
        kb.exit();
        kb.build().expect("fan1 kernel is valid")
    }

    /// `Fan2`: a[i][j] -= m[i][t] * a[t][j] (and b[i] -= m[i][t] * b[t]).
    fn fan2(&self) -> Kernel {
        let mut kb = KernelBuilder::new("gaussian_fan2", 5);
        let (pm, pa, pb, pn, pt) = (
            kb.param(0),
            kb.param(1),
            kb.param(2),
            kb.param(3),
            kb.param(4),
        );
        let rows = kb.sreg(); // n - 1 - t
        let cols = kb.sreg(); // n - t
        let x = kb.vreg();
        let y = kb.vreg();
        let row = kb.vreg();
        let col = kb.vreg();
        let mult = kb.vreg();
        let v = kb.vreg();
        let pivot = kb.vreg();
        let addr = kb.vreg();
        let px = kb.preg();
        let py = kb.preg();
        kb.isub(rows, pn, pt);
        kb.isub(rows, rows, 1u32);
        kb.isub(cols, pn, pt);
        kb.global_tid_x(x); // row offset
        kb.global_tid_y(y); // column offset
        kb.isetp_lt_u(px, x, rows);
        kb.if_begin(px);
        kb.isetp_lt_u(py, y, cols);
        kb.if_begin(py);
        // row = t + 1 + x ; col = t + y
        kb.iadd(row, x, pt);
        kb.iadd(row, row, 1u32);
        kb.iadd(col, y, pt);
        // mult = m[row*n + t]
        kb.imad(addr, row, pn, pt);
        kb.word_addr(addr, pm, addr);
        kb.ld(MemSpace::Global, mult, addr);
        // a[row*n + col] -= mult * a[t*n + col]  (mul then sub, as Rodinia)
        kb.imad(addr, pt, pn, col);
        kb.word_addr(addr, pa, addr);
        kb.ld(MemSpace::Global, pivot, addr);
        kb.fmul(pivot, mult, pivot);
        kb.imad(addr, row, pn, col);
        kb.word_addr(addr, pa, addr);
        kb.ld(MemSpace::Global, v, addr);
        kb.fsub(v, v, pivot);
        kb.st(MemSpace::Global, addr, v);
        // if (y == 0) b[row] -= mult * b[t]
        kb.isetp(CmpOp::Eq, py, y, 0u32);
        kb.if_begin(py);
        kb.word_addr(addr, pb, pt);
        kb.ld(MemSpace::Global, pivot, addr);
        kb.fmul(pivot, mult, pivot);
        kb.word_addr(addr, pb, row);
        kb.ld(MemSpace::Global, v, addr);
        kb.fsub(v, v, pivot);
        kb.st(MemSpace::Global, addr, v);
        kb.if_end();
        kb.if_end();
        kb.if_end();
        kb.exit();
        kb.build().expect("fan2 kernel is valid")
    }
}

/// Launch plan: alternating `Fan1`/`Fan2` launches for each pivot column
/// `t`, then read the eliminated matrix and right-hand side.
#[derive(Clone)]
struct GaussianPlan {
    w: Gaussian,
    fan1: Option<simt_isa::LoweredKernel>,
    fan2: Option<simt_isa::LoweredKernel>,
    bufs: Option<(Buffer, Buffer, Buffer)>,
    t: u32,
    next_is_fan2: bool,
}

impl LaunchPlan for GaussianPlan {
    fn next(&mut self, gpu: &mut Gpu) -> Result<PlanStep, SimError> {
        let n = self.w.n;
        if self.bufs.is_none() {
            self.fan1 = Some(crate::lower_for(&self.w.fan1(), gpu)?);
            self.fan2 = Some(crate::lower_for(&self.w.fan2(), gpu)?);
            let a = gpu.alloc_words(n * n);
            let b = gpu.alloc_words(n);
            let m = gpu.alloc_words(n * n);
            gpu.write_floats(a, &self.w.a);
            gpu.write_floats(b, &self.w.b);
            self.bufs = Some((a, b, m));
        }
        let (a, b, m) = self.bufs.expect("initialised");
        if self.t < n - 1 {
            let t = self.t;
            let rows = n - 1 - t;
            if !self.next_is_fan2 {
                self.next_is_fan2 = true;
                return Ok(PlanStep::Launch {
                    kernel: self.fan1.clone().expect("initialised"),
                    cfg: LaunchConfig::linear(rows.div_ceil(64), 64),
                    params: vec![m.addr(), a.addr(), n, t],
                });
            }
            self.next_is_fan2 = false;
            self.t += 1;
            let cols = n - t;
            return Ok(PlanStep::Launch {
                kernel: self.fan2.clone().expect("initialised"),
                cfg: LaunchConfig::new(
                    Dim::new(rows.div_ceil(16), cols.div_ceil(16)),
                    Dim::new(16, 16),
                ),
                params: vec![m.addr(), a.addr(), b.addr(), n, t],
            });
        }
        let mut out = gpu.read_words(a, n * n);
        out.extend(gpu.read_words(b, n));
        Ok(PlanStep::Done(out))
    }

    // The finishing `next` call's host reads are exactly the `Done`
    // vector, in order, and no step decision depends on them: batched
    // replay may classify final-read divergence directly.
    fn outputs_verbatim(&self) -> bool {
        true
    }

    fn clone_plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(self.clone())
    }
}

impl Workload for Gaussian {
    fn name(&self) -> &str {
        "gaussian"
    }

    fn uses_local_memory(&self) -> bool {
        false
    }

    fn plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(GaussianPlan {
            w: self.clone(),
            fan1: None,
            fan2: None,
            bufs: None,
            t: 0,
            next_is_fan2: false,
        })
    }

    fn reference(&self) -> Vec<u32> {
        let n = self.n as usize;
        let mut a = self.a.clone();
        let mut b = self.b.clone();
        let mut m = vec![0.0f32; n * n];
        for t in 0..n - 1 {
            for i in t + 1..n {
                m[i * n + t] = a[i * n + t] / a[t * n + t];
            }
            for i in t + 1..n {
                for j in t..n {
                    a[i * n + j] -= m[i * n + t] * a[t * n + j];
                }
                b[i] -= m[i * n + t] * b[t];
            }
        }
        let mut out = f32_words(&a);
        out.extend(f32_words(&b));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::words_f32;
    use gpu_archs::{all_devices, quadro_fx_5800};
    use simt_sim::NoopObserver;

    #[test]
    fn matches_reference_on_every_device() {
        let w = Gaussian::new(16, 37);
        for arch in all_devices() {
            let mut gpu = Gpu::new(arch.clone());
            assert_eq!(
                w.run(&mut gpu, &mut NoopObserver).unwrap(),
                w.reference(),
                "{}",
                arch.name
            );
        }
    }

    #[test]
    fn elimination_zeroes_lower_triangle() {
        let w = Gaussian::new(8, 5);
        let mut gpu = Gpu::new(quadro_fx_5800());
        let out = words_f32(&w.run(&mut gpu, &mut NoopObserver).unwrap());
        let n = 8usize;
        for i in 1..n {
            for j in 0..i {
                assert!(
                    out[i * n + j].abs() < 1e-3,
                    "a[{i}][{j}] = {} not eliminated",
                    out[i * n + j]
                );
            }
        }
    }

    #[test]
    fn solution_solves_system() {
        // Back-substitute the GPU result and check A·x ≈ b on the inputs.
        let w = Gaussian::new(8, 11);
        let mut gpu = Gpu::new(quadro_fx_5800());
        let out = words_f32(&w.run(&mut gpu, &mut NoopObserver).unwrap());
        let n = 8usize;
        let (a_el, b_el) = out.split_at(n * n);
        let mut x = vec![0.0f32; n];
        for i in (0..n).rev() {
            let mut s = b_el[i];
            for j in i + 1..n {
                s -= a_el[i * n + j] * x[j];
            }
            x[i] = s / a_el[i * n + i];
        }
        for i in 0..n {
            let lhs: f32 = (0..n).map(|j| w.a[i * n + j] * x[j]).sum();
            assert!((lhs - w.b[i]).abs() < 1e-2, "row {i}: {lhs} vs {}", w.b[i]);
        }
    }
}
