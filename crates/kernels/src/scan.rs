//! `scan` — multi-block inclusive prefix sum (Hillis–Steele in shared
//! memory, CUDA/APP SDK formulation with a block-sums fix-up pass).

use crate::common::{f32_words, uniform_f32};
use crate::Workload;
use simt_isa::{CmpOp, Kernel, KernelBuilder, MemSpace, Special};
use simt_sim::{Buffer, Gpu, LaunchConfig, LaunchPlan, PlanStep, SimError};

/// Inclusive prefix sum of `n` floats in three launches: per-block
/// Hillis–Steele scan (collecting block sums), a scan of the block sums,
/// and a uniform fix-up add.
///
/// # Example
/// ```
/// use gpu_workloads::{Scan, Workload};
/// let w = Scan::new(512, 128, 3);
/// assert!(w.uses_local_memory());
/// assert_eq!(w.reference().len(), 512);
/// ```
#[derive(Debug, Clone)]
pub struct Scan {
    n: u32,
    block: u32,
    input: Vec<f32>,
}

impl Scan {
    /// Scans `n` elements with blocks of `block` threads.
    ///
    /// # Panics
    ///
    /// Panics unless `block` and the block count are powers of two and `n`
    /// is a multiple of `block`.
    pub fn new(n: u32, block: u32, seed: u64) -> Self {
        assert!(block.is_power_of_two(), "block must be a power of two");
        assert!(
            n.is_multiple_of(block) && n > 0,
            "n must be a positive multiple of block"
        );
        assert!(
            (n / block).is_power_of_two(),
            "block count must be a power of two"
        );
        Scan {
            n,
            block,
            input: uniform_f32(n as usize, seed ^ 0x5ca),
        }
    }

    /// Default size used by the figure harness (4096 elements, block 256).
    pub fn default_size(seed: u64) -> Self {
        Self::new(4096, 256, seed)
    }

    /// Per-block inclusive Hillis–Steele scan; also emits the block total.
    fn scan_kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("scan", 3);
        let (pin, pout, psums) = (kb.param(0), kb.param(1), kb.param(2));
        let off = kb.sreg();
        let off4 = kb.sreg();
        let gid = kb.vreg();
        let v = kb.vreg();
        let t = kb.vreg();
        let tid4 = kb.vreg();
        let addr = kb.vreg();
        let last = kb.vreg();
        let p = kb.preg();
        let q = kb.preg();
        kb.shared(1024); // blocks up to 256 threads

        // sdata[tid] = in[gid]
        kb.global_tid_x(gid);
        kb.word_addr(addr, pin, gid);
        kb.ld(MemSpace::Global, v, addr);
        kb.shl_imm(tid4, Special::TidX, 2);
        kb.st(MemSpace::Shared, tid4, v);
        kb.bar();
        // for (offset = 1; offset < ntid; offset <<= 1)
        kb.mov(off, 1u32);
        kb.loop_begin();
        {
            kb.isetp(CmpOp::UGe, p, off, Special::NTidX);
            kb.brk(p);
            // t = tid >= offset ? sdata[tid - offset] : 0
            kb.movf(t, 0.0);
            kb.isetp(CmpOp::UGe, q, Special::TidX, off);
            kb.if_begin(q);
            kb.shl_imm(off4, off, 2);
            kb.isub(addr, tid4, off4);
            kb.ld(MemSpace::Shared, t, addr);
            kb.if_end();
            kb.bar();
            // sdata[tid] += t
            kb.ld(MemSpace::Shared, v, tid4);
            kb.fadd(v, v, t);
            kb.st(MemSpace::Shared, tid4, v);
            kb.bar();
            kb.shl_imm(off, off, 1);
        }
        kb.loop_end();
        // out[gid] = sdata[tid]
        kb.ld(MemSpace::Shared, v, tid4);
        kb.word_addr(addr, pout, gid);
        kb.st(MemSpace::Global, addr, v);
        // if (tid == ntid - 1) sums[ctaid] = sdata[tid]
        kb.isub(last, Special::NTidX, 1u32);
        kb.isetp(CmpOp::Eq, p, Special::TidX, last);
        kb.if_begin(p);
        kb.mov(addr, Special::CtaIdX);
        kb.word_addr(addr, psums, addr);
        kb.st(MemSpace::Global, addr, v);
        kb.if_end();
        kb.exit();
        kb.build().expect("scan kernel is valid")
    }

    /// Adds the scanned sum of all preceding blocks to each element.
    fn fixup_kernel(&self) -> Kernel {
        let mut kb = KernelBuilder::new("scan_fixup", 2);
        let (pout, pssums) = (kb.param(0), kb.param(1));
        let gid = kb.vreg();
        let v = kb.vreg();
        let t = kb.vreg();
        let addr = kb.vreg();
        let saddr = kb.vreg();
        let p = kb.preg();
        kb.isetp(CmpOp::UGt, p, Special::CtaIdX, 0u32);
        kb.if_begin(p);
        kb.global_tid_x(gid);
        kb.word_addr(addr, pout, gid);
        kb.ld(MemSpace::Global, v, addr);
        kb.mov(saddr, Special::CtaIdX);
        kb.isub(saddr, saddr, 1u32);
        kb.word_addr(saddr, pssums, saddr);
        kb.ld(MemSpace::Global, t, saddr);
        kb.fadd(v, v, t);
        kb.st(MemSpace::Global, addr, v);
        kb.if_end();
        kb.exit();
        kb.build().expect("scan fixup kernel is valid")
    }

    /// Host mirror of one Hillis–Steele block scan.
    fn host_block_scan(vals: &mut [f32]) {
        let n = vals.len();
        let mut offset = 1;
        while offset < n {
            let t: Vec<f32> = (0..n)
                .map(|i| if i >= offset { vals[i - offset] } else { 0.0 })
                .collect();
            for i in 0..n {
                vals[i] += t[i];
            }
            offset <<= 1;
        }
    }
}

/// Launch plan: per-block scan, block-sums scan, uniform fix-up, readback.
#[derive(Clone)]
struct ScanPlan {
    w: Scan,
    stage: u32,
    scan_k: Option<simt_isa::LoweredKernel>,
    bufs: Option<(Buffer, Buffer, Buffer, Buffer, Buffer)>,
}

impl LaunchPlan for ScanPlan {
    fn next(&mut self, gpu: &mut Gpu) -> Result<PlanStep, SimError> {
        self.stage += 1;
        let blocks = self.w.n / self.w.block;
        match self.stage {
            1 => {
                let scan_k = crate::lower_for(&self.w.scan_kernel(), gpu)?;
                let bin = gpu.alloc_words(self.w.n);
                let bout = gpu.alloc_words(self.w.n);
                let sums = gpu.alloc_words(blocks);
                let ssums = gpu.alloc_words(blocks);
                let scratch = gpu.alloc_words(1);
                gpu.write_floats(bin, &self.w.input);
                self.bufs = Some((bin, bout, sums, ssums, scratch));
                self.scan_k = Some(scan_k.clone());
                Ok(PlanStep::Launch {
                    kernel: scan_k,
                    cfg: LaunchConfig::linear(blocks, self.w.block),
                    params: vec![bin.addr(), bout.addr(), sums.addr()],
                })
            }
            2 => {
                let (_, _, sums, ssums, scratch) = self.bufs.expect("allocated");
                Ok(PlanStep::Launch {
                    kernel: self.scan_k.clone().expect("lowered in stage 1"),
                    cfg: LaunchConfig::linear(1, blocks),
                    params: vec![sums.addr(), ssums.addr(), scratch.addr()],
                })
            }
            3 => {
                let (_, bout, _, ssums, _) = self.bufs.expect("allocated");
                Ok(PlanStep::Launch {
                    kernel: crate::lower_for(&self.w.fixup_kernel(), gpu)?,
                    cfg: LaunchConfig::linear(blocks, self.w.block),
                    params: vec![bout.addr(), ssums.addr()],
                })
            }
            _ => {
                let (_, bout, _, _, _) = self.bufs.expect("allocated");
                Ok(PlanStep::Done(gpu.read_words(bout, self.w.n)))
            }
        }
    }

    // The finishing `next` call's host reads are exactly the `Done`
    // vector, in order, and no step decision depends on them: batched
    // replay may classify final-read divergence directly.
    fn outputs_verbatim(&self) -> bool {
        true
    }

    fn clone_plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(self.clone())
    }
}

impl Workload for Scan {
    fn name(&self) -> &str {
        "scan"
    }

    fn uses_local_memory(&self) -> bool {
        true
    }

    fn plan(&self) -> Box<dyn LaunchPlan> {
        Box::new(ScanPlan {
            w: self.clone(),
            stage: 0,
            scan_k: None,
            bufs: None,
        })
    }

    fn reference(&self) -> Vec<u32> {
        let b = self.block as usize;
        let blocks = (self.n / self.block) as usize;
        let mut out = self.input.clone();
        let mut sums = vec![0.0f32; blocks];
        for i in 0..blocks {
            Self::host_block_scan(&mut out[i * b..(i + 1) * b]);
            sums[i] = out[(i + 1) * b - 1];
        }
        Self::host_block_scan(&mut sums);
        for i in 1..blocks {
            for x in &mut out[i * b..(i + 1) * b] {
                *x += sums[i - 1];
            }
        }
        f32_words(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_archs::{all_devices, geforce_gtx_480};
    use simt_sim::NoopObserver;

    #[test]
    fn matches_reference_on_every_device() {
        let w = Scan::new(512, 128, 23);
        for arch in all_devices() {
            let mut gpu = Gpu::new(arch.clone());
            assert_eq!(
                w.run(&mut gpu, &mut NoopObserver).unwrap(),
                w.reference(),
                "{}",
                arch.name
            );
        }
    }

    #[test]
    fn scan_of_ones_is_iota() {
        let mut w = Scan::new(256, 64, 0);
        w.input = vec![1.0; 256];
        let mut gpu = Gpu::new(geforce_gtx_480());
        let out = w.run(&mut gpu, &mut NoopObserver).unwrap();
        let floats = crate::common::words_f32(&out);
        for (i, v) in floats.iter().enumerate() {
            assert_eq!(*v, (i + 1) as f32, "prefix {i}");
        }
    }

    #[test]
    fn inclusive_last_equals_total() {
        let w = Scan::new(256, 64, 9);
        let floats = crate::common::words_f32(&w.reference());
        let seq: f32 = w.input.iter().sum();
        assert!((floats[255] - seq).abs() < 1e-2);
    }
}
