//! Live campaign progress on stderr.
//!
//! [`ProgressHook`] implements [`TelemetryHook`] and counts completed
//! injections as they stream past (any counter whose name starts with
//! `campaign_injections_total` — the per-outcome labelled series). It
//! redraws a single `\r`-rewritten stderr line, throttled so the hot
//! loop never blocks on the terminal.
//!
//! The hook is pruning-aware: lifetime-oracle pruning resolves sites
//! instantly in a burst at campaign start (they are counted both as
//! injections and under `campaign_pruned_total`), which would make a
//! naive `done/elapsed` rate wildly misestimate the remaining wall
//! time. The ETA therefore projects only the *live* replay rate over
//! the expected live share of the remaining sites.
//!
//! It is also batch-aware: bit-plane batched replay classifies up to 64
//! sites per shared simulation pass, delivering their outcome counters
//! in one burst *after* a long silent pass. Measuring the replay rate
//! against "now" would decay it throughout every pass and snap back at
//! each burst — a sawtoothing ETA. The rate basis is therefore frozen
//! at the moment the latest completions merged
//! ([`ProgressHook::count`] stamps it on every injection counter), so
//! the projection holds steady between bursts, and the batch counters
//! (`campaign_batched_total` / `campaign_batches_total`) are folded in
//! for the shared-pass note on the progress line.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::hook::TelemetryHook;

/// Counter-name prefix that marks one finished injection.
const INJECTION_COUNTER_PREFIX: &str = "campaign_injections_total";

/// Counter counting sites the lifetime oracle resolved without replay.
const PRUNED_COUNTER: &str = "campaign_pruned_total";

/// Counter counting sites classified inside shared bit-plane passes.
const BATCHED_COUNTER: &str = "campaign_batched_total";

/// Counter counting the shared bit-plane passes themselves.
const BATCHES_COUNTER: &str = "campaign_batches_total";

/// Minimum interval between stderr redraws.
const REDRAW_EVERY: Duration = Duration::from_millis(100);

/// A hook that renders `done/total, inj/s, ETA` as a live stderr line.
#[derive(Debug)]
pub struct ProgressHook {
    total: u64,
    done: AtomicU64,
    pruned: AtomicU64,
    batched: AtomicU64,
    batches: AtomicU64,
    /// Elapsed microseconds at the most recent injection-counter event:
    /// the frozen rate basis (0 = no event yet, fall back to now).
    last_event_us: AtomicU64,
    started: Instant,
    last_draw: Mutex<Instant>,
}

impl ProgressHook {
    /// A progress bar expecting `total` injections in this run.
    pub fn new(total: u64) -> Self {
        let now = Instant::now();
        ProgressHook {
            total,
            done: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            last_event_us: AtomicU64::new(0),
            started: now,
            // Backdate so the very first injection draws immediately.
            last_draw: Mutex::new(now - REDRAW_EVERY),
        }
    }

    /// Injections counted so far (replayed and pruned).
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Sites the lifetime oracle resolved without a replay.
    pub fn pruned(&self) -> u64 {
        self.pruned.load(Ordering::Relaxed)
    }

    /// Sites classified inside shared bit-plane passes so far.
    pub fn batched(&self) -> u64 {
        self.batched.load(Ordering::Relaxed)
    }

    /// Shared bit-plane passes completed so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// The elapsed seconds the rate projection divides by: the moment
    /// the latest completions merged, not "now". Between the bursts a
    /// batched campaign delivers (up to 64 outcomes per shared pass)
    /// this basis does not advance, so the ETA stays put instead of
    /// sawtoothing up during every silent pass. Falls back to the
    /// current elapsed time until the first completion arrives.
    fn rate_basis_seconds(&self) -> f64 {
        match self.last_event_us.load(Ordering::Relaxed) {
            0 => self.started.elapsed().as_secs_f64(),
            us => us as f64 / 1e6,
        }
    }

    /// Seconds left, projecting the live replay rate over the live
    /// share of the remaining sites. Pruned sites cost ~nothing, so
    /// the remaining work is `(total - done)` scaled by the fraction
    /// of sites seen so far that actually replayed, at the rate those
    /// replays have sustained (batched sites fold in at their
    /// amortized per-pass cost, since the rate is measured over the
    /// merged stream). `None` until a rate exists or once done.
    fn eta_seconds(&self, done: u64, pruned: u64) -> Option<f64> {
        if done == 0 || done >= self.total {
            return None;
        }
        let elapsed = self.rate_basis_seconds();
        let live_done = done.saturating_sub(pruned);
        if elapsed <= 0.0 || live_done == 0 {
            return None;
        }
        let live_rate = live_done as f64 / elapsed;
        let live_frac = live_done as f64 / done as f64;
        let remaining_live = (self.total - done) as f64 * live_frac;
        Some(remaining_live / live_rate)
    }

    /// Renders the line: `done/total (pruned, batched) | rate inj/s | ETA`.
    fn render(&self, done: u64) -> String {
        let pruned = self.pruned();
        let batched = self.batched();
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let eta = self
            .eta_seconds(done, pruned)
            .map(format_duration)
            .unwrap_or_else(|| "--".to_string());
        let mut notes = Vec::new();
        if pruned > 0 {
            notes.push(format!("{pruned} pruned"));
        }
        if batched > 0 {
            notes.push(format!("{batched} batched/{} passes", self.batches()));
        }
        let note = if notes.is_empty() {
            String::new()
        } else {
            format!(" ({})", notes.join(", "))
        };
        format!(
            "  {done}/{total} injections{note} | {rate:.1} inj/s | ETA {eta}",
            total = self.total
        )
    }

    fn draw(&self, done: u64, force: bool) {
        let now = Instant::now();
        {
            let mut last = self.last_draw.lock().expect("progress poisoned");
            if !force && now.duration_since(*last) < REDRAW_EVERY {
                return;
            }
            *last = now;
        }
        eprint!("\r{:<72}", self.render(done));
    }

    /// Draws the final state and moves stderr to a fresh line.
    pub fn finish(&self) {
        self.draw(self.done(), true);
        eprintln!();
    }
}

impl TelemetryHook for ProgressHook {
    fn count(&self, name: &str, delta: u64) {
        if name == PRUNED_COUNTER {
            self.pruned.fetch_add(delta, Ordering::Relaxed);
        } else if name == BATCHED_COUNTER {
            self.batched.fetch_add(delta, Ordering::Relaxed);
        } else if name == BATCHES_COUNTER {
            self.batches.fetch_add(delta, Ordering::Relaxed);
        } else if name.starts_with(INJECTION_COUNTER_PREFIX) {
            let done = self.done.fetch_add(delta, Ordering::Relaxed) + delta;
            self.last_event_us
                .store(self.started.elapsed().as_micros() as u64, Ordering::Relaxed);
            self.draw(done, false);
        }
    }
}

fn format_duration(secs: f64) -> String {
    let s = secs.round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_injection_counters() {
        let p = ProgressHook::new(10);
        p.count(r#"campaign_injections_total{outcome="masked"}"#, 3);
        p.count("sim_snapshots_total", 5);
        p.count(r#"campaign_injections_total{outcome="sdc"}"#, 1);
        assert_eq!(p.done(), 4);
    }

    #[test]
    fn tracks_pruned_sites_separately() {
        let p = ProgressHook::new(100);
        p.count(PRUNED_COUNTER, 40);
        p.count(r#"campaign_injections_total{outcome="masked"}"#, 40);
        p.count(r#"campaign_injections_total{outcome="sdc"}"#, 10);
        assert_eq!(p.done(), 50);
        assert_eq!(p.pruned(), 40);
        let line = p.render(50);
        assert!(line.contains("(40 pruned)"), "line = {line}");
    }

    #[test]
    fn tracks_batch_counters_separately() {
        // A shared pass announces its size, then delivers the per-site
        // outcome burst: the batch counters must fold in without
        // double-counting done.
        let p = ProgressHook::new(100);
        p.count(BATCHES_COUNTER, 1);
        p.count(BATCHED_COUNTER, 64);
        p.count(r#"campaign_injections_total{outcome="masked"}"#, 60);
        p.count(r#"campaign_injections_total{outcome="sdc"}"#, 4);
        assert_eq!(p.done(), 64);
        assert_eq!(p.batched(), 64);
        assert_eq!(p.batches(), 1);
        let line = p.render(64);
        assert!(line.contains("(64 batched/1 passes)"), "line = {line}");
    }

    #[test]
    fn render_shows_done_total_rate_and_eta() {
        let p = ProgressHook::new(100);
        p.count(r#"campaign_injections_total{outcome="masked"}"#, 50);
        let line = p.render(50);
        assert!(line.contains("50/100"), "line = {line}");
        assert!(line.contains("inj/s"), "line = {line}");
        assert!(line.contains("ETA"), "line = {line}");
        assert!(
            !line.contains("pruned") && !line.contains("batched"),
            "no notes when nothing pruned or batched: {line}"
        );
    }

    #[test]
    fn eta_projects_live_rate_not_burst_rate() {
        // 90 of 100 sites seen, 80 of them pruned instantly: a naive
        // ETA from done/elapsed would assume the remaining 10 finish at
        // the burst-inflated rate. The live projection scales remaining
        // work by the live fraction (1/9) and divides by the live rate
        // measured to the last completion event.
        let p = ProgressHook::new(100);
        std::thread::sleep(Duration::from_millis(5));
        p.count(PRUNED_COUNTER, 80);
        p.count(r#"campaign_injections_total{outcome="masked"}"#, 90);
        std::thread::sleep(Duration::from_millis(20));
        let eta = p.eta_seconds(90, 80).expect("rate exists");
        let basis = p.last_event_us.load(Ordering::Relaxed) as f64 / 1e6;
        assert!(basis > 0.0, "completion event stamped the rate basis");
        let live_rate = 10.0 / basis;
        let expected = (10.0 * (10.0 / 90.0)) / live_rate;
        assert!(
            (eta - expected).abs() < 1e-6,
            "eta = {eta}, expected = {expected}"
        );
        // And with everything pruned so far, no live rate exists yet.
        let q = ProgressHook::new(100);
        q.count(PRUNED_COUNTER, 50);
        q.count(r#"campaign_injections_total{outcome="masked"}"#, 50);
        assert_eq!(q.eta_seconds(50, 50), None);
    }

    #[test]
    fn eta_holds_steady_during_a_silent_shared_pass() {
        // A batched campaign goes quiet for the length of a shared
        // pass, then bursts. The ETA computed mid-pass must equal the
        // ETA computed right after the last burst — the frozen rate
        // basis is exactly what stops the sawtooth.
        let p = ProgressHook::new(256);
        std::thread::sleep(Duration::from_millis(5));
        p.count(BATCHES_COUNTER, 1);
        p.count(BATCHED_COUNTER, 64);
        p.count(r#"campaign_injections_total{outcome="masked"}"#, 64);
        let at_burst = p.eta_seconds(64, 0).expect("rate exists");
        std::thread::sleep(Duration::from_millis(30));
        let mid_pass = p.eta_seconds(64, 0).expect("rate still exists");
        assert_eq!(
            at_burst.to_bits(),
            mid_pass.to_bits(),
            "ETA must not drift while a shared pass is in flight"
        );
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(5.0), "5s");
        assert_eq!(format_duration(65.0), "1m05s");
        assert_eq!(format_duration(3700.0), "1h01m");
    }
}
