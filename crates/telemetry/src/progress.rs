//! Live campaign progress on stderr.
//!
//! [`ProgressHook`] implements [`TelemetryHook`] and counts completed
//! injections as they stream past (any counter whose name starts with
//! `campaign_injections_total` — the per-outcome labelled series). It
//! redraws a single `\r`-rewritten stderr line, throttled so the hot
//! loop never blocks on the terminal.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::hook::TelemetryHook;

/// Counter-name prefix that marks one finished injection.
const INJECTION_COUNTER_PREFIX: &str = "campaign_injections_total";

/// Minimum interval between stderr redraws.
const REDRAW_EVERY: Duration = Duration::from_millis(100);

/// A hook that renders `done/total, inj/s, ETA` as a live stderr line.
#[derive(Debug)]
pub struct ProgressHook {
    total: u64,
    done: AtomicU64,
    started: Instant,
    last_draw: Mutex<Instant>,
}

impl ProgressHook {
    /// A progress bar expecting `total` injections in this run.
    pub fn new(total: u64) -> Self {
        let now = Instant::now();
        ProgressHook {
            total,
            done: AtomicU64::new(0),
            started: now,
            // Backdate so the very first injection draws immediately.
            last_draw: Mutex::new(now - REDRAW_EVERY),
        }
    }

    /// Injections counted so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Renders the line: `done/total | rate inj/s | ETA`.
    fn render(&self, done: u64) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let eta = if rate > 0.0 && done < self.total {
            let secs = (self.total - done) as f64 / rate;
            format_duration(secs)
        } else {
            "--".to_string()
        };
        format!(
            "  {done}/{total} injections | {rate:.1} inj/s | ETA {eta}",
            total = self.total
        )
    }

    fn draw(&self, done: u64, force: bool) {
        let now = Instant::now();
        {
            let mut last = self.last_draw.lock().expect("progress poisoned");
            if !force && now.duration_since(*last) < REDRAW_EVERY {
                return;
            }
            *last = now;
        }
        eprint!("\r{:<60}", self.render(done));
    }

    /// Draws the final state and moves stderr to a fresh line.
    pub fn finish(&self) {
        self.draw(self.done(), true);
        eprintln!();
    }
}

impl TelemetryHook for ProgressHook {
    fn count(&self, name: &str, delta: u64) {
        if name.starts_with(INJECTION_COUNTER_PREFIX) {
            let done = self.done.fetch_add(delta, Ordering::Relaxed) + delta;
            self.draw(done, false);
        }
    }
}

fn format_duration(secs: f64) -> String {
    let s = secs.round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_injection_counters() {
        let p = ProgressHook::new(10);
        p.count(r#"campaign_injections_total{outcome="masked"}"#, 3);
        p.count("sim_snapshots_total", 5);
        p.count(r#"campaign_injections_total{outcome="sdc"}"#, 1);
        assert_eq!(p.done(), 4);
    }

    #[test]
    fn render_shows_done_total_rate_and_eta() {
        let p = ProgressHook::new(100);
        p.count(r#"campaign_injections_total{outcome="masked"}"#, 50);
        let line = p.render(50);
        assert!(line.contains("50/100"), "line = {line}");
        assert!(line.contains("inj/s"), "line = {line}");
        assert!(line.contains("ETA"), "line = {line}");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(5.0), "5s");
        assert_eq!(format_duration(65.0), "1m05s");
        assert_eq!(format_duration(3700.0), "1h01m");
    }
}
