//! Minimal JSON tree, writer and parser.
//!
//! The workspace vendors a no-op `serde` shim (the build environment has
//! no registry access), so the telemetry layer carries its own tiny JSON
//! implementation: enough to write JSONL event streams and to read them
//! back for `repro report`. The writer emits one canonical form (no
//! superfluous whitespace, integers without a fractional part); the
//! parser accepts any standard JSON document.
//!
//! # Example
//! ```
//! use grel_telemetry::json::Json;
//! let v = Json::Obj(vec![
//!     ("event".into(), Json::from("campaign.done")),
//!     ("injections".into(), Json::from(2000u64)),
//! ]);
//! let line = v.to_string();
//! assert_eq!(line, r#"{"event":"campaign.done","injections":2000}"#);
//! let back = Json::parse(&line).unwrap();
//! assert_eq!(back.get("injections").and_then(Json::as_u64), Some(2000));
//! ```

use std::fmt;

/// A JSON value. Objects preserve insertion order (JSONL lines stay
/// human-readable and diff-stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the byte offset of the first
    /// syntax error, including trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-surprising stand-in.
        return f.write_str("null");
    }
    // 2^53: the largest range where f64 holds integers exactly.
    if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A JSON syntax error with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Json) {
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v, "roundtrip of {text}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(Json::Null);
        roundtrip(Json::Bool(true));
        roundtrip(Json::Bool(false));
        roundtrip(Json::Num(0.0));
        roundtrip(Json::Num(-17.0));
        roundtrip(Json::Num(3.25));
        roundtrip(Json::Str("plain".into()));
        roundtrip(Json::Str("esc \"quote\" \\ \n\t\u{1}中".into()));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(Json::Arr(vec![Json::Num(1.0), Json::Str("x".into())]));
        roundtrip(Json::Obj(vec![
            ("a".into(), Json::Null),
            ("b".into(), Json::Arr(vec![])),
            ("c".into(), Json::Obj(vec![("n".into(), Json::Num(2.0))])),
        ]));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(2000.0).to_string(), "2000");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parser_accepts_standard_json() {
        let v =
            Json::parse(" { \"k\" : [ 1 , true , null , \"\\u0041\\ud83d\\ude00\" ] } ").unwrap();
        let arr = v.get("k").unwrap();
        match arr {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[3], Json::Str("A😀".into()));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"s":"x","n":4,"f":1.5}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("f").and_then(Json::as_u64), None);
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("missing"), None);
        let a = Json::Arr(vec![Json::Num(1.0)]);
        assert_eq!(a.as_arr().map(<[Json]>::len), Some(1));
        assert_eq!(Json::Null.as_arr(), None);
    }

    #[test]
    fn control_characters_escape_and_round_trip() {
        // Every C0 control plus the two mandatory escapes: the writer
        // must emit legal JSON and the parser must read back the exact
        // original string. Workload names and event fields are
        // user-influenced, so the event stream has to survive them.
        let mut nasty = String::from("tab\there\nline\rret\x08back\x0cfeed quote\"slash\\");
        for b in 0x00u8..0x20 {
            nasty.push(b as char);
        }
        let doc = Json::Obj(vec![("s".into(), Json::from(nasty.as_str()))]);
        let text = doc.to_string();
        // The serialized form contains no raw control bytes at all.
        assert!(
            text.bytes().all(|b| b >= 0x20),
            "raw control byte leaked into {text:?}"
        );
        let back = Json::parse(&text).expect("escaped string parses");
        assert_eq!(back.get("s").and_then(Json::as_str), Some(nasty.as_str()));
    }

    #[test]
    fn named_escapes_use_short_forms() {
        let text = Json::from("a\"b\\c\nd\re\tf").to_string();
        assert_eq!(text, r#""a\"b\\c\nd\re\tf""#);
        // Unnamed controls fall back to \u00XX.
        assert_eq!(Json::from("\x01").to_string(), r#""\u0001""#);
        assert_eq!(Json::from("\x1f").to_string(), r#""\u001f""#);
    }
}
