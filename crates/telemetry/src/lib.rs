//! Campaign telemetry for the GPU reliability reproduction.
//!
//! Fault-injection campaigns are statistical instruments — thousands of
//! replays per structure — and this crate is how they stop running
//! dark. It provides four pieces, composable and individually optional:
//!
//! - [`MetricsRegistry`]: lock-cheap counters, gauges and log-bucketed
//!   histograms. Every recording thread writes to a private shard
//!   (registered through a thread-local table), so the scoped-thread
//!   injection loop records without contention; [`MetricsRegistry::snapshot`]
//!   merges all shards at harvest time. Merges are associative and
//!   order-independent.
//! - [`TelemetryHook`]: the instrumentation seam. Hot code is generic
//!   over the hook; [`NoopHook`] sets `ENABLED = false` and call sites
//!   guard with `if H::ENABLED`, so uninstrumented builds monomorphise
//!   the telemetry away entirely (same pattern as the simulator's
//!   `NoopObserver`). [`RegistryHook`] is the production implementation.
//! - Structured events: [`Event`] + [`EventSink`] with a JSONL file
//!   sink ([`JsonlSink`]) whose output `repro report` parses back via
//!   the vendored [`json`] module (the workspace's `serde` is a no-op
//!   shim).
//! - Hierarchical spans: [`SpanRecorder`] + [`SpanHook`] collect timed,
//!   path-addressed regions of the campaign pipeline into per-thread
//!   ring buffers and merge them into a deterministic [`SpanTree`]
//!   (Chrome trace-event export for Perfetto, jobs-invariant structural
//!   text for CI diffs). Off by default via the hook's `SPANS` const.
//! - Presentation: [`to_prometheus`] text exposition, a level-gated
//!   [`Logger`] that keeps stdout machine-parseable, a live
//!   [`ProgressHook`] stderr line, and [`SpanTimer`] scoped timers.
//! - The observatory: [`serve()`] binds a dependency-free HTTP/1.1
//!   endpoint (`/metrics`, `/health`, `/progress`, `/convergence`) over
//!   the live registry and a [`StatusBoard`] fed from the event stream,
//!   so a running campaign can be scraped mid-flight.
//!
//! # Overhead contract
//!
//! With [`NoopHook`] the instrumented code paths compile to the same
//! machine code as before instrumentation: `ENABLED` is a `const`,
//! every telemetry branch is statically dead, and no clock is read. A
//! criterion bench in `grel-bench` guards this. With a live hook, the
//! record path is one thread-local lookup plus one uncontended mutex
//! lock — no cross-thread traffic until harvest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod expo;
pub mod hook;
pub mod json;
pub mod logger;
pub mod metrics;
pub mod progress;
pub mod serve;
pub mod spans;
pub mod timer;

pub use events::{Event, EventSink, JsonlSink, MemorySink, NullSink, TeeSink};
pub use expo::to_prometheus;
pub use hook::{NoopHook, RegistryHook, TelemetryHook};
pub use json::{Json, JsonError};
pub use logger::{LogLevel, Logger};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use progress::ProgressHook;
pub use serve::{serve, Observatory, ServerHandle, StatusBoard};
pub use spans::{SpanHook, SpanNode, SpanRecord, SpanRecorder, SpanTree};
pub use timer::{SpanTimer, Stopwatch};
