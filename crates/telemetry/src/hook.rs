//! Zero-cost instrumentation hooks.
//!
//! Hot paths (the injection replay loop, the session stepper) are
//! generic over [`TelemetryHook`]. When instantiated with [`NoopHook`]
//! the associated `ENABLED` constant is `false`, every call site is
//! guarded by `if H::ENABLED`, and the optimiser removes the
//! instrumentation entirely — the same monomorphisation pattern as
//! `simt_sim::NoopObserver`.

use crate::events::{Event, EventSink};
use crate::metrics::MetricsRegistry;
use crate::spans::SpanRecord;

/// Receiver for metrics and structured events from instrumented code.
///
/// All methods default to no-ops so implementors opt into just the
/// signals they care about. `ENABLED` lets call sites skip argument
/// construction (timestamps, formatted label strings) entirely when the
/// hook is a no-op.
pub trait TelemetryHook: Sync {
    /// Whether this hook observes anything. Call sites should guard
    /// non-trivial argument construction with `if H::ENABLED`.
    const ENABLED: bool = true;

    /// Whether this hook records profiling spans. Defaults to `false`
    /// even for enabled hooks — span-path construction is guarded by
    /// `if H::SPANS` separately, so metric-only runs pay nothing for
    /// the profiler and their metric/event streams are unchanged.
    const SPANS: bool = false;

    /// Adds `delta` to a monotonic counter.
    fn count(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets a gauge to `value`.
    fn gauge(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Records one histogram sample.
    fn observe(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Emits a structured event.
    fn event(&self, event: &Event) {
        let _ = event;
    }

    /// Records one completed profiling span.
    fn span(&self, span: &SpanRecord) {
        let _ = span;
    }
}

/// The hook that observes nothing; instrumented code monomorphised with
/// it compiles to the uninstrumented code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopHook;

impl TelemetryHook for NoopHook {
    const ENABLED: bool = false;
}

impl<H: TelemetryHook> TelemetryHook for &H {
    const ENABLED: bool = H::ENABLED;
    const SPANS: bool = H::SPANS;

    fn count(&self, name: &str, delta: u64) {
        (**self).count(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        (**self).gauge(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        (**self).observe(name, value);
    }

    fn event(&self, event: &Event) {
        (**self).event(event);
    }

    fn span(&self, span: &SpanRecord) {
        (**self).span(span);
    }
}

/// Fans every signal out to both halves; enabled if either half is.
impl<A: TelemetryHook, B: TelemetryHook> TelemetryHook for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;
    const SPANS: bool = A::SPANS || B::SPANS;

    fn count(&self, name: &str, delta: u64) {
        self.0.count(name, delta);
        self.1.count(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.0.gauge(name, value);
        self.1.gauge(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.0.observe(name, value);
        self.1.observe(name, value);
    }

    fn event(&self, event: &Event) {
        self.0.event(event);
        self.1.event(event);
    }

    fn span(&self, span: &SpanRecord) {
        self.0.span(span);
        self.1.span(span);
    }
}

/// The production hook: metrics land in a [`MetricsRegistry`], events
/// (if a sink is attached) in an [`EventSink`].
pub struct RegistryHook<'a> {
    registry: &'a MetricsRegistry,
    sink: Option<&'a dyn EventSink>,
}

impl std::fmt::Debug for RegistryHook<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryHook")
            .field("registry", self.registry)
            .field("has_sink", &self.sink.is_some())
            .finish()
    }
}

impl<'a> RegistryHook<'a> {
    /// A hook recording into `registry` only.
    pub fn new(registry: &'a MetricsRegistry) -> Self {
        RegistryHook {
            registry,
            sink: None,
        }
    }

    /// A hook recording into `registry` and emitting events to `sink`.
    pub fn with_sink(registry: &'a MetricsRegistry, sink: &'a dyn EventSink) -> Self {
        RegistryHook {
            registry,
            sink: Some(sink),
        }
    }
}

impl TelemetryHook for RegistryHook<'_> {
    fn count(&self, name: &str, delta: u64) {
        self.registry.counter(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.registry.gauge(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.registry.observe(name, value);
    }

    fn event(&self, event: &Event) {
        if let Some(sink) = self.sink {
            sink.emit(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::MemorySink;

    fn exercise<H: TelemetryHook>(hook: &H) {
        if H::ENABLED {
            hook.count("c", 1);
            hook.gauge("g", 2.0);
            hook.observe("h", 3.0);
            hook.event(&Event::new("e"));
        }
    }

    #[test]
    // The constant-ness of ENABLED is exactly the property under test.
    #[allow(clippy::assertions_on_constants)]
    fn noop_hook_is_disabled() {
        assert!(!NoopHook::ENABLED);
        assert!(!<&NoopHook as TelemetryHook>::ENABLED);
        assert!(!<(NoopHook, NoopHook) as TelemetryHook>::ENABLED);
        exercise(&NoopHook);
    }

    #[test]
    fn registry_hook_records_everything() {
        let reg = MetricsRegistry::new();
        let sink = MemorySink::new();
        let hook = RegistryHook::with_sink(&reg, &sink);
        exercise(&hook);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(1));
        assert_eq!(snap.gauge("g"), Some(2.0));
        assert_eq!(snap.histogram("h").unwrap().count(), 1);
        assert_eq!(sink.events().len(), 1);
    }

    #[test]
    // The constant-ness of SPANS is exactly the property under test.
    #[allow(clippy::assertions_on_constants)]
    fn spans_default_off_and_propagate_through_combinators() {
        assert!(!NoopHook::SPANS);
        assert!(!RegistryHook::SPANS, "metric-only runs never build spans");
        assert!(!<(NoopHook, RegistryHook<'_>) as TelemetryHook>::SPANS);
        assert!(<(RegistryHook<'_>, crate::SpanHook<'_>) as TelemetryHook>::SPANS);
        assert!(<&crate::SpanHook<'_> as TelemetryHook>::SPANS);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn pair_hook_fans_out_and_is_enabled_if_either_is() {
        assert!(<(NoopHook, RegistryHook<'_>) as TelemetryHook>::ENABLED);
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        let pair = (RegistryHook::new(&a), RegistryHook::new(&b));
        exercise(&pair);
        assert_eq!(a.snapshot().counter("c"), Some(1));
        assert_eq!(b.snapshot().counter("c"), Some(1));
    }
}
