//! Prometheus-style text exposition of a [`MetricsSnapshot`].
//!
//! Metric names may carry inline labels in the usual form
//! (`campaign_injections_total{outcome="sdc"}`); the base name before
//! the `{` groups series under one `# TYPE` header. Histograms are
//! exposed as `_count`, `_sum` and quantile-labelled summary lines —
//! enough for eyeballing and for scraping with any Prometheus-
//! compatible collector.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;

fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9_007_199_254_740_992.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders the snapshot in the Prometheus text exposition format.
///
/// ```
/// use grel_telemetry::{to_prometheus, MetricsRegistry};
/// let reg = MetricsRegistry::new();
/// reg.counter(r#"campaign_injections_total{outcome="masked"}"#, 7);
/// let text = to_prometheus(&reg.snapshot());
/// assert!(text.contains("# TYPE campaign_injections_total counter"));
/// assert!(text.contains(r#"campaign_injections_total{outcome="masked"} 7"#));
/// ```
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut typed: BTreeSet<&str> = BTreeSet::new();

    for (name, value) in snapshot.counters() {
        if typed.insert(base_name(name)) {
            let _ = writeln!(out, "# TYPE {} counter", base_name(name));
        }
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in snapshot.gauges() {
        if typed.insert(base_name(name)) {
            let _ = writeln!(out, "# TYPE {} gauge", base_name(name));
        }
        let _ = writeln!(out, "{name} {}", fmt_value(value));
    }
    for (name, hist) in snapshot.histograms() {
        let base = base_name(name);
        if typed.insert(base) {
            let _ = writeln!(out, "# TYPE {base} summary");
        }
        for q in [0.5, 0.9, 0.99] {
            let _ = writeln!(
                out,
                "{base}{{quantile=\"{q}\"}} {}",
                fmt_value(hist.quantile(q))
            );
        }
        let _ = writeln!(out, "{base}_sum {}", fmt_value(hist.sum()));
        let _ = writeln!(out, "{base}_count {}", hist.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn renders_all_metric_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("hits_total", 3);
        reg.gauge("rungs", 16.0);
        reg.observe("lat_seconds", 0.5);
        reg.observe("lat_seconds", 0.5);
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE hits_total counter"));
        assert!(text.contains("hits_total 3"));
        assert!(text.contains("# TYPE rungs gauge"));
        assert!(text.contains("rungs 16"));
        assert!(text.contains("# TYPE lat_seconds summary"));
        assert!(text.contains("lat_seconds_count 2"));
        assert!(text.contains("lat_seconds_sum 1"));
    }

    #[test]
    fn labelled_series_share_one_type_header() {
        let reg = MetricsRegistry::new();
        reg.counter(r#"out_total{k="a"}"#, 1);
        reg.counter(r#"out_total{k="b"}"#, 2);
        let text = to_prometheus(&reg.snapshot());
        assert_eq!(text.matches("# TYPE out_total counter").count(), 1);
        assert!(text.contains(r#"out_total{k="a"} 1"#));
        assert!(text.contains(r#"out_total{k="b"} 2"#));
    }
}
