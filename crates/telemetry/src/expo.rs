//! Prometheus-style text exposition of a [`MetricsSnapshot`].
//!
//! Metric names may carry inline labels in the usual form
//! (`campaign_injections_total{outcome="sdc"}`); the base name before
//! the `{` groups series under one `# HELP`/`# TYPE` header pair.
//! Histograms are exposed natively: cumulative `_bucket{le="..."}`
//! series over the log₂ bucket bounds, plus `_sum` and `_count` — what
//! a Prometheus-compatible collector expects to scrape, including the
//! profiler's injection-latency histograms.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;

fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// The label body of a series name (`k="a"` of `out_total{k="a"}`).
fn labels(name: &str) -> Option<&str> {
    let open = name.find('{')?;
    let close = name.rfind('}')?;
    (close > open).then(|| &name[open + 1..close])
}

/// Escapes one label value for the Prometheus text format: backslash,
/// double quote and line feed must render as `\\`, `\"` and `\n`, or a
/// hostile workload or device name breaks the line-oriented exposition.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Re-renders a series name with every label value escaped. Registry
/// names embed values raw, so delimiters have to be inferred: a value
/// opens at `="` and closes at the first `"` followed by `,` or the end
/// of the label body — any other `"` (or `\` or newline) is content.
fn escape_series(name: &str) -> String {
    let (Some(open), Some(close)) = (name.find('{'), name.rfind('}')) else {
        return name.to_string();
    };
    if close < open {
        return name.to_string();
    }
    let body: Vec<char> = name[open + 1..close].chars().collect();
    let mut out = String::with_capacity(name.len());
    out.push_str(&name[..=open]);
    let mut in_value = false;
    let mut prev = '\0';
    for (i, &c) in body.iter().enumerate() {
        if !in_value {
            out.push(c);
            if c == '"' && prev == '=' {
                in_value = true;
            }
        } else if c == '"' && body.get(i + 1).is_none_or(|&n| n == ',') {
            out.push(c);
            in_value = false;
        } else {
            out.push_str(&escape_label_value(&c.to_string()));
        }
        prev = c;
    }
    out.push_str(&name[close..]);
    out
}

fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9_007_199_254_740_992.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One-line documentation for the well-known metric families; suffix
/// conventions cover everything else so every series gets a `# HELP`.
fn help_text(base: &str) -> &'static str {
    match base {
        "campaign_injections_total" => "Fault injections classified, by outcome.",
        "campaign_injections_by_kind_total" => "Fault injections classified, by fault kind.",
        "campaign_rung_hits_total" => "Replays resumed from each checkpoint rung.",
        "campaign_pruned_total" => "Sites the lifetime oracle resolved without a replay.",
        "campaign_early_exit_total" => "Replays abandoned at a clean overwrite.",
        "campaign_batched_total" => "Sites classified by a shared batched replay pass.",
        "campaign_batches_total" => "Shared batched replay passes run.",
        "campaign_batch_forks_total" => "Batched lanes forked into a private replay.",
        "campaign_batch_final_sdc_total" => {
            "Unforked batched lanes classified SDC from final-output divergence."
        }
        "campaign_batch_fallbacks_total" => "Batches that fell back to scalar replay.",
        "campaign_batch_shared_cycles_total" => "Simulated cycles spent in shared batch passes.",
        "campaign_batch_fork_cycles_total" => "Simulated cycles spent in forked lane replays.",
        "campaign_cycles_replayed_total" => "Simulated cycles spent in injection replays.",
        "campaign_cycles_saved_total" => "Simulated cycles avoided by checkpoints and pruning.",
        "campaign_watchdog_cycles_total" => "Simulated cycles burned in watchdog-killed replays.",
        "campaign_hang_total" => "Replays killed by the watchdog and classified Hang.",
        "campaign_injection_seconds" => "Wall-clock seconds per injection replay.",
        "campaign_worker_seconds" => "Wall-clock seconds each replay worker ran.",
        "campaign_golden_seconds" => "Wall-clock seconds of the golden (fault-free) run.",
        "campaign_golden_cycles" => "Simulated cycles of the golden run.",
        "campaign_workers" => "Replay worker threads used by the last campaign.",
        "campaign_worker_injections_total" => "Injections replayed, by worker.",
        "campaign_worker_injections_per_second" => "Replay throughput, by worker.",
        "campaign_worker_busy_us_total" => "Microseconds each worker spent replaying injections.",
        "campaign_worker_us_total" => "Microseconds each worker's replay loop was alive.",
        "campaign_injection_latency_us_total" => {
            "Injection replay latency, log2-microsecond buckets by outcome."
        }
        "campaign_injection_latency_by_kind_us_total" => {
            "Injection replay latency, log2-microsecond buckets by fault kind."
        }
        "ladder_build_seconds" => "Wall-clock seconds building the checkpoint ladder.",
        "ladder_rungs" => "Checkpoints in the ladder.",
        "ladder_bytes" => "Bytes held by the checkpoint ladder.",
        "sim_instructions_total" => "Warp instructions executed by the simulator.",
        "sim_snapshots_total" => "Simulator snapshots taken.",
        "sim_snapshot_bytes_total" => "Bytes serialized into simulator snapshots.",
        "sim_snapshot_seconds" => "Wall-clock seconds taking simulator snapshots.",
        "sim_restores_total" => "Simulator snapshot restores.",
        "study_point_seconds" => "Wall-clock seconds per (workload, device) study point.",
        "observatory_requests_total" => "HTTP requests answered by the observatory, by path.",
        _ => "",
    }
}

fn write_header(out: &mut String, typed: &mut BTreeSet<String>, base: &str, kind: &str) {
    if typed.insert(base.to_string()) {
        let help = help_text(base);
        if help.is_empty() {
            let fallback = match () {
                _ if base.ends_with("_total") => "Monotonic event counter.",
                _ if base.ends_with("_seconds") => "Wall-clock duration histogram (seconds).",
                _ if base.ends_with("_bytes") => "Size in bytes.",
                _ => "Campaign telemetry series.",
            };
            let _ = writeln!(out, "# HELP {base} {fallback}");
        } else {
            let _ = writeln!(out, "# HELP {base} {help}");
        }
        let _ = writeln!(out, "# TYPE {base} {kind}");
    }
}

/// Renders the snapshot in the Prometheus text exposition format.
///
/// ```
/// use grel_telemetry::{to_prometheus, MetricsRegistry};
/// let reg = MetricsRegistry::new();
/// reg.counter(r#"campaign_injections_total{outcome="masked"}"#, 7);
/// let text = to_prometheus(&reg.snapshot());
/// assert!(text.contains("# HELP campaign_injections_total "));
/// assert!(text.contains("# TYPE campaign_injections_total counter"));
/// assert!(text.contains(r#"campaign_injections_total{outcome="masked"} 7"#));
/// ```
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut typed: BTreeSet<String> = BTreeSet::new();

    for (name, value) in snapshot.counters() {
        write_header(&mut out, &mut typed, base_name(name), "counter");
        let _ = writeln!(out, "{} {value}", escape_series(name));
    }
    for (name, value) in snapshot.gauges() {
        write_header(&mut out, &mut typed, base_name(name), "gauge");
        let _ = writeln!(out, "{} {}", escape_series(name), fmt_value(value));
    }
    for (name, hist) in snapshot.histograms() {
        let base = base_name(name);
        write_header(&mut out, &mut typed, base, "histogram");
        // Cumulative `le` buckets over the non-empty log2 bounds, the
        // mandatory +Inf bucket, then sum and count. Series labels (if
        // any) are preserved ahead of the `le` label, values escaped.
        let escaped = escape_series(name);
        let series_labels = labels(&escaped);
        let with_le = |le: &str| match series_labels {
            Some(l) => format!("{base}_bucket{{{l},le=\"{le}\"}}"),
            None => format!("{base}_bucket{{le=\"{le}\"}}"),
        };
        let mut cumulative = 0u64;
        for (upper, n) in hist.buckets() {
            cumulative += n;
            let _ = writeln!(out, "{} {cumulative}", with_le(&fmt_value(upper)));
        }
        let _ = writeln!(out, "{} {}", with_le("+Inf"), hist.count());
        let suffixed = |suffix: &str| match series_labels {
            Some(l) => format!("{base}{suffix}{{{l}}}"),
            None => format!("{base}{suffix}"),
        };
        let _ = writeln!(out, "{} {}", suffixed("_sum"), fmt_value(hist.sum()));
        let _ = writeln!(out, "{} {}", suffixed("_count"), hist.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn renders_all_metric_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("hits_total", 3);
        reg.gauge("rungs", 16.0);
        reg.observe("lat_seconds", 0.5);
        reg.observe("lat_seconds", 0.5);
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("# HELP hits_total Monotonic event counter."));
        assert!(text.contains("# TYPE hits_total counter"));
        assert!(text.contains("hits_total 3"));
        assert!(text.contains("# TYPE rungs gauge"));
        assert!(text.contains("rungs 16"));
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_count 2"));
        assert!(text.contains("lat_seconds_sum 1"));
    }

    #[test]
    fn labelled_series_share_one_type_header() {
        let reg = MetricsRegistry::new();
        reg.counter(r#"out_total{k="a"}"#, 1);
        reg.counter(r#"out_total{k="b"}"#, 2);
        let text = to_prometheus(&reg.snapshot());
        assert_eq!(text.matches("# TYPE out_total counter").count(), 1);
        assert_eq!(text.matches("# HELP out_total ").count(), 1);
        assert!(text.contains(r#"out_total{k="a"} 1"#));
        assert!(text.contains(r#"out_total{k="b"} 2"#));
    }

    #[test]
    fn known_families_get_real_help_text() {
        let reg = MetricsRegistry::new();
        reg.counter(r#"campaign_injections_total{outcome="sdc"}"#, 1);
        let text = to_prometheus(&reg.snapshot());
        assert!(
            text.contains("# HELP campaign_injections_total Fault injections classified"),
            "text = {text}"
        );
    }

    #[test]
    fn histograms_expose_cumulative_le_buckets() {
        let reg = MetricsRegistry::new();
        // Three samples in two distinct octaves: 0.5 twice, 8.0 once.
        reg.observe("lat_seconds", 0.5);
        reg.observe("lat_seconds", 0.5);
        reg.observe("lat_seconds", 8.0);
        let text = to_prometheus(&reg.snapshot());
        let bucket_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("lat_seconds_bucket{"))
            .collect();
        assert_eq!(bucket_lines.len(), 3, "two octaves + +Inf: {text}");
        // Cumulative counts end at the total, and +Inf equals _count.
        assert!(bucket_lines[0].ends_with(" 2"), "{bucket_lines:?}");
        assert!(bucket_lines[1].ends_with(" 3"), "{bucket_lines:?}");
        assert_eq!(
            bucket_lines[2], r#"lat_seconds_bucket{le="+Inf"} 3"#,
            "{bucket_lines:?}"
        );
        // Bounds ascend.
        let bound = |l: &str| {
            l.split("le=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .parse::<f64>()
                .ok()
        };
        let b0 = bound(bucket_lines[0]).unwrap();
        let b1 = bound(bucket_lines[1]).unwrap();
        assert!(b0 < b1, "bounds must ascend: {b0} vs {b1}");
    }

    /// Undoes [`escape_label_value`] — the test-side half of the
    /// round trip.
    fn unescape(v: &str) -> String {
        let mut out = String::new();
        let mut chars = v.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                other => {
                    out.push('\\');
                    out.extend(other);
                }
            }
        }
        out
    }

    #[test]
    fn hostile_label_values_escape_and_round_trip() {
        let hostile = "a\\b\"c\nd";
        let reg = MetricsRegistry::new();
        reg.counter(&format!("runs_total{{workload=\"{hostile}\"}}"), 1);
        reg.gauge(&format!("speed{{workload=\"{hostile}\"}}"), 2.0);
        reg.observe(&format!("lat_seconds{{workload=\"{hostile}\"}}"), 0.5);
        let text = to_prometheus(&reg.snapshot());
        // The raw newline, quote and backslash never reach the output:
        // every series stays on one line with the value escaped.
        let escaped = r#"a\\b\"c\nd"#;
        for series in [
            format!("runs_total{{workload=\"{escaped}\"}} 1"),
            format!("speed{{workload=\"{escaped}\"}} 2"),
            format!("lat_seconds_bucket{{workload=\"{escaped}\",le=\"+Inf\"}} 1"),
            format!("lat_seconds_sum{{workload=\"{escaped}\"}} 0.5"),
            format!("lat_seconds_count{{workload=\"{escaped}\"}} 1"),
        ] {
            assert!(
                text.lines().any(|l| l == series),
                "missing line {series:?} in:\n{text}"
            );
        }
        // Unescaping the exposed value restores the original exactly.
        assert_eq!(unescape(escaped), hostile);
        assert_eq!(escape_label_value(hostile), escaped);
    }

    #[test]
    fn escape_series_leaves_sane_names_alone() {
        for name in [
            "plain_total",
            r#"out_total{k="a"}"#,
            r#"out_total{k="a",b="c d"}"#,
        ] {
            assert_eq!(escape_series(name), name);
        }
    }

    #[test]
    fn labelled_histograms_merge_le_with_series_labels() {
        let reg = MetricsRegistry::new();
        reg.observe(r#"lat_seconds{worker="3"}"#, 1.0);
        let text = to_prometheus(&reg.snapshot());
        assert!(
            text.contains(r#"lat_seconds_bucket{worker="3",le="+Inf"} 1"#),
            "text = {text}"
        );
        assert!(text.contains(r#"lat_seconds_sum{worker="3"} 1"#));
        assert!(text.contains(r#"lat_seconds_count{worker="3"} 1"#));
    }
}
