//! The campaign observatory: an embedded HTTP/1.1 scrape endpoint.
//!
//! A campaign is a statistical instrument that runs for minutes; this
//! module makes it observable *while it runs* instead of only after.
//! [`serve`] starts a background thread answering four `GET` paths:
//!
//! | path           | content type                              | body |
//! |----------------|-------------------------------------------|------|
//! | `/metrics`     | `text/plain; version=0.0.4; charset=utf-8`| [`to_prometheus`] exposition of the live registry |
//! | `/health`      | `application/json`                        | `{"status":"ok","uptime_ms":…}` |
//! | `/progress`    | `application/json`                        | done/pruned/batched/total injection counts |
//! | `/convergence` | `application/json`                        | latest `campaign.convergence` event per campaign |
//!
//! The server is dependency-free by policy (the workspace's `serde` is
//! a no-op shim and no HTTP crate is vendored): requests are parsed by
//! hand, one connection at a time, `Connection: close` semantics. That
//! is deliberately modest — the endpoint exists for a Prometheus
//! scraper and a curious `curl`, not for traffic; the resident
//! `grel-serve` service the ROADMAP plans will grow out of this seam.
//!
//! The observatory is strictly read-only: it snapshots the sharded
//! [`MetricsRegistry`] (a merge, never a lock on the recording shards)
//! and reads the [`StatusBoard`] the event stream tees into. Nothing a
//! scrape does can perturb a campaign, and runs without `--listen` do
//! not construct any of this.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::events::{Event, EventSink};
use crate::expo::to_prometheus;
use crate::json::Json;
use crate::metrics::MetricsRegistry;

/// Counter-name prefix that marks one finished injection (shared with
/// `ProgressHook`'s accounting).
const INJECTION_COUNTER_PREFIX: &str = "campaign_injections_total";

/// Poll interval of the accept loop while idle (the listener is
/// non-blocking so the stop flag is honoured promptly).
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Per-connection read/write timeout: a stalled scraper must never
/// wedge the observatory.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Upper bound on an accepted request head; anything larger is a 400.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Live campaign state the HTTP endpoints read: an [`EventSink`] that
/// retains the latest `campaign.convergence` event per campaign
/// (keyed by workload × device × structure × fault kind), fed by
/// teeing the hook's event stream into it
/// (see [`TeeSink`](crate::events::TeeSink)).
#[derive(Debug)]
pub struct StatusBoard {
    started: Instant,
    convergence: Mutex<BTreeMap<String, Event>>,
}

impl StatusBoard {
    /// An empty board.
    pub fn new() -> Self {
        StatusBoard {
            started: Instant::now(),
            convergence: Mutex::new(BTreeMap::new()),
        }
    }

    /// Milliseconds since the board was created (campaign start).
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The latest convergence event per campaign, in key order.
    pub fn convergence_events(&self) -> Vec<Event> {
        self.convergence
            .lock()
            .expect("board poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// The `/convergence` body: `{"campaigns":[…]}` with one entry per
    /// campaign, each the latest `campaign.convergence` event verbatim.
    pub fn convergence_json(&self) -> Json {
        let campaigns = self
            .convergence_events()
            .iter()
            .map(Event::to_json)
            .collect();
        Json::Obj(vec![("campaigns".to_string(), Json::Arr(campaigns))])
    }
}

impl Default for StatusBoard {
    fn default() -> Self {
        Self::new()
    }
}

impl EventSink for StatusBoard {
    fn emit(&self, event: &Event) {
        if event.name() != "campaign.convergence" {
            return;
        }
        let key = ["workload", "device", "structure", "fault_kind"]
            .iter()
            .map(|k| event.get(k).and_then(Json::as_str).unwrap_or(""))
            .collect::<Vec<_>>()
            .join("\u{1f}");
        self.convergence
            .lock()
            .expect("board poisoned")
            .insert(key, event.clone());
    }
}

/// Everything the observatory serves from.
#[derive(Debug, Clone)]
pub struct Observatory {
    /// The live metrics registry behind `/metrics` and `/progress`.
    pub registry: Arc<MetricsRegistry>,
    /// The event-fed board behind `/convergence` and `/health` uptime.
    pub board: Arc<StatusBoard>,
    /// Total injections the run will perform (the `/progress`
    /// denominator); `0` when unknown.
    pub planned_injections: u64,
}

/// A running observatory server; dropping it (or calling
/// [`ServerHandle::stop`]) shuts the accept loop down.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9184`, port `0` for ephemeral) and
/// serves the observatory endpoints from a background thread until the
/// returned handle is stopped or dropped.
///
/// # Errors
///
/// Propagates the bind failure (address in use, permission denied).
pub fn serve(addr: impl ToSocketAddrs, observatory: Observatory) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("grel-observatory".to_string())
        .spawn(move || accept_loop(listener, &observatory, &stop_flag))?;
    Ok(ServerHandle {
        addr,
        stop,
        thread: Some(thread),
    })
}

fn accept_loop(listener: TcpListener, observatory: &Observatory, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One connection at a time: a scrape endpoint serves a
                // Prometheus poller, not a thundering herd, and a serial
                // loop cannot be wedged open by slow clients thanks to
                // the per-connection timeout.
                let _ = handle_connection(stream, observatory);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept errors (aborted handshakes) are not
            // fatal to the observatory; back off briefly and continue.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, observatory: &Observatory) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = match read_request_head(&mut stream) {
        Ok(head) => head,
        Err(_) => {
            return respond(
                &mut stream,
                "400 Bad Request",
                "application/json",
                &error_body("malformed request"),
            )
        }
    };
    let (status, content_type, body) = route(&request, observatory);
    respond(&mut stream, status, content_type, &body)
}

/// Reads until the blank line ending the request head, returning the
/// request line (`GET /path HTTP/1.1`). Headers and any body are
/// ignored — every endpoint is a parameterless `GET`.
fn read_request_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_REQUEST_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
    }
    let text = String::from_utf8_lossy(&head);
    let line = text.lines().next().unwrap_or("").trim().to_string();
    if line.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty request"));
    }
    Ok(line)
}

/// Maps a request line to `(status, content type, body)`.
fn route(request_line: &str, observatory: &Observatory) -> (&'static str, &'static str, String) {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    // Strip any query string: the endpoints take no parameters.
    let path = target.split('?').next().unwrap_or("");
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "application/json",
            error_body("only GET is supported"),
        );
    }
    // Bounded label set: the four known paths plus "other", so a
    // scanner cannot inflate the registry's cardinality.
    let label = match path {
        "/metrics" | "/health" | "/progress" | "/convergence" => path,
        _ => "other",
    };
    observatory.registry.counter(
        &format!("observatory_requests_total{{path=\"{label}\"}}"),
        1,
    );
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            to_prometheus(&observatory.registry.snapshot()),
        ),
        "/health" => (
            "200 OK",
            "application/json",
            Json::Obj(vec![
                ("status".to_string(), Json::from("ok")),
                (
                    "uptime_ms".to_string(),
                    Json::from(observatory.board.uptime_ms()),
                ),
            ])
            .to_string(),
        ),
        "/progress" => ("200 OK", "application/json", progress_body(observatory)),
        "/convergence" => (
            "200 OK",
            "application/json",
            observatory.board.convergence_json().to_string(),
        ),
        _ => (
            "404 Not Found",
            "application/json",
            error_body("unknown path (try /metrics, /health, /progress, /convergence)"),
        ),
    }
}

/// The `/progress` body, derived from the live registry: the same
/// counters `ProgressHook` folds, summed at snapshot time.
fn progress_body(observatory: &Observatory) -> String {
    let snap = observatory.registry.snapshot();
    let done: u64 = snap
        .counters()
        .filter(|(name, _)| name.starts_with(INJECTION_COUNTER_PREFIX))
        .map(|(_, v)| v)
        .sum();
    let pruned = snap.counter("campaign_pruned_total").unwrap_or(0);
    let batched = snap.counter("campaign_batched_total").unwrap_or(0);
    let total = observatory.planned_injections;
    let percent = if total > 0 {
        (done as f64 / total as f64 * 100.0).min(100.0)
    } else {
        0.0
    };
    Json::Obj(vec![
        ("done".to_string(), Json::from(done)),
        ("pruned".to_string(), Json::from(pruned)),
        ("batched".to_string(), Json::from(batched)),
        ("total".to_string(), Json::from(total)),
        ("percent".to_string(), Json::from(percent)),
    ])
    .to_string()
}

fn error_body(message: &str) -> String {
    Json::Obj(vec![("error".to_string(), Json::from(message))]).to_string()
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observatory(planned: u64) -> Observatory {
        Observatory {
            registry: Arc::new(MetricsRegistry::new()),
            board: Arc::new(StatusBoard::new()),
            planned_injections: planned,
        }
    }

    fn http_get(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    fn body_of(response: &str) -> &str {
        response
            .split("\r\n\r\n")
            .nth(1)
            .expect("response has a body")
    }

    #[test]
    fn serves_metrics_health_progress_and_convergence() {
        let obs = observatory(200);
        obs.registry
            .counter("campaign_injections_total{outcome=\"masked\"}", 40);
        obs.registry
            .counter("campaign_injections_total{outcome=\"sdc\"}", 10);
        obs.registry.counter("campaign_pruned_total", 30);
        obs.board.emit(
            &Event::new("campaign.convergence")
                .field("workload", "vectoradd")
                .field("device", "GeForce GTX 480")
                .field("structure", "rf")
                .field("fault_kind", "transient")
                .field("seen", 50u64),
        );
        let server = serve("127.0.0.1:0", obs.clone()).expect("bind");
        let addr = server.local_addr();

        let metrics = http_get(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
        assert!(
            body_of(&metrics).contains("campaign_injections_total"),
            "{metrics}"
        );

        let health = http_get(addr, "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
        let health_json = Json::parse(body_of(&health)).expect("health is JSON");
        assert_eq!(health_json.get("status").and_then(Json::as_str), Some("ok"));
        assert!(health_json
            .get("uptime_ms")
            .and_then(Json::as_u64)
            .is_some());

        let progress = http_get(addr, "GET /progress HTTP/1.1\r\nHost: t\r\n\r\n");
        let progress_json = Json::parse(body_of(&progress)).expect("progress is JSON");
        assert_eq!(progress_json.get("done").and_then(Json::as_u64), Some(50));
        assert_eq!(progress_json.get("pruned").and_then(Json::as_u64), Some(30));
        assert_eq!(progress_json.get("total").and_then(Json::as_u64), Some(200));
        assert_eq!(
            progress_json.get("percent").and_then(Json::as_f64),
            Some(25.0)
        );

        let conv = http_get(addr, "GET /convergence HTTP/1.1\r\nHost: t\r\n\r\n");
        let conv_json = Json::parse(body_of(&conv)).expect("convergence is JSON");
        let campaigns = conv_json
            .get("campaigns")
            .and_then(Json::as_arr)
            .expect("campaigns array");
        assert_eq!(campaigns.len(), 1);
        assert_eq!(
            campaigns[0].get("workload").and_then(Json::as_str),
            Some("vectoradd")
        );
        assert_eq!(campaigns[0].get("seen").and_then(Json::as_u64), Some(50));

        // Scrapes are themselves observable, with a bounded label set.
        let snap = obs.registry.snapshot();
        assert_eq!(
            snap.counter("observatory_requests_total{path=\"/metrics\"}"),
            Some(1)
        );
        server.stop();
    }

    #[test]
    fn rejects_unknown_paths_and_non_get_methods() {
        let server = serve("127.0.0.1:0", observatory(0)).expect("bind");
        let addr = server.local_addr();
        let missing = http_get(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        assert!(Json::parse(body_of(&missing)).is_ok(), "404 body is JSON");
        let post = http_get(addr, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
        server.stop();
    }

    #[test]
    fn query_strings_are_ignored() {
        let server = serve("127.0.0.1:0", observatory(0)).expect("bind");
        let addr = server.local_addr();
        let health = http_get(addr, "GET /health?probe=1 HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        server.stop();
    }

    #[test]
    fn board_keeps_latest_event_per_campaign() {
        let board = StatusBoard::new();
        for seen in [10u64, 20, 30] {
            board.emit(
                &Event::new("campaign.convergence")
                    .field("workload", "fft")
                    .field("device", "Quadro FX 5600")
                    .field("structure", "rf")
                    .field("fault_kind", "transient")
                    .field("seen", seen),
            );
        }
        board.emit(
            &Event::new("campaign.convergence")
                .field("workload", "fft")
                .field("device", "Quadro FX 5600")
                .field("structure", "lds")
                .field("fault_kind", "transient")
                .field("seen", 5u64),
        );
        // Unrelated events are ignored entirely.
        board.emit(&Event::new("campaign.done").field("workload", "fft"));
        let events = board.convergence_events();
        assert_eq!(events.len(), 2, "one entry per campaign key");
        let rf = events
            .iter()
            .find(|e| e.get("structure").and_then(Json::as_str) == Some("rf"))
            .expect("rf campaign present");
        assert_eq!(rf.get("seen").and_then(Json::as_u64), Some(30));
    }

    /// The adaptive sampler's per-stratum `strata` array rides the
    /// `campaign.convergence` event verbatim: the board must retain it
    /// untouched so `/convergence` serves the final per-stratum state.
    #[test]
    fn board_passes_strata_arrays_through_verbatim() {
        let board = StatusBoard::new();
        let strata = Json::Arr(vec![Json::Obj(vec![
            ("label".to_string(), Json::from("live/c0/b0")),
            ("seen".to_string(), Json::from(12u64)),
            ("planned".to_string(), Json::from(16u64)),
        ])]);
        board.emit(
            &Event::new("campaign.convergence")
                .field("workload", "vectoradd")
                .field("device", "GeForce GTX 480")
                .field("structure", "rf")
                .field("fault_kind", "transient")
                .field("seen", 12u64)
                .field("strata", strata.clone()),
        );
        let events = board.convergence_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("strata"), Some(&strata));
        let body = board.convergence_json().to_string();
        assert!(body.contains("live/c0/b0"), "{body}");
    }

    #[test]
    fn stop_terminates_the_server() {
        let server = serve("127.0.0.1:0", observatory(0)).expect("bind");
        let addr = server.local_addr();
        server.stop();
        // The listener is gone: a fresh connection must fail (allow a
        // beat for the OS to tear the socket down).
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
            "stopped server must not accept connections"
        );
    }
}
