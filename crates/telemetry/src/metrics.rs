//! Lock-cheap metrics: counters, gauges and log-bucketed histograms,
//! recorded into per-thread shards and merged at harvest.
//!
//! [`MetricsRegistry`] is the write-side handle. Every recording thread
//! lazily owns a private shard (registered once per thread per registry,
//! found again through a thread-local table), so the campaign fan-out
//! records without inter-thread contention: the shard's mutex is only
//! ever contended by a concurrent harvest, never by other workers.
//! [`MetricsRegistry::snapshot`] merges all shards into a
//! [`MetricsSnapshot`] without disturbing them.
//!
//! All merge operations are associative and order-independent (counters
//! and histogram buckets are integer sums; gauges carry a registry-wide
//! sequence number and the highest write wins), so a snapshot is a pure
//! function of the set of recorded events — never of thread scheduling.
//!
//! # Example
//! ```
//! use grel_telemetry::MetricsRegistry;
//! let reg = MetricsRegistry::new();
//! reg.counter("injections_total", 3);
//! reg.gauge("rungs", 16.0);
//! reg.observe("replay_seconds", 0.25);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("injections_total"), Some(3));
//! assert_eq!(snap.gauge("rungs"), Some(16.0));
//! assert_eq!(snap.histogram("replay_seconds").unwrap().count(), 1);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Number of log₂ buckets per histogram.
const BUCKETS: usize = 64;

/// Smallest resolvable histogram value (1 nano-unit); values below land
/// in bucket 0.
const HIST_MIN: f64 = 1e-9;

/// A fixed-footprint log₂-bucketed histogram of non-negative `f64`
/// samples (seconds, cycles, bytes, …).
///
/// Bucket `i` holds samples in `[2^i, 2^(i+1))` nano-units, covering
/// `1e-9 .. ~9.2e9` with one bucket per octave. The running sum is kept
/// in integer nano-units so merging histograms is exactly associative.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_nanos: i128,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_nanos: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

fn bucket_index(value: f64) -> usize {
    let nanos = (value / HIST_MIN).max(1.0);
    if nanos >= u64::MAX as f64 {
        return BUCKETS - 1;
    }
    // floor(log2) via the integer bit width: exact and platform-stable.
    (63 - (nanos as u64).leading_zeros() as usize).min(BUCKETS - 1)
}

impl Histogram {
    /// Records one sample (negative samples clamp to zero).
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum_nanos += (v / HIST_MIN).round() as i128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum_nanos as f64 * HIST_MIN
    }

    /// Mean sample, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }

    /// Smallest sample, or 0 for an empty histogram.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 for an empty histogram.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs in ascending
    /// bound order. Bucket `i` covers `[2^i, 2^(i+1))` nano-units, so
    /// the exposed upper bound is `HIST_MIN * 2^(i+1)` — what a
    /// Prometheus `_bucket{le="..."}` series needs (counts here are
    /// per-bucket, not cumulative; the exposition layer accumulates).
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (HIST_MIN * 2f64.powi(i as i32 + 1), n))
    }

    /// The `q`-quantile (`0.0..=1.0`) to one-octave resolution.
    ///
    /// Deterministic: a pure function of the recorded sample multiset.
    /// Returns the upper bound of the bucket holding the target rank,
    /// clamped into `[min, max]`; 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = HIST_MIN * 2f64.powi(i as i32 + 1);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one (exact integer merge:
    /// associative and order-independent).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A gauge value stamped with a registry-wide write sequence; merging
/// keeps the latest write regardless of shard merge order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gauge {
    seq: u64,
    value: f64,
}

impl Gauge {
    /// The gauge's current value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

/// One merged (or per-shard) view of every metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// The value of a counter, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The latest value of a gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(|g| g.value)
    }

    /// A histogram, if it ever received a sample.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, g)| (k.as_str(), g.value))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Whether no metric was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    fn record_counter(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    fn record_gauge(&mut self, name: &str, seq: u64, value: f64) {
        let g = Gauge { seq, value };
        match self.gauges.get_mut(name) {
            Some(cur) if cur.seq >= seq => {}
            Some(cur) => *cur = g,
            None => {
                self.gauges.insert(name.to_string(), g);
            }
        }
    }

    fn record_observation(&mut self, name: &str, value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::default();
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Folds another snapshot into this one. Associative and
    /// order-independent: merging any permutation of the same shard set
    /// yields the identical snapshot.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            self.record_counter(k, *v);
        }
        for (k, g) in &other.gauges {
            self.record_gauge(k, g.seq, g.value);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
    }
}

/// Process-unique registry ids for the thread-local shard table.
static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

struct RegistryCore {
    id: u64,
    gauge_seq: AtomicU64,
    shards: Mutex<Vec<Arc<Mutex<MetricsSnapshot>>>>,
}

/// One thread-local shard entry: `(registry id, liveness probe, shard)`.
type ShardSlot = (u64, Weak<RegistryCore>, Arc<Mutex<MetricsSnapshot>>);

thread_local! {
    /// This thread's shard per live registry. Entries for dropped
    /// registries are pruned lazily.
    static THREAD_SHARDS: RefCell<Vec<ShardSlot>> = const { RefCell::new(Vec::new()) };
}

/// The write-side handle: see the [module docs](self) for the sharding
/// model. Cloning is shallow (`Arc`); clones record into the same
/// metric set.
#[derive(Clone)]
pub struct MetricsRegistry {
    core: Arc<RegistryCore>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("id", &self.core.id)
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            core: Arc::new(RegistryCore {
                id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
                gauge_seq: AtomicU64::new(0),
                shards: Mutex::new(Vec::new()),
            }),
        }
    }

    fn with_shard<R>(&self, f: impl FnOnce(&mut MetricsSnapshot) -> R) -> R {
        THREAD_SHARDS.with(|cell| {
            let mut table = cell.borrow_mut();
            let shard = match table.iter().find(|(id, _, _)| *id == self.core.id) {
                Some((_, _, shard)) => Arc::clone(shard),
                None => {
                    // First record from this thread: drop entries whose
                    // registry died, then register a fresh shard.
                    table.retain(|(_, live, _)| live.strong_count() > 0);
                    let shard = Arc::new(Mutex::new(MetricsSnapshot::default()));
                    self.core
                        .shards
                        .lock()
                        .expect("shard list poisoned")
                        .push(Arc::clone(&shard));
                    table.push((self.core.id, Arc::downgrade(&self.core), Arc::clone(&shard)));
                    shard
                }
            };
            let mut data = shard.lock().expect("shard poisoned");
            f(&mut data)
        })
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn counter(&self, name: &str, delta: u64) {
        self.with_shard(|s| s.record_counter(name, delta));
    }

    /// Sets the named gauge (last write wins, even across shards).
    pub fn gauge(&self, name: &str, value: f64) {
        let seq = self.core.gauge_seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.with_shard(|s| s.record_gauge(name, seq, value));
    }

    /// Records one sample into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        self.with_shard(|s| s.record_observation(name, value));
    }

    /// Merges every thread's shard into one snapshot. Shards are left
    /// untouched, so repeated snapshots report cumulative totals.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let shards = self.core.shards.lock().expect("shard list poisoned");
        let mut merged = MetricsSnapshot::default();
        for shard in shards.iter() {
            merged.merge(&shard.lock().expect("shard poisoned"));
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = MetricsRegistry::new();
        reg.counter("a", 1);
        reg.counter("a", 2);
        reg.counter("b", 5);
        let s = reg.snapshot();
        assert_eq!(s.counter("a"), Some(3));
        assert_eq!(s.counter("b"), Some(5));
        assert_eq!(s.counter("c"), None);
    }

    #[test]
    fn gauges_take_latest_write() {
        let reg = MetricsRegistry::new();
        reg.gauge("g", 1.0);
        reg.gauge("g", 7.5);
        assert_eq!(reg.snapshot().gauge("g"), Some(7.5));
    }

    #[test]
    fn cross_thread_records_merge() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = &reg;
                scope.spawn(move || {
                    for _ in 0..100 {
                        reg.counter("hits", 1);
                        reg.observe("lat", 0.001);
                    }
                });
            }
        });
        let s = reg.snapshot();
        assert_eq!(s.counter("hits"), Some(400));
        assert_eq!(s.histogram("lat").unwrap().count(), 400);
    }

    #[test]
    fn snapshot_is_cumulative_not_draining() {
        let reg = MetricsRegistry::new();
        reg.counter("c", 1);
        assert_eq!(reg.snapshot().counter("c"), Some(1));
        reg.counter("c", 1);
        assert_eq!(reg.snapshot().counter("c"), Some(2));
    }

    #[test]
    fn two_registries_on_one_thread_stay_separate() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("x", 1);
        b.counter("x", 10);
        assert_eq!(a.snapshot().counter("x"), Some(1));
        assert_eq!(b.snapshot().counter("x"), Some(10));
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 15.0).abs() < 1e-6);
        assert!((h.mean() - 3.75).abs() < 1e-6);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 8.0);
        // Quantiles land within one octave of the exact value and are
        // clamped into [min, max].
        assert!(h.quantile(0.0) >= h.min() && h.quantile(0.0) <= 2.0 + 1e-9);
        assert_eq!(h.quantile(1.0), 8.0);
        let q50 = h.quantile(0.5);
        assert!((1.0..=4.0 + 1e-9).contains(&q50), "p50 = {q50}");
    }

    #[test]
    fn histogram_handles_pathological_samples() {
        let mut h = Histogram::default();
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(0.0);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0.0);
    }

    #[test]
    fn bucket_index_is_monotonic() {
        let mut last = 0;
        for exp in -9..9 {
            let idx = bucket_index(10f64.powi(exp));
            assert!(idx >= last, "bucket index regressed at 1e{exp}");
            last = idx;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(f64::MAX), BUCKETS - 1);
    }
}
