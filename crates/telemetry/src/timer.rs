//! Span-style scoped timers.
//!
//! [`SpanTimer`] measures from construction to drop and records the
//! elapsed seconds into a hook's histogram; with a disabled hook
//! (`H::ENABLED == false`) it never reads the clock at all.

use std::time::Instant;

use crate::hook::TelemetryHook;

/// Records wall time from creation to drop as one histogram sample.
///
/// ```
/// use grel_telemetry::{MetricsRegistry, RegistryHook, SpanTimer};
/// let reg = MetricsRegistry::new();
/// let hook = RegistryHook::new(&reg);
/// {
///     let _span = SpanTimer::new(&hook, "phase_seconds");
///     // ... timed work ...
/// }
/// assert_eq!(reg.snapshot().histogram("phase_seconds").unwrap().count(), 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer<'h, H: TelemetryHook> {
    hook: &'h H,
    name: &'static str,
    // None exactly when the hook is disabled: no clock read, no record.
    started: Option<Instant>,
}

impl<'h, H: TelemetryHook> SpanTimer<'h, H> {
    /// Starts timing into `hook`'s histogram `name`.
    pub fn new(hook: &'h H, name: &'static str) -> Self {
        SpanTimer {
            hook,
            name,
            started: H::ENABLED.then(Instant::now),
        }
    }

    /// Stops early and returns the elapsed seconds (0 when disabled).
    pub fn finish(mut self) -> f64 {
        self.stop()
    }

    fn stop(&mut self) -> f64 {
        match self.started.take() {
            Some(started) => {
                let secs = started.elapsed().as_secs_f64();
                self.hook.observe(self.name, secs);
                secs
            }
            None => 0.0,
        }
    }
}

impl<H: TelemetryHook> Drop for SpanTimer<'_, H> {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A plain restartable wall-clock stopwatch (no hook involved).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Starts (or restarts) at now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Seconds since start.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::NoopHook;
    use crate::metrics::MetricsRegistry;
    use crate::RegistryHook;

    #[test]
    fn span_records_once_on_drop() {
        let reg = MetricsRegistry::new();
        let hook = RegistryHook::new(&reg);
        {
            let _span = SpanTimer::new(&hook, "t");
        }
        assert_eq!(reg.snapshot().histogram("t").unwrap().count(), 1);
    }

    #[test]
    fn finish_returns_elapsed_and_prevents_double_record() {
        let reg = MetricsRegistry::new();
        let hook = RegistryHook::new(&reg);
        let span = SpanTimer::new(&hook, "t");
        let secs = span.finish();
        assert!(secs >= 0.0);
        assert_eq!(reg.snapshot().histogram("t").unwrap().count(), 1);
    }

    #[test]
    fn disabled_hook_records_nothing() {
        let span = SpanTimer::new(&NoopHook, "t");
        assert!(span.started.is_none());
        assert_eq!(span.finish(), 0.0);
    }

    #[test]
    fn stopwatch_advances() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed_secs() >= 0.0);
    }
}
