//! Hierarchical span tracing for campaign profiling.
//!
//! A [`SpanRecord`] is one timed region of the pipeline, identified by a
//! `/`-separated **path** (`point:mmul@G80/campaign:rf/replay/inj:000042`).
//! Paths encode the hierarchy, so call sites never thread parent ids —
//! they build the full path from locally-known data and record at end
//! (no guard objects, safe across `?` early returns). Records land in a
//! per-thread ring buffer inside a [`SpanRecorder`] (the same sharding
//! idiom as [`crate::MetricsRegistry`]: no cross-thread contention on
//! the hot path), and [`SpanRecorder::finish`] merges every shard into a
//! [`SpanTree`] whose shape is a pure function of the record multiset.
//!
//! # Determinism contract
//!
//! The structural tree — node paths, parent links, sibling order
//! (sorted by `(seq, name)`), counts and tags — is byte-identical at
//! any `--jobs` count, because injection-span paths are derived from
//! the campaign's deterministic site order, never from which worker
//! happened to replay them. Two things *do* vary with scheduling and
//! are therefore excluded from [`SpanTree::structural_text`]: durations
//! and the per-worker timeline nodes (`worker:NN`, which exist only at
//! the jobs count that produced them). Lane ids are a pure function of
//! (site order, jobs): deterministic at a fixed jobs count.
//!
//! Instrumented code stays zero-cost when profiling is off: the hook
//! trait's `SPANS` constant defaults to `false` and every call site
//! guards with `if H::SPANS`, exactly like the `ENABLED` guard.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

use crate::json::Json;

/// Default per-thread ring capacity (records kept per shard before the
/// oldest are dropped). 65 536 spans comfortably covers a 2 000-site
/// paper campaign per worker with room for phase spans.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// One completed timed region. Built at the *end* of the region:
/// `SpanRecord::new` takes the start instant and stamps the end itself.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// `/`-separated hierarchical path; the prefix chain is the
    /// ancestry (`a/b/c` is a child of `a/b`).
    pub path: String,
    /// Timeline lane: 0 = orchestrator, 1..=jobs = replay workers.
    pub lane: u32,
    /// Deterministic sibling-ordering key (site index for injection
    /// spans, phase ordinal for phase spans).
    pub seq: u64,
    /// When the region began.
    pub start: Instant,
    /// When the region ended (stamped by [`SpanRecord::new`]).
    pub end: Instant,
    /// Deterministic key/value annotations (outcome, kind, rung, …).
    pub tags: Vec<(String, String)>,
}

impl SpanRecord {
    /// A record covering `start`..now.
    pub fn new(path: impl Into<String>, lane: u32, seq: u64, start: Instant) -> Self {
        SpanRecord {
            path: path.into(),
            lane,
            seq,
            start,
            end: Instant::now(),
            tags: Vec::new(),
        }
    }

    /// Appends a tag (builder style). Values must be deterministic —
    /// they are part of the structural tree.
    #[must_use]
    pub fn tag(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.tags.push((key.to_string(), value.to_string()));
        self
    }

    /// The final path segment (`inj:000042` of `…/replay/inj:000042`).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

/// A per-thread ring of records plus the count of overflow drops.
#[derive(Debug)]
struct SpanRing {
    capacity: usize,
    records: VecDeque<SpanRecord>,
    dropped: u64,
}

impl SpanRing {
    fn push(&mut self, record: SpanRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }
}

/// Shared state behind a recorder: the epoch every timestamp is
/// expressed against, and one ring per thread that ever recorded.
#[derive(Debug)]
struct RecorderCore {
    id: u64,
    epoch: Instant,
    capacity: usize,
    rings: Mutex<Vec<Arc<Mutex<SpanRing>>>>,
}

static NEXT_RECORDER_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// One thread-local table entry: (recorder id, liveness probe, ring).
type ThreadRingEntry = (u64, Weak<RecorderCore>, Arc<Mutex<SpanRing>>);

thread_local! {
    /// This thread's ring per live recorder. Entries for dropped
    /// recorders are pruned on the next miss — same idiom as the
    /// metrics registry's shard table.
    static THREAD_RINGS: std::cell::RefCell<Vec<ThreadRingEntry>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Collects [`SpanRecord`]s from any number of threads without
/// cross-thread contention: each thread writes its own ring, and
/// [`SpanRecorder::finish`] merges the rings into a deterministic tree.
#[derive(Debug)]
pub struct SpanRecorder {
    core: Arc<RecorderCore>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanRecorder {
    /// A recorder with the default per-thread ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A recorder keeping at most `per_thread` records per thread (the
    /// oldest records are dropped and counted once a ring is full).
    pub fn with_capacity(per_thread: usize) -> Self {
        SpanRecorder {
            core: Arc::new(RecorderCore {
                id: NEXT_RECORDER_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                epoch: Instant::now(),
                capacity: per_thread.max(1),
                rings: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The instant all exported timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.core.epoch
    }

    /// Appends one record to the calling thread's ring.
    pub fn record(&self, record: SpanRecord) {
        THREAD_RINGS.with(|rings| {
            let mut rings = rings.borrow_mut();
            if let Some((_, _, ring)) = rings.iter().find(|(id, _, _)| *id == self.core.id) {
                ring.lock().expect("span ring poisoned").push(record);
                return;
            }
            // First record from this thread: register a new ring and
            // drop table entries whose recorder is gone.
            rings.retain(|(_, weak, _)| weak.strong_count() > 0);
            let ring = Arc::new(Mutex::new(SpanRing {
                capacity: self.core.capacity,
                records: VecDeque::new(),
                dropped: 0,
            }));
            ring.lock().expect("span ring poisoned").push(record);
            self.core
                .rings
                .lock()
                .expect("recorder poisoned")
                .push(Arc::clone(&ring));
            rings.push((self.core.id, Arc::downgrade(&self.core), ring));
        });
    }

    /// Total records dropped to ring overflow, across all threads.
    pub fn dropped(&self) -> u64 {
        let rings = self.core.rings.lock().expect("recorder poisoned");
        rings
            .iter()
            .map(|r| r.lock().expect("span ring poisoned").dropped)
            .sum()
    }

    /// Merges every thread's ring into a [`SpanTree`]. Non-draining:
    /// rings keep their records, so `finish` can be called repeatedly.
    pub fn finish(&self) -> SpanTree {
        let mut records: Vec<SpanRecord> = Vec::new();
        let mut dropped = 0;
        {
            let rings = self.core.rings.lock().expect("recorder poisoned");
            for ring in rings.iter() {
                let ring = ring.lock().expect("span ring poisoned");
                dropped += ring.dropped;
                records.extend(ring.records.iter().cloned());
            }
        }
        SpanTree::build(records, self.core.epoch, dropped)
    }
}

/// One node of the merged span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// DFS-preorder id, assigned deterministically at merge time.
    pub id: u32,
    /// Parent node id (`None` for roots).
    pub parent: Option<u32>,
    /// Root = 0.
    pub depth: u32,
    /// Full hierarchical path.
    pub path: String,
    /// Final path segment.
    pub name: String,
    /// Timeline lane (0 = orchestrator).
    pub lane: u32,
    /// Sibling-ordering key.
    pub seq: u64,
    /// Records merged into this node (1 unless the same path was
    /// recorded more than once; 0 for synthesized ancestors).
    pub count: u64,
    /// Start, microseconds since the recorder epoch (earliest record).
    pub start_us: u64,
    /// Summed duration of the merged records, microseconds.
    pub dur_us: u64,
    /// Tags of the first record at this path.
    pub tags: Vec<(String, String)>,
}

/// The deterministic merge of every recorded span, in DFS preorder.
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// Nodes in DFS preorder (`spans[i].id == i`).
    pub spans: Vec<SpanNode>,
    /// Records lost to ring overflow.
    pub dropped: u64,
}

/// Intermediate per-path aggregate used during the merge.
struct PathAgg {
    lane: u32,
    seq: u64,
    count: u64,
    start_us: u64,
    end_us: u64,
    dur_us: u64,
    tags: Vec<(String, String)>,
}

fn parent_path(path: &str) -> Option<&str> {
    path.rsplit_once('/').map(|(head, _)| head)
}

fn last_segment(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

impl SpanTree {
    /// Builds the tree from a raw record set. Pure function of the
    /// record multiset (plus the epoch for timestamp conversion): the
    /// collection order of `records` never affects the result.
    fn build(records: Vec<SpanRecord>, epoch: Instant, dropped: u64) -> SpanTree {
        // Aggregate by path. Records sharing a path merge into one node
        // (count, summed duration); ties on tags/lane/seq are broken by
        // the smallest (seq, tags, lane) so the result is order-free.
        let mut by_path: BTreeMap<String, PathAgg> = BTreeMap::new();
        for rec in records {
            let start_us = rec.start.saturating_duration_since(epoch).as_micros() as u64;
            let end_us = rec.end.saturating_duration_since(epoch).as_micros() as u64;
            let dur_us = end_us.saturating_sub(start_us);
            match by_path.get_mut(&rec.path) {
                Some(agg) => {
                    agg.count += 1;
                    agg.start_us = agg.start_us.min(start_us);
                    agg.end_us = agg.end_us.max(end_us);
                    agg.dur_us += dur_us;
                    if (rec.seq, &rec.tags, rec.lane) < (agg.seq, &agg.tags, agg.lane) {
                        agg.seq = rec.seq;
                        agg.tags = rec.tags;
                        agg.lane = rec.lane;
                    }
                }
                None => {
                    by_path.insert(
                        rec.path,
                        PathAgg {
                            lane: rec.lane,
                            seq: rec.seq,
                            count: 1,
                            start_us,
                            end_us,
                            dur_us,
                            tags: rec.tags,
                        },
                    );
                }
            }
        }
        // Synthesize missing ancestors so the prefix chain is complete
        // (span = min..max of its recorded descendants, count 0).
        let paths: Vec<String> = by_path.keys().cloned().collect();
        for path in &paths {
            let (start_us, end_us) = {
                let agg = &by_path[path];
                (agg.start_us, agg.end_us)
            };
            let mut cursor = path.as_str();
            while let Some(parent) = parent_path(cursor) {
                let agg = by_path.entry(parent.to_string()).or_insert(PathAgg {
                    lane: 0,
                    seq: 0,
                    count: 0,
                    start_us,
                    end_us,
                    dur_us: 0,
                    tags: Vec::new(),
                });
                if agg.count == 0 {
                    agg.start_us = agg.start_us.min(start_us);
                    agg.end_us = agg.end_us.max(end_us);
                    agg.dur_us = agg.end_us - agg.start_us;
                }
                cursor = parent;
            }
        }
        // Children per parent, siblings ordered by (seq, name).
        let mut children: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut roots: Vec<&str> = Vec::new();
        for path in by_path.keys() {
            match parent_path(path) {
                Some(parent) if by_path.contains_key(parent) => {
                    children.entry(parent).or_default().push(path);
                }
                _ => roots.push(path),
            }
        }
        let order_key = |p: &str| (by_path[p].seq, last_segment(p).to_string());
        roots.sort_by_key(|p| order_key(p));
        for kids in children.values_mut() {
            kids.sort_by_key(|p| order_key(p));
        }
        // DFS preorder id assignment.
        let mut spans: Vec<SpanNode> = Vec::with_capacity(by_path.len());
        let mut stack: Vec<(&str, Option<u32>, u32)> = Vec::new();
        for root in roots.iter().rev() {
            stack.push((root, None, 0));
        }
        while let Some((path, parent, depth)) = stack.pop() {
            let id = spans.len() as u32;
            let agg = &by_path[path];
            spans.push(SpanNode {
                id,
                parent,
                depth,
                path: path.to_string(),
                name: last_segment(path).to_string(),
                lane: agg.lane,
                seq: agg.seq,
                count: agg.count,
                start_us: agg.start_us,
                dur_us: agg.dur_us,
                tags: agg.tags.clone(),
            });
            if let Some(kids) = children.get(path) {
                for kid in kids.iter().rev() {
                    stack.push((kid, Some(id), depth + 1));
                }
            }
        }
        SpanTree { spans, dropped }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The jobs-invariant rendering: one indented line per node with
    /// its name, count (when ≠ 1) and tags. Durations, lanes and the
    /// per-worker timeline nodes (`worker:NN`) are excluded — those are
    /// the only parts of the tree that depend on scheduling — so this
    /// text is byte-identical at any `--jobs` count.
    pub fn structural_text(&self) -> String {
        let mut out = String::new();
        let mut skip_below: Option<u32> = None;
        for node in &self.spans {
            if let Some(d) = skip_below {
                if node.depth > d {
                    continue;
                }
                skip_below = None;
            }
            if node.name.starts_with("worker:") {
                skip_below = Some(node.depth);
                continue;
            }
            for _ in 0..node.depth {
                out.push_str("  ");
            }
            out.push_str(&node.name);
            if node.count > 1 {
                out.push_str(&format!(" x{}", node.count));
            }
            for (k, v) in &node.tags {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
        }
        out
    }

    /// The tree as Chrome trace-event JSON (the `traceEvents` array
    /// format), loadable in Perfetto / `chrome://tracing`. Each node is
    /// a complete (`"ph":"X"`) event on thread `lane`; lanes get
    /// metadata names (`orchestrator`, `worker 0` …).
    pub fn to_chrome_trace(&self) -> Json {
        let mut events: Vec<Json> = Vec::with_capacity(self.spans.len() + 8);
        let mut lanes: Vec<u32> = self.spans.iter().map(|s| s.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        events.push(Json::Obj(vec![
            ("ph".into(), Json::from("M")),
            ("name".into(), Json::from("process_name")),
            ("pid".into(), Json::from(1u64)),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::from("grel campaign"))]),
            ),
        ]));
        for lane in &lanes {
            let label = if *lane == 0 {
                "orchestrator".to_string()
            } else {
                format!("worker {}", lane - 1)
            };
            events.push(Json::Obj(vec![
                ("ph".into(), Json::from("M")),
                ("name".into(), Json::from("thread_name")),
                ("pid".into(), Json::from(1u64)),
                ("tid".into(), Json::from(*lane)),
                (
                    "args".into(),
                    Json::Obj(vec![("name".into(), Json::from(label.as_str()))]),
                ),
            ]));
        }
        let mut ordered: Vec<&SpanNode> = self.spans.iter().collect();
        ordered.sort_by(|a, b| (a.lane, a.start_us, &a.path).cmp(&(b.lane, b.start_us, &b.path)));
        for node in ordered {
            let mut args: Vec<(String, Json)> = vec![
                ("path".into(), Json::from(node.path.as_str())),
                ("seq".into(), Json::from(node.seq)),
            ];
            if node.count > 1 {
                args.push(("count".into(), Json::from(node.count)));
            }
            for (k, v) in &node.tags {
                args.push((k.clone(), Json::from(v.as_str())));
            }
            events.push(Json::Obj(vec![
                ("ph".into(), Json::from("X")),
                ("name".into(), Json::from(node.name.as_str())),
                ("cat".into(), Json::from("campaign")),
                ("pid".into(), Json::from(1u64)),
                ("tid".into(), Json::from(node.lane)),
                ("ts".into(), Json::from(node.start_us)),
                ("dur".into(), Json::from(node.dur_us.max(1))),
                ("args".into(), Json::Obj(args)),
            ]));
        }
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(events)),
            ("displayTimeUnit".into(), Json::from("ms")),
        ])
    }

    /// Nodes matching a name predicate, in tree order.
    pub fn nodes_named<'t>(
        &'t self,
        pred: impl Fn(&str) -> bool + 't,
    ) -> impl Iterator<Item = &'t SpanNode> {
        self.spans.iter().filter(move |n| pred(&n.name))
    }
}

/// The profiling hook: forwards spans into a [`SpanRecorder`] and
/// ignores every other signal. Pair it with a [`crate::RegistryHook`]
/// — `(RegistryHook, SpanHook)` — to profile a fully-instrumented run.
#[derive(Debug, Clone, Copy)]
pub struct SpanHook<'a> {
    recorder: &'a SpanRecorder,
}

impl<'a> SpanHook<'a> {
    /// A hook recording into `recorder`.
    pub fn new(recorder: &'a SpanRecorder) -> Self {
        SpanHook { recorder }
    }
}

impl crate::TelemetryHook for SpanHook<'_> {
    const SPANS: bool = true;

    fn span(&self, span: &SpanRecord) {
        self.recorder.record(span.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryHook;

    fn rec(recorder: &SpanRecorder, path: &str, lane: u32, seq: u64) {
        recorder.record(SpanRecord::new(path, lane, seq, recorder.epoch()));
    }

    #[test]
    fn merges_paths_into_a_preorder_tree() {
        let r = SpanRecorder::new();
        rec(&r, "point:a@d/campaign:rf/replay/inj:000001", 1, 1);
        rec(&r, "point:a@d/campaign:rf/replay/inj:000000", 2, 0);
        rec(&r, "point:a@d/campaign:rf/replay", 0, 1);
        rec(&r, "point:a@d/campaign:rf", 0, 3);
        rec(&r, "point:a@d/golden", 0, 0);
        let tree = r.finish();
        let paths: Vec<&str> = tree.spans.iter().map(|n| n.path.as_str()).collect();
        // point:a@d is synthesized; golden (seq 0) precedes campaign.
        assert_eq!(
            paths,
            vec![
                "point:a@d",
                "point:a@d/golden",
                "point:a@d/campaign:rf",
                "point:a@d/campaign:rf/replay",
                "point:a@d/campaign:rf/replay/inj:000000",
                "point:a@d/campaign:rf/replay/inj:000001",
            ]
        );
        let root = &tree.spans[0];
        assert_eq!(root.count, 0, "synthesized ancestor");
        assert_eq!(root.parent, None);
        let inj0 = tree
            .spans
            .iter()
            .find(|n| n.name == "inj:000000")
            .expect("inj:000000");
        assert_eq!(
            tree.spans[inj0.parent.unwrap() as usize].name.as_str(),
            "replay"
        );
        assert_eq!(inj0.depth, 3);
    }

    #[test]
    fn tree_is_independent_of_record_arrival_order() {
        let paths = [
            ("p:x@d/campaign:rf/replay/inj:000002", 1u32, 2u64),
            ("p:x@d/campaign:rf/replay/inj:000000", 2, 0),
            ("p:x@d/campaign:rf/replay/inj:000001", 1, 1),
            ("p:x@d/campaign:rf/prune", 0, 0),
            ("p:x@d/campaign:rf/replay", 0, 1),
        ];
        let forward = SpanRecorder::new();
        for (p, l, s) in paths {
            rec(&forward, p, l, s);
        }
        let backward = SpanRecorder::new();
        for (p, l, s) in paths.iter().rev() {
            rec(&backward, p, *l, *s);
        }
        assert_eq!(
            forward.finish().structural_text(),
            backward.finish().structural_text()
        );
    }

    #[test]
    fn structural_text_excludes_worker_timelines_and_durations() {
        let r = SpanRecorder::new();
        rec(&r, "p:a@d/campaign:rf/replay", 0, 1);
        rec(&r, "p:a@d/campaign:rf/replay/worker:00", 1, 0);
        rec(&r, "p:a@d/campaign:rf/replay/inj:000000", 1, 0);
        let text = r.finish().structural_text();
        assert!(
            !text.contains("worker:"),
            "worker lanes are scheduling-dependent:\n{text}"
        );
        assert!(text.contains("inj:000000"));
        assert!(!text.contains("us"), "no durations in structural text");
    }

    #[test]
    fn duplicate_paths_merge_with_counts() {
        let r = SpanRecorder::new();
        rec(&r, "p:a@d/golden", 0, 0);
        rec(&r, "p:a@d/golden", 0, 0);
        let tree = r.finish();
        let golden = tree.spans.iter().find(|n| n.name == "golden").unwrap();
        assert_eq!(golden.count, 2);
        assert!(tree.structural_text().contains("golden x2"));
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let r = SpanRecorder::with_capacity(4);
        for i in 0..10u64 {
            rec(&r, &format!("p:a@d/replay/inj:{i:06}"), 1, i);
        }
        assert_eq!(r.dropped(), 6);
        let tree = r.finish();
        assert_eq!(tree.dropped, 6);
        assert_eq!(
            tree.nodes_named(|n| n.starts_with("inj:")).count(),
            4,
            "only the newest records survive"
        );
    }

    #[test]
    fn chrome_trace_is_valid_and_complete() {
        let r = SpanRecorder::new();
        rec(&r, "p:a@d/golden", 0, 0);
        rec(&r, "p:a@d/campaign:rf/replay/inj:000000", 1, 0);
        let doc = r.finish().to_chrome_trace();
        let text = doc.to_string();
        let parsed = Json::parse(&text).expect("chrome trace round-trips");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let complete: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        // golden + inj + 3 synthesized ancestors.
        assert_eq!(complete.len(), 5);
        for e in &complete {
            assert!(e.get("ts").and_then(Json::as_u64).is_some());
            assert!(e.get("dur").and_then(Json::as_u64).unwrap() >= 1);
            assert!(e.get("tid").and_then(Json::as_u64).is_some());
        }
        let names: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert!(names.len() >= 3, "process + per-lane thread metadata");
    }

    #[test]
    fn span_hook_records_and_advertises_spans() {
        let r = SpanRecorder::new();
        let hook = SpanHook::new(&r);
        const { assert!(SpanHook::SPANS) };
        const { assert!(SpanHook::ENABLED) };
        let t0 = Instant::now();
        hook.span(&SpanRecord::new("p:a@d/golden", 0, 0, t0).tag("cycles", 42u64));
        let tree = r.finish();
        let golden = tree.spans.iter().find(|n| n.name == "golden").unwrap();
        assert_eq!(golden.tags, vec![("cycles".to_string(), "42".to_string())]);
    }

    #[test]
    fn finish_is_nondraining() {
        let r = SpanRecorder::new();
        rec(&r, "p:a@d/golden", 0, 0);
        assert_eq!(r.finish().spans.len(), r.finish().spans.len());
    }
}
