//! A small level-gated logger that keeps stdout machine-parseable.
//!
//! Status lines go to **stderr** gated by [`LogLevel`]; each line is
//! also mirrored into the telemetry event sink (as a `log` event) so a
//! JSONL export contains the full narrative of the run.

use std::sync::Arc;

use crate::events::{Event, EventSink, NullSink};

/// How chatty stderr should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum LogLevel {
    /// Errors only (`--quiet`).
    Quiet,
    /// Errors + status lines (the default).
    #[default]
    Info,
    /// Everything, including per-phase detail (`-v`).
    Debug,
}

/// Level-gated stderr logger mirroring to an [`EventSink`].
#[derive(Clone)]
pub struct Logger {
    level: LogLevel,
    sink: Arc<dyn EventSink>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("level", &self.level)
            .finish()
    }
}

impl Default for Logger {
    fn default() -> Self {
        Self::new(LogLevel::Info)
    }
}

impl Logger {
    /// A logger writing to stderr only.
    pub fn new(level: LogLevel) -> Self {
        Logger {
            level,
            sink: Arc::new(NullSink),
        }
    }

    /// A logger that additionally mirrors every line into `sink`.
    pub fn with_sink(level: LogLevel, sink: Arc<dyn EventSink>) -> Self {
        Logger { level, sink }
    }

    /// The configured level.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    fn emit(&self, level: &str, min: LogLevel, msg: &str) {
        if self.level >= min {
            eprintln!("{msg}");
        }
        // The sink gets every line regardless of the stderr gate: the
        // JSONL export should tell the whole story even under --quiet.
        self.sink
            .emit(&Event::new("log").field("level", level).field("msg", msg));
    }

    /// Always printed (even under `--quiet`).
    pub fn error(&self, msg: &str) {
        self.emit("error", LogLevel::Quiet, msg);
    }

    /// Printed at the default level and above.
    pub fn info(&self, msg: &str) {
        self.emit("info", LogLevel::Info, msg);
    }

    /// Printed only with `-v`.
    pub fn debug(&self, msg: &str) {
        self.emit("debug", LogLevel::Debug, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::MemorySink;
    use crate::json::Json;

    #[test]
    fn levels_order() {
        assert!(LogLevel::Quiet < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
        assert_eq!(LogLevel::default(), LogLevel::Info);
    }

    #[test]
    fn all_lines_reach_the_sink_even_when_quiet() {
        let sink = Arc::new(MemorySink::new());
        let log = Logger::with_sink(LogLevel::Quiet, sink.clone());
        log.error("boom");
        log.info("status");
        log.debug("detail");
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("level").and_then(Json::as_str), Some("error"));
        assert_eq!(events[1].get("msg").and_then(Json::as_str), Some("status"));
        assert_eq!(events[2].get("level").and_then(Json::as_str), Some("debug"));
    }
}
