//! Structured events and the sinks that receive them.
//!
//! An [`Event`] is a named bag of JSON fields; a sink decides where the
//! line goes ([`JsonlSink`] → newline-delimited JSON on disk,
//! [`MemorySink`] → a buffer for tests, [`NullSink`] → nowhere). One
//! event is always one line, so the stream stays greppable and
//! `repro report` can parse it back with [`crate::json::Json::parse`].

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;

/// A structured event: a name plus ordered key/value fields.
///
/// ```
/// use grel_telemetry::Event;
/// let e = Event::new("campaign.done")
///     .field("structure", "RF")
///     .field("injections", 2000u64);
/// assert_eq!(
///     e.to_json().to_string(),
///     r#"{"event":"campaign.done","structure":"RF","injections":2000}"#
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    name: String,
    fields: Vec<(String, Json)>,
}

impl Event {
    /// A new event with no fields.
    pub fn new(name: &str) -> Self {
        Event {
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Appends a field only when `value` is `Some`, keeping builder
    /// chains linear for optional detail (a missing key reads the same
    /// as "not applicable" downstream, and consumers like `repro
    /// report` already tolerate absent fields).
    ///
    /// ```
    /// use grel_telemetry::Event;
    /// let e = Event::new("injection.trace")
    ///     .field_opt("cause", Some("deadlock"))
    ///     .field_opt("cause_cycle", None::<u64>);
    /// assert_eq!(
    ///     e.to_json().to_string(),
    ///     r#"{"event":"injection.trace","cause":"deadlock"}"#
    /// );
    /// ```
    pub fn field_opt(self, key: &str, value: Option<impl Into<Json>>) -> Self {
        match value {
            Some(v) => self.field(key, v),
            None => self,
        }
    }

    /// The event name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The event as a JSON object with the name under `"event"`.
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::with_capacity(self.fields.len() + 1);
        fields.push(("event".to_string(), Json::from(self.name.as_str())));
        fields.extend(self.fields.iter().cloned());
        Json::Obj(fields)
    }
}

/// Receives structured events. Implementations must tolerate concurrent
/// `emit` calls from the campaign worker threads.
pub trait EventSink: Send + Sync {
    /// Delivers one event.
    fn emit(&self, event: &Event);

    /// Flushes any buffered output (default: nothing to do).
    fn flush(&self) {}
}

/// Discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Buffers events in memory; for tests and report generation.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every event received so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("sink poisoned").clone()
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .expect("sink poisoned")
            .push(event.clone());
    }
}

/// Forwards every event (and flush) to two sinks in order — e.g. a
/// JSONL file and the live observatory
/// [`StatusBoard`](crate::serve::StatusBoard).
pub struct TeeSink<'a>(pub &'a dyn EventSink, pub &'a dyn EventSink);

impl std::fmt::Debug for TeeSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeSink").finish()
    }
}

impl EventSink for TeeSink<'_> {
    fn emit(&self, event: &Event) {
        self.0.emit(event);
        self.1.emit(event);
    }

    fn flush(&self) {
        self.0.flush();
        self.1.flush();
    }
}

/// Writes each event as one JSON line, stamping a `t_ms` field with
/// milliseconds since the sink was created.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<BufWriter<W>>,
    started: Instant,
}

impl JsonlSink<File> {
    /// Creates (truncating) `path` and writes events to it.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be created.
    pub fn to_file(path: &Path) -> io::Result<Self> {
        Ok(Self::new(File::create(path)?))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(BufWriter::new(writer)),
            started: Instant::now(),
        }
    }
}

impl<W: Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish()
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn emit(&self, event: &Event) {
        let json = match event.to_json() {
            Json::Obj(mut fields) => {
                let t_ms = self.started.elapsed().as_millis() as u64;
                fields.insert(1, ("t_ms".to_string(), Json::from(t_ms)));
                Json::Obj(fields)
            }
            other => other,
        };
        let mut w = self.writer.lock().expect("sink poisoned");
        // Telemetry must never take the campaign down: swallow I/O
        // errors here; `flush` is the place where they surface.
        let _ = writeln!(w, "{json}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("sink poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn event_builder_and_accessors() {
        let e = Event::new("x").field("a", 1u64).field("b", "two");
        assert_eq!(e.name(), "x");
        assert_eq!(e.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(e.get("b").and_then(Json::as_str), Some("two"));
        assert_eq!(e.get("c"), None);
    }

    #[test]
    fn field_opt_skips_none_and_keeps_some() {
        let e = Event::new("x")
            .field_opt("present", Some(7u64))
            .field_opt("absent", None::<&str>);
        assert_eq!(e.get("present").and_then(Json::as_u64), Some(7));
        assert_eq!(e.get("absent"), None);
    }

    #[test]
    fn field_opt_round_trips_through_json() {
        // A None field must vanish from the serialized line entirely —
        // not appear as null — and the Some fields must parse back to
        // the values that went in, even with control characters.
        let e = Event::new("injection.trace")
            .field_opt("cause", Some("dead\nlock\t\x01"))
            .field_opt("cause_cycle", Some(97u64))
            .field_opt("mask_reason", None::<&str>)
            .field_opt("mask_cycle", None::<u64>);
        let line = e.to_json().to_string();
        let back = Json::parse(&line).expect("event line parses");
        assert_eq!(
            back.get("event").and_then(Json::as_str),
            Some("injection.trace")
        );
        assert_eq!(
            back.get("cause").and_then(Json::as_str),
            Some("dead\nlock\t\x01")
        );
        assert_eq!(back.get("cause_cycle").and_then(Json::as_u64), Some(97));
        assert_eq!(back.get("mask_reason"), None);
        assert_eq!(back.get("mask_cycle"), None);
        assert!(
            !line.contains("mask_reason") && !line.contains("null"),
            "None fields must be absent, not null: {line}"
        );
    }

    #[test]
    fn tee_sink_forwards_to_both() {
        let a = MemorySink::new();
        let b = MemorySink::new();
        let tee = TeeSink(&a, &b);
        tee.emit(&Event::new("x").field("n", 1u64));
        tee.emit(&Event::new("y"));
        tee.flush();
        for sink in [&a, &b] {
            let got = sink.events();
            assert_eq!(got.len(), 2);
            assert_eq!(got[0].name(), "x");
            assert_eq!(got[1].name(), "y");
        }
    }

    #[test]
    fn memory_sink_preserves_order() {
        let sink = MemorySink::new();
        sink.emit(&Event::new("first"));
        sink.emit(&Event::new("second"));
        let got = sink.events();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].name(), "first");
        assert_eq!(got[1].name(), "second");
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines_with_t_ms() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();

        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let sink = JsonlSink::new(Shared(Arc::clone(&buf)));
        sink.emit(&Event::new("alpha").field("n", 3u64));
        sink.emit(&Event::new("beta"));
        sink.flush();

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = Json::parse(line).expect("valid JSONL line");
            assert!(v.get("event").is_some());
            assert!(v.get("t_ms").and_then(Json::as_u64).is_some());
        }
        assert_eq!(
            Json::parse(lines[0])
                .unwrap()
                .get("n")
                .and_then(Json::as_u64),
            Some(3)
        );
    }
}
