//! Property tests for the metrics merge laws.
//!
//! The whole sharding design rests on snapshot merging being a pure
//! function of the recorded-event multiset: associative,
//! order-independent, and with deterministic derived statistics. These
//! properties are what make a harvest reproducible regardless of how
//! the scoped-thread campaign scheduler interleaved the workers.

use grel_telemetry::{Histogram, MetricsRegistry, MetricsSnapshot};
use proptest::collection::vec;
use proptest::prelude::*;

/// One abstract recording op, replayable onto any shard.
#[derive(Debug, Clone)]
enum Op {
    Count(u8, u64),
    /// Gauge writes carry an explicit global order (index into the op
    /// stream) so "last write wins" is well-defined for the model.
    Observe(u8, u32),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u64..1000).prop_map(|(k, v)| Op::Count(k, v)),
        (0u8..4, 0u32..5_000_000).prop_map(|(k, v)| Op::Observe(k, v)),
    ]
}

fn name(k: u8) -> String {
    format!("metric_{k}")
}

/// Replays ops into per-shard snapshots via a registry on dedicated
/// threads (one thread == one shard), splitting the stream at `cuts`.
fn record_sharded(ops: &[Op], shards: usize) -> MetricsSnapshot {
    let reg = MetricsRegistry::new();
    std::thread::scope(|scope| {
        for chunk in ops.chunks(ops.len().div_ceil(shards).max(1)) {
            let reg = &reg;
            scope.spawn(move || {
                for op in chunk {
                    match op {
                        Op::Count(k, v) => reg.counter(&name(*k), *v),
                        Op::Observe(k, v) => reg.observe(&name(*k), *v as f64 * 1e-3),
                    }
                }
            });
        }
    });
    reg.snapshot()
}

proptest! {
    /// Recording the same op stream through 1, 2 or 5 thread shards
    /// yields identical snapshots: the shard/merge model is invisible.
    #[test]
    fn merge_is_shard_count_independent(ops in vec(op(), 0..120)) {
        let one = record_sharded(&ops, 1);
        let two = record_sharded(&ops, 2);
        let five = record_sharded(&ops, 5);
        prop_assert_eq!(&one, &two);
        prop_assert_eq!(&one, &five);
    }

    /// Merging a permutation of shard snapshots in any order gives the
    /// same result (associativity + commutativity of the fold).
    #[test]
    fn merge_is_order_independent(
        ops in vec(op(), 0..120),
        rot in 0usize..7,
    ) {
        // Build per-shard snapshots directly, one registry per shard.
        let chunks: Vec<&[Op]> = ops.chunks(ops.len().div_ceil(4).max(1)).collect();
        let shards: Vec<MetricsSnapshot> = chunks
            .iter()
            .map(|chunk| record_sharded(chunk, 1))
            .collect();

        let mut forward = MetricsSnapshot::default();
        for s in &shards {
            forward.merge(s);
        }

        let mut rotated = MetricsSnapshot::default();
        let n = shards.len().max(1);
        for i in 0..shards.len() {
            rotated.merge(&shards[(i + rot) % n]);
        }

        let mut reversed = MetricsSnapshot::default();
        for s in shards.iter().rev() {
            reversed.merge(s);
        }

        prop_assert_eq!(&forward, &rotated);
        prop_assert_eq!(&forward, &reversed);
    }

    /// Counter totals equal the plain sum of all deltas, however the
    /// stream was sharded.
    #[test]
    fn counters_sum_exactly(ops in vec(op(), 0..120)) {
        let snap = record_sharded(&ops, 3);
        for k in 0u8..4 {
            let expected: u64 = ops
                .iter()
                .filter_map(|op| match op {
                    Op::Count(key, v) if *key == k => Some(*v),
                    _ => None,
                })
                .sum();
            let got = snap.counter(&name(k)).unwrap_or(0);
            prop_assert_eq!(got, expected);
        }
    }

    /// Histogram count/sum are exact and quantiles are a deterministic
    /// pure function of the sample multiset: shuffling the sample order
    /// or re-recording produces bit-identical statistics.
    #[test]
    fn histogram_quantiles_deterministic(
        samples in vec(0u32..5_000_000, 1..80),
        rot in 1usize..17,
    ) {
        let record_all = |vals: &[u32]| {
            let mut h = Histogram::default();
            for v in vals {
                h.record(*v as f64 * 1e-3);
            }
            h
        };
        let a = record_all(&samples);
        let mut shuffled = samples.clone();
        shuffled.rotate_left(rot % samples.len());
        let b = record_all(&shuffled);

        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.count(), samples.len() as u64);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let qa = a.quantile(q);
            let qb = b.quantile(q);
            prop_assert_eq!(qa.to_bits(), qb.to_bits());
            // Quantiles always land inside the observed range.
            prop_assert!(qa >= a.min() && qa <= a.max());
        }
    }

    /// Splitting a sample stream arbitrarily and merging the two halves
    /// equals recording the whole stream into one histogram.
    #[test]
    fn histogram_merge_matches_single_recording(
        samples in vec(0u32..5_000_000, 0..80),
        cut_seed in any::<u64>(),
    ) {
        let cut = if samples.is_empty() {
            0
        } else {
            (cut_seed % (samples.len() as u64 + 1)) as usize
        };
        let mut whole = Histogram::default();
        for v in &samples {
            whole.record(*v as f64 * 1e-3);
        }
        let mut left = Histogram::default();
        for v in &samples[..cut] {
            left.record(*v as f64 * 1e-3);
        }
        let mut right = Histogram::default();
        for v in &samples[cut..] {
            right.record(*v as f64 * 1e-3);
        }
        left.merge(&right);
        prop_assert_eq!(&left, &whole);
    }
}

proptest! {
    /// The campaign runner's per-worker shard pattern: every worker
    /// records into both a shared counter and a worker-labelled counter
    /// (`…{worker="w"}`). However many workers the site list is striped
    /// across, the shared counter must equal the injection count and the
    /// labelled counters must partition it exactly — merging per-thread
    /// shards never loses or double-counts a worker's contribution.
    #[test]
    fn worker_labelled_shards_partition_the_total(
        injections in 1usize..200,
        jobs in 1usize..9,
    ) {
        let reg = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for w in 0..jobs {
                let reg = &reg;
                scope.spawn(move || {
                    // Striped sharding, exactly as the runner assigns sites.
                    let mine = (w..injections).step_by(jobs).count() as u64;
                    for _ in 0..mine {
                        reg.counter("campaign_injections_total", 1);
                    }
                    reg.counter(
                        &format!("campaign_worker_injections_total{{worker=\"{w}\"}}"),
                        mine,
                    );
                });
            }
        });
        let snap = reg.snapshot();
        prop_assert_eq!(
            snap.counter("campaign_injections_total").unwrap_or(0),
            injections as u64
        );
        let labelled: u64 = (0..jobs)
            .map(|w| {
                snap.counter(&format!(
                    "campaign_worker_injections_total{{worker=\"{w}\"}}"
                ))
                .unwrap_or(0)
            })
            .sum();
        prop_assert_eq!(labelled, injections as u64);
    }
}

/// Gauge semantics need real registry sequencing (the proptest model
/// above can't express cross-shard "latest write"), so pin them with a
/// deterministic single-threaded check: the registry-global sequence
/// makes the final write win no matter which shard it landed in.
#[test]
fn gauge_latest_write_wins_across_threads() {
    let reg = MetricsRegistry::new();
    reg.gauge("g", 1.0);
    std::thread::scope(|scope| {
        let reg = &reg;
        scope
            .spawn(move || {
                reg.gauge("g", 2.0);
            })
            .join()
            .expect("writer thread");
    });
    // The spawned thread's write sequenced after ours: it must win even
    // though it lives in a different shard.
    assert_eq!(reg.snapshot().gauge("g"), Some(2.0));
}
