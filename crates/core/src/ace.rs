//! ACE analysis and occupancy tracking.
//!
//! ACE (Architecturally Correct Execution) analysis bounds the AVF of a
//! storage structure by measuring, for every bit, the fraction of
//! execution time during which its value could still influence the
//! program output. Two refinement levels are provided, matching the
//! methodological spread of real tools (and giving the repository its
//! ACE-vs-FI ablation):
//!
//! * [`AceMode::LiveUntilOverwrite`] — **conservative** (the default, and
//!   the behaviour the paper's figures exhibit): a word is vulnerable
//!   from every write until it is overwritten or its block deallocates.
//!   Without an oracle for *future* reads and downstream logical masking,
//!   this is what a structure-level analysis must assume; it
//!   systematically overestimates register-file AVF because values stay
//!   resident long after their last use.
//! * [`AceMode::WriteToLastRead`] — **refined** (trace post-processed):
//!   the lifetime ends at the last read before the next write. Closer to
//!   fault injection, but still blind to logical masking after the read.
//!
//! The analyzer is a [`SimObserver`]: attach it to one fault-free run and
//! read per-structure AVF and time-weighted occupancy (the red line of
//! the paper's Fig. 1/2).

use gpu_workloads::Workload;
use simt_sim::observer::BlockRegions;
use simt_sim::{ArchConfig, FaultSite, Gpu, SimError, SimObserver, Structure};

const NO_EVENT: u64 = u64::MAX;

/// Refinement level of the lifetime analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AceMode {
    /// Conservative: write → overwrite or deallocation (paper-default).
    #[default]
    LiveUntilOverwrite,
    /// Refined: write → last read before the next write.
    WriteToLastRead,
}

/// Lifetime state of one physical word.
#[derive(Debug, Clone, Copy)]
struct WordState {
    wrote_at: u64,
    last_read: u64,
}

const FRESH: WordState = WordState {
    wrote_at: NO_EVENT,
    last_read: NO_EVENT,
};

/// Per-structure lifetime tracker.
#[derive(Debug)]
struct StructTracker {
    words: Vec<WordState>,
    mode: AceMode,
    ace_word_cycles: u64,
    allocated: u64,
    occ_word_cycles: u64,
    last_event_cycle: u64,
    last_launch_start_for_reads: u64,
    words_per_sm: u32,
    total_words: u64,
}

impl StructTracker {
    fn new(words_per_sm: u32, num_sms: u32, mode: AceMode) -> Self {
        let total = words_per_sm as u64 * num_sms as u64;
        StructTracker {
            words: vec![FRESH; total as usize],
            mode,
            ace_word_cycles: 0,
            allocated: 0,
            occ_word_cycles: 0,
            last_event_cycle: 0,
            last_launch_start_for_reads: 0,
            words_per_sm,
            total_words: total,
        }
    }

    fn idx(&self, sm: u32, word: u32) -> Option<usize> {
        if word >= self.words_per_sm {
            return None;
        }
        Some(sm as usize * self.words_per_sm as usize + word as usize)
    }

    fn close(&mut self, i: usize, cycle: u64) {
        let st = &mut self.words[i];
        if st.wrote_at == NO_EVENT {
            st.last_read = NO_EVENT;
            return;
        }
        let end = match self.mode {
            AceMode::LiveUntilOverwrite => cycle,
            AceMode::WriteToLastRead => {
                if st.last_read == NO_EVENT {
                    st.wrote_at // empty interval: dead value
                } else {
                    st.last_read
                }
            }
        };
        self.ace_word_cycles += end.saturating_sub(st.wrote_at);
        // Launch-rooted values (dispatch preloads and launch-zeroed
        // contents) are vulnerable *at* the launch-start cycle itself:
        // the per-launch storage reset precedes fault application within
        // that cycle, so a flip at the boundary lands on the value. A
        // mid-launch write lands after fault application and only opens
        // its window the following cycle — which `end - wrote_at`
        // already counts. This keeps refined bit-cycles equal to the
        // union of the [`LifetimeOracle`]'s live intervals.
        if self.mode == AceMode::WriteToLastRead
            && st.last_read != NO_EVENT
            && st.wrote_at == self.last_launch_start_for_reads
        {
            self.ace_word_cycles += 1;
        }
        st.wrote_at = NO_EVENT;
        st.last_read = NO_EVENT;
    }

    fn on_write(&mut self, sm: u32, word: u32, cycle: u64) {
        let Some(i) = self.idx(sm, word) else { return };
        self.close(i, cycle);
        self.words[i].wrote_at = cycle;
    }

    fn on_read(&mut self, sm: u32, word: u32, cycle: u64) {
        let Some(i) = self.idx(sm, word) else { return };
        let st = &mut self.words[i];
        if st.wrote_at == NO_EVENT {
            // Consuming the launch-zeroed contents: the value was
            // architecturally live since the start of the launch.
            st.wrote_at = self.last_launch_start_for_reads;
        }
        st.last_read = cycle;
    }

    fn free_region(&mut self, sm: u32, base: u32, len: u32, cycle: u64) {
        for w in base..base.saturating_add(len).min(self.words_per_sm) {
            if let Some(i) = self.idx(sm, w) {
                self.close(i, cycle);
            }
        }
    }

    fn occupancy_tick(&mut self, cycle: u64) {
        self.occ_word_cycles += self.allocated * cycle.saturating_sub(self.last_event_cycle);
        self.last_event_cycle = cycle;
    }

    fn flush(&mut self, cycle: u64) {
        for i in 0..self.words.len() {
            self.close(i, cycle);
        }
    }
}

impl StructTracker {
    fn set_launch_start(&mut self, cycle: u64) {
        self.last_launch_start_for_reads = cycle;
    }
}

/// One structure's ACE/occupancy summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructureReport {
    /// ACE-derived AVF estimate in `[0, 1]`.
    pub avf_ace: f64,
    /// Time-weighted fraction of the structure allocated to resident
    /// blocks.
    pub occupancy: f64,
    /// Raw ACE bit-cycles.
    pub ace_bit_cycles: u64,
    /// Structure capacity in bits (all SMs).
    pub total_bits: u64,
}

/// ACE-analysis + occupancy observer.
///
/// Attach to a **fault-free** run via
/// [`simt_sim::Gpu::launch_observed`] (or a
/// [`gpu_workloads::Workload::run`]); read the per-structure results with
/// [`AceAnalyzer::report`] once the workload completes.
///
/// # Example
/// ```
/// use grel_core::ace::{AceAnalyzer, AceMode};
/// use gpu_workloads::{VectorAdd, Workload};
/// use gpu_archs::quadro_fx_5600;
/// use simt_sim::{Gpu, Structure};
///
/// let arch = quadro_fx_5600();
/// let mut gpu = Gpu::new(arch.clone());
/// let mut ace = AceAnalyzer::new(&arch); // conservative, paper-default
/// VectorAdd::new(512, 1).run(&mut gpu, &mut ace)?;
/// let rf = ace.report(Structure::VectorRegisterFile);
/// assert!(rf.avf_ace > 0.0 && rf.avf_ace < 1.0);
/// assert!(rf.occupancy > 0.0);
///
/// // Refined mode yields a smaller (or equal) estimate:
/// let mut gpu2 = Gpu::new(arch.clone());
/// let mut refined = AceAnalyzer::with_mode(&arch, AceMode::WriteToLastRead);
/// VectorAdd::new(512, 1).run(&mut gpu2, &mut refined)?;
/// let rf2 = refined.report(Structure::VectorRegisterFile);
/// assert!(rf2.avf_ace <= rf.avf_ace + 1e-12);
/// # Ok::<(), simt_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct AceAnalyzer {
    rf: StructTracker,
    srf: StructTracker,
    lds: StructTracker,
    total_cycles: u64,
    mode: AceMode,
}

impl AceAnalyzer {
    /// A conservative (paper-default) analyzer sized for `arch`.
    pub fn new(arch: &ArchConfig) -> Self {
        Self::with_mode(arch, AceMode::LiveUntilOverwrite)
    }

    /// An analyzer with an explicit refinement mode.
    pub fn with_mode(arch: &ArchConfig, mode: AceMode) -> Self {
        AceAnalyzer {
            rf: StructTracker::new(arch.rf_words_per_sm(), arch.num_sms, mode),
            srf: StructTracker::new(arch.srf_words_per_sm(), arch.num_sms, mode),
            lds: StructTracker::new(arch.lds_words_per_sm(), arch.num_sms, mode),
            total_cycles: 0,
            mode,
        }
    }

    /// The refinement mode in use.
    pub fn mode(&self) -> AceMode {
        self.mode
    }

    fn tracker(&self, s: Structure) -> &StructTracker {
        match s {
            Structure::VectorRegisterFile => &self.rf,
            Structure::ScalarRegisterFile => &self.srf,
            Structure::LocalMemory => &self.lds,
        }
    }

    /// The ACE/occupancy summary for one structure.
    ///
    /// Both ratios are over *all* executed cycles and the structure
    /// capacity of all SMs — the same site space the fault-injection
    /// campaign samples uniformly.
    pub fn report(&self, s: Structure) -> StructureReport {
        let t = self.tracker(s);
        let total_bits = t.total_words * 32;
        let denom = (total_bits as f64) * (self.total_cycles as f64);
        let ace_bit_cycles = t.ace_word_cycles * 32;
        let (avf, occ) = if denom > 0.0 {
            (
                ace_bit_cycles as f64 / denom,
                t.occ_word_cycles as f64 / (t.total_words as f64 * self.total_cycles as f64),
            )
        } else {
            (0.0, 0.0)
        };
        StructureReport {
            avf_ace: avf,
            occupancy: occ,
            ace_bit_cycles,
            total_bits,
        }
    }

    /// Total application cycles observed so far.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }
}

impl SimObserver for AceAnalyzer {
    fn on_rf_write(&mut self, sm: u32, word: u32, cycle: u64) {
        self.rf.on_write(sm, word, cycle);
    }
    fn on_rf_read(&mut self, sm: u32, word: u32, cycle: u64) {
        self.rf.on_read(sm, word, cycle);
    }
    fn on_srf_write(&mut self, sm: u32, word: u32, cycle: u64) {
        self.srf.on_write(sm, word, cycle);
    }
    fn on_srf_read(&mut self, sm: u32, word: u32, cycle: u64) {
        self.srf.on_read(sm, word, cycle);
    }
    fn on_lds_write(&mut self, sm: u32, word: u32, cycle: u64) {
        self.lds.on_write(sm, word, cycle);
    }
    fn on_lds_read(&mut self, sm: u32, word: u32, cycle: u64) {
        self.lds.on_read(sm, word, cycle);
    }
    fn on_block_dispatch(&mut self, _sm: u32, r: BlockRegions, cycle: u64) {
        self.rf.occupancy_tick(cycle);
        self.srf.occupancy_tick(cycle);
        self.lds.occupancy_tick(cycle);
        self.rf.allocated += r.rf_len as u64;
        self.srf.allocated += r.srf_len as u64;
        self.lds.allocated += r.lds_len as u64;
    }
    fn on_block_retire(&mut self, sm: u32, r: BlockRegions, cycle: u64) {
        self.rf.occupancy_tick(cycle);
        self.srf.occupancy_tick(cycle);
        self.lds.occupancy_tick(cycle);
        self.rf.allocated -= r.rf_len as u64;
        self.srf.allocated -= r.srf_len as u64;
        self.lds.allocated -= r.lds_len as u64;
        self.rf.free_region(sm, r.rf_base, r.rf_len, cycle);
        self.srf.free_region(sm, r.srf_base, r.srf_len, cycle);
        self.lds.free_region(sm, r.lds_base, r.lds_len, cycle);
    }
    fn on_launch_begin(&mut self, _name: &str, cycle: u64) {
        for t in [&mut self.rf, &mut self.srf, &mut self.lds] {
            t.flush(cycle);
            t.set_launch_start(cycle);
            t.occupancy_tick(cycle);
        }
    }
    fn on_launch_end(&mut self, cycle: u64) {
        for t in [&mut self.rf, &mut self.srf, &mut self.lds] {
            t.flush(cycle);
            t.occupancy_tick(cycle);
        }
        self.total_cycles = cycle;
    }
}

/// Per-word open value for the [`LifetimeOracle`]: the first cycle a
/// flip would be consumed, and the last read so far.
#[derive(Debug, Clone, Copy)]
struct OpenValue {
    live_from: u64,
    last_read: u64,
}

const CLOSED: OpenValue = OpenValue {
    live_from: NO_EVENT,
    last_read: NO_EVENT,
};

/// Interval builder for one structure of the [`LifetimeOracle`].
#[derive(Debug)]
struct OracleTracker {
    open: Vec<OpenValue>,
    /// Sorted, non-overlapping `[lo, hi]` live intervals per physical
    /// word (index `sm * words_per_sm + word`).
    intervals: Vec<Vec<(u64, u64)>>,
    words_per_sm: u32,
}

impl OracleTracker {
    fn new(words_per_sm: u32, num_sms: u32) -> Self {
        let total = words_per_sm as usize * num_sms as usize;
        OracleTracker {
            open: vec![CLOSED; total],
            intervals: vec![Vec::new(); total],
            words_per_sm,
        }
    }

    fn idx(&self, sm: u32, word: u32) -> Option<usize> {
        if word >= self.words_per_sm {
            return None;
        }
        let i = sm as usize * self.words_per_sm as usize + word as usize;
        (i < self.open.len()).then_some(i)
    }

    /// Emits the open value's interval (if it was ever read) and resets
    /// the word. Emission order is chronological per word, so merging
    /// with the previous interval keeps each list sorted and disjoint.
    fn close(&mut self, i: usize) {
        let v = self.open[i];
        self.open[i] = CLOSED;
        if v.live_from == NO_EVENT || v.last_read == NO_EVENT {
            return; // never written-then-read: no consumable window
        }
        let list = &mut self.intervals[i];
        match list.last_mut() {
            Some(last) if v.live_from <= last.1 + 1 => last.1 = last.1.max(v.last_read),
            _ => list.push((v.live_from, v.last_read)),
        }
    }

    fn on_write(&mut self, sm: u32, word: u32, cycle: u64, launch_start: u64) {
        let Some(i) = self.idx(sm, word) else { return };
        self.close(i);
        // A write at the launch-start cycle is a dispatch preload (or
        // shares the cycle with one): the per-launch reset and preloads
        // precede fault application within that cycle, so the boundary
        // cycle itself is vulnerable. Any later write lands *after*
        // fault application — a flip at its own cycle is clobbered — so
        // its window opens the following cycle.
        self.open[i] = OpenValue {
            live_from: if cycle == launch_start {
                cycle
            } else {
                cycle + 1
            },
            last_read: NO_EVENT,
        };
    }

    fn on_read(&mut self, sm: u32, word: u32, cycle: u64, launch_start: u64) {
        let Some(i) = self.idx(sm, word) else { return };
        let v = &mut self.open[i];
        if v.live_from == NO_EVENT {
            // Consuming the launch-zeroed contents: vulnerable since the
            // reset at the launch-start cycle.
            v.live_from = launch_start;
        }
        v.last_read = cycle;
    }

    fn free_region(&mut self, sm: u32, base: u32, len: u32) {
        for w in base..base.saturating_add(len).min(self.words_per_sm) {
            if let Some(i) = self.idx(sm, w) {
                self.close(i);
            }
        }
    }

    fn flush(&mut self) {
        for i in 0..self.open.len() {
            self.close(i);
        }
    }

    fn is_dead(&self, sm: u32, word: u32, cycle: u64) -> bool {
        let Some(i) = self.idx(sm, word) else {
            return true; // out-of-range words are never consumed
        };
        let list = &self.intervals[i];
        let p = list.partition_point(|&(lo, _)| lo <= cycle);
        p == 0 || list[p - 1].1 < cycle
    }

    fn live_bit_cycles(&self) -> u64 {
        self.intervals
            .iter()
            .flatten()
            .map(|&(lo, hi)| (hi - lo + 1) * 32)
            .sum()
    }

    fn live_word_cycles_in(&self, word_lo: u32, word_hi: u32, cycle_lo: u64, cycle_hi: u64) -> u64 {
        if cycle_hi <= cycle_lo {
            return 0;
        }
        let words = self.words_per_sm as usize;
        let mut total = 0u64;
        for (i, list) in self.intervals.iter().enumerate() {
            let word = (i % words) as u32;
            if word < word_lo || word >= word_hi {
                continue;
            }
            for &(lo, hi) in list {
                // Intervals are stored inclusive; the query window is
                // half-open, so clip its upper edge back by one.
                let lo = lo.max(cycle_lo);
                let hi = hi.min(cycle_hi - 1);
                if lo <= hi {
                    total += hi - lo + 1;
                }
            }
        }
        total
    }

    fn segments_in(
        &self,
        word_lo: u32,
        word_hi: u32,
        cycle_lo: u64,
        cycle_hi: u64,
        live: bool,
    ) -> Vec<WordCycleSegment> {
        let mut out = Vec::new();
        if cycle_hi <= cycle_lo {
            return out;
        }
        let words = self.words_per_sm as usize;
        for (i, list) in self.intervals.iter().enumerate() {
            let word = (i % words) as u32;
            if word < word_lo || word >= word_hi {
                continue;
            }
            let sm = (i / words) as u32;
            if live {
                for &(lo, hi) in list {
                    let lo = lo.max(cycle_lo);
                    let hi = hi.min(cycle_hi - 1);
                    if lo <= hi {
                        out.push(WordCycleSegment { sm, word, lo, hi });
                    }
                }
            } else {
                // The complement: gaps between the (sorted, disjoint)
                // live intervals within the window.
                let mut next = cycle_lo;
                for &(lo, hi) in list {
                    let lo = lo.max(cycle_lo);
                    let hi = hi.min(cycle_hi - 1);
                    if lo > hi {
                        continue;
                    }
                    if lo > next {
                        out.push(WordCycleSegment {
                            sm,
                            word,
                            lo: next,
                            hi: lo - 1,
                        });
                    }
                    next = hi + 1;
                }
                if next < cycle_hi {
                    out.push(WordCycleSegment {
                        sm,
                        word,
                        lo: next,
                        hi: cycle_hi - 1,
                    });
                }
            }
        }
        out
    }
}

/// A run of consecutive cycles (`lo..=hi`, inclusive) of one physical
/// word that is uniformly live or uniformly dead — the unit the
/// adaptive sampler's rank→site mapping bisects over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WordCycleSegment {
    /// SM index.
    pub(crate) sm: u32,
    /// Word index within the SM.
    pub(crate) word: u32,
    /// First cycle of the run.
    pub(crate) lo: u64,
    /// Last cycle of the run (inclusive).
    pub(crate) hi: u64,
}

impl WordCycleSegment {
    /// Number of `(word, cycle)` sites in the run.
    pub(crate) fn len(&self) -> u64 {
        self.hi - self.lo + 1
    }
}

/// A per-word live-interval map distilled from one instrumented golden
/// run: for every physical word of the RF, SRF and LDS, the exact cycle
/// windows during which a bit flip would still be consumed by a read.
///
/// A flip at a cycle outside every interval of its word is **provably
/// masked**: the flipped value is clobbered by an overwrite, the
/// per-launch storage reset, or end-of-execution before any instruction
/// reads it, so the replay is bit-identical to the golden run. The
/// campaign layer uses [`LifetimeOracle::is_dead`] to record such sites
/// as `Masked` without replaying them (see `CampaignConfig::prune`); the
/// windows over-approximate liveness at launch boundaries, so pruning is
/// exact — never the other way around.
///
/// # Example
/// ```
/// use grel_core::ace::LifetimeOracle;
/// use gpu_workloads::VectorAdd;
/// use gpu_archs::quadro_fx_5600;
/// use simt_sim::Structure;
///
/// let arch = quadro_fx_5600();
/// let oracle = LifetimeOracle::capture(&arch, &VectorAdd::new(256, 1))?;
/// // Low-AVF workloads leave most of the site space dead.
/// assert!(oracle.live_bit_cycles(Structure::VectorRegisterFile) > 0);
/// # Ok::<(), simt_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct LifetimeOracle {
    rf: OracleTracker,
    srf: OracleTracker,
    lds: OracleTracker,
    num_sms: u32,
    launch_start: u64,
}

impl LifetimeOracle {
    /// An empty oracle sized for `arch`; attach it to a fault-free run
    /// as a [`SimObserver`] (or use [`LifetimeOracle::capture`]).
    pub fn new(arch: &ArchConfig) -> Self {
        LifetimeOracle {
            rf: OracleTracker::new(arch.rf_words_per_sm(), arch.num_sms),
            srf: OracleTracker::new(arch.srf_words_per_sm(), arch.num_sms),
            lds: OracleTracker::new(arch.lds_words_per_sm(), arch.num_sms),
            num_sms: arch.num_sms,
            launch_start: 0,
        }
    }

    /// Runs `workload` once on a fresh device and returns the oracle.
    ///
    /// # Errors
    ///
    /// Propagates any failure of the fault-free run itself.
    pub fn capture(arch: &ArchConfig, workload: &dyn Workload) -> Result<Self, SimError> {
        let mut gpu = Gpu::new(arch.clone());
        let mut oracle = LifetimeOracle::new(arch);
        workload.run(&mut gpu, &mut oracle)?;
        Ok(oracle)
    }

    fn tracker(&self, s: Structure) -> &OracleTracker {
        match s {
            Structure::VectorRegisterFile => &self.rf,
            Structure::ScalarRegisterFile => &self.srf,
            Structure::LocalMemory => &self.lds,
        }
    }

    /// Whether a flip at `site` provably never reaches a read — i.e. the
    /// replay would be bit-identical to the golden run (`Masked`).
    ///
    /// Only [transient](FaultSite::is_transient) sites can ever be dead:
    /// the argument relies on the corruption dying with the overwrite
    /// that closes a live window, but a stuck-at cell is *re-asserted*
    /// by that overwrite and a control fault never lives in a storage
    /// word at all. For any other kind this returns `false`
    /// unconditionally, so campaign pruning stays sound across fault
    /// models even with a caller-supplied oracle.
    pub fn is_dead(&self, site: FaultSite) -> bool {
        if !site.is_transient() {
            return false;
        }
        // Same physical mapping the injector uses.
        let sm = site.sm % self.num_sms.max(1);
        self.tracker(site.structure)
            .is_dead(sm, site.word, site.cycle)
    }

    /// Total live bit-cycles of one structure: the union of all live
    /// intervals, times 32 bits per word. Equals the refined
    /// ([`AceMode::WriteToLastRead`]) ACE bit-cycle count — the two are
    /// independent implementations of the same lifetime rule.
    pub fn live_bit_cycles(&self, s: Structure) -> u64 {
        self.tracker(s).live_bit_cycles()
    }

    /// Live word-cycles of `s` restricted to words `[word_lo, word_hi)`
    /// and cycles `[cycle_lo, cycle_hi)`, summed across every SM: the
    /// exact count of `(sm, word, cycle)` triples inside the window
    /// whose word is live at that cycle. This is the stratum-weight
    /// primitive of the adaptive sampler (`crate::sampling`) — a
    /// stratum's live population is this count times its bit width —
    /// and a pure function of the captured intervals, so stratum
    /// weights inherit the oracle's determinism.
    pub fn live_word_cycles_in(
        &self,
        s: Structure,
        word_lo: u32,
        word_hi: u32,
        cycle_lo: u64,
        cycle_hi: u64,
    ) -> u64 {
        self.tracker(s)
            .live_word_cycles_in(word_lo, word_hi, cycle_lo, cycle_hi)
    }

    /// Explicit segment list behind [`LifetimeOracle::live_word_cycles_in`]:
    /// every maximal live (`live = true`) or dead (`live = false`) cycle
    /// run of every word in the window, across all SMs. The adaptive
    /// sampler bisects the cumulative lengths of this list to map a
    /// stratum-local rank to a concrete `(sm, word, cycle)` — which is
    /// what lets it draw from a rare stratum directly instead of
    /// rejection-scanning the full site population.
    pub(crate) fn segments_in(
        &self,
        s: Structure,
        word_lo: u32,
        word_hi: u32,
        cycle_lo: u64,
        cycle_hi: u64,
        live: bool,
    ) -> Vec<WordCycleSegment> {
        self.tracker(s)
            .segments_in(word_lo, word_hi, cycle_lo, cycle_hi, live)
    }
}

impl SimObserver for LifetimeOracle {
    fn on_rf_write(&mut self, sm: u32, word: u32, cycle: u64) {
        self.rf.on_write(sm, word, cycle, self.launch_start);
    }
    fn on_rf_read(&mut self, sm: u32, word: u32, cycle: u64) {
        self.rf.on_read(sm, word, cycle, self.launch_start);
    }
    fn on_srf_write(&mut self, sm: u32, word: u32, cycle: u64) {
        self.srf.on_write(sm, word, cycle, self.launch_start);
    }
    fn on_srf_read(&mut self, sm: u32, word: u32, cycle: u64) {
        self.srf.on_read(sm, word, cycle, self.launch_start);
    }
    fn on_lds_write(&mut self, sm: u32, word: u32, cycle: u64) {
        self.lds.on_write(sm, word, cycle, self.launch_start);
    }
    fn on_lds_read(&mut self, sm: u32, word: u32, cycle: u64) {
        self.lds.on_read(sm, word, cycle, self.launch_start);
    }
    fn on_block_retire(&mut self, sm: u32, r: BlockRegions, _cycle: u64) {
        self.rf.free_region(sm, r.rf_base, r.rf_len);
        self.srf.free_region(sm, r.srf_base, r.srf_len);
        self.lds.free_region(sm, r.lds_base, r.lds_len);
    }
    fn on_launch_begin(&mut self, _name: &str, cycle: u64) {
        for t in [&mut self.rf, &mut self.srf, &mut self.lds] {
            t.flush();
        }
        self.launch_start = cycle;
    }
    fn on_launch_end(&mut self, _cycle: u64) {
        for t in [&mut self.rf, &mut self.srf, &mut self.lds] {
            t.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_sim::ArchConfig;

    fn refined() -> AceAnalyzer {
        AceAnalyzer::with_mode(&ArchConfig::small_test_gpu(), AceMode::WriteToLastRead)
    }

    fn conservative() -> AceAnalyzer {
        AceAnalyzer::new(&ArchConfig::small_test_gpu())
    }

    #[test]
    fn refined_counts_write_to_last_read() {
        let mut a = refined();
        a.on_launch_begin("k", 0);
        a.on_rf_write(0, 5, 10);
        a.on_rf_read(0, 5, 20);
        a.on_rf_read(0, 5, 50);
        a.on_rf_write(0, 5, 60);
        a.on_launch_end(100);
        // [10, 50] closed by the overwrite, plus the dead tail value.
        assert_eq!(
            a.report(Structure::VectorRegisterFile).ace_bit_cycles,
            40 * 32
        );
    }

    #[test]
    fn conservative_counts_write_to_overwrite() {
        let mut a = conservative();
        a.on_launch_begin("k", 0);
        a.on_rf_write(0, 5, 10);
        a.on_rf_read(0, 5, 20); // reads are irrelevant here
        a.on_rf_write(0, 5, 60);
        a.on_launch_end(100);
        // [10, 60) + [60, 100) (flushed at launch end).
        assert_eq!(
            a.report(Structure::VectorRegisterFile).ace_bit_cycles,
            (50 + 40) * 32
        );
    }

    #[test]
    fn conservative_closes_at_block_retire() {
        let mut a = conservative();
        a.on_launch_begin("k", 0);
        a.on_block_dispatch(
            0,
            BlockRegions {
                rf_base: 0,
                rf_len: 8,
                ..Default::default()
            },
            0,
        );
        a.on_rf_write(0, 3, 10);
        a.on_block_retire(
            0,
            BlockRegions {
                rf_base: 0,
                rf_len: 8,
                ..Default::default()
            },
            40,
        );
        a.on_launch_end(100);
        // Live [10, 40): ends at deallocation, not at launch end.
        assert_eq!(
            a.report(Structure::VectorRegisterFile).ace_bit_cycles,
            30 * 32
        );
    }

    #[test]
    fn refined_dead_write_is_unace_conservative_is_not() {
        let mut r = refined();
        r.on_launch_begin("k", 0);
        r.on_rf_write(0, 1, 10);
        r.on_launch_end(100);
        assert_eq!(r.report(Structure::VectorRegisterFile).ace_bit_cycles, 0);

        let mut c = conservative();
        c.on_launch_begin("k", 0);
        c.on_rf_write(0, 1, 10);
        c.on_launch_end(100);
        assert_eq!(
            c.report(Structure::VectorRegisterFile).ace_bit_cycles,
            90 * 32,
            "conservative mode cannot prove the value dead"
        );
    }

    #[test]
    fn refined_read_of_initial_zero_counts_from_launch_start() {
        let mut a = refined();
        a.on_launch_begin("k", 5);
        a.on_rf_read(0, 2, 25);
        a.on_launch_end(100);
        // [5, 25] inclusive of the launch-start cycle: the reset that
        // zeroes the word precedes fault application at cycle 5.
        assert_eq!(
            a.report(Structure::VectorRegisterFile).ace_bit_cycles,
            21 * 32
        );
    }

    #[test]
    fn avf_normalizes_over_structure_and_time() {
        let mut a = refined();
        a.on_launch_begin("k", 0);
        a.on_rf_write(0, 0, 0);
        a.on_rf_read(0, 0, 100);
        a.on_launch_end(100);
        let r = a.report(Structure::VectorRegisterFile);
        // The write at cycle 0 is launch-rooted, so [0, 100] counts 101
        // of the 100 executed cycles for that one word.
        let expect = 101.0 / (100.0 * 4096.0 * 2.0);
        assert!(
            (r.avf_ace - expect).abs() < 1e-12,
            "{} vs {expect}",
            r.avf_ace
        );
    }

    #[test]
    fn occupancy_integrates_block_residency() {
        let mut a = conservative();
        a.on_launch_begin("k", 0);
        a.on_block_dispatch(
            0,
            BlockRegions {
                rf_base: 0,
                rf_len: 4096,
                ..Default::default()
            },
            0,
        );
        a.on_block_retire(
            0,
            BlockRegions {
                rf_base: 0,
                rf_len: 4096,
                ..Default::default()
            },
            50,
        );
        a.on_launch_end(100);
        let r = a.report(Structure::VectorRegisterFile);
        assert!((r.occupancy - 0.25).abs() < 1e-12, "{}", r.occupancy);
    }

    #[test]
    fn multi_launch_accumulates() {
        let mut a = refined();
        a.on_launch_begin("k1", 0);
        a.on_rf_write(0, 0, 0);
        a.on_rf_read(0, 0, 10);
        a.on_launch_end(50);
        a.on_launch_begin("k2", 50);
        a.on_rf_write(0, 0, 50);
        a.on_rf_read(0, 0, 70);
        a.on_launch_end(100);
        let r = a.report(Structure::VectorRegisterFile);
        // Both writes land on their launch-start cycle, so each window
        // includes the boundary: [0, 10] and [50, 70].
        assert_eq!(r.ace_bit_cycles, (11 + 21) * 32);
        assert_eq!(a.total_cycles(), 100);
    }

    #[test]
    fn out_of_range_events_are_ignored() {
        let mut a = refined();
        a.on_launch_begin("k", 0);
        a.on_rf_write(0, u32::MAX, 1);
        a.on_rf_read(0, u32::MAX, 2);
        a.on_launch_end(10);
        assert_eq!(a.report(Structure::VectorRegisterFile).ace_bit_cycles, 0);
    }

    #[test]
    fn empty_run_reports_zero() {
        let a = conservative();
        let r = a.report(Structure::LocalMemory);
        assert_eq!(r.avf_ace, 0.0);
        assert_eq!(r.occupancy, 0.0);
        assert_eq!(a.mode(), AceMode::LiveUntilOverwrite);
    }

    fn rf_site(word: u32, cycle: u64) -> FaultSite {
        FaultSite::new(Structure::VectorRegisterFile, 0, word, 0, cycle)
    }

    #[test]
    fn oracle_never_prunes_non_transient_sites() {
        use simt_sim::{ControlTarget, FaultKind};
        let mut o = LifetimeOracle::new(&ArchConfig::small_test_gpu());
        o.on_launch_begin("k", 0);
        o.on_rf_write(0, 5, 10);
        o.on_rf_read(0, 5, 20);
        o.on_launch_end(100);
        // Cycle 60 is outside the live window: dead for a flip…
        let dead_flip = rf_site(5, 60);
        assert!(o.is_dead(dead_flip));
        // …but a stuck-at fault there outlives every overwrite, and a
        // control fault has no storage word to be dead in.
        for kind in [
            FaultKind::StuckAt0,
            FaultKind::StuckAt1,
            FaultKind::Control(ControlTarget::SchedulerSlot),
            FaultKind::Control(ControlTarget::BarrierCounter),
        ] {
            assert!(
                !o.is_dead(dead_flip.with_kind(kind)),
                "{kind} sites must never be pruned"
            );
        }
    }

    #[test]
    fn oracle_live_window_is_write_to_last_read() {
        let mut o = LifetimeOracle::new(&ArchConfig::small_test_gpu());
        o.on_launch_begin("k", 0);
        o.on_rf_write(0, 5, 10);
        o.on_rf_read(0, 5, 20);
        o.on_rf_read(0, 5, 50);
        o.on_rf_write(0, 5, 60); // never read again: dead tail
        o.on_launch_end(100);
        // A flip at the write's own cycle is clobbered by the write
        // (fault application precedes SM stepping), so the window is
        // [11, 50].
        assert!(o.is_dead(rf_site(5, 10)));
        assert!(!o.is_dead(rf_site(5, 11)));
        assert!(!o.is_dead(rf_site(5, 50)));
        assert!(o.is_dead(rf_site(5, 51)));
        assert!(o.is_dead(rf_site(5, 60)));
        assert!(o.is_dead(rf_site(4, 20)), "untouched word is dead");
        assert_eq!(o.live_bit_cycles(Structure::VectorRegisterFile), 40 * 32);
    }

    #[test]
    fn oracle_launch_boundary_cycle_is_vulnerable() {
        let mut o = LifetimeOracle::new(&ArchConfig::small_test_gpu());
        o.on_launch_begin("k", 5);
        o.on_rf_write(0, 1, 5); // dispatch preload: precedes the fault
        o.on_rf_read(0, 1, 9);
        o.on_rf_read(0, 2, 25); // launch-zeroed contents
        o.on_launch_end(100);
        assert!(!o.is_dead(rf_site(1, 5)));
        assert!(!o.is_dead(rf_site(2, 5)));
        assert!(!o.is_dead(rf_site(2, 25)));
        assert!(o.is_dead(rf_site(1, 10)));
        // [5, 9] and [5, 25].
        assert_eq!(
            o.live_bit_cycles(Structure::VectorRegisterFile),
            (5 + 21) * 32
        );
    }

    #[test]
    fn oracle_separates_launches() {
        let mut o = LifetimeOracle::new(&ArchConfig::small_test_gpu());
        o.on_launch_begin("k1", 0);
        o.on_rf_write(0, 0, 10);
        o.on_rf_read(0, 0, 20);
        o.on_launch_end(50);
        o.on_launch_begin("k2", 50);
        o.on_rf_write(0, 0, 60);
        o.on_rf_read(0, 0, 70);
        o.on_launch_end(100);
        // [11, 20] and [61, 70]; the gap spans the launch boundary —
        // the k1 value left resident at cycle 21.. is never read again
        // (the k2 reset clobbers it), so flips there are dead.
        assert!(!o.is_dead(rf_site(0, 20)));
        assert!(o.is_dead(rf_site(0, 21)));
        assert!(o.is_dead(rf_site(0, 50)));
        assert!(o.is_dead(rf_site(0, 60)));
        assert!(!o.is_dead(rf_site(0, 61)));
        assert_eq!(o.live_bit_cycles(Structure::VectorRegisterFile), 20 * 32);
    }

    #[test]
    fn oracle_matches_refined_ace_on_synthetic_stream() {
        let arch = ArchConfig::small_test_gpu();
        let mut ace = AceAnalyzer::with_mode(&arch, AceMode::WriteToLastRead);
        let mut o = LifetimeOracle::new(&arch);
        let drive = |obs: &mut dyn SimObserver| {
            obs.on_launch_begin("k1", 0);
            obs.on_rf_write(0, 0, 0); // launch-rooted preload
            obs.on_rf_read(0, 0, 7);
            obs.on_rf_write(1, 3, 4);
            obs.on_rf_read(1, 3, 30);
            obs.on_rf_read(0, 9, 12); // launch-zeroed read
            obs.on_rf_write(0, 9, 15); // overwrite, then dead
            obs.on_launch_end(40);
            obs.on_launch_begin("k2", 40);
            obs.on_rf_read(0, 2, 55);
            obs.on_rf_write(0, 2, 58);
            obs.on_rf_read(0, 2, 60);
            obs.on_launch_end(80);
        };
        drive(&mut ace);
        drive(&mut o);
        assert_eq!(
            ace.report(Structure::VectorRegisterFile).ace_bit_cycles,
            o.live_bit_cycles(Structure::VectorRegisterFile),
            "refined ACE and the oracle implement the same lifetime rule"
        );
    }

    #[test]
    fn oracle_capture_prunes_only_masked_space() {
        use gpu_workloads::VectorAdd;
        let arch = gpu_archs::quadro_fx_5600();
        let w = VectorAdd::new(128, 3);
        let o = LifetimeOracle::capture(&arch, &w).unwrap();
        let live = o.live_bit_cycles(Structure::VectorRegisterFile);
        assert!(live > 0, "vectoradd reads registers");
        // The top of the register file is never allocated: dead.
        assert!(o.is_dead(rf_site(arch.rf_words_per_sm() - 1, 10)));
    }
}
